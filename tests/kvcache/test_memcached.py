"""Tests for the memcached-like server and client."""

import pytest

from repro.kvcache import MemcachedClient, MemcachedServer, STATUS_MISS, STATUS_OK
from repro.net import Network
from repro.sim import Environment


def make_setup(**server_kwargs):
    env = Environment()
    network = Network(env)
    server_node = network.add_node("memcached")
    client_node = network.add_node("app")
    server = MemcachedServer(env, server_node, **server_kwargs)
    client = MemcachedClient(env, client_node, "memcached")
    return env, server, client


def run(env, gen):
    process = env.process(gen)
    env.run(until=process)
    return process.value


def test_set_then_get():
    env, server, client = make_setup()

    def scenario():
        status = yield client.set("user:1", b"alice")
        assert status == STATUS_OK
        status, value = yield client.get("user:1")
        assert status == STATUS_OK
        assert value == b"alice"

    run(env, scenario())
    assert server.stats.sets == 1
    assert server.stats.hits == 1


def test_get_miss():
    env, server, client = make_setup()

    def scenario():
        status, value = yield client.get("ghost")
        assert status == STATUS_MISS
        assert value is None

    run(env, scenario())
    assert server.stats.misses == 1
    assert server.stats.hit_rate == 0.0


def test_delete():
    env, server, client = make_setup()

    def scenario():
        yield client.set("k", b"v")
        assert (yield client.delete("k")) == STATUS_OK
        assert (yield client.delete("k")) == STATUS_MISS

    run(env, scenario())
    assert server.stats.deletes == 2


def test_service_time_scales_with_size():
    env, server, client = make_setup(
        base_service_seconds=1e-6, per_kib_seconds=100e-6
    )
    times = {}

    def scenario():
        start = env.now
        yield client.set("small", b"x")
        times["small"] = env.now - start
        start = env.now
        yield client.set("big", b"x" * 64 * 1024)
        times["big"] = env.now - start

    run(env, scenario())
    assert times["big"] > 5 * times["small"]


def test_eviction_under_capacity_pressure():
    env, server, client = make_setup(capacity_bytes=1000)

    def scenario():
        yield client.set("a", b"x" * 600)
        yield client.set("b", b"y" * 600)

    run(env, scenario())
    assert "a" not in server.data  # evicted FIFO
    assert "b" in server.data


def test_hit_rate():
    env, server, client = make_setup()

    def scenario():
        yield client.set("k", b"v")
        yield client.get("k")
        yield client.get("k")
        yield client.get("nope")

    run(env, scenario())
    assert server.stats.hit_rate == pytest.approx(2 / 3)


def test_client_timeout_raises():
    env = Environment()
    network = Network(env)
    network.add_node("memcached").attach(lambda p: None)  # black hole
    client_node = network.add_node("app")
    client = MemcachedClient(env, client_node, "memcached",
                             timeout=0.01, retries=1)

    def scenario():
        with pytest.raises(TimeoutError):
            yield client.get("k")

    process = env.process(scenario())
    env.run(until=process)
