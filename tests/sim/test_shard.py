"""Unit suite for the shard partitioning machinery (repro.sim.shard).

Covers the deterministic seed derivation, the request-id ownership
map, arrival-stream splitting as a true partition, and ``run_shards``
returning identical results inline and across a process pool — the
process-location-independence property the differential harness
builds on.
"""

import pytest

from repro.sim import (
    ShardSpec,
    default_processes,
    make_shard_specs,
    owner_of,
    run_shards,
    shard_seed,
    split_arrivals,
)


class Record:
    def __init__(self, request_id):
        self.request_id = request_id

    def __eq__(self, other):
        return self.request_id == other.request_id

    def __repr__(self):
        return f"Record({self.request_id})"


def test_shard_seed_is_stable_and_distinct():
    assert shard_seed(42, 0) == shard_seed(42, 0)
    seeds = {shard_seed(42, index) for index in range(32)}
    assert len(seeds) == 32
    assert shard_seed(42, 0) != shard_seed(43, 0)


def test_make_shard_specs_derives_per_shard_seeds():
    specs = make_shard_specs(4, seed=7, params={"rate": 100.0})
    assert [spec.index for spec in specs] == [0, 1, 2, 3]
    assert all(spec.n_shards == 4 for spec in specs)
    assert [spec.seed for spec in specs] == \
        [shard_seed(7, index) for index in range(4)]
    # params are copied per spec, not shared.
    specs[0].params["rate"] = 999.0
    assert specs[1].params["rate"] == 100.0


def test_shard_spec_validates_index():
    with pytest.raises(ValueError):
        ShardSpec(index=4, n_shards=4, seed=1)
    with pytest.raises(ValueError):
        ShardSpec(index=-1, n_shards=4, seed=1)
    with pytest.raises(ValueError):
        ShardSpec(index=0, n_shards=0, seed=1)


def test_owner_of_is_total_and_matches_owns():
    for n_shards in (1, 2, 3, 4, 7):
        specs = make_shard_specs(n_shards, seed=0)
        for request_id in range(50):
            owner = owner_of(request_id, n_shards)
            assert 0 <= owner < n_shards
            owners = [spec.owns(request_id) for spec in specs]
            assert owners.count(True) == 1
            assert owners.index(True) == owner


def test_split_arrivals_is_a_partition_in_stream_order():
    stream = [Record(request_id) for request_id in
              [0, 5, 3, 8, 1, 2, 9, 4, 7, 6]]
    shards = split_arrivals(stream, 3)
    assert sum(len(shard) for shard in shards) == len(stream)
    seen = [record for shard in shards for record in shard]
    assert sorted(r.request_id for r in seen) == list(range(10))
    for index, shard in enumerate(shards):
        assert all(r.request_id % 3 == index for r in shard)
        # Stream order is preserved inside each shard.
        positions = [stream.index(record) for record in shard]
        assert positions == sorted(positions)


def test_split_arrivals_custom_key():
    stream = [{"rid": i} for i in range(9)]
    shards = split_arrivals(stream, 3, key=lambda record: record["rid"])
    assert [len(shard) for shard in shards] == [3, 3, 3]


def test_run_shards_requires_complete_ordered_specs():
    specs = make_shard_specs(3, seed=1)
    with pytest.raises(ValueError):
        run_shards(_square_worker, specs[::-1], inline=True)
    with pytest.raises(ValueError):
        run_shards(_square_worker, specs[:2], inline=True)


def _square_worker(spec):
    # Module-level so it pickles into pool workers.
    return {"shard": spec.index, "seed": spec.seed,
            "value": spec.seed % 1000, "params": dict(spec.params)}


def test_run_shards_inline_equals_pooled():
    specs = make_shard_specs(4, seed=11, params={"tag": "x"})
    inline = run_shards(_square_worker, specs, inline=True)
    pooled = run_shards(_square_worker, specs, inline=False)
    assert inline == pooled
    assert [result["shard"] for result in pooled] == [0, 1, 2, 3]


def test_run_shards_single_spec_runs_inline():
    specs = make_shard_specs(1, seed=5)
    assert run_shards(_square_worker, specs) == \
        [_square_worker(specs[0])]


def test_default_processes_bounds():
    assert default_processes(1) == 1
    assert 1 <= default_processes(64) <= 64
