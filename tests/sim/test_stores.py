"""Tests for Store, FilterStore, and PriorityStore."""

import pytest

from repro.sim import Environment, FilterStore, PriorityItem, PriorityStore, Store


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in ["a", "b", "c"]:
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env, store):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env, store):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert times == [(5.0, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env, store):
        yield store.put(1)
        yield store.put(2)
        times.append(env.now)

    def consumer(env, store):
        yield env.timeout(3.0)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert times == [3.0]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put("x")
    store.put("y")
    env.run()
    assert len(store) == 2


def test_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    received = []

    def consumer(env, store):
        item = yield store.get(lambda item: item % 2 == 0)
        received.append((env.now, item))

    def producer(env, store):
        yield env.timeout(1.0)
        yield store.put(3)
        yield env.timeout(1.0)
        yield store.put(4)

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert received == [(2.0, 4)]
    assert store.items == [3]


def test_filter_store_head_blocked_does_not_starve():
    env = Environment()
    store = FilterStore(env)
    received = []

    def blocked(env, store):
        item = yield store.get(lambda item: item == "never")
        received.append(("blocked", item))

    def eager(env, store):
        item = yield store.get(lambda item: item == "yes")
        received.append(("eager", item))

    def producer(env, store):
        yield env.timeout(1.0)
        yield store.put("yes")

    env.process(blocked(env, store))
    env.process(eager(env, store))
    env.process(producer(env, store))
    env.run(until=10.0)
    assert received == [("eager", "yes")]


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    received = []

    def producer(env, store):
        yield store.put(PriorityItem(3, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(2, "mid"))

    def consumer(env, store):
        yield env.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            received.append(item.item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["high", "mid", "low"]


def test_priority_item_comparison():
    assert PriorityItem(1, "a") < PriorityItem(2, "b")
    assert PriorityItem(1, "a") == PriorityItem(1, "a")
    assert PriorityItem(1, "a") != PriorityItem(1, "b")


def test_store_get_cancel():
    env = Environment()
    store = Store(env)

    def consumer(env, store):
        get = store.get()
        yield env.timeout(1.0)
        get.cancel()
        return "cancelled"

    def producer(env, store):
        yield env.timeout(2.0)
        yield store.put("item")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    # The cancelled getter must not have consumed the item.
    assert store.items == ["item"]
