"""Tests for the event calendar and base event types."""

import pytest

from repro.sim import Environment, Event, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_honors_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_run_until_advances_clock():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_timeout_fires_at_expected_time():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(3.0)
        fired.append(env.now)

    env.process(proc(env))
    env.run()
    assert fired == [3.0]


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.process(proc(env, "c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_delivers_value():
    env = Environment()
    event = env.event()
    seen = []

    def waiter(env, event):
        value = yield event
        seen.append(value)

    def firer(env, event):
        yield env.timeout(2.0)
        event.succeed(99)

    env.process(waiter(env, event))
    env.process(firer(env, event))
    env.run()
    assert seen == [99]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def waiter(env, event):
        try:
            yield event
        except RuntimeError as error:
            caught.append(str(error))

    def firer(env, event):
        yield env.timeout(1.0)
        event.fail(RuntimeError("boom"))

    env.process(waiter(env, event))
    env.process(firer(env, event))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_propagates_to_run():
    env = Environment()
    event = env.event()

    def firer(env, event):
        yield env.timeout(1.0)
        event.fail(RuntimeError("unhandled"))

    env.process(firer(env, event))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(4.0)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert env.now == 4.0


def test_run_until_never_triggered_event_raises():
    env = Environment()
    lonely = env.event()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=lonely)


def test_run_empty_schedule_returns():
    env = Environment()
    assert env.run() is None


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_all_of_waits_for_all():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="one")
        t2 = env.timeout(5.0, value="five")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        assert result[t1] == "one"
        assert result[t2] == "five"

    env.process(proc(env))
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="one")
        t2 = env.timeout(5.0)
        result = yield env.any_of([t1, t2])
        times.append(env.now)
        assert t1 in result

    env.process(proc(env))
    env.run()
    assert times == [1.0]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_condition_failure_propagates():
    env = Environment()
    event = env.event()
    caught = []

    def waiter(env):
        try:
            yield env.all_of([event, env.timeout(10.0)])
        except ValueError:
            caught.append(env.now)

    def firer(env):
        yield env.timeout(2.0)
        event.fail(ValueError("bad"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == [2.0]


def test_run_until_already_triggered_event():
    env = Environment()
    event = env.event()
    event.succeed("done-before-run")
    # Process the event so it is fully settled, then run until it.
    env.run()
    assert env.run(until=event) == "done-before-run"


def test_any_of_with_already_processed_event():
    env = Environment()
    early = env.event()
    early.succeed("early")
    env.run()  # process it
    seen = []

    def waiter(env):
        result = yield env.any_of([early, env.timeout(5.0)])
        seen.append((env.now, early in result))

    env.process(waiter(env))
    env.run()
    assert seen == [(0.0, True)]


def test_all_of_mixed_processed_and_pending():
    env = Environment()
    early = env.event()
    early.succeed(1)
    env.run()
    done = []

    def waiter(env):
        result = yield env.all_of([early, env.timeout(2.0, value=2)])
        done.append((env.now, len(result)))

    env.process(waiter(env))
    env.run()
    assert done == [(2.0, 2)]


def test_condition_value_api():
    env = Environment()
    t1 = env.timeout(1.0, value="a")
    t2 = env.timeout(2.0, value="b")
    results = []

    def waiter(env):
        value = yield env.all_of([t1, t2])
        results.append(value)

    env.process(waiter(env))
    env.run()
    value = results[0]
    assert len(value) == 2
    assert t1 in value and t2 in value
    assert value.todict()[t1] == "a"
    assert list(value) == [t1, t2]
    with pytest.raises(KeyError):
        value[env.event()]


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_core_event_types_declare_slots():
    """The hot-path event types must stay dict-free (allocation churn)."""
    from repro.sim.core import AllOf, AnyOf, Condition, ConditionValue, Timeout
    from repro.sim.process import Process

    env = Environment()
    for instance in [
        Event(env),
        Timeout(env, 0.0),
        env.all_of([]),
        env.any_of([]),
        ConditionValue(),
        Process(env, (x for x in [])),
    ]:
        assert not hasattr(instance, "__dict__"), type(instance).__name__
    for cls in [Event, Timeout, Condition, AllOf, AnyOf, Process]:
        assert hasattr(cls, "__slots__"), cls.__name__
    env.run()


def test_event_subclasses_keep_dict():
    """Ad-hoc attributes still work on subclasses defined elsewhere."""

    class Request(Event):
        pass

    env = Environment()
    request = Request(env)
    request.preempt = True  # resource code attaches attributes like this
    assert request.preempt


def test_condition_value_membership_is_exact():
    env = Environment()
    t1 = env.timeout(0.0, value=1)
    results = []

    def waiter(env):
        value = yield env.all_of([t1])
        results.append(value)

    env.process(waiter(env))
    env.run()
    value = results[0]
    # Untriggered foreign events are not members, and the set-backed
    # membership agrees with iteration order exactly.
    stranger = env.event()
    assert stranger not in value
    assert [e for e in value] == [t1]
    with pytest.raises(KeyError):
        value[stranger]


def test_condition_value_add_is_idempotent():
    from repro.sim.core import ConditionValue

    env = Environment()
    event = Event(env)
    event._value = "x"
    value = ConditionValue()
    value.add(event)
    value.add(event)
    assert len(value) == 1
    assert value[event] == "x"
