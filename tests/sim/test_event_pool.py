"""Unit suite for the kernel's event-object pool (recycled Timeouts).

The pool is a pure wall-clock optimisation: a processed Timeout whose
refcount proves no one else holds it goes back to a free list and is
handed out by the next ``env.timeout()`` call. These tests pin the
safety properties that make that invisible — a recycled event carries
no stale callbacks, value, failure state, or cancellation flag; the
pool never grows past its bound; and simulation results are identical
with the pool on, off, or exhausted.
"""

import pytest

from repro.sim import Environment, EventPool, SimulationError, Timeout


def drain(env):
    env.run()


def test_processed_timeouts_are_recycled():
    env = Environment()

    def proc(env):
        for _ in range(50):
            yield env.timeout(1.0)

    env.process(proc(env))
    drain(env)
    pool = env.pool
    assert pool is not None
    # The generator releases each timeout when it yields the next one;
    # only the very last can still be referenced at teardown.
    assert pool.recycled >= 49
    assert pool.reused >= 48
    assert len(pool) >= 1


def test_reused_event_carries_no_stale_state():
    env = Environment()
    seen = []

    timeout = env.timeout(1.0, value="first")
    timeout.callbacks.append(lambda ev: seen.append(ev._value))
    # Drop our reference so the refcount probe can prove the event is
    # unreachable after processing — the precondition for recycling.
    del timeout
    drain(env)
    assert seen == ["first"]
    assert len(env.pool) >= 1

    # The recycled object must come back pristine: fresh callbacks
    # list, the *new* value, not-ok/failed flags cleared.
    reused = env.timeout(2.0, value="second")
    assert isinstance(reused, Timeout)
    assert reused.callbacks == []
    assert reused._value == "second"
    assert reused._ok is True
    assert reused.defused is False
    assert not reused.cancelled
    reused.callbacks.append(lambda ev: seen.append(ev._value))
    drain(env)
    assert seen == ["first", "second"]


def test_pool_is_bounded():
    env = Environment(pool_size=8)
    # Schedule a burst with no external references: once the free list
    # holds 8 scrubbed events, the rest must be discarded, not hoarded.
    for index in range(100):
        env.timeout(float(index))
    drain(env)
    pool = env.pool
    assert len(pool) <= 8
    assert pool.discarded > 0
    assert pool.recycled + pool.discarded == 100


def test_cancelled_timeout_returns_to_pool_without_firing():
    env = Environment()
    fired = []

    timeout = env.timeout(5.0, value="never")
    timeout.callbacks.append(lambda ev: fired.append(ev))
    timeout.cancel()
    assert timeout.cancelled
    del timeout  # the kernel's refcount probe needs sole ownership
    drain(env)
    assert fired == []
    # The cancelled event was scrubbed and pooled, not processed.
    assert len(env.pool) >= 1
    reused = env.timeout(1.0, value="again")
    assert reused.callbacks == []
    assert not reused.cancelled


def test_cancel_after_processing_raises():
    env = Environment(event_pool=False)
    timeout = env.timeout(1.0)
    drain(env)
    with pytest.raises(SimulationError):
        timeout.cancel()


def test_externally_held_timeout_is_never_recycled():
    env = Environment()
    held = env.timeout(1.0, value="mine")
    drain(env)
    # We still hold a reference, so the kernel must not recycle it...
    assert held._value == "mine"
    fresh = env.timeout(1.0, value="other")
    # ...and the next timeout is a different object.
    assert fresh is not held
    assert held._value == "mine"


def test_pool_can_be_disabled():
    env = Environment(event_pool=False)
    assert env.pool is None

    def proc(env):
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(proc(env))
    drain(env)
    assert env.now == 10.0


def test_results_identical_with_and_without_pool():
    def workload(env):
        log = []

        def pinger(env, name, period):
            while env.now < 30.0:
                yield env.timeout(period)
                log.append((env.now, name))

        env.process(pinger(env, "a", 1.0))
        env.process(pinger(env, "b", 1.5))
        env.run(until=30.0)
        return log

    pooled = workload(Environment())
    unpooled = workload(Environment(event_pool=False))
    tiny = workload(Environment(pool_size=1))
    assert pooled == unpooled == tiny


def test_event_pool_standalone_release_scrubs():
    pool = EventPool(max_size=2)
    env = Environment(event_pool=False)
    timeout = Timeout(env, 1.0, value="x")
    timeout.callbacks.append(lambda ev: None)
    pool._release(timeout)
    assert len(pool) == 1
    assert timeout.callbacks is None
    assert timeout._ok is True
    assert timeout.defused is False
