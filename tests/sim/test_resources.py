"""Tests for Resource, PreemptiveResource, and Container."""

import pytest

from repro.sim import (
    Container,
    Environment,
    Interrupt,
    Preempted,
    PreemptiveResource,
    Resource,
)


def test_resource_capacity_enforced():
    env = Environment()
    resource = Resource(env, capacity=2)
    grants = []

    def user(env, resource, name, hold):
        with resource.request() as req:
            yield req
            grants.append((name, env.now))
            yield env.timeout(hold)

    for index in range(4):
        env.process(user(env, resource, f"u{index}", 10.0))
    env.run()
    assert grants == [("u0", 0.0), ("u1", 0.0), ("u2", 10.0), ("u3", 10.0)]


def test_resource_released_on_exception():
    env = Environment()
    resource = Resource(env, capacity=1)
    grants = []

    def crasher(env, resource):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)
            raise RuntimeError("crash")

    def waiter(env, resource):
        with resource.request() as req:
            yield req
            grants.append(env.now)

    def supervisor(env, crasher_proc):
        try:
            yield crasher_proc
        except RuntimeError:
            pass

    crasher_proc = env.process(crasher(env, resource))
    env.process(supervisor(env, crasher_proc))
    env.process(waiter(env, resource))
    env.run()
    assert grants == [1.0]


def test_resource_count_and_queue():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env, resource):
        with resource.request() as req:
            yield req
            yield env.timeout(5.0)

    def observer(env, resource, out):
        yield env.timeout(1.0)
        request = resource.request()
        out.append((resource.count, len(resource.queue)))
        yield request
        resource.release(request)

    out = []
    env.process(holder(env, resource))
    env.process(observer(env, resource, out))
    env.run()
    assert out == [(1, 1)]


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_request_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    grants = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(2.0)

    def user(env, name, priority, delay):
        yield env.timeout(delay)
        with resource.request(priority=priority) as req:
            yield req
            grants.append(name)
            yield env.timeout(1.0)

    env.process(holder(env))
    env.process(user(env, "low", 5, 0.5))
    env.process(user(env, "high", 1, 1.0))
    env.run()
    assert grants == ["high", "low"]


def test_preemptive_resource_evicts_lower_priority():
    env = Environment()
    resource = PreemptiveResource(env, capacity=1)
    log = []

    def background(env):
        with resource.request(priority=10) as req:
            yield req
            try:
                yield env.timeout(100.0)
                log.append("background-done")
            except Interrupt as interrupt:
                assert isinstance(interrupt.cause, Preempted)
                log.append(("preempted", env.now))

    def urgent(env):
        yield env.timeout(3.0)
        with resource.request(priority=0) as req:
            yield req
            log.append(("urgent-running", env.now))
            yield env.timeout(1.0)

    env.process(background(env))
    env.process(urgent(env))
    env.run()
    assert ("preempted", 3.0) in log
    assert ("urgent-running", 3.0) in log


def test_preemptive_resource_equal_priority_waits():
    env = Environment()
    resource = PreemptiveResource(env, capacity=1)
    log = []

    def user(env, name, delay):
        yield env.timeout(delay)
        with resource.request(priority=5) as req:
            yield req
            log.append((name, env.now))
            yield env.timeout(10.0)

    env.process(user(env, "first", 0.0))
    env.process(user(env, "second", 1.0))
    env.run()
    assert log == [("first", 0.0), ("second", 10.0)]


def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100.0, init=10.0)
    levels = []

    def producer(env, tank):
        for _ in range(3):
            yield env.timeout(1.0)
            yield tank.put(30.0)
            levels.append(("put", env.now, tank.level))

    def consumer(env, tank):
        yield tank.get(80.0)
        levels.append(("got", env.now, tank.level))

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert ("got", 3.0, 20.0) in levels


def test_container_blocks_put_over_capacity():
    env = Environment()
    tank = Container(env, capacity=10.0, init=10.0)
    done = []

    def producer(env, tank):
        yield tank.put(5.0)
        done.append(env.now)

    def consumer(env, tank):
        yield env.timeout(4.0)
        yield tank.get(6.0)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert done == [4.0]


def test_container_validates_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
