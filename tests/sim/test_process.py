"""Tests for generator-based processes and interrupts."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_process_is_event_with_return_value():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return 7

    def parent(env, results):
        value = yield env.process(child(env))
        results.append(value)

    results = []
    env.process(parent(env, results))
    env.run()
    assert results == [7]


def test_process_alive_until_done():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    process = env.process(proc(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            causes.append((env.now, interrupt.cause))

    def attacker(env, victim_proc):
        yield env.timeout(3.0)
        victim_proc.interrupt("stop it")

    victim_proc = env.process(victim(env))
    env.process(attacker(env, victim_proc))
    env.run()
    assert causes == [(3.0, "stop it")]


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            trace.append("interrupted")
        yield env.timeout(1.0)
        trace.append(env.now)

    def attacker(env, victim_proc):
        yield env.timeout(2.0)
        victim_proc.interrupt()

    victim_proc = env.process(victim(env))
    env.process(attacker(env, victim_proc))
    env.run()
    assert trace == ["interrupted", 3.0]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def selfish(env):
        try:
            env.active_process.interrupt()
        except SimulationError:
            errors.append(True)
        yield env.timeout(0)

    env.process(selfish(env))
    env.run()
    assert errors == [True]


def test_uncaught_exception_in_process_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("oops")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_exception_handled_by_waiting_parent():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("oops")

    def parent(env):
        try:
            yield env.process(bad(env))
        except KeyError:
            caught.append(env.now)

    env.process(parent(env))
    env.run()
    assert caught == [1.0]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_waiting_on_already_processed_event():
    env = Environment()
    values = []

    def late_waiter(env, event):
        yield env.timeout(5.0)
        value = yield event
        values.append((env.now, value))

    event = env.event()
    event.succeed("early")
    env.process(late_waiter(env, event))
    env.run()
    assert values == [(5.0, "early")]


def test_two_processes_interleave():
    env = Environment()
    trace = []

    def ping(env):
        for _ in range(3):
            yield env.timeout(2.0)
            trace.append(("ping", env.now))

    def pong(env):
        yield env.timeout(1.0)
        for _ in range(3):
            yield env.timeout(2.0)
            trace.append(("pong", env.now))

    env.process(ping(env))
    env.process(pong(env))
    env.run()
    assert trace == [
        ("ping", 2.0),
        ("pong", 3.0),
        ("ping", 4.0),
        ("pong", 5.0),
        ("ping", 6.0),
        ("pong", 7.0),
    ]


def test_interrupt_while_waiting_on_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(50.0)
        log.append("child-finished")

    def parent(env):
        child_proc = env.process(child(env))
        try:
            yield child_proc
        except Interrupt:
            log.append(("parent-interrupted", env.now))

    def attacker(env, parent_proc):
        yield env.timeout(4.0)
        parent_proc.interrupt()

    parent_proc = env.process(parent(env))
    env.process(attacker(env, parent_proc))
    env.run()
    assert ("parent-interrupted", 4.0) in log
    assert "child-finished" in log  # The child itself was not interrupted.
