"""End-to-end tests for the SmartNIC datapath."""

import pytest

from repro.compiler import CompilationUnit, compile_unit
from repro.hw import SmartNIC, UniformRandomScheduler
from repro.isa import AccessMode, ProgramBuilder
from repro.net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Network,
    Packet,
    RdmaHeader,
    UDPHeader,
)
from repro.sim import Environment, RngRegistry


def echo_lambda(name="echo"):
    """A lambda that echoes the request id and replies with 100 bytes."""
    builder = ProgramBuilder(name)
    fn = builder.function(name)
    fn.hload("r1", "LambdaHeader", "request_id")
    fn.mstore("echoed", "r1")
    fn.mstore("response_bytes", 100)
    fn.forward()
    builder.close(fn)
    return builder.build()


def rdma_lambda(name="img"):
    """A lambda whose data arrives via RDMA into a 4 KiB buffer."""
    builder = ProgramBuilder(name)
    builder.object("image", 4096, AccessMode.READ_WRITE)
    fn = builder.function(name)
    fn.mload("r1", "rdma_len")
    fn.load("r2", "image", 0)
    fn.mstore("first_word", "r2")
    fn.mstore("response_bytes", 64)
    fn.forward()
    builder.close(fn)
    return builder.build()


def make_setup(lambdas=None, host_handler=None):
    env = Environment()
    rng = RngRegistry(seed=7)
    network = Network(env)
    client = network.add_node("client")
    nic_node = network.add_node("nic")
    nic = SmartNIC(
        env, nic_node, n_cores=4, threads_per_core=2,
        rng=rng.stream("nic"), host_handler=host_handler,
    )
    unit = CompilationUnit()
    for index, program in enumerate(lambdas or [echo_lambda()]):
        unit.add_lambda(program, wid=index + 1)
    firmware = compile_unit(unit)
    nic.install_firmware(firmware)
    return env, network, client, nic, firmware


def lambda_packet(wid, request_id=1, payload_bytes=64, src="client", dst="nic"):
    return Packet(
        src, dst,
        HeaderStack([
            EthernetHeader(), IPv4Header(), UDPHeader(),
            LambdaHeader(wid=wid, request_id=request_id),
        ]),
        payload_bytes=payload_bytes,
    )


def test_request_gets_response():
    env, network, client, nic, firmware = make_setup()
    responses = []
    client.attach(lambda p: responses.append((p, env.now)))
    client.send(lambda_packet(wid=1, request_id=42))
    env.run()
    assert len(responses) == 1
    response, at = responses[0]
    assert response.headers.require("LambdaHeader").is_response
    assert response.meta["lambda_meta"]["echoed"] == 42
    assert nic.stats.requests_served == 1
    # Microsecond-scale end-to-end latency on the 10G testbed.
    assert 1e-6 < at < 50e-6


def test_unknown_wid_goes_to_host():
    host_packets = []
    env, network, client, nic, firmware = make_setup(
        host_handler=lambda p: host_packets.append(p)
    )
    client.attach(lambda p: None)
    client.send(lambda_packet(wid=99))
    env.run()
    assert len(host_packets) == 1
    assert nic.stats.sent_to_host == 1
    assert nic.stats.requests_served == 0


def test_no_firmware_drops():
    env = Environment()
    rng = RngRegistry(seed=1)
    network = Network(env)
    client = network.add_node("client")
    nic_node = network.add_node("nic")
    nic = SmartNIC(env, nic_node, n_cores=2, rng=rng.stream("nic"))
    client.attach(lambda p: None)
    client.send(lambda_packet(wid=1))
    env.run()
    assert nic.stats.dropped_no_firmware == 1


def test_firmware_swap_drops_during_downtime():
    env, network, client, nic, firmware = make_setup()
    client.attach(lambda p: None)

    def exercise(env):
        nic.load_firmware(firmware, swap=True)  # starts downtime
        yield env.timeout(0.1)  # well inside the 2 s swap window
        client.send(lambda_packet(wid=1))
        yield env.timeout(5.0)  # swap done
        client.send(lambda_packet(wid=1))

    env.process(exercise(env))
    env.run()
    assert nic.stats.dropped_during_swap == 1
    assert nic.stats.requests_served == 1
    assert nic.stats.swap_downtime_seconds == pytest.approx(2.0)


def test_many_concurrent_requests_all_served():
    env, network, client, nic, firmware = make_setup()
    responses = []
    client.attach(lambda p: responses.append(env.now))
    for index in range(50):
        client.send(lambda_packet(wid=1, request_id=index))
    env.run()
    assert len(responses) == 50
    assert nic.stats.requests_served == 50


def test_per_lambda_request_accounting():
    env, network, client, nic, firmware = make_setup(
        lambdas=[echo_lambda("a"), echo_lambda("b")]
    )
    client.attach(lambda p: None)
    for _ in range(3):
        client.send(lambda_packet(wid=1))
    client.send(lambda_packet(wid=2))
    env.run()
    assert nic.stats.per_lambda_requests == {"a": 3, "b": 1}


def test_rdma_multi_packet_reassembly():
    env, network, client, nic, firmware = make_setup(lambdas=[rdma_lambda()])
    nic.bind_rdma(qp=5, lambda_name="img", object_name="img.image")
    responses = []
    client.attach(lambda p: responses.append(p))

    total = 4
    payload = b"\x07" * 1000
    for seq in [2, 0, 3, 1]:  # deliberately out of order
        packet = Packet(
            "client", "nic",
            HeaderStack([
                EthernetHeader(), IPv4Header(), UDPHeader(),
                LambdaHeader(wid=1, request_id=9, seq=seq, total_segments=total),
                RdmaHeader(opcode="WRITE", qp=5, length=1000),
            ]),
            payload=payload,
            payload_bytes=1000,
        )
        client.send(packet)
    env.run()
    assert nic.stats.rdma_segments == 4
    assert nic.stats.rdma_messages == 1
    assert len(responses) == 1
    meta = responses[0].meta["lambda_meta"]
    assert meta["rdma_len"] == 4000
    # The lambda read the first word of the RDMA-written buffer.
    assert meta["first_word"] == int.from_bytes(b"\x07" * 8, "little")


def test_rdma_incomplete_message_waits():
    env, network, client, nic, firmware = make_setup(lambdas=[rdma_lambda()])
    nic.bind_rdma(qp=5, lambda_name="img", object_name="img.image")
    client.attach(lambda p: None)
    packet = Packet(
        "client", "nic",
        HeaderStack([
            EthernetHeader(), IPv4Header(), UDPHeader(),
            LambdaHeader(wid=1, request_id=1, seq=0, total_segments=3),
            RdmaHeader(qp=5, length=100),
        ]),
        payload=b"x" * 100, payload_bytes=100,
    )
    client.send(packet)
    env.run()
    assert nic.stats.rdma_segments == 1
    assert nic.stats.rdma_messages == 0


def test_bind_rdma_validates():
    env, network, client, nic, firmware = make_setup(lambdas=[rdma_lambda()])
    with pytest.raises(KeyError):
        nic.bind_rdma(qp=1, lambda_name="img", object_name="nope")


def test_nic_memory_accounted_on_install():
    env, network, client, nic, firmware = make_setup(lambdas=[rdma_lambda()])
    assert nic.memory.total_used_bytes >= 4096


def test_utilization_counters():
    env, network, client, nic, firmware = make_setup()
    client.attach(lambda p: None)
    client.send(lambda_packet(wid=1))
    env.run()
    assert nic.stats.total_cycles > 0
    assert nic.stats.busy_seconds > 0
    assert len(nic.stats.latencies) == 1


def kv_lambda(name="kv"):
    """Two-phase kv client: emit a memcached call, reply on response."""
    from repro.isa import ProgramBuilder

    builder = ProgramBuilder(name)
    fn = builder.function(name)
    fn.mload("r1", "service_response")
    done = fn.fresh_label("done")
    fn.bne("r1", 0, done)
    # Phase 1: issue the memcached GET and wait.
    fn.mstore("emit_dst", "memcached")
    fn.mstore("emit_method", "GET")
    fn.mstore("emit_bytes", 64)
    fn.emit_packet()
    fn.drop()
    fn.label(done)
    # Phase 2: service responded; reply to the client.
    fn.mstore("response_bytes", 128)
    fn.forward()
    builder.close(fn)
    return builder.build()


def test_kv_lambda_service_call_roundtrip():
    env, network, client, nic, firmware = make_setup(lambdas=[kv_lambda()])
    responses = []
    client.attach(lambda p: responses.append(p))

    # A memcached stand-in: echo responses with is_response=1.
    memcached = network.add_node("memcached")

    def serve_kv(packet):
        reply = Packet(
            "memcached", packet.src,
            HeaderStack([
                EthernetHeader(), IPv4Header(), UDPHeader(),
                LambdaHeader(
                    wid=packet.headers.require("LambdaHeader").wid,
                    request_id=packet.headers.require("LambdaHeader").request_id,
                    is_response=True,
                ),
            ]),
            payload_bytes=100,
        )
        memcached.send(reply)

    memcached.attach(serve_kv)

    client.send(lambda_packet(wid=1, request_id=77))
    env.run()
    assert len(responses) == 1
    assert responses[0].headers.require("LambdaHeader").is_response
    assert memcached.rx_packets == 1
    assert nic.stats.requests_served == 1


def test_hitless_firmware_update_serves_during_flash():
    """§7: hitless updates keep the old firmware serving (no drops)."""
    env, network, client, nic, firmware = make_setup()
    responses = []
    client.attach(lambda p: responses.append(p))

    def exercise(env):
        nic.load_firmware(firmware, swap=True, hitless=True)
        yield env.timeout(0.1)  # mid-flash
        client.send(lambda_packet(wid=1))
        yield env.timeout(5.0)
        client.send(lambda_packet(wid=1))

    env.process(exercise(env))
    env.run()
    assert nic.stats.dropped_during_swap == 0
    assert len(responses) == 2
