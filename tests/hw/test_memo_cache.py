"""Execution memo cache: hits, invalidation, and engine parity on-NIC.

The memo cache may only ever change wall-clock speed, never simulated
results. These tests drive real packet streams through the SmartNIC and
check both sides of that contract: identical pure requests replay from
cache, while any write to persistent lambda memory — by an execution,
by RDMA, or by direct test access — prevents stale replays.
"""

import pytest

from repro.compiler import CompilationUnit, compile_unit
from repro.hw import ExecutionMemoCache, SmartNIC
from repro.hw.memo import make_key
from repro.isa import AccessMode, ExecutionResult, ProgramBuilder
from repro.net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Network,
    Packet,
    RdmaHeader,
    UDPHeader,
)
from repro.sim import Environment, RngRegistry


def echo_lambda(name="echo"):
    """Pure lambda: writes only per-request metadata."""
    builder = ProgramBuilder(name)
    fn = builder.function(name)
    fn.hload("r1", "LambdaHeader", "request_id")
    fn.mstore("echoed", "r1")
    fn.mstore("response_bytes", 100)
    fn.forward()
    builder.close(fn)
    return builder.build()


def kv_store_lambda(name="kvstore", slots=64):
    """A stateful GET/SET store keyed on the request id.

    ``seq`` selects the operation (0 = GET, 1 = SET) and
    ``total_segments`` carries the value on SETs, so everything rides on
    existing LambdaHeader fields.
    """
    builder = ProgramBuilder(name)
    builder.object("store", slots * 8, AccessMode.READ_WRITE)
    fn = builder.function(name)
    fn.hload("r1", "LambdaHeader", "seq")
    fn.hload("r2", "LambdaHeader", "request_id")
    fn.band("r3", "r2", slots - 1)
    fn.mul("r4", "r3", 8)
    put = fn.fresh_label("put")
    fn.beq("r1", 1, put)
    fn.load("r5", "store", "r4")
    fn.mstore("value", "r5")
    fn.mstore("response_bytes", 64)
    fn.forward()
    fn.label(put)
    fn.hload("r6", "LambdaHeader", "total_segments")
    fn.store("store", "r4", "r6")
    fn.mstore("stored", "r6")
    fn.mstore("response_bytes", 64)
    fn.forward()
    builder.close(fn)
    return builder.build()


def peek_lambda(name="img"):
    """Pure lambda that reads the first word of an RDMA-fed buffer."""
    builder = ProgramBuilder(name)
    builder.object("image", 4096, AccessMode.READ_WRITE)
    fn = builder.function(name)
    fn.load("r2", "image", 0)
    fn.mstore("first_word", "r2")
    fn.mstore("response_bytes", 64)
    fn.forward()
    builder.close(fn)
    return builder.build()


def make_setup(lambdas=None, **nic_kwargs):
    env = Environment()
    rng = RngRegistry(seed=7)
    network = Network(env)
    client = network.add_node("client")
    nic_node = network.add_node("nic")
    nic = SmartNIC(env, nic_node, n_cores=4, threads_per_core=2,
                   rng=rng.stream("nic"), **nic_kwargs)
    unit = CompilationUnit()
    for index, program in enumerate(lambdas or [echo_lambda()]):
        unit.add_lambda(program, wid=index + 1)
    nic.install_firmware(compile_unit(unit))
    return env, network, client, nic


def request(wid=1, request_id=1, seq=0, total_segments=1, payload=None,
            payload_bytes=64):
    return Packet(
        "client", "nic",
        HeaderStack([
            EthernetHeader(), IPv4Header(), UDPHeader(),
            LambdaHeader(wid=wid, request_id=request_id, seq=seq,
                         total_segments=total_segments),
        ]),
        payload=payload,
        payload_bytes=payload_bytes,
    )


# -- NIC-level behaviour -----------------------------------------------------


def test_identical_pure_requests_hit_the_cache():
    env, network, client, nic = make_setup()
    responses = []
    client.attach(lambda p: responses.append(p))
    for _ in range(5):
        client.send(request(request_id=42))
    env.run()
    assert len(responses) == 5
    assert all(p.meta["lambda_meta"]["echoed"] == 42 for p in responses)
    assert nic.stats.requests_served == 5
    assert nic.memo.stats.hits == 4
    assert nic.memo.stats.misses == 1


def test_distinct_requests_miss():
    env, network, client, nic = make_setup()
    client.attach(lambda p: None)
    for request_id in range(5):
        client.send(request(request_id=request_id))
    env.run()
    assert nic.memo.stats.hits == 0
    assert nic.memo.stats.misses == 5


def test_memo_disabled_still_serves():
    env, network, client, nic = make_setup(enable_memo=False)
    responses = []
    client.attach(lambda p: responses.append(p))
    for _ in range(3):
        client.send(request(request_id=42))
    env.run()
    assert nic.memo is None
    assert len(responses) == 3
    assert all(p.meta["lambda_meta"]["echoed"] == 42 for p in responses)


def test_stateful_writes_are_never_cached_and_never_stale():
    """GET / SET / GET on the same key must observe the write."""
    env, network, client, nic = make_setup(lambdas=[kv_store_lambda()])
    responses = []
    client.attach(lambda p: responses.append(p))

    def exercise(env):
        client.send(request(request_id=5, seq=0))               # GET -> 0
        yield env.timeout(1e-3)
        client.send(request(request_id=5, seq=0))               # GET (cached)
        yield env.timeout(1e-3)
        client.send(request(request_id=5, seq=1, total_segments=777))  # SET
        yield env.timeout(1e-3)
        client.send(request(request_id=5, seq=0))               # GET -> 777
        yield env.timeout(1e-3)
        client.send(request(request_id=5, seq=0))               # GET (cached)

    env.process(exercise(env))
    env.run()
    metas = [p.meta["lambda_meta"] for p in responses]
    assert metas[0]["value"] == 0
    assert metas[1]["value"] == 0
    assert metas[2]["stored"] == 777
    assert metas[3]["value"] == 777
    assert metas[4]["value"] == 777
    # The second GET of each epoch replayed; the SET flushed the cache.
    assert nic.memo.stats.hits == 2
    assert nic.memo.stats.invalidations >= 1


def test_rdma_write_invalidates_cached_reads():
    env, network, client, nic = make_setup(lambdas=[peek_lambda()])
    nic.bind_rdma(qp=5, lambda_name="img", object_name="img.image")
    responses = []
    client.attach(lambda p: responses.append(p))

    def exercise(env):
        client.send(request(request_id=1))       # first_word == 0, cached
        yield env.timeout(1e-3)
        client.send(request(request_id=1))       # replayed
        yield env.timeout(1e-3)
        client.send(Packet(                      # RDMA write into image
            "client", "nic",
            HeaderStack([
                EthernetHeader(), IPv4Header(), UDPHeader(),
                LambdaHeader(wid=1, request_id=9, seq=0, total_segments=1),
                RdmaHeader(opcode="WRITE", qp=5, length=1000),
            ]),
            payload=b"\x07" * 1000, payload_bytes=1000,
        ))
        yield env.timeout(1e-3)
        client.send(request(request_id=1))       # must see the new bytes

    env.process(exercise(env))
    env.run()
    words = [p.meta["lambda_meta"]["first_word"] for p in responses
             if "first_word" in p.meta["lambda_meta"]]
    assert words[0] == 0 and words[1] == 0
    assert words[-1] == int.from_bytes(b"\x07" * 8, "little")


def test_lambda_memory_access_invalidates():
    env, network, client, nic = make_setup(lambdas=[peek_lambda()])
    client.attach(lambda p: None)
    client.send(request(request_id=1))
    env.run()
    assert len(nic.memo) == 1
    before = nic.memo.stats.invalidations
    nic.lambda_memory("img.image")[0] = 9
    assert nic.memo.stats.invalidations == before + 1
    assert len(nic.memo) == 0


def test_firmware_reinstall_invalidates():
    env, network, client, nic = make_setup()
    client.attach(lambda p: None)
    client.send(request(request_id=1))
    env.run()
    assert len(nic.memo) == 1
    unit = CompilationUnit()
    unit.add_lambda(echo_lambda(), wid=1)
    nic.install_firmware(compile_unit(unit))
    assert len(nic.memo) == 0


def _drive(nic_kwargs, n=30):
    env, network, client, nic = make_setup(
        lambdas=[kv_store_lambda()], **nic_kwargs
    )
    responses = []
    client.attach(lambda p: responses.append((env.now, p)))

    def exercise(env):
        for index in range(n):
            seq = 1 if index % 3 == 0 else 0
            client.send(request(request_id=index % 8, seq=seq,
                                total_segments=index))
            yield env.timeout(2e-6)

    env.process(exercise(env))
    env.run()
    return nic, [(at, p.meta["lambda_meta"]) for at, p in responses]


def test_fast_path_and_memo_match_reference_engine_end_to_end():
    """Same packet stream, three engine configs, identical simulation."""
    reference = _drive({"use_fast_path": False})
    fast = _drive({"use_fast_path": True, "enable_memo": False})
    memoized = _drive({"use_fast_path": True, "enable_memo": True})
    assert reference[1] == fast[1] == memoized[1]
    ref_nic, fast_nic, memo_nic = reference[0], fast[0], memoized[0]
    assert (ref_nic.stats.requests_served == fast_nic.stats.requests_served
            == memo_nic.stats.requests_served)
    assert ref_nic.stats.latencies == fast_nic.stats.latencies \
        == memo_nic.stats.latencies
    assert ref_nic.stats.total_cycles == fast_nic.stats.total_cycles \
        == memo_nic.stats.total_cycles


# -- cache unit behaviour ----------------------------------------------------


def _result(value):
    return ExecutionResult(
        verdict="forward", return_value=value, cycles=10,
        instructions_executed=5, meta={"value": value},
    )


def test_lru_eviction():
    cache = ExecutionMemoCache(max_entries=2)
    cache.put(("a",), _result(1))
    cache.put(("b",), _result(2))
    assert cache.get(("a",)) is not None  # refresh "a"
    cache.put(("c",), _result(3))        # evicts "b"
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) is not None
    assert cache.get(("c",)) is not None
    assert cache.stats.evictions == 1


def test_uncacheable_key_is_none():
    program = echo_lambda()
    key = make_key(program, program.entry,
                   {"H": {"field": set()}}, {}, b"")
    assert key is None
    cache = ExecutionMemoCache()
    assert cache.get(key) is None
    cache.put(key, _result(1))
    assert len(cache) == 0
    assert cache.stats.uncacheable == 1


def test_key_distinguishes_all_inputs():
    program = echo_lambda()
    base = make_key(program, program.entry, {"H": {"f": 1}},
                    {"m": 2}, b"digest")
    assert base == make_key(program, program.entry, {"H": {"f": 1}},
                            {"m": 2}, b"digest")
    assert base != make_key(program, program.entry, {"H": {"f": 9}},
                            {"m": 2}, b"digest")
    assert base != make_key(program, program.entry, {"H": {"f": 1}},
                            {"m": 9}, b"digest")
    assert base != make_key(program, program.entry, {"H": {"f": 1}},
                            {"m": 2}, b"other")
    assert base != make_key(program, "other_entry", {"H": {"f": 1}},
                            {"m": 2}, b"digest")


def test_replayed_results_are_isolated_copies():
    cache = ExecutionMemoCache()
    cache.put(("k",), _result(1))
    first = cache.get(("k",))
    first.meta["value"] = 999
    second = cache.get(("k",))
    assert second.meta["value"] == 1


def test_invalidate_clears_everything():
    cache = ExecutionMemoCache()
    cache.put(("a",), _result(1))
    cache.put(("b",), _result(2))
    cache.invalidate()
    assert len(cache) == 0
    assert cache.get(("a",)) is None
    assert cache.stats.invalidations == 1


def test_max_entries_validated():
    with pytest.raises(ValueError):
        ExecutionMemoCache(max_entries=0)
