"""Tests for NPU cores, schedulers, and NIC memory accounting."""

import pytest

from repro.hw import (
    NPUCore,
    NicMemory,
    NicMemoryError,
    ShortestQueueScheduler,
    UniformRandomScheduler,
    WFQScheduler,
)
from repro.isa import Region
from repro.sim import Environment, RngRegistry


def test_core_executes_for_cycle_time():
    env = Environment()
    core = NPUCore(env, 0, 0, threads=2, clock_hz=1e6)
    durations = []

    def work(env, core):
        duration = yield env.process(core.execute(1000))
        durations.append(duration)

    env.process(work(env, core))
    env.run()
    assert durations == [pytest.approx(1e-3)]
    assert core.stats.requests == 1
    assert core.stats.cycles == 1000


def test_core_threads_limit_concurrency():
    env = Environment()
    core = NPUCore(env, 0, 0, threads=2, clock_hz=1e6)
    finish_times = []

    def work(env, core):
        yield env.process(core.execute(1000))
        finish_times.append(env.now)

    for _ in range(4):
        env.process(work(env, core))
    env.run()
    # Two run immediately, two wait for a free thread.
    assert finish_times == pytest.approx([1e-3, 1e-3, 2e-3, 2e-3])


def test_core_validates_threads():
    env = Environment()
    with pytest.raises(ValueError):
        NPUCore(env, 0, 0, threads=0)


def make_cores(env, n=4, threads=1):
    return [NPUCore(env, i, 0, threads=threads) for i in range(n)]


def test_uniform_scheduler_spreads_load():
    env = Environment()
    cores = make_cores(env, n=8)
    rng = RngRegistry(seed=3).stream("sched")
    scheduler = UniformRandomScheduler(rng)
    picks = [scheduler.pick_core(cores, "web").core_id for _ in range(800)]
    counts = {cid: picks.count(cid) for cid in range(8)}
    assert all(count > 50 for count in counts.values())


def test_shortest_queue_prefers_idle_core():
    env = Environment()
    cores = make_cores(env, n=3)
    # Occupy core 0.
    env.process(cores[0].execute(10_000))
    env.run(until=1e-9)
    scheduler = ShortestQueueScheduler()
    assert scheduler.pick_core(cores, "web").core_id == 1


def test_wfq_orders_by_virtual_time():
    scheduler = WFQScheduler(weights={"heavy": 1.0, "light": 1.0})
    env = Environment()
    cores = make_cores(env, n=2)
    for _ in range(10):
        scheduler.pick_core(cores, "heavy")
    scheduler.pick_core(cores, "light")
    assert scheduler.lag("heavy") > scheduler.lag("light")
    assert scheduler.service_order(["heavy", "light"]) == ["light", "heavy"]


def test_wfq_weights_scale_service():
    scheduler = WFQScheduler(weights={"big": 4.0, "small": 1.0})
    env = Environment()
    cores = make_cores(env, n=1)
    for _ in range(4):
        scheduler.pick_core(cores, "big")
    scheduler.pick_core(cores, "small")
    # big has weight 4, so 4 requests move its vtime as much as 1 of small.
    assert scheduler.lag("big") == pytest.approx(scheduler.lag("small"))


def test_nic_memory_allocation_and_overflow():
    memory = NicMemory(capacities={Region.CTM: 100, Region.EMEM: 1000})
    memory.allocate(Region.CTM, 60)
    assert memory.used[Region.CTM] == 60
    with pytest.raises(NicMemoryError):
        memory.allocate(Region.CTM, 50)
    memory.free(Region.CTM, 30)
    memory.allocate(Region.CTM, 50)
    assert memory.used[Region.CTM] == 80


def test_nic_memory_flat_maps_to_emem():
    memory = NicMemory(capacities={Region.EMEM: 100})
    memory.allocate(Region.FLAT, 40)
    assert memory.used[Region.EMEM] == 40


def test_nic_memory_utilization_and_reset():
    memory = NicMemory(capacities={Region.EMEM: 200})
    memory.allocate(Region.EMEM, 50)
    assert memory.utilization(Region.EMEM) == pytest.approx(0.25)
    assert memory.total_used_bytes == 50
    memory.reset()
    assert memory.total_used_bytes == 0


def test_nic_memory_rejects_negative():
    memory = NicMemory(capacities={Region.EMEM: 100})
    with pytest.raises(ValueError):
        memory.allocate(Region.EMEM, -1)
