"""Differential tests: tracing must not perturb the simulation.

The tracer's contract is that it never schedules events, consumes
randomness, or mutates packet routing — so a traced run and an
untraced run of the same seeded scenario must be *byte-identical* in
every observable output (exact float latencies, event count, final
sim time, per-component counters). Each parametrised case exercises a
different execution path: every engine tier (JIT — the default —
pre-decoded fast path, reference interpreter), memoization on/off,
the host (bare-metal) backend, and the RDMA/memcached path.
"""

import pytest

from repro.serverless import Testbed, closed_loop
from repro.workloads import standard_workloads

CASES = [
    ("jit-memo", "web_server", "lambda-nic", {}),
    ("jit-explicit", "web_server", "lambda-nic", {"engine": "jit"}),
    ("fastpath", "web_server", "lambda-nic", {"engine": "fastpath"}),
    ("interpreter", "web_server", "lambda-nic", {"engine": "interpreter"}),
    ("legacy-interpreter-knob", "web_server", "lambda-nic",
     {"use_fast_path": False}),
    ("jit-no-memo", "web_server", "lambda-nic", {"enable_memo": False}),
    ("bare-metal-host", "web_server", "bare-metal", {}),
    ("rdma-kv", "kv_client", "lambda-nic", {}),
]


def _run_fingerprint(workload: str, backend: str, nic_kwargs: dict,
                     with_tracing: bool) -> str:
    """Every observable output of one run, rendered exactly (repr)."""
    tb = Testbed(seed=1234, n_workers=2, with_tracing=with_tracing,
                 nic_kwargs=dict(nic_kwargs))
    tb.add_backend(backend)
    spec = standard_workloads()[workload]

    def scenario(env):
        yield tb.manager.deploy(spec, backend)
        result = yield closed_loop(
            tb.env, tb.gateway, spec.name,
            n_requests=10, concurrency=2,
            payload_bytes=spec.request_bytes if spec.uses_rdma else None,
        )
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    load = process.value

    lines = [
        f"completed={load.completed!r} failures={load.failures!r}",
        f"latencies={[f'{x!r}' for x in load.latencies]}",
        f"now={tb.env.now!r}",
    ]
    for nic in tb.nics:
        stats = nic.stats
        lines.append(
            f"nic={nic.name} served={stats.requests_served!r} "
            f"responses={stats.responses_sent!r} "
            f"cycles={stats.total_cycles!r} busy={stats.busy_seconds!r} "
            f"rdma={stats.rdma_segments!r}/{stats.rdma_messages!r} "
            f"per_lambda={sorted(stats.per_lambda_requests.items())!r} "
            f"latencies={[f'{x!r}' for x in stats.latencies]}"
        )
    for kind, servers in sorted(tb._host_servers.items()):
        for server in servers:
            stats = server.stats
            lines.append(
                f"host={server.name} served={stats.requests_served!r} "
                f"responses={stats.responses_sent!r} "
                f"cpu_busy={server.cpu.stats.busy_seconds!r} "
                f"switches={server.cpu.stats.context_switches!r} "
                f"latencies={[f'{x!r}' for x in stats.latencies]}"
            )
    return "\n".join(lines)


@pytest.mark.parametrize("name,workload,backend,nic_kwargs", CASES,
                         ids=[case[0] for case in CASES])
def test_traced_run_is_byte_identical(name, workload, backend, nic_kwargs):
    untraced = _run_fingerprint(workload, backend, nic_kwargs, False)
    traced = _run_fingerprint(workload, backend, nic_kwargs, True)
    assert traced == untraced
    # Sanity: the fingerprint is non-trivial.
    assert "completed=10" in untraced


def test_engine_tiers_are_byte_identical_end_to_end():
    """All three engine tiers yield the same simulation, exactly —
    the cycle-exactness proof lifted to the whole testbed."""
    fingerprints = {
        engine: _run_fingerprint("web_server", "lambda-nic",
                                 {"engine": engine}, False)
        for engine in ("interpreter", "fastpath", "jit")
    }
    assert fingerprints["jit"] == fingerprints["fastpath"]
    assert fingerprints["jit"] == fingerprints["interpreter"]


def test_traced_run_actually_traces():
    """Guard against the differential test passing vacuously."""
    tb = Testbed(seed=1, n_workers=1, with_tracing=True)
    tb.add_lambda_nic_backend()
    spec = standard_workloads()["web_server"]

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=2, concurrency=1)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    names = {span.name for span in tb.tracer.spans}
    assert {"gateway.request", "net.link", "net.switch",
            "nic.serve"} <= names
