"""Golden-trace regression tests.

Each traced experiment is run at a reduced, fixed scale and the
resulting span trees are summarised (deterministic sha256 digest,
span count, and name/edge shape) per run label. The summaries are
compared against ``tests/goldens/*.json``; any change to the
simulation's event interleaving, the instrumentation points, or the
tracer itself shows up as a digest change, and the shape comparison
says *what* moved.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden_traces.py \
        --update-goldens
"""

import json
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, fig6_latency, fig7_throughput
from repro.experiments.fault_recovery import run_storm
from repro.experiments.migration_storm import run_storm as run_migration_storm
from repro.experiments.overload_storm import run_storm as run_overload_storm
from repro.obs import (
    TraceCollection,
    check_invariants,
    coverage_of,
    roots,
    spans_by_trace,
    trace_digest,
    tree_shape,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"

#: Reduced-scale configs: big enough to exercise every span kind,
#: small enough that each golden regenerates in about a second.
FIG6_CONFIG = ExperimentConfig(latency_requests=6, image_latency_requests=2,
                               trace=True)
FIG7_CONFIG = ExperimentConfig(throughput_requests=6,
                               image_throughput_requests=2,
                               concurrencies=(1, 4), trace=True)
STORM_RATE_RPS = 2.0


def _summarise(collection: TraceCollection) -> dict:
    runs = {}
    for label, spans in collection.runs:
        runs[label] = {
            "digest": trace_digest(spans),
            "n_spans": len(spans),
            "shape": tree_shape(spans),
        }
    return {"runs": runs}


def _shape_diff(expected: dict, actual: dict) -> str:
    lines = []
    for key in sorted(set(expected) | set(actual)):
        if expected.get(key) != actual.get(key):
            lines.append(f"    {key}: golden={expected.get(key, 0)} "
                         f"actual={actual.get(key, 0)}")
    return "\n".join(lines) or "    (shapes identical; only timings moved)"


def _check_golden(name: str, actual: dict, update: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        pytest.skip(f"golden updated: {path}")
    if not path.exists():
        pytest.fail(f"missing golden {path}; run with --update-goldens")
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert sorted(expected["runs"]) == sorted(actual["runs"]), \
        "run labels changed; regenerate with --update-goldens if intended"
    problems = []
    for label, want in expected["runs"].items():
        got = actual["runs"][label]
        if want["digest"] == got["digest"]:
            continue
        problems.append(
            f"  {label}: digest changed "
            f"(spans {want['n_spans']} -> {got['n_spans']})\n"
            + _shape_diff(want["shape"], got["shape"])
        )
    if problems:
        pytest.fail(
            f"golden trace {name!r} drifted; if the change is intentional "
            f"rerun with --update-goldens:\n" + "\n".join(problems)
        )


def test_fig6_golden_trace(update_goldens):
    report = fig6_latency.run(FIG6_CONFIG)
    _check_golden("fig6_trace", _summarise(report.trace), update_goldens)


def test_fig7_golden_trace(update_goldens):
    report = fig7_throughput.run(FIG7_CONFIG)
    _check_golden("fig7_trace", _summarise(report.trace), update_goldens)


def test_fault_recovery_golden_trace(update_goldens):
    storm = run_storm(seed=42, rate_rps=STORM_RATE_RPS, trace=True)
    collection = TraceCollection()
    collection.add("storm", storm["testbed"].tracer)
    _check_golden("fault_recovery_trace", _summarise(collection),
                  update_goldens)


def test_migration_storm_golden_trace(update_goldens):
    storm = run_migration_storm(seed=42, rate_rps=STORM_RATE_RPS, trace=True)
    collection = TraceCollection()
    collection.add("storm", storm["testbed"].tracer)
    _check_golden("migration_storm_trace", _summarise(collection),
                  update_goldens)


def test_overload_storm_golden_trace(update_goldens):
    storm = run_overload_storm(seed=42, duration=1.0, trace=True)
    collection = TraceCollection()
    for phase, run in storm.items():
        collection.add(phase, run["testbed"].tracer)
    _check_golden("overload_storm_trace", _summarise(collection),
                  update_goldens)


def test_fig6_traces_cover_request_time():
    """Acceptance criterion: spans account for >= 95% of every
    request's end-to-end time, and clean runs violate no invariants."""
    report = fig6_latency.run(FIG6_CONFIG)
    checked = 0
    for label in report.trace.labels():
        spans = report.trace.spans_for(label)
        assert check_invariants(spans) == [], label
        by_trace = spans_by_trace(spans)
        for trace_spans in by_trace.values():
            for root in roots(trace_spans):
                if root.name != "gateway.request":
                    continue
                assert coverage_of(root, trace_spans) >= 0.95, \
                    f"{label}: trace {root.trace_id} has unaccounted time"
                checked += 1
    assert checked >= 9 * 2  # every cell contributed requests
