"""Tests for the experiment drivers (FAST configuration).

The benchmark harness runs the full-scale versions; these tests check
that each driver produces a structurally complete, shape-correct
report quickly enough for CI.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    FAST_CONFIG,
    fault_recovery,
    fig6_latency,
    fig8_contention,
    fig9_optimizer,
    micro_reorder,
    perf,
    table1_nic_types,
    table3_resources,
    table4_startup,
    verify_lambdas,
)
from repro.experiments.calibration import (
    FIG9_EXTENDED,
    PAPER_FIG9,
    PAPER_TABLE4,
)


def test_registry_covers_every_table_and_figure():
    assert set(ALL_EXPERIMENTS) == {
        "table1", "fig6", "fig7", "fig8", "table2", "table3", "table4",
        "fig9", "reorder", "fault_recovery", "migration_storm",
        "overload_storm", "perf", "verify", "scale_sweep",
    }


def test_fig6_single_cell_shapes():
    nic = fig6_latency.run_cell("web_server", "lambda-nic", FAST_CONFIG)
    bare = fig6_latency.run_cell("web_server", "bare-metal", FAST_CONFIG)
    assert nic.mean < 50e-6
    assert bare.mean > 10 * nic.mean
    assert len(nic.samples) == FAST_CONFIG.latency_requests


def test_fig6_report_has_nine_cells():
    report = fig6_latency.run(FAST_CONFIG)
    assert len(report.cells) == 9
    assert len(report.rows) == 9
    text = report.format()
    assert "Figure 6" in text
    assert "web_server" in text


def test_fig6_ecdf_export():
    report = fig6_latency.run(FAST_CONFIG)
    curve = fig6_latency.ecdf(report, "web_server", "lambda-nic")
    assert curve[-1][1] == 1.0
    xs = [x for x, _ in curve]
    assert xs == sorted(xs)


def test_fig8_contention_shapes():
    report = fig8_contention.run(FAST_CONFIG)
    nic = report.cells["lambda-nic-56"]
    bare = report.cells["bare-metal-56"]
    assert bare.mean > 50 * nic.mean
    assert nic.mean < 100e-6


def test_table2_throughput_shapes():
    report = fig8_contention.run_table2(FAST_CONFIG)
    nic = report.cells["lambda-nic-56"].throughput
    bare56 = report.cells["bare-metal-56"].throughput
    assert nic > 20 * bare56


def test_table3_resource_shapes():
    report = table3_resources.run(FAST_CONFIG)
    assert report.cells["lambda-nic"].extra["nic_mem_mib"] > 30
    assert report.cells["container"].extra["host_mem_mib"] == 219.5
    assert report.cells["bare-metal"].extra["host_cpu_pct"] > 1


def test_table4_startup_within_paper_tolerance():
    report = table4_startup.run(FAST_CONFIG)
    for backend, paper in PAPER_TABLE4.items():
        measured = report.cells[backend].extra
        assert measured["size_mib"] == pytest.approx(paper["size_mib"],
                                                     rel=0.25)
        assert measured["startup_s"] == pytest.approx(paper["startup_s"],
                                                      rel=0.25)


def test_fig9_matches_paper_stages():
    report = fig9_optimizer.run(FAST_CONFIG)
    # The paper's four stages lead the report; extended passes follow.
    assert [row[0] for row in report.rows][:len(PAPER_FIG9)] == \
        [s for s, _, _ in PAPER_FIG9]
    measured = [row[1] for row in report.rows]
    assert measured == sorted(measured, reverse=True)
    for count, (_, paper_count, _) in zip(measured, PAPER_FIG9):
        assert abs(count - paper_count) / paper_count < 0.05


def test_fig9_extended_series_pinned():
    """The full extended-pass series matches the golden in calibration;
    a compiler change that moves these counts must update FIG9_EXTENDED
    deliberately."""
    report = fig9_optimizer.run(FAST_CONFIG)
    assert [(row[0], row[1]) for row in report.rows] == \
        [(stage, count) for stage, count, _ in FIG9_EXTENDED]
    for row, (_, count, cum) in zip(report.rows, FIG9_EXTENDED):
        assert float(row[2].strip("-%")) == pytest.approx(cum, abs=0.01)
    # Extended rows have no paper reference column.
    for row in report.rows[len(PAPER_FIG9):]:
        assert row[3] == "—" and row[4] == "—"


def test_micro_reorder_exact():
    report = micro_reorder.run(FAST_CONFIG)
    assert report.rows[0][1] == 120
    assert 0.5 < float(report.rows[2][1]) < 3.0


def test_table1_static():
    report = table1_nic_types.run(FAST_CONFIG)
    assert len(report.rows) == 3
    profile = table1_nic_types.modeled_asic_profile()
    assert profile["cores"] == 56


def test_report_formatting_renders_floats():
    report = table1_nic_types.run(FAST_CONFIG)
    text = report.format()
    assert "==" in text and "metric" in text


def test_shapes_robust_across_seeds():
    """The headline ordering must not depend on the RNG seed."""
    from repro.experiments import ExperimentConfig

    for seed in [1, 7, 99]:
        config = ExperimentConfig(
            seed=seed, latency_requests=30, image_latency_requests=3,
        )
        nic = fig6_latency.run_cell("web_server", "lambda-nic", config)
        bare = fig6_latency.run_cell("web_server", "bare-metal", config)
        container = fig6_latency.run_cell("web_server", "container", config)
        assert nic.mean < bare.mean < container.mean, f"seed {seed}"
        assert container.mean / nic.mean > 100, f"seed {seed}"


def test_experiments_deterministic_for_fixed_seed():
    first = fig6_latency.run_cell("web_server", "lambda-nic", FAST_CONFIG)
    second = fig6_latency.run_cell("web_server", "lambda-nic", FAST_CONFIG)
    assert first.samples == second.samples


def test_perf_report_shapes():
    """The perf driver measures real rates and a >1x fast-path win.

    The hard >=3x regression gate lives in benchmarks/test_sim_perf.py;
    here we only require structural sanity plus a nontrivial speedup so
    a loaded CI host cannot flake this tier-1 test.
    """
    metrics = perf.collect(FAST_CONFIG)
    for key in ("reference_exec_per_s", "fastpath_exec_per_s",
                "jit_exec_per_s", "memo_replay_per_s",
                "sim_events_per_s", "sim_requests_per_s"):
        assert metrics[key] > 0, key
    assert metrics["fastpath_speedup"] > 1.0
    assert metrics["jit_speedup"] > 1.0
    assert metrics["jit_fallbacks"] == 0
    assert metrics["memo_hit_rate"] > 0.9
    report = perf.run(FAST_CONFIG)
    assert len(report.rows) == 9
    assert "Perf" in report.format()


def test_verify_report_shapes():
    """The verifier driver: every workload verified, admissions correct."""
    report = verify_lambdas.run(FAST_CONFIG)
    rows = {row[0]: row for row in report.rows}
    assert set(rows) == {"image_transformer", "kv_client", "web_server"}
    assert all(row[2] == "ok" for row in report.rows)
    assert rows["web_server"][6] == "admitted -> lambda-nic"
    assert rows["kv_client"][6] == "admitted -> lambda-nic"
    assert rows["image_transformer"][6] == "rerouted-wcet -> bare-metal"
    # WCET columns are real cycle counts, ordered as measured.
    assert rows["kv_client"][4] < rows["web_server"][4]
    assert rows["image_transformer"][4] > 1_000_000
    assert "verify" in report.format()


def test_fault_recovery_storm_shapes():
    """CI-scale storm: every recovery path fires, availability holds."""
    storm = fault_recovery.run_storm(seed=1, rate_rps=3.0)
    for result in storm["during"].values():
        assert fault_recovery.availability(result) >= 0.99
    kinds = {event.kind for event in storm["events"]}
    assert {"shrink", "degrade", "restore"} <= kinds
    actions = {action for _, action, _ in storm["trace"]}
    assert "crash_raft" in actions and "kill_nic" in actions
    assert all(event.duration <= 2.0 for event in storm["events"])
