"""The sharded-vs-monolithic proof harness (experiments/scale_sweep).

The headline deliverable of the sharded kernel: a sweep partitioned
over N testbed shards must be *provably* equivalent to the monolithic
single-testbed run on the same seed — identical request-conserving
counter totals, percentile bounds within tolerance, and a merged
report that is byte-stable across reruns and across inline vs pooled
execution.
"""

import json

import pytest

from repro.experiments import scale_sweep
from repro.experiments.calibration import ExperimentConfig

CONFIG = ExperimentConfig(
    scale_differential_requests=800,
    scale_rate_rps=2000.0,
)


@pytest.fixture(scope="module")
def diff():
    return scale_sweep.differential(CONFIG, n_shards=4, inline=True)


@pytest.fixture(scope="module")
def sweep():
    return scale_sweep.run_sweep(CONFIG, n_shards=4,
                                 total_requests=800, inline=True)


@pytest.fixture(scope="module")
def mono():
    return scale_sweep.run_monolithic(CONFIG, total_requests=800,
                                      n_workers=4)


def test_differential_counters_match_exactly(diff):
    assert diff["counters_match"], diff["counters"]
    for name, (sharded, monolithic) in diff["counters"].items():
        assert sharded == monolithic, name
    # The run actually served traffic.
    assert diff["counters"]["gateway_requests_total"][0] > 0


def test_differential_completed_and_failures_match(diff):
    assert diff["completed_match"]


def test_differential_percentiles_within_tolerance(diff):
    assert diff["percentiles_match"], (
        diff["sharded_p99"], diff["mono_p99"])
    assert diff["match"]


def test_sharded_goodput_matches_monolithic(sweep, mono):
    # Light load: every request completes on both sides, so goodput
    # (completions within deadline; no deadline here => completions)
    # must agree exactly.
    assert sweep["deterministic"]["totals"]["completed"] == \
        mono["completed"]
    assert sweep["deterministic"]["totals"]["failures"] == \
        mono["failures"] == 0


def test_shards_cover_the_request_stream(sweep):
    shards = sweep["deterministic"]["shards"]
    assert len(shards) == 4
    assert all(row["completed"] > 0 for row in shards)
    assert sum(row["completed"] for row in shards) == \
        sweep["deterministic"]["totals"]["completed"]


def test_merged_registry_equals_sum_of_shard_registries(sweep):
    merged = sweep["registry"]
    total = sum(result["registry"].counter("gateway_requests_total").total
                for result in sweep["shard_results"])
    assert merged.counter("gateway_requests_total").total == total


def test_report_is_byte_stable_across_reruns(sweep):
    again = scale_sweep.run_sweep(CONFIG, n_shards=4,
                                  total_requests=800, inline=True)
    assert scale_sweep.canonical_report_bytes(sweep) == \
        scale_sweep.canonical_report_bytes(again)


def test_report_is_byte_stable_inline_vs_pooled(sweep):
    pooled = scale_sweep.run_sweep(CONFIG, n_shards=4,
                                   total_requests=800, inline=False)
    assert scale_sweep.canonical_report_bytes(sweep) == \
        scale_sweep.canonical_report_bytes(pooled)


def test_canonical_report_excludes_wall_clock(sweep):
    payload = json.loads(scale_sweep.canonical_report_bytes(sweep))
    assert "timing" not in payload
    flat = json.dumps(payload)
    assert "wall" not in flat and "elapsed" not in flat
    assert payload["schema"] == "scale_sweep/v1"
    assert payload["config"]["n_shards"] == 4


def test_write_report_round_trips(tmp_path, sweep):
    path = tmp_path / "report.json"
    scale_sweep.write_report(sweep, str(path))
    payload = json.loads(path.read_text())
    assert payload["deterministic"] == sweep["deterministic"]
    assert "timing" in payload


def test_experiment_table_entry_runs(diff):
    report = scale_sweep.run(ExperimentConfig(
        scale_differential_requests=400))
    text = report.format()
    assert "differential verdict" in text
    assert "True" in text


def test_scale_profile_strips_histograms():
    # Past the auto-flip threshold the shipped registries must not
    # carry raw observations (10^7 of them would dominate the pickle).
    sweep = scale_sweep.run_sweep(
        CONFIG, n_shards=2, total_requests=400, inline=True,
        ship_histograms=False)
    for result in sweep["shard_results"]:
        names = result["registry"].names()
        assert "gateway_request_seconds" not in names
        assert "gateway_requests_total" in names
    # Percentiles still reported from the workers' local computation.
    assert sweep["deterministic"]["latency"]["p99_max"] > 0
