"""Tests for the lambda interpreter: semantics and cycle accounting."""

import pytest

from repro.isa import (
    BASE_CYCLES,
    ExecutionError,
    Interpreter,
    IsolationError,
    Op,
    ProgramBuilder,
    REGION_ACCESS_CYCLES,
    Region,
    VERDICT_DROP,
    VERDICT_FORWARD,
    register_intrinsic,
)


def build(body_fn, objects=(), name="test"):
    builder = ProgramBuilder(name)
    for obj_name, size in objects:
        builder.object(obj_name, size)
    fn = builder.function(name)
    body_fn(fn)
    builder.close(fn)
    return builder.build()


def test_arithmetic_and_return():
    program = build(lambda f: f.mov("r1", 5).mul("r2", "r1", 8).ret("r2"))
    result = Interpreter().run(program)
    assert result.return_value == 40


def test_branches_loop():
    def body(f):
        f.mov("r1", 0).mov("r2", 0)
        f.label("top")
        f.add("r2", "r2", "r1")
        f.add("r1", "r1", 1)
        f.blt("r1", 5, "top")
        f.ret("r2")

    result = Interpreter().run(build(body))
    assert result.return_value == 0 + 1 + 2 + 3 + 4


def test_call_and_return_across_functions():
    builder = ProgramBuilder("main")
    helper = builder.function("double")
    helper.add("r0", "r0", "r0").ret("r0")
    builder.close(helper)
    main = builder.function("main")
    main.mov("r0", 21).call("double").ret("r0")
    builder.close(main)
    result = Interpreter().run(builder.build())
    assert result.return_value == 42


def test_memory_load_store_roundtrip():
    def body(f):
        f.mov("r1", 123456)
        f.store("buf", 0, "r1")
        f.load("r2", "buf", 0)
        f.ret("r2")

    result = Interpreter().run(build(body, objects=[("buf", 64)]))
    assert result.return_value == 123456


def test_memcpy_moves_bytes():
    def body(f):
        f.mov("r1", 0x0807060504030201)
        f.store("src", 0, "r1")
        f.memcpy("dst", 0, "src", 0, 8)
        f.load("r2", "dst", 0)
        f.ret("r2")

    result = Interpreter().run(build(body, objects=[("src", 8), ("dst", 8)]))
    assert result.return_value == 0x0807060504030201


def test_header_read_write():
    def body(f):
        f.hload("r1", "LambdaHeader", "wid")
        f.add("r1", "r1", 1)
        f.hstore("LambdaHeader", "is_response", 1)
        f.ret("r1")

    program = build(body)
    result = Interpreter().run(program, headers={"LambdaHeader": {"wid": 9}})
    assert result.return_value == 10
    assert result.headers["LambdaHeader"]["is_response"] == 1


def test_missing_header_field_raises():
    program = build(lambda f: f.hload("r1", "LambdaHeader", "wid").ret())
    with pytest.raises(ExecutionError, match="wid"):
        Interpreter().run(program, headers={})


def test_meta_read_write():
    def body(f):
        f.mload("r1", "key")
        f.mstore("out", "r1")
        f.ret("r1")

    result = Interpreter().run(build(body), meta={"key": 77})
    assert result.return_value == 77
    assert result.meta["out"] == 77


def test_forward_and_drop_verdicts():
    forward = build(lambda f: f.forward())
    drop = build(lambda f: f.drop())
    assert Interpreter().run(forward).verdict == VERDICT_FORWARD
    assert Interpreter().run(drop).verdict == VERDICT_DROP


def test_cycle_accounting_alu():
    program = build(lambda f: f.mov("r1", 1).add("r2", "r1", 1).ret("r2"))
    result = Interpreter().run(program)
    expected = BASE_CYCLES[Op.MOV] + BASE_CYCLES[Op.ADD] + BASE_CYCLES[Op.RET]
    assert result.cycles == expected
    assert result.instructions_executed == 3


def test_flat_memory_pays_flat_cost():
    program = build(lambda f: f.load("r1", "buf", 0).ret(), objects=[("buf", 8)])
    result = Interpreter().run(program)
    assert result.region_accesses.get(Region.FLAT) == 1
    assert result.cycles >= REGION_ACCESS_CYCLES[Region.FLAT]


def test_stratified_region_changes_cost():
    program = build(lambda f: f.load("r1", "buf", 0).ret(), objects=[("buf", 8)])
    flat_cycles = Interpreter().run(program).cycles
    program.object("buf").region = Region.LOCAL
    local_cycles = Interpreter().run(program).cycles
    assert local_cycles < flat_cycles


def test_out_of_bounds_store_raises():
    program = build(
        lambda f: f.store("buf", 100, 1).ret(), objects=[("buf", 8)]
    )
    with pytest.raises(ExecutionError, match="out of bounds"):
        Interpreter().run(program)


def test_isolation_foreign_object_raises():
    program = build(lambda f: f.ret(), objects=[("mine", 8)])
    interp = Interpreter()
    # Hand-craft a run against a memory map missing the object.
    from repro.isa import Machine, ins

    program2 = build(lambda f: f.load("r1", "mine", 0).ret(), objects=[("mine", 8)])
    with pytest.raises(IsolationError):
        interp.run(program2, memory={})


def test_step_limit_stops_runaway():
    def body(f):
        f.label("spin")
        f.jmp("spin")

    program = build(body)
    with pytest.raises(ExecutionError, match="step limit"):
        Interpreter(step_limit=1000).run(program)


def test_persistent_memory_across_runs():
    def body(f):
        f.load("r1", "counter", 0)
        f.add("r1", "r1", 1)
        f.store("counter", 0, "r1")
        f.ret("r1")

    program = build(body, objects=[("counter", 8)])
    memory = {"counter": bytearray(8)}
    interp = Interpreter()
    assert interp.run(program, memory=memory).return_value == 1
    assert interp.run(program, memory=memory).return_value == 2


def test_intrinsic_dispatch_and_cost():
    def double_buf(machine, args):
        data = machine.memory["buf"]
        data[0] = data[0] * 2
        return 500  # extra cycles

    register_intrinsic("double_buf", double_buf)

    def body(f):
        f.mov("r1", 21)
        f.store("buf", 0, "r1")
        f.emit(Op.INTRINSIC, "double_buf", ("mem", "buf", 0))
        f.load("r2", "buf", 0)
        f.ret("r2")

    result = Interpreter().run(build(body, objects=[("buf", 8)]))
    assert result.return_value == 42
    assert result.cycles > 500


def test_unknown_intrinsic_raises():
    def body(f):
        f.emit(Op.INTRINSIC, "no_such_intrinsic")
        f.ret()

    with pytest.raises(ExecutionError, match="no_such_intrinsic"):
        Interpreter().run(build(body))


def test_time_seconds_uses_clock():
    program = build(lambda f: f.nop(100).ret())
    result = Interpreter().run(program)
    assert result.time_seconds(clock_hz=1e6) == pytest.approx(result.cycles / 1e6)
