"""Tests for program structure, validation, and the builder."""

import pytest

from repro.isa import (
    AccessMode,
    Function,
    INSTRUCTION_BYTES,
    LambdaProgram,
    MemoryObject,
    Op,
    ProgramBuilder,
    Region,
    ins,
)


def simple_program():
    builder = ProgramBuilder("adder")
    fn = builder.function("adder")
    fn.mov("r1", 2).add("r0", "r1", 40).ret("r0")
    builder.close(fn)
    return builder.build()


def test_builder_produces_valid_program():
    program = simple_program()
    assert program.entry == "adder"
    assert program.instruction_count == 3
    assert program.code_bytes == 3 * INSTRUCTION_BYTES


def test_labels_do_not_count_as_instructions():
    function = Function("f", [ins(Op.LABEL, "top"), ins(Op.NOP), ins(Op.JMP, "top")])
    assert function.instruction_count == 2
    assert function.labels() == {"top": 0}


def test_memory_object_validation():
    with pytest.raises(ValueError):
        MemoryObject("empty", 0)
    obj = MemoryObject("buf", 64)
    assert obj.region is Region.FLAT
    assert obj.access is AccessMode.READ_WRITE


def test_duplicate_function_rejected():
    program = LambdaProgram("p", [Function("f"), ])
    with pytest.raises(ValueError):
        program.add_function(Function("f"))


def test_duplicate_object_rejected():
    program = LambdaProgram("p", [Function("p")])
    program.add_object(MemoryObject("buf", 8))
    with pytest.raises(ValueError):
        program.add_object(MemoryObject("buf", 8))


def test_validate_catches_undefined_call():
    program = LambdaProgram("p", [Function("p", [ins(Op.CALL, "ghost")])])
    with pytest.raises(ValueError, match="ghost"):
        program.validate()


def test_validate_catches_undefined_label():
    program = LambdaProgram("p", [Function("p", [ins(Op.JMP, "nowhere")])])
    with pytest.raises(ValueError, match="nowhere"):
        program.validate()


def test_validate_catches_undefined_object():
    body = [ins(Op.LOADD, "r1", ("mem", "ghost", 0))]
    program = LambdaProgram("p", [Function("p", body)])
    with pytest.raises(ValueError, match="ghost"):
        program.validate()


def test_validate_catches_missing_entry():
    program = LambdaProgram("p", [Function("other")], entry="p")
    with pytest.raises(ValueError, match="entry"):
        program.validate()


def test_copy_is_deep_for_objects():
    program = simple_program()
    clone = program.copy()
    clone.functions["adder"].body.append(ins(Op.NOP))
    assert program.instruction_count == 3
    assert clone.instruction_count == 4


def test_data_bytes_sums_objects():
    builder = ProgramBuilder("p")
    fn = builder.function("p")
    fn.ret()
    builder.close(fn)
    builder.object("a", 100)
    builder.object("b", 28)
    program = builder.build()
    assert program.data_bytes == 128


def test_builder_tracks_headers():
    builder = ProgramBuilder("p")
    fn = builder.function("p")
    fn.hload("r1", "LambdaHeader", "wid").ret()
    builder.close(fn)
    program = builder.build()
    assert program.headers_used == ["LambdaHeader"]


def test_builder_flat_memory_emits_resolve_pairs():
    builder = ProgramBuilder("p")
    builder.object("buf", 16)
    fn = builder.function("p")
    fn.load("r1", "buf", 0)
    fn.ret()
    builder.close(fn)
    program = builder.build()
    ops = [i.op for i in program.functions["p"].body]
    assert ops == [Op.RESOLVE, Op.LOAD, Op.RET]
