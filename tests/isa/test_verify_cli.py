"""The standalone lint CLI: files, --workloads, --json, --forbid,
--explain, --wcet-delta, exit codes."""

import json

import pytest

from repro.isa.verify.__main__ import main

CLEAN = """\
.lambda clean entry=clean
.func clean
    mov r1, 7
    add r0, r1, 1
    ret r0
"""

BUGGY = """\
.lambda buggy entry=buggy
.object buf size=64 access=read_write
.func buggy
    mov r1, 1
    resolve r14, [buf+100]
    store r14, [buf+100], r1
    add r0, r9, 1
    ret r0
"""

WARNY = """\
.lambda warny entry=warny
.func warny
    mov r1, 7
    ret r1
    mov r2, 9
"""


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.asm", CLEAN)
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "clean: OK" in out
    assert "wcet:" in out


def test_buggy_file_exits_nonzero_with_locations(tmp_path, capsys):
    path = write(tmp_path, "buggy.asm", BUGGY)
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "buggy: REJECTED" in out
    assert "oob-store" in out and "buggy@2" in out
    assert "uninit-read" in out and "buggy@3" in out


def test_strict_promotes_warnings_to_failure(tmp_path):
    path = write(tmp_path, "warny.asm", WARNY)
    assert main([path]) == 0
    assert main([path, "--strict"]) == 1


def test_json_report_artifact(tmp_path):
    clean = write(tmp_path, "clean.asm", CLEAN)
    buggy = write(tmp_path, "buggy.asm", BUGGY)
    artifact = tmp_path / "report.json"
    assert main([clean, buggy, "--json", str(artifact)]) == 1
    payload = json.loads(artifact.read_text())
    assert [entry["program"] for entry in payload] == ["clean", "buggy"]
    assert payload[0]["ok"] and not payload[1]["ok"]
    codes = {f["code"] for f in payload[1]["findings"]}
    assert {"oob-store", "uninit-read"} <= codes
    # Findings carry machine-usable locations.
    oob = next(f for f in payload[1]["findings"] if f["code"] == "oob-store")
    assert oob["function"] == "buggy" and oob["index"] == 2


def test_workloads_flag_covers_builtin_programs(capsys):
    assert main(["--workloads", "--quiet"]) == 0
    err = capsys.readouterr().err
    assert "3 ok, 0 rejected" in err


def test_unreadable_file_counts_as_failure(tmp_path, capsys):
    assert main([str(tmp_path / "missing.asm")]) == 1
    assert "failed to load" in capsys.readouterr().err


def test_nothing_to_verify_is_an_error():
    with pytest.raises(SystemExit):
        main([])


def example_files():
    from pathlib import Path

    return sorted(
        str(p) for p in
        (Path(__file__).resolve().parents[2] / "examples" /
         "lambdas").glob("*.asm")
    )


def test_shipped_examples_are_clean():
    examples = example_files()
    assert examples, "examples/lambdas/*.asm missing"
    assert main(examples) == 0


# -- interval-provenance flags ----------------------------------------------

MASKED = """\
.lambda masked entry=masked
.object buckets size=256 access=read_write
.func masked
    hload r1, LambdaHeader.request_id
    hash r2, r1
    and r2, r2, 248
    resolve r14, [buckets+r2]
    load r0, r14, [buckets+r2]
    ret r0
"""

UNPROVEN = """\
.lambda unproven entry=unproven
.object buckets size=256 access=read_write
.func unproven
    hload r1, LambdaHeader.request_id
    hash r2, r1
    resolve r14, [buckets+r2]
    load r0, r14, [buckets+r2]
    ret r0
"""

HEADER_LOOP = """\
.lambda hdrloop entry=hdrloop
.func hdrloop
    hload r1, LambdaHeader.total_segments
    mov r2, 0
label loop
    bge r2, r1, done
    add r2, r2, 1
    jmp loop
label done
    ret r2
"""


def test_forbid_rejects_on_matching_finding_code(tmp_path, capsys):
    masked = write(tmp_path, "masked.asm", MASKED)
    unproven = write(tmp_path, "unproven.asm", UNPROVEN)
    # Proven offsets are fine; an unprovable one trips --forbid even
    # though it is only warning-grade.
    assert main([masked, "--forbid", "unknown-offset"]) == 0
    assert main([unproven]) == 0
    capsys.readouterr()
    assert main([unproven, "--forbid", "unknown-offset"]) == 1
    captured = capsys.readouterr()
    assert "forbidden finding" in captured.err
    assert "unknown-offset" in captured.err


def test_shipped_examples_have_no_unknown_offsets(capsys):
    """The CI gate: every bundled lambda proves all its offsets."""
    assert main(example_files() + ["--forbid", "unknown-offset",
                                   "--quiet"]) == 0


def test_explain_prints_abstract_state(tmp_path, capsys):
    path = write(tmp_path, "masked.asm", MASKED)
    assert main([path, "--explain", "masked@3", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "masked@3" in out
    assert "r2: range [0, 248]" in out


def test_explain_rejects_bad_specs(tmp_path, capsys):
    path = write(tmp_path, "masked.asm", MASKED)
    assert main([path, "--explain", "masked@99", "--quiet"]) == 1
    assert "no instruction 99" in capsys.readouterr().err
    assert main([path, "--explain", "nonsense", "--quiet"]) == 1
    # A function the program does not define is silently skipped (the
    # target may live in another file on the command line).
    assert main([path, "--explain", "other@0", "--quiet"]) == 0


def test_wcet_delta_table(tmp_path, capsys):
    clean = write(tmp_path, "clean.asm", CLEAN)
    loop = write(tmp_path, "hdrloop.asm", HEADER_LOOP)
    artifact = tmp_path / "delta.md"
    assert main([clean, loop, "--wcet-delta", str(artifact),
                 "--quiet"]) == 0
    table = artifact.read_text()
    assert "| program | WCET (pre-interval) | WCET (interval) | delta |" \
        in table
    # The straight-line program is exact either way; the header-limited
    # loop only gets a bound from the interval pass.
    assert "| clean |" in table and "| 0 |" in table
    assert "| hdrloop | unbounded |" in table
    assert "newly bounded" in table


def test_wcet_delta_to_stdout(tmp_path, capsys):
    loop = write(tmp_path, "hdrloop.asm", HEADER_LOOP)
    assert main([loop, "--wcet-delta", "-", "--quiet"]) == 0
    assert "newly bounded" in capsys.readouterr().out
