"""The standalone lint CLI: files, --workloads, --json, exit codes."""

import json

import pytest

from repro.isa.verify.__main__ import main

CLEAN = """\
.lambda clean entry=clean
.func clean
    mov r1, 7
    add r0, r1, 1
    ret r0
"""

BUGGY = """\
.lambda buggy entry=buggy
.object buf size=64 access=read_write
.func buggy
    mov r1, 1
    resolve r14, [buf+100]
    store r14, [buf+100], r1
    add r0, r9, 1
    ret r0
"""

WARNY = """\
.lambda warny entry=warny
.func warny
    mov r1, 7
    ret r1
    mov r2, 9
"""


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.asm", CLEAN)
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "clean: OK" in out
    assert "wcet:" in out


def test_buggy_file_exits_nonzero_with_locations(tmp_path, capsys):
    path = write(tmp_path, "buggy.asm", BUGGY)
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "buggy: REJECTED" in out
    assert "oob-store" in out and "buggy@2" in out
    assert "uninit-read" in out and "buggy@3" in out


def test_strict_promotes_warnings_to_failure(tmp_path):
    path = write(tmp_path, "warny.asm", WARNY)
    assert main([path]) == 0
    assert main([path, "--strict"]) == 1


def test_json_report_artifact(tmp_path):
    clean = write(tmp_path, "clean.asm", CLEAN)
    buggy = write(tmp_path, "buggy.asm", BUGGY)
    artifact = tmp_path / "report.json"
    assert main([clean, buggy, "--json", str(artifact)]) == 1
    payload = json.loads(artifact.read_text())
    assert [entry["program"] for entry in payload] == ["clean", "buggy"]
    assert payload[0]["ok"] and not payload[1]["ok"]
    codes = {f["code"] for f in payload[1]["findings"]}
    assert {"oob-store", "uninit-read"} <= codes
    # Findings carry machine-usable locations.
    oob = next(f for f in payload[1]["findings"] if f["code"] == "oob-store")
    assert oob["function"] == "buggy" and oob["index"] == 2


def test_workloads_flag_covers_builtin_programs(capsys):
    assert main(["--workloads", "--quiet"]) == 0
    err = capsys.readouterr().err
    assert "3 ok, 0 rejected" in err


def test_unreadable_file_counts_as_failure(tmp_path, capsys):
    assert main([str(tmp_path / "missing.asm")]) == 1
    assert "failed to load" in capsys.readouterr().err


def test_nothing_to_verify_is_an_error():
    with pytest.raises(SystemExit):
        main([])


def test_shipped_examples_are_clean():
    from pathlib import Path

    examples = sorted(
        str(p) for p in
        (Path(__file__).resolve().parents[2] / "examples" /
         "lambdas").glob("*.asm")
    )
    assert examples, "examples/lambdas/*.asm missing"
    assert main(examples) == 0
