"""Tests for static analyses and the assembler round-trip."""

import pytest

from repro.isa import (
    AccessMode,
    AsmError,
    Function,
    LambdaProgram,
    MemoryObject,
    Op,
    ProgramBuilder,
    Region,
    assemble,
    disassemble,
    duplicate_functions,
    function_signature,
    headers_used,
    ins,
    memory_access_profile,
    reachable_functions,
    unreachable_code,
)


def test_reachable_functions_follows_calls():
    program = LambdaProgram(
        "p",
        [
            Function("p", [ins(Op.CALL, "a"), ins(Op.RET)]),
            Function("a", [ins(Op.CALL, "b"), ins(Op.RET)]),
            Function("b", [ins(Op.RET)]),
            Function("dead", [ins(Op.RET)]),
        ],
    )
    assert reachable_functions(program) == {"p", "a", "b"}


def test_unreachable_code_after_ret():
    # The label "after" is never a branch target, so the code behind it
    # is just as dead as the instruction right after the ret.
    function = Function(
        "f",
        [ins(Op.RET), ins(Op.NOP), ins(Op.LABEL, "after"), ins(Op.NOP)],
    )
    assert unreachable_code(function) == [1, 3]


def test_unreachable_code_after_forward():
    function = Function("f", [ins(Op.FORWARD), ins(Op.MOV, "r1", 1)])
    assert unreachable_code(function) == [1]


def test_unreachable_code_branch_target_stays_live():
    # A targeted label resurrects its code; an untargeted one does not.
    function = Function(
        "f",
        [
            ins(Op.BEQ, "r1", 0, "taken"),
            ins(Op.RET),
            ins(Op.NOP),
            ins(Op.LABEL, "taken"),
            ins(Op.NOP),
            ins(Op.RET),
        ],
    )
    assert unreachable_code(function) == [2]


def test_function_signature_ignores_labels():
    f1 = Function("x", [ins(Op.LABEL, "a"), ins(Op.NOP)])
    f2 = Function("y", [ins(Op.LABEL, "b"), ins(Op.NOP)])
    assert function_signature(f1) == function_signature(f2)


def test_duplicate_functions_across_programs():
    shared_body = [ins(Op.ADD, "r0", "r0", 1), ins(Op.RET)]
    p1 = LambdaProgram("p1", [Function("p1"), Function("helper", list(shared_body))])
    p2 = LambdaProgram("p2", [Function("p2"), Function("util", list(shared_body))])
    groups = duplicate_functions([p1, p2])
    assert len(groups) == 1
    locations = next(iter(groups.values()))
    assert ("p1", "helper") in locations
    assert ("p2", "util") in locations


def test_duplicate_functions_never_merges_entries():
    body = [ins(Op.RET)]
    p1 = LambdaProgram("p1", [Function("p1", list(body))])
    p2 = LambdaProgram("p2", [Function("p2", list(body))])
    assert duplicate_functions([p1, p2]) == {}


def test_memory_access_profile_counts():
    builder = ProgramBuilder("p")
    builder.object("hotbuf", 16)
    builder.object("cold", 1024)
    fn = builder.function("p")
    fn.mov("r1", 0)
    fn.label("loop")
    fn.load("r2", "hotbuf", "r1")
    fn.add("r1", "r1", 1)
    fn.blt("r1", 8, "loop")
    fn.store("cold", 0, "r2")
    fn.ret()
    builder.close(fn)
    profile = memory_access_profile(builder.build())
    assert profile["hotbuf"].reads >= 1
    assert profile["hotbuf"].in_loop
    assert profile["cold"].writes == 1
    assert not profile["cold"].in_loop
    assert profile["cold"].mode is AccessMode.WRITE


def test_headers_used_scans_instructions():
    builder = ProgramBuilder("p")
    fn = builder.function("p")
    fn.hload("r1", "RpcHeader", "method")
    fn.hstore("LambdaHeader", "is_response", 1)
    fn.ret()
    builder.close(fn)
    assert headers_used(builder.build()) == {"RpcHeader", "LambdaHeader"}


def roundtrip_program():
    builder = ProgramBuilder("web", entry="web")
    builder.object("memory", 60, AccessMode.READ, hot=True)
    fn = builder.function("web")
    fn.hload("r1", "ServerHdr", "address")
    fn.load("r2", "memory", 0)
    fn.mov("r3", 20)
    fn.label("out")
    fn.bne("r2", 0, "out")
    fn.forward()
    builder.close(fn)
    return builder.build()


def test_asm_roundtrip_preserves_program():
    program = roundtrip_program()
    text = disassemble(program)
    parsed = assemble(text)
    assert parsed.name == program.name
    assert parsed.instruction_count == program.instruction_count
    assert parsed.objects.keys() == program.objects.keys()
    assert parsed.object("memory").hot
    assert parsed.object("memory").access is AccessMode.READ
    # Instruction-level equality.
    for fname, function in program.functions.items():
        assert function_signature(parsed.function(fname)) == function_signature(function)


def test_asm_roundtrip_preserves_region():
    program = roundtrip_program()
    program.object("memory").region = Region.CTM
    parsed = assemble(disassemble(program))
    assert parsed.object("memory").region is Region.CTM


def test_assemble_rejects_garbage():
    with pytest.raises(AsmError):
        assemble(".lambda p\n.func p\n    frobnicate r1\n")
    with pytest.raises(AsmError):
        assemble(".func orphan\n    nop\n")
    with pytest.raises(AsmError):
        assemble("nop\n")


def test_assemble_requires_object_size():
    with pytest.raises(AsmError, match="size"):
        assemble(".lambda p\n.object buf\n.func p\n    ret\n")
