"""CFG construction: blocks, edges, loops, reachability."""

from repro.isa import ProgramBuilder
from repro.isa.verify import build_cfg


def function_of(body_fn, name="f"):
    builder = ProgramBuilder(name)
    fn = builder.function(name)
    body_fn(fn)
    builder.close(fn)
    return builder.build().functions[name]


def test_straight_line_is_one_block():
    cfg = build_cfg(function_of(
        lambda f: f.mov("r1", 1).add("r2", "r1", 1).ret("r2")
    ))
    assert len(cfg.blocks) == 1
    block = cfg.blocks[0]
    assert block.succs == [] and block.is_exit
    assert [index for index, _ in block.instructions] == [0, 1, 2]
    assert cfg.is_acyclic()


def test_diamond_edges_and_postorder():
    def body(f):
        f.mov("r1", 1)
        f.beq("r1", 1, "then")
        f.mov("r2", 0)
        f.jmp("join")
        f.label("then")
        f.mov("r2", 1)
        f.label("join")
        f.ret("r2")

    cfg = build_cfg(function_of(body))
    entry = cfg.block(cfg.entry)
    assert len(entry.succs) == 2  # taken + fallthrough
    exits = cfg.exit_blocks()
    assert len(exits) == 1
    # Every block reaches the join: the diamond is fully reachable.
    assert cfg.reachable() == {b.bid for b in cfg.blocks}
    # Reverse postorder visits the entry first, the exit last.
    rpo = cfg.reverse_postorder()
    assert rpo[0] == cfg.entry and rpo[-1] == exits[0].bid
    assert cfg.is_acyclic()


def test_loop_back_edge_and_natural_loop():
    def body(f):
        f.mov("r1", 0)
        f.label("top")
        f.add("r1", "r1", 1)
        f.blt("r1", 10, "top")
        f.ret("r1")

    cfg = build_cfg(function_of(body))
    back = cfg.back_edges()
    assert len(back) == 1
    source, header = back[0]
    loop = cfg.natural_loop(source, header)
    # The loop is the single body block branching back to itself.
    assert source in loop and header in loop
    assert not cfg.is_acyclic()


def test_terminator_blocks_have_no_successors():
    def body(f):
        f.mov("r1", 1)
        f.forward()
        f.mov("r2", 2)  # dead
        f.drop()

    cfg = build_cfg(function_of(body))
    first = cfg.block(cfg.block_at[1])
    assert first.succs == [] and first.ends_machine
    # The trailing code is its own (unreachable) block.
    assert cfg.block_at[2] not in cfg.reachable()


def test_labels_are_excluded_from_instruction_lists():
    def body(f):
        f.label("a")
        f.mov("r1", 1)
        f.label("b")
        f.ret("r1")

    cfg = build_cfg(function_of(body))
    ops = [ins.op.value for block in cfg.blocks
           for _, ins in block.instructions]
    assert ops == ["mov", "ret"]


def test_branch_to_missing_label_gets_no_edge():
    from repro.isa import Function, Op, ins

    function = Function("f", [
        ins(Op.BEQ, "r1", 0, "nowhere"),
        ins(Op.RET, 0),
    ])
    cfg = build_cfg(function)
    entry = cfg.block(cfg.entry)
    # Only the fallthrough edge: the missing target contributes nothing
    # (program.validate() reports the label; the CFG stays well-formed).
    assert len(entry.succs) == 1


def test_call_is_not_a_block_boundary():
    builder = ProgramBuilder("main")
    helper = builder.function("h")
    helper.ret(0)
    builder.close(helper)
    main = builder.function("main")
    main.mov("r1", 1).call("h").add("r2", "r1", 1).ret("r2")
    builder.close(main)
    cfg = build_cfg(builder.build().functions["main"])
    assert len(cfg.blocks) == 1
