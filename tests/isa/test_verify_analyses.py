"""The verifier flags seeded bugs at precise locations — and passes
clean programs.

These are the acceptance cases of the static-analysis layer: each test
plants one specific bug (uninitialized read, out-of-bounds store,
unbounded loop, instruction-store overflow, ...) and checks the report
names the exact function and body index.
"""

import pytest

from repro.isa import AccessMode, Function, Op, ProgramBuilder, ins
from repro.isa.verify import (
    MAX_INSTRUCTIONS_PER_CORE,
    Severity,
    VerifyOptions,
    dead_stores,
    estimate_wcet,
    find_loops,
    uninitialized_reads,
    verify_program,
    build_cfg,
)


def build(body_fn, objects=(), name="test", scratch=()):
    builder = ProgramBuilder(name)
    for obj_name, size, *rest in objects:
        access = rest[0] if rest else AccessMode.READ_WRITE
        builder.object(obj_name, size, access=access)
    if scratch:
        builder.scratch(*scratch)
    fn = builder.function(name)
    body_fn(fn)
    builder.close(fn)
    return builder.build()


def findings_with(report, code):
    return [f for f in report.findings if f.code == code]


# -- seeded bug: uninitialized read -----------------------------------------


def test_uninitialized_read_flagged_at_location():
    program = build(lambda f: f.add("r0", "r3", 1).ret("r0"))
    report = verify_program(program)
    assert not report.ok
    (finding,) = findings_with(report, "uninit-read")
    assert finding.severity is Severity.ERROR
    assert finding.function == "test" and finding.index == 0
    assert "r3" in finding.message
    # The low-level query agrees.
    assert uninitialized_reads(program) == [("test", 0, "r3")]


def test_initialized_on_only_one_path_is_flagged():
    def body(f):
        f.mov("r1", 0)
        f.beq("r1", 0, "skip")
        f.mov("r2", 5)
        f.label("skip")
        f.add("r0", "r2", 1)  # r2 uninitialized when the branch is taken
        f.ret("r0")

    report = verify_program(build(body))
    (finding,) = findings_with(report, "uninit-read")
    assert finding.index == 4 and "r2" in finding.message


def test_write_before_read_is_clean():
    def body(f):
        f.mov("r3", 7)
        f.add("r0", "r3", 1)
        f.ret("r0")

    report = verify_program(build(body))
    assert report.ok and not findings_with(report, "uninit-read")


def test_helper_inherits_call_site_initialization():
    builder = ProgramBuilder("main")
    helper = builder.function("helper")
    helper.add("r0", "r1", 1).ret("r0")  # r1 set by every caller
    builder.close(helper)
    main = builder.function("main")
    main.mov("r1", 5).call("helper").ret("r0")
    builder.close(main)
    report = verify_program(builder.build())
    assert not findings_with(report, "uninit-read")


# -- seeded bug: out-of-bounds / access-mode violations ---------------------


def test_oob_store_flagged_at_location():
    def body(f):
        f.mov("r1", 1)
        f.store("buf", 100, "r1")  # resolve at 1, store at 2
        f.forward()

    report = verify_program(build(body, objects=[("buf", 64)]))
    assert not report.ok
    (finding,) = findings_with(report, "oob-store")
    assert finding.function == "test" and finding.index == 2
    assert "buf[100]" in finding.message


def test_oob_load_via_constant_propagation():
    def body(f):
        f.mov("r1", 60)
        f.add("r1", "r1", 40)  # 100, known statically
        f.load("r2", "buf", "r1")
        f.ret("r2")

    report = verify_program(build(body, objects=[("buf", 64)]))
    (finding,) = findings_with(report, "oob-load")
    assert "buf[100]" in finding.message


def test_store_to_readonly_object_flagged():
    def body(f):
        f.mov("r1", 1)
        f.store("content", 0, "r1")
        f.forward()

    report = verify_program(
        build(body, objects=[("content", 64, AccessMode.READ)])
    )
    assert findings_with(report, "readonly-store")
    assert not report.ok


def test_unknown_offset_is_warning_not_error():
    def body(f):
        f.hload("r1", "Udp", "sport")  # runtime value
        f.load("r2", "buf", "r1")
        f.ret("r2")

    report = verify_program(build(body, objects=[("buf", 64)]))
    assert report.ok  # warning-grade only
    assert findings_with(report, "unknown-offset")


def test_oob_memcpy_flagged():
    def body(f):
        f.memcpy("dst", 32, "src", 0, 64)  # 32+64 > 64
        f.forward()

    report = verify_program(
        build(body, objects=[("dst", 64), ("src", 64)])
    )
    (finding,) = findings_with(report, "oob-memcpy")
    assert finding.index == 0


# -- seeded bug: unbounded loop ---------------------------------------------


def test_unbounded_loop_rejected():
    def body(f):
        f.mov("r1", 0)
        f.label("spin")
        f.add("r1", "r1", 1)
        f.jmp("spin")

    report = verify_program(build(body))
    assert not report.ok
    (finding,) = findings_with(report, "unbounded-loop")
    assert finding.function == "test"
    assert report.wcet_cycles is None


def test_counted_loop_gets_bound_and_wcet():
    def body(f):
        f.mov("r1", 0)
        f.mov("r2", 0)
        f.label("top")
        f.add("r2", "r2", "r1")
        f.add("r1", "r1", 1)
        f.blt("r1", 10, "top")
        f.ret("r2")

    program = build(body)
    report = verify_program(program)
    assert report.ok
    assert report.wcet_cycles is not None
    (info,) = findings_with(report, "loop-bound")
    assert info.severity is Severity.INFO
    loops = find_loops(build_cfg(program.functions["test"]),
                       program=program)
    assert len(loops) == 1 and loops[0].bounded
    assert loops[0].counter == "r1"
    # 10 iterations plus the conservative +1 slack.
    assert 10 <= loops[0].bound <= 11


def test_loop_with_runtime_limit_is_unbounded():
    def body(f):
        f.hload("r3", "Udp", "len")  # runtime-dependent limit
        f.mov("r1", 0)
        f.label("top")
        f.add("r1", "r1", 1)
        f.blt("r1", "r3", "top")
        f.ret("r1")

    report = verify_program(build(body))
    assert findings_with(report, "unbounded-loop")
    assert report.wcet_cycles is None


# -- seeded bug: instruction-store overflow ---------------------------------


def test_instruction_store_overflow_rejected():
    body = [ins(Op.NOP) for _ in range(MAX_INSTRUCTIONS_PER_CORE + 1)]
    body.append(ins(Op.RET, 0))
    program = build(lambda f: f.raw(body))
    report = verify_program(program)
    assert not report.ok
    (finding,) = findings_with(report, "instr-overflow")
    assert str(MAX_INSTRUCTIONS_PER_CORE) in finding.message


# -- recursion ---------------------------------------------------------------


def test_recursion_rejected():
    builder = ProgramBuilder("main")
    main = builder.function("main")
    main.call("main")
    main.ret(0)
    builder.close(main)
    report = verify_program(builder.build())
    (finding,) = findings_with(report, "recursion")
    assert finding.severity is Severity.ERROR
    assert report.wcet_cycles is None


# -- dead stores & scratch exemption ----------------------------------------


def test_dead_store_warning_and_scratch_exemption():
    def body(f):
        f.mov("r1", 1)
        f.mov("r1", 2)  # first write never read
        f.ret("r1")

    program = build(body)
    report = verify_program(
        program, VerifyOptions(entry_exit_live=frozenset())
    )
    dead = findings_with(report, "dead-store")
    assert any(f.index == 0 for f in dead)

    # The same store through a declared scratch register is exempt.
    scratched = build(body, scratch=("r1",))
    report = verify_program(
        scratched, VerifyOptions(entry_exit_live=frozenset())
    )
    assert not findings_with(report, "dead-store")


def test_dead_stores_low_level_query():
    def body(f):
        f.mov("r5", 9)  # never read anywhere
        f.mov("r0", 1)
        f.forward()

    program = build(body)
    found = dead_stores(program, entry_exit_live=frozenset())
    assert ("test", 0, "r5") in found


# -- unreachable code --------------------------------------------------------


def test_unreachable_code_warning():
    def body(f):
        f.mov("r0", 1)
        f.ret("r0")
        f.mov("r2", 2)  # dead
        f.mov("r3", 3)  # dead

    report = verify_program(build(body))
    (finding,) = findings_with(report, "unreachable")
    assert finding.index == 2 and "2 instruction" in finding.message


def test_uncalled_function_warning():
    builder = ProgramBuilder("main")
    orphan = builder.function("orphan")
    orphan.ret(0)
    builder.close(orphan)
    main = builder.function("main")
    main.ret(0)
    builder.close(main)
    report = verify_program(builder.build())
    (finding,) = findings_with(report, "unreachable-function")
    assert finding.function == "orphan"


# -- structural validation ---------------------------------------------------


def test_invalid_program_reports_instead_of_raising():
    from repro.isa import LambdaProgram

    # Bypass the builder: it validates eagerly. The verifier must turn
    # the structural failure into a finding, not an exception.
    program = LambdaProgram(
        "bad", [Function("bad", [ins(Op.JMP, "nowhere")])]
    )
    report = verify_program(program)
    assert not report.ok
    assert findings_with(report, "invalid-program")


# -- WCET sanity -------------------------------------------------------------


def test_wcet_takes_the_longest_branch():
    def body(f):
        f.mov("r1", 0)
        f.beq("r1", 0, "cheap")
        f.mul("r2", "r1", 3)  # expensive arm: mul is 4 cycles
        f.mul("r2", "r2", 3)
        f.ret("r2")
        f.label("cheap")
        f.ret("r1")

    program = build(body)
    result = estimate_wcet(program)
    assert result.total_cycles is not None
    # mov(1) + beq(1) + mul(4) + mul(4) + ret(3) = 13
    assert result.total_cycles == 13


def test_wcet_multiplies_loop_bound():
    def loop(f, n):
        f.mov("r1", 0)
        f.label("top")
        f.add("r1", "r1", 1)
        f.blt("r1", n, "top")
        f.ret("r1")

    small = estimate_wcet(build(lambda f: loop(f, 4)))
    large = estimate_wcet(build(lambda f: loop(f, 400)))
    assert small.total_cycles is not None
    assert large.total_cycles > 50 * small.total_cycles
