"""Interval-analysis deepening: offset proofs, loop bounds, tight WCET.

The interval pass upgrades three layers of the verifier:

* **memcheck** — register offsets with a proven range become
  info-grade ``proven-offset`` findings (or definite ``oob-*`` errors)
  instead of ``unknown-offset`` warnings;
* **loop bounds** — loops whose limit is a packet-header field with a
  declared wire range get a static bound where constant propagation
  alone would reject the program as unbounded;
* **WCET** — the path-sensitive collapse charges the longest *single*
  path per iteration rather than the product over all branch sides,
  and bounded memcpy lengths shrink the bulk-transfer charge.

Each test checks one upgrade — and that switching the pass off
(``use_intervals=False``) reproduces the historical verdicts, which is
what the admission differential guard relies on.
"""

from repro.isa import (
    AccessMode,
    Interpreter,
    Op,
    ProgramBuilder,
)
from repro.isa.interpreter import register_intrinsic
from repro.isa.verify import (
    ANY,
    Interval,
    Severity,
    VerifyOptions,
    estimate_wcet,
    interval_states,
    verify_program,
)


def build(body_fn, objects=(), name="test"):
    builder = ProgramBuilder(name)
    for obj_name, size, *rest in objects:
        access = rest[0] if rest else AccessMode.READ_WRITE
        builder.object(obj_name, size, access=access)
    fn = builder.function(name)
    body_fn(fn)
    builder.close(fn)
    return builder.build()


def findings_with(report, code):
    return [f for f in report.findings if f.code == code]


# -- the Interval value lattice ---------------------------------------------


def test_interval_algebra_basics():
    a = Interval(2, 5)
    b = Interval(4, 9)
    assert a.contains(2) and a.contains(5) and not a.contains(6)
    assert a.join(b) == Interval(2, 9)
    assert a.meet(b) == Interval(4, 5)
    assert Interval(0, 1).meet(Interval(5, 9)) is None
    # Widening only ever opens bounds that moved.
    assert a.widen(Interval(2, 7)) == Interval(2, None)
    assert a.widen(Interval(0, 5)) == Interval(None, 5)
    assert a.widen(a) == a
    assert not Interval(0, None).is_finite
    assert Interval(3, 3).is_constant


def test_unbounded_intervals_print_as_infinities():
    assert str(Interval(None, 7)) == "[-inf, 7]"
    assert str(Interval(0, None)) == "[0, +inf]"


# -- memcheck upgrades ------------------------------------------------------


def test_masked_offset_is_proven_safe():
    """hash & 248 into a 256 B table: INFO proof, not a warning."""

    def body(fn):
        fn.hload("r1", "LambdaHeader", "request_id")
        fn.hash("r2", "r1")
        fn.band("r2", "r2", 248)
        fn.load("r3", "buckets", "r2")
        fn.add("r3", "r3", 1)
        fn.store("buckets", "r2", "r3")
        fn.ret("r3")

    report = verify_program(build(body, objects=[("buckets", 256)]))
    assert report.ok
    assert not findings_with(report, "unknown-offset")
    proofs = findings_with(report, "proven-offset")
    assert len(proofs) == 2  # one for the load, one for the store
    assert all(f.severity is Severity.INFO for f in proofs)
    assert "[0, 248]" in proofs[0].message


def test_offset_proven_entirely_outside_is_an_error():
    """A dynamic offset whose whole range misses the object rejects."""

    def body(fn):
        fn.hload("r1", "LambdaHeader", "request_id")
        fn.hash("r2", "r1")
        fn.band("r2", "r2", 7)
        fn.add("r2", "r2", 64)  # [64, 71] into an 8 B object
        fn.load("r3", "small", "r2")
        fn.ret("r3")

    report = verify_program(build(body, objects=[("small", 8)]))
    assert not report.ok
    errors = findings_with(report, "oob-load")
    assert len(errors) == 1
    assert "entirely outside" in errors[0].message
    # The pre-interval verifier could only warn here — the differential
    # guard in admission depends on that asymmetry staying true.
    baseline = verify_program(
        build(body, objects=[("small", 8)]),
        VerifyOptions(use_intervals=False),
    )
    assert baseline.ok
    assert findings_with(baseline, "unknown-offset")


def test_straddling_range_stays_a_warning_with_its_range():
    """[0, 255] 8-byte-wide potential... the proof fails only at the
    top edge, so the finding stays a warning but names the range."""

    def body(fn):
        fn.hload("r1", "LambdaHeader", "request_id")
        fn.hash("r2", "r1")
        fn.band("r2", "r2", 255)
        fn.add("r2", "r2", 64)  # [64, 319] into a 256 B object
        fn.load("r3", "buckets", "r2")
        fn.ret("r3")

    report = verify_program(build(body, objects=[("buckets", 256)]))
    assert report.ok  # warnings do not reject
    warnings = findings_with(report, "unknown-offset")
    assert len(warnings) == 1
    assert "best known range [64, 319]" in warnings[0].message


def test_memcpy_with_bounded_range_is_proven():
    def body(fn):
        fn.hload("r1", "LambdaHeader", "request_id")
        fn.hash("r2", "r1")
        fn.band("r2", "r2", 63)   # offset in [0, 63]
        fn.hash("r3", "r1")
        fn.band("r3", "r3", 31)   # length in [0, 31]
        fn.memcpy("dst", "r2", "src", 0, "r3")
        fn.ret(0)

    report = verify_program(
        build(body, objects=[("dst", 128), ("src", 128)]))
    assert report.ok
    assert not findings_with(report, "unknown-offset")
    assert findings_with(report, "proven-offset")


# -- loop bounds from declared wire ranges ----------------------------------


def seg_loop_program():
    """Loop limited by LambdaHeader.total_segments (wire range
    [1, 65535]) with a branchy body — unbounded for constprop, bounded
    for the interval pass."""

    def body(fn):
        fn.hload("r1", "LambdaHeader", "total_segments")
        fn.mov("r2", 0)
        fn.mov("r3", 0)
        fn.label("loop")
        fn.bge("r2", "r1", "done")
        fn.band("r4", "r2", 1)
        fn.beq("r4", 0, "even")
        fn.add("r3", "r3", 3)
        fn.jmp("next")
        fn.label("even")
        fn.add("r3", "r3", 1)
        fn.label("next")
        fn.add("r2", "r2", 1)
        fn.jmp("loop")
        fn.label("done")
        fn.ret("r3")

    return build(body, name="segs")


def test_header_limited_loop_gets_an_interval_bound():
    program = seg_loop_program()
    report = verify_program(program)
    assert report.ok
    assert not findings_with(report, "unbounded-loop")
    bounds = findings_with(report, "loop-bound")
    assert len(bounds) == 1
    assert "via interval" in bounds[0].message
    assert "body <= 65535 trips" in bounds[0].message
    assert report.wcet_cycles is not None
    assert report.wcet_method["segs"] == "path-sensitive-loops"
    # Without the interval pass the same program has no bound at all.
    baseline = verify_program(program, VerifyOptions(use_intervals=False))
    assert not baseline.ok
    assert findings_with(baseline, "unbounded-loop")


def test_interval_bound_is_sound_against_the_interpreter():
    program = seg_loop_program()
    wcet = verify_program(program).wcet_cycles
    worst = 0
    for segments in (1, 2, 17, 65535):
        outcome = Interpreter().run(
            program,
            headers={"LambdaHeader": {"total_segments": segments}},
        )
        worst = max(worst, outcome.cycles)
    assert worst <= wcet


def test_stored_header_field_is_not_trusted_as_a_limit():
    """Writing the field anywhere unseeds it program-wide: the declared
    wire range no longer constrains what hload may return."""

    def body(fn):
        fn.hload("r1", "LambdaHeader", "total_segments")
        fn.mov("r2", 0)
        fn.label("loop")
        fn.bge("r2", "r1", "done")
        fn.add("r2", "r2", 1)
        fn.hstore("LambdaHeader", "total_segments", "r2")
        fn.jmp("loop")
        fn.label("done")
        fn.ret("r2")

    report = verify_program(build(body))
    assert not report.ok
    assert findings_with(report, "unbounded-loop")


# -- path-sensitive WCET ----------------------------------------------------


def branchy_counted_loop():
    def body(fn):
        fn.mov("r1", 0)
        fn.mov("r3", 0)
        fn.label("loop")
        fn.bge("r1", 8, "done")
        fn.band("r2", "r1", 1)
        fn.beq("r2", 0, "even")
        fn.add("r3", "r3", 3)
        fn.jmp("next")
        fn.label("even")
        fn.add("r3", "r3", 1)
        fn.label("next")
        fn.add("r1", "r1", 1)
        fn.jmp("loop")
        fn.label("done")
        fn.ret("r3")

    return build(body, name="branchy")


def test_path_sensitive_collapse_beats_the_block_product():
    program = branchy_counted_loop()
    tight = estimate_wcet(program)
    loose = estimate_wcet(program, use_intervals=False)
    assert tight.total_cycles is not None
    assert loose.total_cycles is not None
    assert tight.total_cycles < loose.total_cycles
    assert tight.function_method["branchy"] == "path-sensitive-loops"
    assert loose.function_method["branchy"] == "loop-product"
    # The tightened bound is still an upper bound on the real run.
    observed = Interpreter().run(program).cycles
    assert observed <= tight.total_cycles


def test_acyclic_programs_keep_the_exact_longest_path():
    def body(fn):
        fn.mov("r1", 7)
        fn.beq("r1", 7, "yes")
        fn.mov("r2", 1)
        fn.ret("r2")
        fn.label("yes")
        fn.mov("r2", 2)
        fn.ret("r2")

    program = build(body, name="straight")
    with_iv = estimate_wcet(program)
    without = estimate_wcet(program, use_intervals=False)
    assert with_iv.total_cycles == without.total_cycles
    assert with_iv.function_method["straight"] == "longest-path"


def test_bounded_memcpy_length_tightens_wcet():
    """min-object-size fallback (4 KiB) vs proven length <= 15."""

    def body(fn):
        fn.hload("r1", "LambdaHeader", "request_id")
        fn.hash("r2", "r1")
        fn.band("r2", "r2", 15)
        fn.memcpy("dst", 0, "src", 0, "r2")
        fn.ret(0)

    program = build(body, objects=[("dst", 4096), ("src", 4096)])
    tight = estimate_wcet(program).total_cycles
    loose = estimate_wcet(program, use_intervals=False).total_cycles
    assert tight is not None and loose is not None
    assert tight < loose


# -- advisory findings and provenance ---------------------------------------


def test_intrinsic_without_wcet_model_gets_an_info_finding():
    register_intrinsic("no_model_op", lambda machine, args, val: None,
                       writes_memory=False)

    def body(fn):
        fn.emit(Op.INTRINSIC, "no_model_op")
        fn.ret(0)

    report = verify_program(build(body))
    advisories = findings_with(report, "missing-wcet-model")
    assert len(advisories) == 1
    assert advisories[0].severity is Severity.INFO
    assert "no_model_op" in advisories[0].message
    assert "register_intrinsic" in advisories[0].message
    assert report.ok  # advisory, not an error


def test_wcet_method_lands_in_the_json_report():
    report = verify_program(branchy_counted_loop())
    payload = report.to_dict()
    assert payload["wcet_method"] == {"branchy": "path-sensitive-loops"}


# -- raw interval states ----------------------------------------------------


def test_interval_states_narrow_the_loop_counter():
    program = seg_loop_program()
    function = program.functions["segs"]
    states = interval_states(function, program=program)
    # Before the backward jump the counter has been incremented at
    # least once and can never exceed the limit's top.
    jmp_loop = max(
        i for i, instruction in enumerate(function.body)
        if instruction.op is Op.JMP and instruction.args[0] == "loop"
    )
    counter = states.range_before(jmp_loop, "r2")
    assert counter is not None
    assert counter.lo >= 1
    assert counter.hi == 65535
    limit = states.range_before(jmp_loop, "r1")
    assert limit == Interval(1, 65535)


def test_untrusted_seeds_use_machine_guarantees_only():
    """The JIT runs with ``trust_declared=False``: the simulator lets
    callers plant out-of-wire-range header values, so declared field
    ranges must not be assumed — but hash's machine guarantee holds."""
    program = seg_loop_program()
    function = program.functions["segs"]
    states = interval_states(function, program=program,
                             trust_declared=False)
    # hload result: no declared wire range may be assumed.
    assert states.value_before(1, "r1") is ANY

    def hashing(fn):
        fn.mov("r1", 5)
        fn.hash("r2", "r1")
        fn.ret("r2")

    hashed = build(hashing, name="hashing")
    hashed_states = interval_states(hashed.functions["hashing"],
                                    program=hashed, trust_declared=False)
    assert hashed_states.range_before(2, "r2") == Interval(0, 0xFFFFFFFF)


def test_value_before_unreachable_point_is_any():
    def body(fn):
        fn.mov("r1", 1)
        fn.ret("r1")
        fn.mov("r2", 2)  # dead
        fn.ret("r2")

    program = build(body)
    states = interval_states(program.functions["test"], program=program)
    assert states.value_before(2, "r2") is ANY
