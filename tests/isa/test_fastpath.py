"""Differential suite: the pre-decoded engine vs the reference interpreter.

The fast-path engine must be *indistinguishable* from the reference
interpreter: same verdicts, return values, cycle counts, instruction
counts, region-access profiles, emitted packets, header/meta mutations,
response payloads, persistent-memory effects — and the same errors with
the same messages. These tests check that equivalence property-style:
seeded fuzzed request streams over every registered workload (and the
composed multi-lambda firmware), plus targeted cases for the paths
where the two implementations are structured differently (calls,
labels, step limits, staleness after program mutation).
"""

import copy
import random
from dataclasses import asdict

import pytest

from repro.compiler import CompilationUnit, compile_unit
from repro.isa import (
    FastInterpreter,
    Interpreter,
    Op,
    ProgramBuilder,
    Region,
    compile_program,
    program_signature,
)
from repro.workloads.registry import fig9_workloads, standard_workloads


def all_workload_programs():
    """Every registered NIC lambda, by a stable unique name."""
    programs = {}
    for name, spec in standard_workloads().items():
        programs[f"std:{name}"] = spec.nic_program()
    for name, spec in fig9_workloads().items():
        programs[f"fig9:{name}"] = spec.nic_program()
    return programs


def composed_firmware_program(optimize):
    unit = CompilationUnit()
    for index, (_, spec) in enumerate(sorted(fig9_workloads().items())):
        unit.add_lambda(spec.nic_program(), wid=index + 1,
                        route_port=f"p{index}")
    return compile_unit(unit, optimize=optimize).program


def fuzz_inputs(rng, n):
    """Seeded request stream exercising every workload's branches."""
    inputs = []
    for i in range(n):
        headers = {
            "LambdaHeader": {
                "wid": rng.randrange(1, 6),
                "request_id": rng.randrange(1 << 16),
                "seq": rng.randrange(8),
                "is_response": rng.choice([0, 1]),
                "total_segments": rng.randrange(1, 5),
            }
        }
        meta = {
            "has_LambdaHeader": 1,
            "ingress_port": rng.randrange(4),
            "service_response": rng.choice([0, 0, 1]),
            "service_status": rng.choice([0, 1]),
            "rdma_len": rng.choice([0, 1024, 4096]),
        }
        inputs.append((headers, meta))
    return inputs


def fresh_memory(program):
    return {obj.name: bytearray(obj.size_bytes)
            for obj in program.objects.values()}


def run_both(program, headers, meta, ref_memory, fast_memory,
             reference=None, fast=None, entry=None):
    """Run one input through both engines; returns (outcome, outcome)."""
    reference = reference or Interpreter()
    fast = fast or FastInterpreter()
    try:
        ref = ("ok", asdict(reference.run(
            program, headers=copy.deepcopy(headers), meta=dict(meta),
            memory=ref_memory, entry=entry)))
    except Exception as error:
        ref = ("err", type(error).__name__, str(error))
    try:
        result, _ = fast.execute(
            program, headers=copy.deepcopy(headers), meta=dict(meta),
            memory=fast_memory, entry=entry)
        fst = ("ok", asdict(result))
    except Exception as error:
        fst = ("err", type(error).__name__, str(error))
    return ref, fst


@pytest.mark.parametrize("key", sorted(all_workload_programs()))
def test_every_workload_differentially(key):
    """Fuzzed request sequence against shared persistent memory."""
    program = all_workload_programs()[key]
    rng = random.Random(hash(key) & 0xFFFF)
    reference, fast = Interpreter(), FastInterpreter()
    ref_memory = fresh_memory(program)
    fast_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    for headers, meta in fuzz_inputs(rng, 60):
        ref, fst = run_both(program, headers, meta, ref_memory,
                            fast_memory, reference, fast)
        assert ref == fst, f"{key}: {ref} != {fst}"
    # Persistent state evolved identically across the whole sequence.
    assert ref_memory == fast_memory


@pytest.mark.parametrize("optimize", [False, True])
def test_composed_firmware_differentially(optimize):
    """The multi-lambda compiled firmware image, pre/post optimizer."""
    program = composed_firmware_program(optimize)
    rng = random.Random(1234)
    reference, fast = Interpreter(), FastInterpreter()
    ref_memory = fresh_memory(program)
    fast_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    for headers, meta in fuzz_inputs(rng, 40):
        ref, fst = run_both(program, headers, meta, ref_memory,
                            fast_memory, reference, fast)
        assert ref == fst
    assert ref_memory == fast_memory


def build(body_fn, objects=(), name="test"):
    builder = ProgramBuilder(name)
    for obj_name, size in objects:
        builder.object(obj_name, size)
    fn = builder.function(name)
    body_fn(fn)
    builder.close(fn)
    return builder.build()


def assert_identical(program, headers=None, meta=None, entry=None,
                     objects=True):
    ref_memory = fresh_memory(program) if objects else None
    fast_memory = ({k: bytearray(v) for k, v in ref_memory.items()}
                   if objects else None)
    ref, fst = run_both(program, headers or {}, meta or {},
                        ref_memory, fast_memory, entry=entry)
    assert ref == fst, f"{ref} != {fst}"
    if objects:
        assert ref_memory == fast_memory
    return ref


def test_calls_returns_and_cycle_parity():
    builder = ProgramBuilder("main")
    helper = builder.function("double")
    helper.add("r0", "r0", "r0").ret("r0")
    builder.close(helper)
    main = builder.function("main")
    main.mov("r0", 21).call("double").add("r1", "r0", 1).ret("r1")
    builder.close(main)
    outcome = assert_identical(builder.build(), objects=False)
    assert outcome[1]["return_value"] == 43


def test_loops_and_labels():
    def body(f):
        f.mov("r1", 0).mov("r2", 0)
        f.label("top")
        f.add("r2", "r2", "r1")
        f.add("r1", "r1", 1)
        f.blt("r1", 200, "top")
        f.ret("r2")

    outcome = assert_identical(build(body), objects=False)
    assert outcome[1]["return_value"] == sum(range(200))


def test_memory_region_accounting_parity():
    def body(f):
        f.mov("r1", 0xDEAD)
        f.store("buf", 0, "r1")
        f.load("r2", "buf", 0)
        f.memcpy("dst", 0, "buf", 0, 8)
        f.load("r3", "dst", 0)
        f.ret("r3")

    outcome = assert_identical(build(body, objects=[("buf", 64),
                                                    ("dst", 64)]))
    assert outcome[1]["region_accesses"]


def test_error_parity_step_limit():
    def body(f):
        f.label("spin")
        f.jmp("spin")

    program = build(body)
    reference = Interpreter(step_limit=500)
    fast = FastInterpreter(step_limit=500)
    ref, fst = run_both(program, {}, {}, None, None, reference, fast)
    assert ref[0] == "err" and ref == fst
    assert "step limit 500" in ref[2]


def test_error_parity_step_limit_through_trailing_label():
    """Termination through a trailing label at exactly the limit."""
    def body(f):
        f.mov("r1", 1)
        f.beq("r1", 1, "end")
        f.mov("r2", 2)
        f.label("end")

    program = build(body)
    # Two real instructions execute; limit of 2 trips at the label.
    reference = Interpreter(step_limit=2)
    fast = FastInterpreter(step_limit=2)
    ref, fst = run_both(program, {}, {}, None, None, reference, fast)
    assert ref[0] == "err" and ref == fst
    # One above the limit, both complete.
    reference = Interpreter(step_limit=3)
    fast = FastInterpreter(step_limit=3)
    ref, fst = run_both(program, {}, {}, None, None, reference, fast)
    assert ref[0] == "ok" and ref == fst


def test_error_parity_missing_header():
    program = build(lambda f: f.hload("r1", "Nope", "field").ret("r1"))
    ref, fst = run_both(program, {}, {}, None, None)
    assert ref[0] == "err" and ref == fst
    assert "Nope.field not present" in ref[2]


def test_error_parity_foreign_object():
    program = build(lambda f: f.load("r1", "buf", 0).ret("r1"),
                    objects=[("buf", 64)])
    reference, fast = Interpreter(), FastInterpreter()
    ref, fst = run_both(program, {}, {}, {}, {}, reference, fast)
    assert ref[0] == "err" and ref == fst
    assert "foreign object" in ref[2]


def test_error_parity_out_of_bounds():
    program = build(lambda f: f.store("buf", 9999, "r1"),
                    objects=[("buf", 64)])
    ref, fst = run_both(program, {}, {}, None, None)
    assert ref[0] == "err" and ref == fst
    assert "out of bounds" in ref[2]


def test_error_parity_unknown_intrinsic():
    program = build(lambda f: f.emit(Op.INTRINSIC, "nonsense"))
    ref, fst = run_both(program, {}, {}, None, None)
    assert ref[0] == "err" and ref == fst
    assert "unknown intrinsic" in ref[2]


def test_wrote_memory_flag():
    pure = build(lambda f: f.load("r1", "buf", 0).mstore("v", "r1").forward(),
                 objects=[("buf", 64)])
    impure = build(lambda f: f.mov("r1", 7).store("buf", 0, "r1").forward(),
                   objects=[("buf", 64)])
    fast = FastInterpreter()
    _, wrote = fast.execute(pure, headers={}, meta={})
    assert wrote is False
    _, wrote = fast.execute(impure, headers={}, meta={})
    assert wrote is True


def test_recompiles_when_region_changes():
    """Memory stratification after compilation must not use stale code."""
    def body(f):
        f.load("r1", "buf", 0)
        f.ret("r1")

    program = build(body, objects=[("buf", 64)])
    fast = FastInterpreter()
    reference = Interpreter()
    first_fast = fast.run(program, memory=fresh_memory(program))
    first_ref = reference.run(program, memory=fresh_memory(program))
    assert asdict(first_fast) == asdict(first_ref)

    program.objects["buf"].region = Region.EMEM  # stratification pass
    second_fast = fast.run(program, memory=fresh_memory(program))
    second_ref = reference.run(program, memory=fresh_memory(program))
    assert asdict(second_fast) == asdict(second_ref)
    assert second_fast.cycles != first_fast.cycles
    assert list(second_fast.region_accesses) == [Region.EMEM]


def test_recompiles_when_body_changes():
    program = build(lambda f: f.mov("r0", 1).ret("r0"))
    fast = FastInterpreter()
    assert fast.run(program).return_value == 1
    fn = program.functions["test"]
    stale_signature = fast.compiled_for(program).signature
    fn.body = fn.body[:1] + fn.body  # prepend another mov
    assert program_signature(program) != stale_signature
    assert fast.run(program).instructions_executed == \
        Interpreter().run(program).instructions_executed


def test_compile_cache_reused_for_unchanged_program():
    program = build(lambda f: f.mov("r0", 1).ret("r0"))
    fast = FastInterpreter()
    fast.run(program)
    first = fast.compiled_for(program)
    fast.run(program)
    assert fast.compiled_for(program) is first


def test_compile_program_layout():
    builder = ProgramBuilder("main")
    helper = builder.function("h")
    helper.nop(3)
    builder.close(helper)
    main = builder.function("main")
    main.call("h").ret(0)
    builder.close(main)
    compiled = compile_program(builder.build())
    # Every function gets its real instructions plus an implicit return.
    assert len(compiled.code) == (3 + 1) + (2 + 1)
    assert set(compiled.offsets) == {"h", "main"}


def test_alternate_entry_point_parity():
    builder = ProgramBuilder("main")
    other = builder.function("other")
    other.mov("r0", 99).ret("r0")
    builder.close(other)
    main = builder.function("main")
    main.mov("r0", 1).ret("r0")
    builder.close(main)
    program = builder.build()
    outcome = assert_identical(program, entry="other", objects=False)
    assert outcome[1]["return_value"] == 99


def test_emitted_packets_and_response_payload_parity():
    def body(f):
        f.mstore("emit_dst", "svc")
        f.mstore("emit_key", 5)
        f.emit_packet()
        f.hstore("LambdaHeader", "is_response", 1)
        f.forward()

    outcome = assert_identical(
        build(body),
        headers={"LambdaHeader": {"is_response": 0}},
        meta={"has_LambdaHeader": 1},
        objects=False,
    )
    assert len(outcome[1]["emitted"]) == 1
    assert outcome[1]["emitted"][0]["meta"]["emit_dst"] == "svc"
