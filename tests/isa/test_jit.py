"""Differential suite: the JIT source-codegen engine vs the reference.

The JIT tier must be *indistinguishable* from the reference interpreter
(and therefore from the fastpath tier): same verdicts, return values,
cycle counts, instruction counts, region-access profiles, emitted
packets, header/meta mutations, response payloads, persistent-memory
effects — and the same errors with the same messages. These tests reuse
the fastpath differential harness shape: seeded fuzzed request streams
over every registered workload (and the composed multi-lambda
firmware), plus targeted cases for the paths where source codegen is
structured differently from both interpreters (segment-folded step
checks, register spills around calls, constant-folded branches, the
fastpath fallback).
"""

import copy
import random
from dataclasses import asdict

import pytest

from repro.compiler import CompilationUnit, compile_unit
from repro.isa import (
    Interpreter,
    JitInterpreter,
    Op,
    ProgramBuilder,
    Region,
    compile_jit,
    program_signature,
)
import repro.isa.jit as jit_module
from repro.workloads.registry import fig9_workloads, standard_workloads


def all_workload_programs():
    """Every registered NIC lambda, by a stable unique name."""
    programs = {}
    for name, spec in standard_workloads().items():
        programs[f"std:{name}"] = spec.nic_program()
    for name, spec in fig9_workloads().items():
        programs[f"fig9:{name}"] = spec.nic_program()
    return programs


def composed_firmware_program(optimize):
    unit = CompilationUnit()
    for index, (_, spec) in enumerate(sorted(fig9_workloads().items())):
        unit.add_lambda(spec.nic_program(), wid=index + 1,
                        route_port=f"p{index}")
    return compile_unit(unit, optimize=optimize).program


def fuzz_inputs(rng, n):
    """Seeded request stream exercising every workload's branches."""
    inputs = []
    for i in range(n):
        headers = {
            "LambdaHeader": {
                "wid": rng.randrange(1, 6),
                "request_id": rng.randrange(1 << 16),
                "seq": rng.randrange(8),
                "is_response": rng.choice([0, 1]),
                "total_segments": rng.randrange(1, 5),
            }
        }
        meta = {
            "has_LambdaHeader": 1,
            "ingress_port": rng.randrange(4),
            "service_response": rng.choice([0, 0, 1]),
            "service_status": rng.choice([0, 1]),
            "rdma_len": rng.choice([0, 1024, 4096]),
        }
        inputs.append((headers, meta))
    return inputs


def fresh_memory(program):
    return {obj.name: bytearray(obj.size_bytes)
            for obj in program.objects.values()}


def run_both(program, headers, meta, ref_memory, jit_memory,
             reference=None, jit=None, entry=None):
    """Run one input through both engines; returns (outcome, outcome)."""
    reference = reference or Interpreter()
    jit = jit or JitInterpreter()
    try:
        ref = ("ok", asdict(reference.run(
            program, headers=copy.deepcopy(headers), meta=dict(meta),
            memory=ref_memory, entry=entry)))
    except Exception as error:
        ref = ("err", type(error).__name__, str(error))
    try:
        result, _ = jit.execute(
            program, headers=copy.deepcopy(headers), meta=dict(meta),
            memory=jit_memory, entry=entry)
        jt = ("ok", asdict(result))
    except Exception as error:
        jt = ("err", type(error).__name__, str(error))
    return ref, jt


@pytest.mark.parametrize("key", sorted(all_workload_programs()))
def test_every_workload_differentially(key):
    """Fuzzed request sequence against shared persistent memory."""
    program = all_workload_programs()[key]
    rng = random.Random(hash(key) & 0xFFFF)
    reference, jit = Interpreter(), JitInterpreter()
    ref_memory = fresh_memory(program)
    jit_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    for headers, meta in fuzz_inputs(rng, 60):
        ref, jt = run_both(program, headers, meta, ref_memory,
                           jit_memory, reference, jit)
        assert ref == jt, f"{key}: {ref} != {jt}"
    # Persistent state evolved identically across the whole sequence.
    assert ref_memory == jit_memory
    # Every registered workload must lower — no silent tier degradation.
    assert jit.stats.fallbacks == 0
    assert jit.last_tier == "jit"


@pytest.mark.parametrize("optimize", [False, True])
def test_composed_firmware_differentially(optimize):
    """The multi-lambda compiled firmware image, pre/post optimizer."""
    program = composed_firmware_program(optimize)
    rng = random.Random(1234)
    reference, jit = Interpreter(), JitInterpreter()
    ref_memory = fresh_memory(program)
    jit_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    for headers, meta in fuzz_inputs(rng, 40):
        ref, jt = run_both(program, headers, meta, ref_memory,
                           jit_memory, reference, jit)
        assert ref == jt
    assert ref_memory == jit_memory
    assert jit.stats.fallbacks == 0


def build(body_fn, objects=(), name="test"):
    builder = ProgramBuilder(name)
    for obj_name, size in objects:
        builder.object(obj_name, size)
    fn = builder.function(name)
    body_fn(fn)
    builder.close(fn)
    return builder.build()


def assert_identical(program, headers=None, meta=None, entry=None,
                     objects=True):
    ref_memory = fresh_memory(program) if objects else None
    jit_memory = ({k: bytearray(v) for k, v in ref_memory.items()}
                  if objects else None)
    ref, jt = run_both(program, headers or {}, meta or {},
                       ref_memory, jit_memory, entry=entry)
    assert ref == jt, f"{ref} != {jt}"
    if objects:
        assert ref_memory == jit_memory
    return ref


def test_calls_returns_and_cycle_parity():
    builder = ProgramBuilder("main")
    helper = builder.function("double")
    helper.add("r0", "r0", "r0").ret("r0")
    builder.close(helper)
    main = builder.function("main")
    main.mov("r0", 21).call("double").add("r1", "r0", 1).ret("r1")
    builder.close(main)
    outcome = assert_identical(builder.build(), objects=False)
    assert outcome[1]["return_value"] == 43


def test_loops_and_labels():
    def body(f):
        f.mov("r1", 0).mov("r2", 0)
        f.label("top")
        f.add("r2", "r2", "r1")
        f.add("r1", "r1", 1)
        f.blt("r1", 200, "top")
        f.ret("r2")

    outcome = assert_identical(build(body), objects=False)
    assert outcome[1]["return_value"] == sum(range(200))


def test_memory_region_accounting_parity():
    def body(f):
        f.mov("r1", 0xDEAD)
        f.store("buf", 0, "r1")
        f.load("r2", "buf", 0)
        f.memcpy("dst", 0, "buf", 0, 8)
        f.load("r3", "dst", 0)
        f.ret("r3")

    outcome = assert_identical(build(body, objects=[("buf", 64),
                                                    ("dst", 64)]))
    assert outcome[1]["region_accesses"]


def test_error_parity_step_limit():
    def body(f):
        f.label("spin")
        f.jmp("spin")

    program = build(body)
    reference = Interpreter(step_limit=500)
    jit = JitInterpreter(step_limit=500)
    ref, jt = run_both(program, {}, {}, None, None, reference, jit)
    assert ref[0] == "err" and ref == jt
    assert "step limit 500" in ref[2]


@pytest.mark.parametrize("limit", range(1, 9))
def test_step_limit_boundary_sweep(limit):
    """Folded per-segment step checks trip at the exact reference
    boundary, even when the limit lands mid-segment."""
    def body(f):
        f.mov("r1", 1)
        f.add("r1", "r1", 1)
        f.add("r1", "r1", 2)
        f.mov("r2", 5)
        f.add("r0", "r1", "r2")
        f.ret("r0")

    program = build(body)
    reference = Interpreter(step_limit=limit)
    jit = JitInterpreter(step_limit=limit)
    ref, jt = run_both(program, {}, {}, None, None, reference, jit)
    assert ref == jt
    assert ref[0] == ("ok" if limit >= 6 else "err")


@pytest.mark.parametrize("limit", [1, 2, 3, 4])
def test_step_limit_mid_segment_memory_side_effects(limit):
    """A limit landing inside a segment must preserve the stores that
    the reference executed before tripping (the _step_trip replay)."""
    def body(f):
        f.mov("r1", 0xAA)
        f.store("buf", 0, "r1")
        f.mov("r2", 0xBB)
        f.store("buf", 8, "r2")
        f.forward()

    program = build(body, objects=[("buf", 64)])
    reference = Interpreter(step_limit=limit)
    jit = JitInterpreter(step_limit=limit)
    ref_memory = fresh_memory(program)
    jit_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    ref, jt = run_both(program, {}, {}, ref_memory, jit_memory,
                       reference, jit)
    assert ref == jt
    # The partial write prefix must match byte-for-byte.
    assert ref_memory == jit_memory


def test_error_parity_step_limit_through_trailing_label():
    """Termination through a trailing label at exactly the limit."""
    def body(f):
        f.mov("r1", 1)
        f.beq("r1", 1, "end")
        f.mov("r2", 2)
        f.label("end")

    program = build(body)
    # Two real instructions execute; limit of 2 trips at the label.
    reference = Interpreter(step_limit=2)
    jit = JitInterpreter(step_limit=2)
    ref, jt = run_both(program, {}, {}, None, None, reference, jit)
    assert ref[0] == "err" and ref == jt
    # One above the limit, both complete.
    reference = Interpreter(step_limit=3)
    jit = JitInterpreter(step_limit=3)
    ref, jt = run_both(program, {}, {}, None, None, reference, jit)
    assert ref[0] == "ok" and ref == jt


def test_error_parity_missing_header():
    program = build(lambda f: f.hload("r1", "Nope", "field").ret("r1"))
    ref, jt = run_both(program, {}, {}, None, None)
    assert ref[0] == "err" and ref == jt
    assert "Nope.field not present" in ref[2]


def test_error_parity_foreign_object():
    program = build(lambda f: f.load("r1", "buf", 0).ret("r1"),
                    objects=[("buf", 64)])
    reference, jit = Interpreter(), JitInterpreter()
    ref, jt = run_both(program, {}, {}, {}, {}, reference, jit)
    assert ref[0] == "err" and ref == jt
    assert "foreign object" in ref[2]


def test_error_parity_out_of_bounds():
    program = build(lambda f: f.store("buf", 9999, "r1"),
                    objects=[("buf", 64)])
    ref, jt = run_both(program, {}, {}, None, None)
    assert ref[0] == "err" and ref == jt
    assert "out of bounds" in ref[2]


def test_error_parity_unknown_intrinsic():
    program = build(lambda f: f.emit(Op.INTRINSIC, "nonsense"))
    ref, jt = run_both(program, {}, {}, None, None)
    assert ref[0] == "err" and ref == jt
    assert "unknown intrinsic" in ref[2]


def test_wrote_memory_flag():
    pure = build(lambda f: f.load("r1", "buf", 0).mstore("v", "r1").forward(),
                 objects=[("buf", 64)])
    impure = build(lambda f: f.mov("r1", 7).store("buf", 0, "r1").forward(),
                   objects=[("buf", 64)])
    jit = JitInterpreter()
    _, wrote = jit.execute(pure, headers={}, meta={})
    assert wrote is False
    _, wrote = jit.execute(impure, headers={}, meta={})
    assert wrote is True


def test_recompiles_when_region_changes():
    """Memory stratification after compilation must not use stale code."""
    def body(f):
        f.load("r1", "buf", 0)
        f.ret("r1")

    program = build(body, objects=[("buf", 64)])
    jit = JitInterpreter()
    reference = Interpreter()
    first_jit = jit.run(program, memory=fresh_memory(program))
    first_ref = reference.run(program, memory=fresh_memory(program))
    assert asdict(first_jit) == asdict(first_ref)

    program.objects["buf"].region = Region.EMEM  # stratification pass
    second_jit = jit.run(program, memory=fresh_memory(program))
    second_ref = reference.run(program, memory=fresh_memory(program))
    assert asdict(second_jit) == asdict(second_ref)
    assert second_jit.cycles != first_jit.cycles
    assert list(second_jit.region_accesses) == [Region.EMEM]


def test_recompiles_when_body_changes():
    program = build(lambda f: f.mov("r0", 1).ret("r0"))
    jit = JitInterpreter()
    assert jit.run(program).return_value == 1
    fn = program.functions["test"]
    fn.body = fn.body[:1] + fn.body  # prepend another mov
    assert jit.run(program).instructions_executed == \
        Interpreter().run(program).instructions_executed


def test_compile_cache_stats():
    program = build(lambda f: f.mov("r0", 1).ret("r0"))
    jit = JitInterpreter()
    jit.run(program)
    assert (jit.stats.hits, jit.stats.misses) == (0, 1)
    first = jit.compiled_for(program)
    assert first is not None
    jit.run(program)
    assert jit.compiled_for(program) is first
    assert jit.stats.misses == 1
    assert jit.stats.hits >= 2
    assert jit.stats.fallbacks == 0
    assert jit.stats.lookups == jit.stats.hits + jit.stats.misses
    # A structural change forces a recompile (one more miss).
    fn = program.functions["test"]
    fn.body = fn.body[:1] + fn.body
    jit.run(program)
    assert jit.stats.misses == 2
    assert program_signature(program) == \
        jit._compiled[program][0]


def test_fallback_to_fastpath(monkeypatch):
    """Lowering failures degrade to the fastpath tier, identically."""
    program = build(lambda f: f.mov("r0", 7).ret("r0"))

    def explode(prog):
        raise jit_module.JitLoweringError("forced for test")

    monkeypatch.setattr(jit_module, "JitProgram", explode)
    jit = JitInterpreter()
    result, wrote = jit.execute(program, headers={}, meta={})
    assert result.return_value == 7
    assert wrote is False
    assert jit.last_tier == "fastpath"
    assert jit.stats.fallbacks == 1
    assert jit.dump_source(program) is None
    # The failure is cached: no recompile attempt per request.
    jit.execute(program, headers={}, meta={})
    assert jit.stats.fallbacks == 1
    assert jit.stats.hits >= 1


def test_alternate_entry_point_parity():
    builder = ProgramBuilder("main")
    other = builder.function("other")
    other.mov("r0", 99).ret("r0")
    builder.close(other)
    main = builder.function("main")
    main.mov("r0", 1).ret("r0")
    builder.close(main)
    program = builder.build()
    outcome = assert_identical(program, entry="other", objects=False)
    assert outcome[1]["return_value"] == 99


def test_missing_entry_point_parity():
    program = build(lambda f: f.ret(0))
    ref, jt = run_both(program, {}, {}, None, None, entry="nope")
    assert ref[0] == "err" and ref == jt


def test_emitted_packets_and_response_payload_parity():
    def body(f):
        f.mstore("emit_dst", "svc")
        f.mstore("emit_key", 5)
        f.emit_packet()
        f.hstore("LambdaHeader", "is_response", 1)
        f.forward()

    outcome = assert_identical(
        build(body),
        headers={"LambdaHeader": {"is_response": 0}},
        meta={"has_LambdaHeader": 1},
        objects=False,
    )
    assert len(outcome[1]["emitted"]) == 1
    assert outcome[1]["emitted"][0]["meta"]["emit_dst"] == "svc"


def test_dump_source_is_real_python():
    """--dump-source output is compilable, commented Python."""
    program = all_workload_programs()["std:web_server"]
    jit = JitInterpreter()
    source = jit.dump_source(program)
    assert source is not None
    compile(source, "<dump>", "exec")  # must be valid Python
    assert "def " in source and "st.registers" in source
    # compile_jit is the library entry point for the same artifact.
    assert compile_jit(program).source == source


def test_cli_dump_source(capsys):
    assert jit_module._main(["--workload", "web_server"]) == 0
    out = capsys.readouterr().out
    assert "JIT-generated code" in out
    compile(out, "<cli>", "exec")


# -- interval-driven memcpy lowering ----------------------------------------


def masked_memcpy_program():
    """Offset and length masked into [0, 63] / [0, 31] of 128 B
    objects: the JIT's interval pass proves every byte in bounds."""

    def body(f):
        f.hload("r1", "LambdaHeader", "request_id")
        f.hash("r2", "r1")
        f.band("r2", "r2", 63)
        f.hash("r3", "r2")
        f.band("r3", "r3", 31)
        f.memcpy("dst", "r2", "src", 0, "r3")
        f.ret("r3")

    return build(body, objects=[("dst", 128), ("src", 128)])


def test_const_length_memcpy_folds_to_slice_and_stays_cycle_exact():
    def body(f):
        f.mov("r1", 0xBEEF)
        f.store("src", 0, "r1")
        f.memcpy("dst", 8, "src", 0, 48)
        f.load("r2", "dst", 8)
        f.ret("r2")

    program = build(body, objects=[("dst", 64), ("src", 64)])
    jit = JitInterpreter()
    ref_memory = fresh_memory(program)
    jit_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    ref, jt = run_both(program, {}, {}, ref_memory, jit_memory, jit=jit)
    assert ref == jt
    assert ref_memory == jit_memory
    assert jit.stats.fallbacks == 0
    compiled = jit.compiled_for(program)
    # The burst loop is gone: cycles folded into the segment constant,
    # the copy lowered to one slice assignment with no range check.
    assert compiled.lowering_stats["memcpy_folded"] == 1
    assert compiled.lowering_stats["memcpy_checks_elided"] == 1
    assert "_bursts" not in compiled.source


def test_proven_memcpy_elides_checks_differentially():
    program = masked_memcpy_program()
    jit = JitInterpreter()
    ref_memory = fresh_memory(program)
    jit_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    for request_id in range(0, 4000, 97):
        headers = {"LambdaHeader": {"request_id": request_id}}
        ref, jt = run_both(program, headers, {}, ref_memory, jit_memory,
                           jit=jit)
        assert ref == jt, f"request_id={request_id}: {ref} != {jt}"
    assert ref_memory == jit_memory
    assert jit.stats.fallbacks == 0
    compiled = jit.compiled_for(program)
    assert compiled.lowering_stats["memcpy_checks_elided"] == 1
    # Dynamic length: the burst charge must stay in the generated code.
    assert compiled.lowering_stats["memcpy_folded"] == 0


def test_elision_guard_catches_undersized_caller_memory():
    """The static proof assumes declared object sizes; callers may
    pass *any* memory dict, so the elided check is guarded by a size
    comparison — an undersized buffer still faults identically."""

    def body(f):
        f.memcpy("dst", 0, "src", 0, 16)
        f.ret(0)

    program = build(body, objects=[("dst", 64), ("src", 64)])
    jit = JitInterpreter()
    ref_memory = {"dst": bytearray(8), "src": bytearray(8)}
    jit_memory = {"dst": bytearray(8), "src": bytearray(8)}
    ref, jt = run_both(program, {}, {}, ref_memory, jit_memory, jit=jit)
    assert ref[0] == "err" and ref == jt
    assert "memcpy out of bounds" in ref[2]
    compiled = jit.compiled_for(program)
    assert compiled.lowering_stats["memcpy_checks_elided"] == 1


def test_unprovable_memcpy_keeps_the_runtime_check():
    """An unmasked hash offset may exceed the object: no elision, and
    the runtime check fires identically in both engines."""

    def body(f):
        f.hload("r1", "LambdaHeader", "request_id")
        f.hash("r2", "r1")
        f.memcpy("dst", "r2", "src", 0, 8)
        f.ret(0)

    program = build(body, objects=[("dst", 64), ("src", 64)])
    jit = JitInterpreter()
    ref_memory = fresh_memory(program)
    jit_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    saw_error = False
    for request_id in range(64):
        headers = {"LambdaHeader": {"request_id": request_id}}
        ref, jt = run_both(program, headers, {}, ref_memory, jit_memory,
                           jit=jit)
        assert ref == jt
        saw_error = saw_error or ref[0] == "err"
    assert saw_error, "hash should overflow a 64 B object sometimes"
    compiled = jit.compiled_for(program)
    assert compiled.lowering_stats["memcpy_checks_elided"] == 0
    # The burst charge still folds (length is the constant 8) — the
    # two lowerings are independent.
    assert compiled.lowering_stats["memcpy_folded"] == 1
