"""Static WCET vs dynamic execution: the bound must actually bound.

For every registered workload the verifier's worst-case cycle estimate
must upper-bound the reference interpreter's observed cycles on fuzzed
request streams — and a verifier-approved program must never trip the
runtime's isolation checks or step limit.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa import ExecutionError, Interpreter, IsolationError
from repro.isa.verify import verify_program
from tests.isa.test_fastpath import all_workload_programs, fresh_memory

_PROGRAMS = all_workload_programs()
_REPORTS = {}


def report_for(key):
    if key not in _REPORTS:
        _REPORTS[key] = verify_program(_PROGRAMS[key])
    return _REPORTS[key]


def request_streams():
    """Hypothesis strategy mirroring the fast-path fuzz inputs."""
    headers = st.fixed_dictionaries({
        "LambdaHeader": st.fixed_dictionaries({
            "wid": st.integers(1, 5),
            "request_id": st.integers(0, (1 << 16) - 1),
            "seq": st.integers(0, 7),
            "is_response": st.integers(0, 1),
            "total_segments": st.integers(1, 4),
        })
    })
    meta = st.fixed_dictionaries({
        "has_LambdaHeader": st.just(1),
        "ingress_port": st.integers(0, 3),
        "service_response": st.integers(0, 1),
        "service_status": st.integers(0, 1),
        "rdma_len": st.sampled_from([0, 1024, 4096]),
    })
    return st.lists(st.tuples(headers, meta), min_size=1, max_size=4)


@pytest.mark.parametrize("key", sorted(_PROGRAMS))
def test_workloads_are_verifier_approved(key):
    report = report_for(key)
    assert report.ok, f"{key} rejected: {report.errors}"
    assert report.wcet_cycles is not None, f"{key} has no WCET bound"


@pytest.mark.parametrize("key", sorted(_PROGRAMS))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(stream=st.data())
def test_static_wcet_bounds_observed_cycles(key, stream):
    program = _PROGRAMS[key]
    report = report_for(key)
    interpreter = Interpreter()
    memory = fresh_memory(program)
    for headers, meta in stream.draw(request_streams()):
        try:
            result = interpreter.run(
                program, headers=headers, meta=meta, memory=memory
            )
        except IsolationError as error:  # pragma: no cover - must not happen
            pytest.fail(f"approved program {key} raised IsolationError: "
                        f"{error}")
        except ExecutionError as error:  # pragma: no cover - must not happen
            assert "step limit" not in str(error), \
                f"approved program {key} hit the step limit"
            raise
        assert result.cycles <= report.wcet_cycles, (
            f"{key}: observed {result.cycles} cycles > "
            f"static WCET {report.wcet_cycles}"
        )


def test_wcet_is_tight_for_the_builtin_workloads():
    """The worst fuzzed input actually reaches the static bound.

    Not a soundness requirement — but if the bound drifts far above
    anything observable, the admission SLO check loses its meaning, so
    pin the bounds to the observed worst case for the shipped workloads.
    """
    import random

    from tests.isa.test_fastpath import fuzz_inputs

    for key in ("std:web_server", "std:kv_client"):
        program = _PROGRAMS[key]
        report = report_for(key)
        interpreter = Interpreter()
        worst = 0
        for headers, meta in fuzz_inputs(random.Random(7), 200):
            result = interpreter.run(
                program, headers=headers, meta=meta,
                memory=fresh_memory(program)
            )
            worst = max(worst, result.cycles)
        assert worst == report.wcet_cycles
