"""Tests for match-action tables and the auto-generated parser."""

import pytest

from repro.net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Packet,
    UDPHeader,
)
from repro.p4 import (
    Action,
    P4Error,
    ParserSpec,
    ParserState,
    Table,
    generate_parser,
)


def make_table():
    table = Table(
        "routes",
        keys=[("LambdaHeader", "wid")],
        actions=[Action("set_route", writes=("route_port",))],
        default_action=None,
    )
    table.add_entry((1,), "set_route", {"route_port": "p1"})
    table.add_entry((2,), "set_route", {"route_port": "p2"})
    return table


def test_table_lookup_hit_writes_meta():
    table = make_table()
    meta = {}
    action = table.lookup({"LambdaHeader": {"wid": 2}}, meta)
    assert action == "set_route"
    assert meta["route_port"] == "p2"


def test_table_lookup_miss_returns_none():
    table = make_table()
    meta = {}
    assert table.lookup({"LambdaHeader": {"wid": 99}}, meta) is None
    assert meta == {}


def test_table_default_action():
    table = Table(
        "t",
        keys=[("LambdaHeader", "wid")],
        actions=[Action("hit", writes=()), Action("miss", writes=())],
        default_action="miss",
    )
    assert table.lookup({"LambdaHeader": {"wid": 5}}, {}) == "miss"


def test_table_missing_header_uses_default():
    table = make_table()
    assert table.lookup({}, {}) is None


def test_table_validates_key_fields():
    with pytest.raises(P4Error):
        Table("t", keys=[("LambdaHeader", "no_such_field")], actions=[])
    with pytest.raises(KeyError):
        Table("t", keys=[("GhostHeader", "x")], actions=[])
    with pytest.raises(P4Error):
        Table("t", keys=[], actions=[])


def test_table_entry_arity_checked():
    table = make_table()
    with pytest.raises(P4Error):
        table.add_entry((1, 2), "set_route", {})


def test_table_unknown_action_rejected():
    table = make_table()
    with pytest.raises(P4Error):
        table.add_entry((3,), "no_such_action", {})


def test_action_missing_param_raises():
    table = make_table()
    table.add_entry((3,), "set_route", {})  # params missing route_port
    with pytest.raises(P4Error):
        table.lookup({"LambdaHeader": {"wid": 3}}, {})


def lambda_packet(wid=7):
    return Packet(
        "gw", "w1",
        HeaderStack([
            EthernetHeader(), IPv4Header(), UDPHeader(), LambdaHeader(wid=wid),
        ]),
        payload_bytes=64,
    )


def test_parser_extracts_fields():
    parser = generate_parser([])
    extracted = parser.parse(lambda_packet(wid=9))
    assert extracted["LambdaHeader"]["wid"] == 9
    assert extracted["IPv4Header"]["ttl"] == 64


def test_parser_valid_meta():
    parser = generate_parser(["RpcHeader"])
    meta = parser.valid_meta(lambda_packet())
    assert meta["has_LambdaHeader"] == 1
    assert meta["has_RpcHeader"] == 0


def test_generate_parser_includes_base_chain():
    parser = generate_parser([])
    assert parser.headers == [
        "EthernetHeader", "IPv4Header", "UDPHeader", "LambdaHeader",
    ]


def test_generate_parser_adds_used_headers_in_order():
    parser = generate_parser(["ServerHdr", "RpcHeader"])
    assert parser.headers.index("RpcHeader") < parser.headers.index("ServerHdr")


def test_generate_parser_unknown_header_rejected():
    with pytest.raises(KeyError):
        generate_parser(["MysteryHeader"])


def test_parser_state_validates_header():
    with pytest.raises(KeyError):
        ParserState("NopeHeader")


def test_parser_function_instruction_count():
    parser = generate_parser([])
    function = parser.generate_function()
    assert function.instruction_count == parser.instruction_count


def test_parser_skips_absent_headers():
    parser = generate_parser(["RpcHeader"])
    extracted = parser.parse(lambda_packet())
    assert "RpcHeader" not in extracted
