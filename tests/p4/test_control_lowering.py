"""Tests for control-block execution, dispatch pipeline, and lowering."""

import pytest

from repro.isa import Function, Interpreter, LambdaProgram, Op, ProgramBuilder, ins
from repro.p4 import (
    Action,
    ApplyTable,
    CTRL_FORWARD,
    CTRL_TO_HOST,
    ControlBlock,
    IfFieldEq,
    IfValid,
    InvokeLambda,
    SendToHost,
    Table,
    build_dispatch_pipeline,
    lower_control,
    lower_table_if_else,
    lower_table_naive,
    make_route_table,
    merge_route_tables,
)


def dispatch_control(ids):
    pipeline = build_dispatch_pipeline(ids, headers_used=[])
    return pipeline.control


def test_control_dispatches_matching_lambda():
    control = dispatch_control({"web": 1, "kv": 2})
    invoked = []

    def invoke(name):
        invoked.append(name)
        return CTRL_FORWARD

    verdict = control.execute(
        {"LambdaHeader": {"wid": 2}}, {}, invoke
    )
    assert verdict == CTRL_FORWARD
    assert invoked == ["kv"]


def test_control_unknown_wid_goes_to_host():
    control = dispatch_control({"web": 1})
    verdict = control.execute({"LambdaHeader": {"wid": 42}}, {}, lambda n: CTRL_FORWARD)
    assert verdict == CTRL_TO_HOST


def test_control_no_lambda_header_goes_to_host():
    control = dispatch_control({"web": 1})
    verdict = control.execute({"UDPHeader": {}}, {}, lambda n: CTRL_FORWARD)
    assert verdict == CTRL_TO_HOST


def test_control_tables_and_lambdas_discovered():
    control = dispatch_control({"web": 1, "kv": 2})
    assert len(control.tables()) == 2  # one naive route table per lambda
    assert sorted(control.invoked_lambdas()) == ["kv", "web"]


def test_merged_routes_pipeline_single_table():
    pipeline = build_dispatch_pipeline(
        {"web": 1, "kv": 2}, headers_used=[], merged_routes=True
    )
    tables = pipeline.control.tables()
    assert len(tables) == 1
    assert tables[0].size == 2


def test_route_table_roundtrip():
    table = make_route_table("route_web", wid=5, port="w3")
    meta = {}
    table.lookup({"LambdaHeader": {"wid": 5}}, meta)
    assert meta["route_port"] == "w3"


def test_merge_route_tables_preserves_entries():
    tables = [
        make_route_table("r1", 1, "a"),
        make_route_table("r2", 2, "b"),
    ]
    merged = merge_route_tables(tables)
    assert merged.size == 2
    meta = {}
    merged.lookup({"LambdaHeader": {"wid": 2}}, meta)
    assert meta["route_port"] == "b"


def test_if_else_lowering_smaller_than_naive():
    table = make_route_table("route_web", wid=1, port="p1")
    naive = [i for i in lower_table_naive(table) if i.is_real]
    ifelse = [i for i in lower_table_if_else(table) if i.is_real]
    assert len(ifelse) < len(naive)


def run_lowered(control, lambdas, headers, meta):
    """Lower a control block and execute it in the interpreter."""
    dispatch = lower_control(control)
    program = LambdaProgram(
        "fw", [dispatch] + lambdas, entry="match_dispatch"
    )
    return Interpreter().run(program, headers=headers, meta=meta)


def make_stub_lambda(name, marker):
    return Function(name, [
        ins(Op.MSTORE, ("meta", "ran"), marker),
        ins(Op.RET),
    ])


def test_lowered_control_executes_dispatch():
    control = dispatch_control({"web": 1, "kv": 2})
    result = run_lowered(
        control,
        [make_stub_lambda("web", 100), make_stub_lambda("kv", 200)],
        headers={"LambdaHeader": {"wid": 2}},
        meta={"valid_LambdaHeader": 1},
    )
    assert result.meta["ran"] == 200
    assert result.verdict == "forward"
    assert result.meta["route_port"] == "p0"


def test_lowered_control_invalid_header_to_host():
    control = dispatch_control({"web": 1})
    result = run_lowered(
        control,
        [make_stub_lambda("web", 1)],
        headers={},
        meta={"valid_LambdaHeader": 0},
    )
    assert result.verdict == "to_host"


def test_lowered_control_unknown_wid_to_host():
    control = dispatch_control({"web": 1})
    result = run_lowered(
        control,
        [make_stub_lambda("web", 1)],
        headers={"LambdaHeader": {"wid": 9}},
        meta={"valid_LambdaHeader": 1},
    )
    assert result.verdict == "to_host"


def test_lowered_table_hit_meta():
    table = make_route_table("route_web", wid=1, port="px")
    body = lower_table_if_else(table) + [ins(Op.RET)]
    program = LambdaProgram("t", [Function("t", body)])
    result = Interpreter().run(
        program, headers={"LambdaHeader": {"wid": 1}}, meta={}
    )
    assert result.meta["route_port"] == "px"
    assert result.meta["route_web_hit"] == 1


def test_control_execute_direct_vs_lowered_agree():
    """The AST interpreter and the lowered-ISA execution must agree."""
    ids = {"web": 1, "kv": 2, "img": 3}
    control = dispatch_control(ids)
    for wid, expected in [(1, "web"), (2, "kv"), (3, "img"), (8, None)]:
        invoked = []
        control.execute(
            {"LambdaHeader": {"wid": wid}}, {},
            lambda name: invoked.append(name) or CTRL_FORWARD,
        )
        lambdas = [make_stub_lambda(name, index)
                   for index, name in enumerate(ids)]
        result = run_lowered(
            control, lambdas,
            headers={"LambdaHeader": {"wid": wid}},
            meta={"valid_LambdaHeader": 1},
        )
        if expected is None:
            assert invoked == []
            assert result.verdict == "to_host"
        else:
            assert invoked == [expected]
            assert result.verdict == "forward"
