"""Tests for the textual P4 control-block parser."""

import pytest

from repro.microc.errors import ParseError
from repro.p4 import (
    ApplyTable,
    CTRL_FORWARD,
    CTRL_TO_HOST,
    IfFieldEq,
    IfValid,
    InvokeLambda,
    SendToHost,
    make_route_table,
    parse_control,
)

#: The paper's Listing 3, verbatim (modulo whitespace).
LISTING_3 = """
control ingress {
    if (valid(lambda_hdr)) {
        if (lambda_hdr.wId == WEB_SERVER_ID) {
            apply(web_server);
            apply(return_web_server_results);
        } else if (lambda_hdr.wId == OTHER_LAMBDA_ID) {
            apply(other_lambda);
            apply(return_other_lambda_results);
        }
    } else { apply(send_pkt_to_host); }
}
"""

CONSTANTS = {"WEB_SERVER_ID": 1, "OTHER_LAMBDA_ID": 2}


def test_listing3_parses_verbatim():
    control = parse_control(LISTING_3, constants=CONSTANTS)
    assert control.name == "ingress"
    outer = control.statements[0]
    assert isinstance(outer, IfValid)
    assert outer.header == "LambdaHeader"
    inner = outer.then[0]
    assert isinstance(inner, IfFieldEq)
    assert inner.field_name == "wid"
    assert inner.value == 1
    assert isinstance(inner.then[0], InvokeLambda)
    assert inner.then[0].name == "web_server"
    assert isinstance(outer.orelse[0], SendToHost)


def test_listing3_executes_like_the_paper_describes():
    control = parse_control(LISTING_3, constants=CONSTANTS)
    invoked = []

    def invoke(name):
        invoked.append(name)
        return CTRL_FORWARD

    verdict = control.execute({"LambdaHeader": {"wid": 2}}, {}, invoke)
    assert verdict == CTRL_FORWARD
    assert invoked == ["other_lambda"]
    verdict = control.execute({"UDPHeader": {}}, {}, invoke)
    assert verdict == CTRL_TO_HOST


def test_parsed_control_lowers_to_npu_code():
    from repro.isa import Function, Interpreter, LambdaProgram, Op, ins
    from repro.p4 import lower_control

    control = parse_control(LISTING_3, constants=CONSTANTS)
    stub = Function("web_server", [ins(Op.MSTORE, ("meta", "ran"), 1),
                                   ins(Op.RET)])
    other = Function("other_lambda", [ins(Op.RET)])
    program = LambdaProgram(
        "fw", [lower_control(control), stub, other], entry="match_dispatch",
    )
    result = Interpreter().run(
        program,
        headers={"LambdaHeader": {"wid": 1}},
        meta={"valid_LambdaHeader": 1},
    )
    assert result.meta["ran"] == 1
    assert result.verdict == "forward"


def test_apply_named_table():
    table = make_route_table("routes", wid=1, port="p0")
    control = parse_control(
        "control ingress { apply(routes); apply(send_pkt_to_host); }",
        tables={"routes": table},
    )
    assert isinstance(control.statements[0], ApplyTable)
    meta = {}
    control.execute({"LambdaHeader": {"wid": 1}}, meta, lambda n: CTRL_FORWARD)
    assert meta["route_port"] == "p0"


def test_numeric_literals_allowed():
    control = parse_control("""
        control ingress {
            if (lambda_hdr.wId == 7) { apply(seven); }
        }
    """)
    assert control.statements[0].value == 7


def test_unbound_constant_rejected():
    with pytest.raises(ParseError, match="unbound constant"):
        parse_control(LISTING_3, constants={"WEB_SERVER_ID": 1})


def test_unknown_header_rejected():
    with pytest.raises(ParseError, match="unknown header"):
        parse_control("control c { if (valid(ghost_hdr)) { } }")


def test_malformed_blocks_rejected():
    with pytest.raises(ParseError):
        parse_control("control c {")
    with pytest.raises(ParseError):
        parse_control("control c { frobnicate; }")
    with pytest.raises(ParseError):
        parse_control("control c { apply(x); } trailing")
    with pytest.raises(ParseError):
        parse_control("control c { if (lambda_hdr.wId != 1) { } }")


def test_custom_aliases():
    control = parse_control(
        "control c { if (valid(req)) { apply(x); } }",
        header_aliases={"req": "RpcHeader"},
    )
    assert control.statements[0].header == "RpcHeader"
