"""Smoke tests: every example script must run to completion.

Examples double as end-to-end acceptance tests — several contain their
own assertions (image verification, counter persistence, etcd
failover), so running them is a real check, not just an import test.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_examples_directory_complete():
    present = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "backend_comparison.py",
        "image_pipeline.py",
        "custom_lambda.py",
        "etcd_failover.py",
        "microc_lambda.py",
        "run_all_experiments.py",
        "chaos_recovery.py",
    } <= present


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "completed  : 100" in out


def test_custom_lambda_runs(capsys):
    run_example("custom_lambda.py")
    assert "persistent lambda state verified." in capsys.readouterr().out


def test_microc_lambda_runs(capsys):
    run_example("microc_lambda.py")
    out = capsys.readouterr().out
    assert "THROTTLED" in out
    assert "verified" in out


def test_image_pipeline_runs(capsys):
    run_example("image_pipeline.py")
    out = capsys.readouterr().out
    assert "verification      : OK" in out


def test_etcd_failover_runs(capsys):
    run_example("etcd_failover.py")
    out = capsys.readouterr().out
    assert "new leader" in out
    assert "all good" in out


def test_chaos_recovery_runs(capsys):
    run_example("chaos_recovery.py")
    out = capsys.readouterr().out
    assert "degrade" in out
    assert "availability 100.00%" in out
    assert "came back home" in out
