"""Tests for the Micro-C lexer and parser."""

import pytest

from repro.microc import (
    BinOp,
    GlobalArray,
    HeaderField,
    If,
    Index,
    LexError,
    MetaField,
    Number,
    ParseError,
    Return,
    Var,
    While,
    parse,
    tokenize,
)


def test_tokenize_basics():
    tokens = tokenize("int x = 42;")
    kinds = [(token.kind, token.value) for token in tokens]
    assert kinds == [
        ("keyword", "int"), ("ident", "x"), ("op", "="),
        ("number", "42"), ("op", ";"), ("eof", ""),
    ]


def test_tokenize_hex_and_operators():
    tokens = tokenize("a << 0x1F == b")
    values = [token.value for token in tokens[:-1]]
    assert values == ["a", "<<", "0x1F", "==", "b"]


def test_tokenize_comments_and_lines():
    tokens = tokenize("// line comment\nint a; /* block\ncomment */ int b;")
    idents = [token.value for token in tokens if token.kind == "ident"]
    assert idents == ["a", "b"]
    assert tokens[0].line == 2  # first real token after the comment


def test_tokenize_rejects_floats():
    with pytest.raises(LexError, match="floating-point"):
        tokenize("int x = 1.5;")


def test_tokenize_rejects_garbage():
    with pytest.raises(LexError):
        tokenize("int x = @;")
    with pytest.raises(LexError, match="unterminated"):
        tokenize("/* never closed")


def test_parse_global_array_with_pragmas():
    program = parse("""
        #pragma hot counters
        #pragma readonly content
        uint64_t counters[16];
        uint8_t content[4096];
        void f() { }
    """)
    counters, content = program.globals
    assert counters == GlobalArray("uint64_t", "counters", 16, hot=True)
    assert content.read_only
    assert content.size_bytes == 4096
    assert counters.size_bytes == 128


def test_parse_function_with_statements():
    program = parse("""
        int handler() {
            int x = hdr.LambdaHeader.request_id & 7;
            meta.out = x;
            return x;
        }
    """)
    function = program.functions[0]
    assert function.name == "handler"
    decl, assign, ret = function.body
    assert isinstance(decl.value, BinOp)
    assert isinstance(decl.value.left, HeaderField)
    assert isinstance(assign.target, MetaField)
    assert isinstance(ret, Return)


def test_parse_if_else_chain():
    program = parse("""
        void f() {
            if (meta.x == 1) { forward(); }
            else if (meta.x == 2) { drop(); }
            else { to_host(); }
        }
    """)
    statement = program.functions[0].body[0]
    assert isinstance(statement, If)
    assert isinstance(statement.orelse[0], If)


def test_parse_while_and_index():
    program = parse("""
        uint64_t table[8];
        void f() {
            int i = 0;
            while (i < 8) {
                table[i] = i;
                i = i + 1;
            }
        }
    """)
    loop = program.functions[0].body[1]
    assert isinstance(loop, While)
    assert isinstance(loop.body[0].target, Index)


def test_parse_operator_precedence():
    program = parse("void f() { meta.x = 1 + 2 * 3; }")
    value = program.functions[0].body[0].value
    assert value.op == "+"
    assert value.right.op == "*"


def test_parse_parentheses_override():
    program = parse("void f() { meta.x = (1 + 2) * 3; }")
    value = program.functions[0].body[0].value
    assert value.op == "*"
    assert value.left.op == "+"


def test_parse_rejects_parameters():
    with pytest.raises(ParseError, match="no parameters"):
        parse("int f(int x) { return x; }")


def test_parse_rejects_compound_conditions():
    with pytest.raises(ParseError):
        parse("void f() { if (meta.a == 1 && meta.b == 2) { } }")
    with pytest.raises(ParseError, match="single comparison"):
        parse("void f() { if (meta.a) { } }")


def test_parse_rejects_local_arrays():
    with pytest.raises(ParseError, match="global object"):
        parse("void f() { int x[4]; }")


def test_parse_rejects_bad_assignment_target():
    with pytest.raises(ParseError, match="assignment target"):
        parse("void f() { 5 = 3; }")


def test_parse_rejects_unknown_pragma():
    with pytest.raises(ParseError, match="pragma"):
        parse("#pragma inline everything\nvoid f() { }")


def test_parse_requires_semicolons():
    with pytest.raises(ParseError):
        parse("void f() { meta.x = 1 }")
