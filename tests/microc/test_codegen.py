"""Tests for Micro-C code generation: compile and execute for real."""

import pytest

from repro.isa import Interpreter, Region, VERDICT_FORWARD
from repro.microc import CodegenError, compile_microc


def run(source, headers=None, meta=None, memory=None, name=None):
    program = compile_microc(source, name=name)
    program.validate()
    result = Interpreter().run(program, headers=headers or {},
                               meta=meta or {}, memory=memory)
    return program, result


def test_arithmetic_and_return():
    _, result = run("int f() { return (6 + 2) * 5; }")
    assert result.return_value == 40


def test_locals_and_expressions():
    _, result = run("""
        int f() {
            int a = 10;
            int b = a * 3;
            int c = b - a;
            return c + (a & 2);
        }
    """)
    assert result.return_value == 22


def test_header_and_meta_access():
    _, result = run(
        """
        int f() {
            int wid = hdr.LambdaHeader.wid;
            meta.seen = wid + 100;
            hdr.LambdaHeader.is_response = 1;
            return wid;
        }
        """,
        headers={"LambdaHeader": {"wid": 7}},
    )
    assert result.return_value == 7
    assert result.meta["seen"] == 107
    assert result.headers["LambdaHeader"]["is_response"] == 1


def test_if_else_both_paths():
    source = """
        int f() {
            if (meta.x > 10) { return 1; }
            else { return 2; }
        }
    """
    assert run(source, meta={"x": 11})[1].return_value == 1
    assert run(source, meta={"x": 10})[1].return_value == 2


def test_all_relational_operators():
    for op, true_pair, false_pair in [
        ("==", (5, 5), (5, 6)),
        ("!=", (5, 6), (5, 5)),
        ("<", (4, 5), (5, 5)),
        ("<=", (5, 5), (6, 5)),
        (">", (6, 5), (5, 5)),
        (">=", (5, 5), (4, 5)),
    ]:
        source = f"int f() {{ if (meta.a {op} meta.b) {{ return 1; }} return 0; }}"
        assert run(source, meta={"a": true_pair[0], "b": true_pair[1]})[1] \
            .return_value == 1, op
        assert run(source, meta={"a": false_pair[0], "b": false_pair[1]})[1] \
            .return_value == 0, op


def test_while_loop_sums():
    _, result = run("""
        int f() {
            int i = 0;
            int total = 0;
            while (i < 10) {
                total = total + i;
                i = i + 1;
            }
            return total;
        }
    """)
    assert result.return_value == 45


def test_global_word_array_persistence():
    source = """
        uint64_t counts[4];
        int f() {
            int idx = hdr.LambdaHeader.request_id & 3;
            counts[idx] = counts[idx] + 1;
            return counts[idx];
        }
    """
    program = compile_microc(source)
    memory = {"counts": bytearray(32)}
    interp = Interpreter()
    for expected in [1, 2, 3]:
        result = interp.run(program, headers={"LambdaHeader": {"request_id": 1}},
                            memory=memory)
        assert result.return_value == expected


def test_function_calls():
    _, result = run("""
        int helper() { return 21; }
        int f() {
            int x = helper();
            return x * 2;
        }
    """, name="f")
    assert result.return_value == 42


def test_reply_builtin_sets_response():
    _, result = run("int f() { reply(256); return 0; }")
    assert result.verdict == VERDICT_FORWARD
    assert result.meta["response_bytes"] == 256
    assert result.headers["LambdaHeader"]["is_response"] == 1


def test_memcpy_builtin():
    source = """
        uint8_t src[16];
        uint8_t dst[16];
        int f() { memcpy(dst, src, 16); forward(); return 0; }
    """
    program = compile_microc(source)
    memory = {"src": bytearray(b"abcdefghijklmnop"), "dst": bytearray(16)}
    Interpreter().run(program, memory=memory)
    assert bytes(memory["dst"]) == b"abcdefghijklmnop"


def test_intrinsic_call_from_source():
    from repro.workloads import grayscale_reference, make_rgba_image

    source = """
        uint8_t image[1024];
        int f() {
            grayscale(image, 256);
            reply(64);
            return 0;
        }
    """
    program = compile_microc(source)
    rgba = make_rgba_image(16, 16, seed=2)
    memory = {"image": bytearray(rgba)}
    Interpreter().run(program, memory=memory)
    assert bytes(memory["image"][:256]) == grayscale_reference(rgba)


def test_pragma_hot_propagates():
    program = compile_microc("""
        #pragma hot state
        uint64_t state[2];
        int f() { state[0] = 1; return 0; }
    """)
    assert program.object("state").hot


def test_readonly_pragma_sets_access():
    from repro.isa import AccessMode

    program = compile_microc("""
        #pragma readonly content
        uint8_t content[64];
        uint8_t out[64];
        int f() { memcpy(out, content, 64); return 0; }
    """)
    assert program.object("content").access is AccessMode.READ


def test_division_rejected():
    with pytest.raises(CodegenError, match="divide"):
        compile_microc("int f() { return 10 / 2; }")


def test_recursion_rejected():
    with pytest.raises(CodegenError, match="recursion"):
        compile_microc("""
            int a() { return b(); }
            int b() { return a(); }
        """)


def test_too_many_locals_rejected():
    declarations = "".join(f"int v{i} = {i};" for i in range(8))
    with pytest.raises(CodegenError, match="too many locals"):
        compile_microc(f"int f() {{ {declarations} return 0; }}")


def test_byte_array_indexing_rejected():
    with pytest.raises(CodegenError, match="word array"):
        compile_microc("""
            uint8_t buf[16];
            int f() { return buf[0]; }
        """)


def test_unknown_builtin_rejected():
    with pytest.raises(CodegenError, match="unknown function"):
        compile_microc("int f() { frobnicate(); return 0; }")


def test_undeclared_variable_rejected():
    with pytest.raises(CodegenError, match="undeclared"):
        compile_microc("int f() { return ghost; }")


def test_compiled_lambda_deploys_on_nic():
    """End to end: Micro-C source -> firmware -> request -> response."""
    from repro.compiler import CompilationUnit, compile_unit

    program = compile_microc("""
        uint64_t hits[8];
        int web() {
            int idx = hdr.LambdaHeader.request_id & 7;
            hits[idx] = hits[idx] + 1;
            meta.count = hits[idx];
            reply(128);
            return 0;
        }
    """, name="web")
    unit = CompilationUnit()
    unit.add_lambda(program, wid=1)
    firmware = compile_unit(unit)
    result = Interpreter().run(
        firmware.program,
        headers={"LambdaHeader": {"wid": 1, "request_id": 3}},
        meta={"has_LambdaHeader": 1},
    )
    assert result.verdict == "forward"
    assert result.meta["count"] == 1
    # The hot word array was stratified into close memory.
    assert firmware.program.object("web.hits").region in (
        Region.LOCAL, Region.CTM,
    )
