"""FaultPlan: validation, ordering, determinism."""

import pytest

from repro.faults import ACTIONS, FaultEvent, FaultPlan


def test_builder_chains_and_orders_by_time():
    plan = (FaultPlan()
            .kill_nic(10.0, "m3-nic")
            .crash_server(2.0, "m2-ctr")
            .restore_nic(20.0, "m3-nic"))
    assert [e.action for e in plan] == \
        ["crash_server", "kill_nic", "restore_nic"]
    assert [e.at for e in plan] == [2.0, 10.0, 20.0]
    assert len(plan) == 3
    assert plan.horizon == 20.0


def test_same_time_events_fire_in_insertion_order():
    plan = (FaultPlan()
            .restore_nic(5.0, "m2-nic")
            .restore_nic(5.0, "m3-nic")
            .kill_island(5.0, "m4-nic", island=1))
    assert [e.target for e in plan] == ["m2-nic", "m3-nic", "m4-nic"]


def test_link_flap_expands_to_down_then_up():
    plan = FaultPlan().link_flap(3.0, "m2-nic", down_for=1.5)
    events = plan.events
    assert [(e.at, e.action) for e in events] == \
        [(3.0, "link_down"), (4.5, "link_up")]


def test_params_are_preserved_and_hashable():
    plan = FaultPlan().kill_island(1.0, "m2-nic", island=2)
    event = plan.events[0]
    assert event.kwargs == {"island": 2}
    assert isinstance(event, FaultEvent)
    hash(event)  # frozen dataclass stays hashable


def test_partition_builder_groups():
    plan = FaultPlan().partition(4.0, ["m1", "m2"], ["m3"])
    assert plan.events[0].kwargs["groups"] == (("m1", "m2"), ("m3",))


def test_validation_errors():
    with pytest.raises(ValueError):
        FaultPlan().add(-1.0, "kill_nic", "m2-nic")
    with pytest.raises(ValueError):
        FaultPlan().add(1.0, "set_on_fire", "m2-nic")
    with pytest.raises(ValueError):
        FaultPlan().link_flap(1.0, "m2-nic", down_for=0.0)
    with pytest.raises(ValueError):
        FaultPlan().partition(1.0, ["m1", "m2"])  # needs >= 2 groups


def test_every_documented_action_has_a_builder():
    plan = (FaultPlan()
            .kill_nic(1, "n").restore_nic(2, "n")
            .kill_island(3, "n", island=0).restore_island(4, "n", island=0)
            .crash_server(5, "s").restart_server(6, "s", reboot_seconds=2.0)
            .link_down(7, "n").link_up(8, "n")
            .partition(9, ["a"], ["b"]).heal(10)
            .crash_raft(11).recover_raft(12, "etcd1"))
    assert {e.action for e in plan} == set(ACTIONS)
