"""FaultInjector: every action dispatches to the right subsystem."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.serverless import Testbed


def make_testbed(**kwargs):
    tb = Testbed(seed=5, n_workers=2, **kwargs)
    return tb


def test_nic_and_island_faults_dispatch():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    plan = (FaultPlan()
            .kill_nic(1.0, "m2-nic")
            .kill_island(2.0, "m3-nic", island=0)
            .restore_island(3.0, "m3-nic", island=0)
            .restore_nic(4.0, "m2-nic"))
    tb.add_fault_injector(plan)

    tb.run(until=1.5)
    assert not tb.nic("m2-nic").online
    assert not tb.nic("m2-nic").serving
    tb.run(until=2.5)
    island0 = tb.nic("m3-nic").islands[0]
    assert all(not core.online for core in island0.cores.values())
    assert tb.nic("m3-nic").serving  # other islands still up
    tb.run(until=5.0)
    assert tb.nic("m2-nic").online
    assert all(core.online for core in island0.cores.values())
    assert [(t, a) for t, a, _ in tb.injector.trace] == [
        (1.0, "kill_nic"), (2.0, "kill_island"),
        (3.0, "restore_island"), (4.0, "restore_nic"),
    ]


def test_server_crash_and_restart_dispatch():
    tb = make_testbed()
    tb.add_container_backend()
    plan = (FaultPlan()
            .crash_server(1.0, "m2-ctr")
            .restart_server(2.0, "m2-ctr", reboot_seconds=0.5))
    tb.add_fault_injector(plan)

    tb.run(until=1.5)
    server = tb.host_server("m2-ctr")
    assert not server.online
    assert server.stats.crashes == 1
    tb.run(until=3.0)
    assert server.online


def test_link_and_partition_faults_dispatch():
    tb = make_testbed()
    plan = (FaultPlan()
            .link_flap(1.0, "memcached", down_for=0.5)
            .partition(2.0, ["m1"], ["memcached"])
            .heal(3.0))
    tb.add_fault_injector(plan)

    tb.run(until=1.2)
    assert not tb.network.link_up("memcached")
    tb.run(until=1.8)
    assert tb.network.link_up("memcached")
    tb.run(until=2.5)
    assert tb.network.switch.partitioned
    tb.run(until=3.5)
    assert not tb.network.switch.partitioned


def test_raft_leader_resolved_at_fire_time():
    tb = make_testbed(with_etcd=True)
    plan = FaultPlan().crash_raft(5.0, "leader")
    tb.add_fault_injector(plan)

    tb.run(until=10.0)
    assert len(tb.injector.trace) == 1
    _, action, crashed = tb.injector.trace[0]
    assert action == "crash_raft"
    assert crashed in tb.etcd_cluster.names
    assert not tb.etcd_cluster.nodes[crashed]._alive


def test_raft_faults_skipped_without_cluster():
    tb = make_testbed()  # no etcd
    plan = FaultPlan().crash_raft(1.0, "leader").recover_raft(2.0, "etcd1")
    tb.add_fault_injector(plan)
    tb.run(until=3.0)
    assert tb.injector.trace == []
    assert [(a, t) for _, a, t in tb.injector.skipped] == [
        ("crash_raft", "leader"), ("recover_raft", "etcd1"),
    ]


def test_injector_counts_faults_in_metrics():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    plan = FaultPlan().kill_nic(1.0, "m2-nic").restore_nic(2.0, "m2-nic")
    tb.add_fault_injector(plan)
    tb.run(until=3.0)
    counter = tb.injector.faults_injected_total
    assert counter.value(labels={"action": "kill_nic"}) == 1
    assert counter.value(labels={"action": "restore_nic"}) == 1


def test_injector_cannot_start_twice():
    tb = make_testbed()
    injector = tb.add_fault_injector(FaultPlan())
    with pytest.raises(RuntimeError):
        injector.start()


def test_same_plan_same_seed_identical_traces():
    def run_once():
        tb = make_testbed()
        tb.add_lambda_nic_backend()
        plan = (FaultPlan()
                .kill_nic(1.0, "m2-nic")
                .link_flap(1.5, "m3-nic", down_for=0.25)
                .restore_nic(2.0, "m2-nic"))
        tb.add_fault_injector(plan)
        tb.run(until=5.0)
        return tb.injector.trace

    assert run_once() == run_once()
