"""CircuitBreaker state machine unit tests."""

from repro.serverless import CLOSED, CircuitBreaker, HALF_OPEN, OPEN
from repro.serverless.breaker import STATE_VALUES


def make(**kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 1.0)
    return CircuitBreaker("m2-nic", **kwargs)


def test_starts_closed_and_admits():
    breaker = make()
    assert breaker.state == CLOSED
    assert not breaker.ejected
    assert breaker.allow(now=0.0)


def test_opens_after_consecutive_failures():
    breaker = make()
    breaker.record_failure(now=0.0)
    breaker.record_failure(now=0.1)
    assert breaker.state == CLOSED
    breaker.record_failure(now=0.2)
    assert breaker.state == OPEN
    assert breaker.ejected
    assert not breaker.allow(now=0.3)
    assert breaker.opens == 1


def test_success_resets_failure_streak():
    breaker = make()
    breaker.record_failure(now=0.0)
    breaker.record_failure(now=0.1)
    breaker.record_success(now=0.2)
    breaker.record_failure(now=0.3)
    breaker.record_failure(now=0.4)
    assert breaker.state == CLOSED


def test_half_open_admits_one_trial_after_cooldown():
    breaker = make()
    for i in range(3):
        breaker.record_failure(now=i * 0.1)
    assert not breaker.allow(now=0.5)     # still cooling down
    assert breaker.allow(now=1.5)         # cool-down elapsed -> trial
    assert breaker.state == HALF_OPEN
    assert not breaker.allow(now=1.6)     # only one trial in flight


def test_half_open_success_closes_and_resets_backoff():
    breaker = make(backoff_factor=2.0)
    for i in range(3):
        breaker.record_failure(now=i * 0.1)
    assert breaker.allow(now=1.5)
    breaker.record_success(now=1.6)
    assert breaker.state == CLOSED
    assert not breaker.ejected
    assert breaker.closes == 1
    # Re-opening starts again from the base cool-down.
    for i in range(3):
        breaker.record_failure(now=2.0 + i * 0.1)
    assert not breaker.allow(now=2.5)
    assert breaker.allow(now=3.3)


def test_half_open_failure_doubles_cooldown():
    breaker = make(backoff_factor=2.0, reset_timeout=1.0)
    for i in range(3):
        breaker.record_failure(now=i * 0.1)
    assert breaker.allow(now=1.5)         # trial at 1.5
    breaker.record_failure(now=1.5)       # trial failed -> reopen, 2 s
    assert breaker.state == OPEN
    assert not breaker.allow(now=3.0)     # 1.5 s elapsed < 2 s
    assert breaker.allow(now=3.6)


def test_cooldown_is_capped():
    breaker = make(backoff_factor=10.0, reset_timeout=1.0,
                   max_reset_timeout=4.0)
    for i in range(3):
        breaker.record_failure(now=i * 0.1)
    for round_no in range(4):  # repeated failed trials
        trial_at = 100.0 * (round_no + 1)
        assert breaker.allow(now=trial_at)
        breaker.record_failure(now=trial_at)
    # Last trial failed at t=400; cool-down is capped at 4 s, not 10^n.
    assert not breaker.allow(now=403.9)
    assert breaker.allow(now=404.1)


def test_transition_callback_and_state_values():
    seen = []
    breaker = CircuitBreaker(
        "t", failure_threshold=1,
        on_transition=lambda target, old, new: seen.append(new),
    )
    breaker.record_failure(now=0.0)
    assert breaker.allow(now=5.0)
    breaker.record_success(now=5.1)
    assert seen == [OPEN, HALF_OPEN, CLOSED]
    assert STATE_VALUES[CLOSED] == 0.0
    assert STATE_VALUES[OPEN] == 1.0
    assert 0.0 < STATE_VALUES[HALF_OPEN] < 1.0
