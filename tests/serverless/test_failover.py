"""End-to-end failover: shrink/expand, degrade, restore."""

import pytest

from repro.serverless import Testbed, closed_loop
from repro.workloads import web_server_spec

FAST_GATEWAY = {
    "request_timeout": 0.05, "max_retries": 6,
    "backoff_base": 0.005, "backoff_max": 0.05,
    "breaker_reset_timeout": 0.25,
}


def make_testbed(n_workers=2, **kwargs):
    kwargs.setdefault("gateway_kwargs", dict(FAST_GATEWAY))
    kwargs.setdefault("failover_kwargs", {"check_interval": 0.1})
    return Testbed(seed=8, n_workers=n_workers, with_failover=True, **kwargs)


def run_scenario(tb, gen):
    process = tb.env.process(gen(tb.env))
    tb.run(until=process)
    return process.value


def test_monitor_shrinks_then_expands_route():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        tb.nic("m2-nic").fail()
        yield env.timeout(0.5)
        assert tb.gateway.route_for(spec.name).targets == ["m3-nic"]

        tb.nic("m2-nic").restore()
        yield env.timeout(0.5)
        assert set(tb.gateway.route_for(spec.name).targets) == \
            {"m2-nic", "m3-nic"}

        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=10)
        return result

    result = run_scenario(tb, scenario)
    assert result.failures == 0
    kinds = [event.kind for event in tb.health.events]
    assert kinds == ["shrink", "expand"]
    assert all(event.duration == 0.0 for event in tb.health.events)
    assert tb.manager.failovers_total.value(
        labels={"workload": spec.name, "kind": "shrink"}) == 1


def test_degrade_to_fallback_and_restore_home():
    tb = make_testbed(n_workers=1)
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")

        tb.nic("m2-nic").fail()
        yield env.timeout(1.0)
        record = tb.manager.record(spec.name)
        assert record.degraded
        assert record.backend_kind == "bare-metal"
        assert tb.gateway.route_for(spec.name).targets == ["m2-bm"]

        # Requests flow on the fallback substrate.
        degraded_load = yield closed_loop(tb.env, tb.gateway, spec.name,
                                          n_requests=10)
        assert degraded_load.failures == 0

        tb.nic("m2-nic").restore()
        yield env.timeout(1.0)
        record = tb.manager.record(spec.name)
        assert not record.degraded
        assert record.backend_kind == "lambda-nic"
        assert tb.gateway.route_for(spec.name).targets == ["m2-nic"]

        home_load = yield closed_loop(tb.env, tb.gateway, spec.name,
                                      n_requests=10)
        assert home_load.failures == 0
        # Back on the NIC: latency drops by orders of magnitude.
        assert home_load.mean_latency < degraded_load.mean_latency / 10

    run_scenario(tb, scenario)
    kinds = [event.kind for event in tb.health.events]
    assert "degrade" in kinds and "restore" in kinds
    assert tb.manager.degraded_workloads.value() == 0
    assert tb.manager.failover_seconds.count(labels={"kind": "degrade"}) == 1
    # With a warm standby the degrade is a pure re-route: fast.
    assert tb.health.mean_time_to_failover() < 0.5


def test_cold_degrade_without_standby_still_works():
    tb = make_testbed(n_workers=1)
    tb.add_lambda_nic_backend()
    tb.add_container_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        tb.nic("m2-nic").fail()
        # Container cold start is ~30 s; give the failover time to run.
        yield env.timeout(45.0)
        record = tb.manager.record(spec.name)
        assert record.degraded
        assert record.backend_kind == "container"
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=5)
        assert result.failures == 0

    run_scenario(tb, scenario)
    degrades = [e for e in tb.health.events if e.kind == "degrade"]
    assert len(degrades) == 1
    assert degrades[0].duration > 10.0  # the cold start dominates


def test_no_fallback_keeps_probing_without_crashing():
    tb = make_testbed(n_workers=1)
    tb.add_lambda_nic_backend()  # no fallback backend registered
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        tb.nic("m2-nic").fail()
        yield env.timeout(1.0)
        record = tb.manager.record(spec.name)
        assert not record.degraded  # nowhere to go
        tb.nic("m2-nic").restore()
        yield env.timeout(1.0)
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=5)
        assert result.failures == 0

    run_scenario(tb, scenario)
    assert tb.health.errors == 0


def test_undeploy_tears_down_standby_too():
    tb = make_testbed(n_workers=1)
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")
        yield tb.manager.undeploy(spec.name)

    run_scenario(tb, scenario)
    assert tb.manager.deployments == {}
    with pytest.raises(KeyError):
        tb.gateway.route_for(spec.name)
    # The bare-metal server no longer hosts the standby.
    server = tb.host_server("m2-bm")
    assert spec.name not in server._deployments


def test_standby_cannot_target_home_backend():
    tb = make_testbed(n_workers=1)
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        with pytest.raises(ValueError):
            yield tb.manager.prepare_standby(spec.name, "lambda-nic")

    run_scenario(tb, scenario)
