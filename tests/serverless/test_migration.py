"""Live migration: state machine, draining, handoff, rollback, recovery."""

import pytest

from repro.serverless import (
    ABORTED,
    COMPLETED,
    CUTOVER,
    DRAINING,
    MigrationPolicy,
    PLANNED,
    PREPARED,
    PlacementScorer,
    STATE_HANDOFF,
    AutoScaler,
    Testbed,
    closed_loop,
    open_loop,
)
from repro.workloads import standard_workloads, web_server_spec

FAST_GATEWAY = {
    "request_timeout": 0.05, "max_retries": 6,
    "backoff_base": 0.005, "backoff_max": 0.05,
    "breaker_reset_timeout": 0.25,
}

FULL_HISTORY = [PLANNED, PREPARED, DRAINING, STATE_HANDOFF, CUTOVER,
                COMPLETED]


def make_testbed(n_workers=2, **kwargs):
    kwargs.setdefault("gateway_kwargs", dict(FAST_GATEWAY))
    return Testbed(seed=8, n_workers=n_workers, with_migration=True, **kwargs)


def run_scenario(tb, gen):
    process = tb.env.process(gen(tb.env))
    tb.run(until=process)
    return process.value


# -- the happy path ---------------------------------------------------------


def test_live_migration_nic_to_host_under_load():
    """A lambda moves NIC -> host while requests flow; none are lost."""
    tb = make_testbed(migration_kwargs={"drain_timeout": 0.05})
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")
        load = open_loop(env, tb.gateway, spec.name, rate_rps=200.0,
                         duration=0.5, rng=tb.rng.stream("load"))
        yield env.timeout(0.1)
        migration = yield tb.migrator.migrate(spec.name,
                                              target_kind="bare-metal",
                                              reason="test")
        result = yield load
        return migration, result

    migration, load = run_scenario(tb, scenario)
    assert migration is not None
    assert migration.outcome == "completed"
    assert [state for _, state in migration.history] == FULL_HISTORY
    assert load.failures == 0
    record = tb.manager.record(spec.name)
    assert record.backend_kind == "bare-metal"
    assert record.last_migration_reason == "test"
    assert record.last_target_kind == "bare-metal"
    assert set(record.last_targets) == set(migration.targets)
    assert set(tb.gateway.route_for(spec.name).targets) <= {"m2-bm", "m3-bm"}
    # The drain held at least some of the open-loop arrivals, and every
    # held request completed exactly once (no duplicates observed).
    assert tb.gateway.duplicate_responses_total.total == 0
    assert tb.migrator.migrations_total.value(
        labels={"reason": "test", "outcome": "completed"}) == 1


def test_migration_back_home_reuses_home_deployment():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")
        away = yield tb.migrator.migrate(spec.name, target_kind="bare-metal")
        home = yield tb.migrator.migrate(spec.name, target_kind="lambda-nic")
        return away, home

    away, home = run_scenario(tb, scenario)
    assert away.outcome == home.outcome == "completed"
    record = tb.manager.record(spec.name)
    assert record.backend_kind == "lambda-nic"
    assert not record.degraded
    # Home migration reused the original NIC deployment: no re-deploy,
    # so it is fast (sub-millisecond: drain poll + fence check only).
    assert home.duration < 0.05
    proc = closed_loop(tb.env, tb.gateway, spec.name, n_requests=5)
    tb.run(until=proc)
    assert proc.value.failures == 0


def test_nic_to_nic_migration_ships_persistent_state():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        # Touch the lambda so its persistent objects hold real content.
        yield closed_loop(env, tb.gateway, spec.name, n_requests=5)
        migration = yield tb.migrator.migrate(
            spec.name, target_kind="lambda-nic", target="m3-nic")
        return migration

    migration = run_scenario(tb, scenario)
    assert migration is not None and migration.outcome == "completed"
    assert migration.state_transferred
    assert migration.state_bytes > 0
    assert tb.gateway.route_for(spec.name).targets == ["m3-nic"]
    assert tb.migrator.state_bytes_total.total == migration.state_bytes
    # The shipped bytes match the source's objects, byte for byte.
    src = dict(tb.nic("m2-nic").export_lambda_state(spec.name)[1])
    dst = dict(tb.nic("m3-nic").export_lambda_state(spec.name)[1])
    assert src == dst


def test_nic_to_nic_requires_explicit_target():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        outcome = yield tb.migrator.migrate(spec.name,
                                            target_kind="lambda-nic")
        return outcome

    assert run_scenario(tb, scenario) is None
    assert tb.migrator.migrations == []


# -- rollback ---------------------------------------------------------------


def test_migration_to_dead_target_rolls_back():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        tb.nic("m3-nic").fail()
        outcome = yield tb.migrator.migrate(
            spec.name, target_kind="lambda-nic", target="m3-nic")
        load = yield closed_loop(env, tb.gateway, spec.name, n_requests=5)
        return outcome, load

    outcome, load = run_scenario(tb, scenario)
    assert outcome is None
    migration = tb.migrator.migration_for(spec.name)
    assert migration.state == ABORTED
    assert migration.outcome == "rolled-back"
    assert migration.error == "no healthy target"
    # The source route was never touched: the lambda keeps serving.
    assert load.failures == 0
    assert tb.migrator.migrations_total.value(
        labels={"reason": "manual", "outcome": "rolled-back"}) == 1


def test_epoch_fence_churn_rolls_back_and_releases_held_requests():
    """Concurrent writes during the handoff trip the epoch fence every
    attempt; the migration aborts and requests held by the drain are
    released back onto the (still serving) source."""
    tb = make_testbed(migration_kwargs={"drain_timeout": 0.02,
                                        "handoff_max_retries": 1})
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        yield closed_loop(env, tb.gateway, spec.name, n_requests=2)
        nic = tb.nic("m2-nic")
        name = next(iter(nic.export_lambda_state(spec.name)[1]))
        churning = [True]

        def churn():
            while churning[0]:
                nic.lambda_memory(name)  # bumps the state epoch
                yield env.timeout(1e-5)

        env.process(churn())
        proc = tb.migrator.migrate(spec.name, target_kind="lambda-nic",
                                   target="m3-nic")
        # A request arriving mid-handoff queues behind the gateway hold.
        yield env.timeout(5e-5)
        assert tb.gateway.held(spec.name)
        held = tb.gateway.request(spec.name)
        outcome = yield proc
        result = yield held
        churning[0] = False
        return outcome, result

    outcome, outcome_request = run_scenario(tb, scenario)
    assert outcome is None
    migration = tb.migrator.migration_for(spec.name)
    assert migration.state == ABORTED
    assert migration.error == "epoch fence never settled"
    assert migration.handoff_retries == 2  # initial + 1 retry, both fenced
    assert tb.migrator.handoff_retries_total.total == 2
    # The held request was released by the rollback and completed on
    # the untouched source route.
    assert tb.gateway.held_requests_total.total == 1
    assert not tb.gateway.held(spec.name)
    assert outcome_request.latency > 0
    assert tb.gateway.route_for(spec.name).targets == ["m2-nic", "m3-nic"]


# -- dual-routing (mirror) drain --------------------------------------------


def test_dual_mode_dedups_mirrored_responses_exactly_once():
    tb = make_testbed(migration_kwargs={"drain_timeout": 0.05})
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        # Keep the source busy so the drain actually waits...
        first = [tb.gateway.request(spec.name) for _ in range(8)]
        yield env.timeout(1e-6)
        proc = tb.migrator.migrate(
            spec.name, target_kind="lambda-nic", target="m3-nic",
            drain_mode="dual")
        # ... and requests arriving mid-drain get dual-routed (no
        # queueing delay in dual mode, unlike the hold).
        yield env.timeout(1e-5)
        assert not tb.gateway.held(spec.name)
        second = [tb.gateway.request(spec.name) for _ in range(5)]
        migration = yield proc
        outcomes = yield env.all_of(first + second)
        return migration, list(outcomes.todict().values())

    migration, outcomes = run_scenario(tb, scenario)
    assert migration is not None and migration.outcome == "completed"
    assert migration.drain_mode == "dual"
    # Requests in flight during the drain were sent to both source and
    # target; the second copy of each response was absorbed, so the
    # caller saw every request complete exactly once: one duplicate
    # absorbed per mirrored request, and all 13 outcomes delivered.
    mirrored = tb.gateway.mirrored_requests_total.total
    assert mirrored >= 5
    assert tb.gateway.duplicate_responses_total.total == mirrored
    assert len(outcomes) == 13
    assert all(outcome.latency > 0 for outcome in outcomes)


# -- crash + recovery -------------------------------------------------------


def test_controller_crash_pre_cutover_recovers_to_rollback():
    tb = make_testbed(with_etcd=True)
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.etcd_cluster.wait_for_leader()
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")
        proc = tb.migrator.migrate(spec.name, target_kind="bare-metal")
        yield env.timeout(1e-4)  # let it journal PLANNED
        tb.migrator.stop()
        outcome = yield proc
        assert outcome is None  # frozen mid-flight, not rolled back
        # A restarted controller reconciles from the journal.
        tb.migrator._stopped = False
        first = yield tb.migrator.recover(spec.name)
        second = yield tb.migrator.recover(spec.name)
        load = yield closed_loop(env, tb.gateway, spec.name, n_requests=5)
        return first, second, load

    first, second, load = run_scenario(tb, scenario)
    assert first == "rolled-back"
    assert second == "none"  # idempotent: journal is terminal now
    assert not tb.gateway.held(spec.name)
    assert tb.manager.record(spec.name).backend_kind == "lambda-nic"
    assert load.failures == 0


def test_recover_completes_forward_from_cutover_journal():
    """A CUTOVER journal entry means the flip was decided: recovery
    finishes the migration forward instead of rolling back."""
    tb = make_testbed(n_workers=1, with_etcd=True)
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.etcd_cluster.wait_for_leader()
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")
        yield tb.manager.etcd.set(f"/migration/{spec.name}", {
            "state": CUTOVER, "source_kind": "lambda-nic",
            "target_kind": "bare-metal", "targets": ["m2-bm"],
            "reason": "recovered-test", "forced": False,
        })
        action = yield tb.migrator.recover(spec.name)
        load = yield closed_loop(env, tb.gateway, spec.name, n_requests=5)
        return action, load

    action, load = run_scenario(tb, scenario)
    assert action == "completed"
    record = tb.manager.record(spec.name)
    assert record.backend_kind == "bare-metal"
    assert tb.gateway.route_for(spec.name).targets == ["m2-bm"]
    assert load.failures == 0
    migration = tb.migrator.migration_for(spec.name)
    assert migration.outcome == "completed"
    assert migration.reason == "recovered-test"


def test_recover_with_no_journal_is_a_noop():
    tb = make_testbed(with_etcd=True)
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.etcd_cluster.wait_for_leader()
        yield tb.manager.deploy(spec, "lambda-nic")
        return (yield tb.migrator.recover(spec.name))

    assert run_scenario(tb, scenario) == "none"
    assert tb.migrator.migrations == []


# -- forced migrations == PR 1 failover -------------------------------------


def test_forced_migration_replays_legacy_failover_contract():
    tb = make_testbed(n_workers=1, with_failover=True,
                      failover_kwargs={"check_interval": 0.1})
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")
        tb.nic("m2-nic").fail()
        yield env.timeout(1.0)
        record = tb.manager.record(spec.name)
        assert record.degraded and record.backend_kind == "bare-metal"
        degraded_load = yield closed_loop(env, tb.gateway, spec.name,
                                          n_requests=5)
        tb.nic("m2-nic").restore()
        yield env.timeout(1.0)
        return degraded_load

    degraded_load = run_scenario(tb, scenario)
    assert degraded_load.failures == 0
    record = tb.manager.record(spec.name)
    assert not record.degraded
    assert record.backend_kind == "lambda-nic"
    # The degrade/restore ran through the migration state machine...
    outcomes = [(m.reason, m.forced, m.outcome)
                for m in tb.migrator.migrations]
    assert ("fault", True, "completed") in outcomes
    assert ("restore", True, "completed") in outcomes
    degrade = tb.migrator.migrations[0]
    assert [state for _, state in degrade.history] == FULL_HISTORY
    assert degrade.fault != ""
    # ... while emitting the PR 1 failover metrics exactly as before.
    assert tb.manager.failovers_total.value(
        labels={"workload": spec.name, "kind": "degrade"}) == 1
    assert tb.manager.failovers_total.value(
        labels={"workload": spec.name, "kind": "restore"}) == 1
    assert tb.manager.degraded_workloads.value() == 0
    assert tb.manager.failover_seconds.count(labels={"kind": "degrade"}) == 1
    assert tb.health.mean_time_to_failover() < 0.5
    # The failover event records what fired it and where traffic went.
    degrade_events = [e for e in tb.health.events if e.kind == "degrade"]
    assert degrade_events and degrade_events[0].fault != ""
    assert degrade_events[0].target_kind == "bare-metal"
    assert record.last_fault != ""
    assert record.last_targets == ["m2-nic"]  # home again after restore


# -- placement scoring ------------------------------------------------------


class _StubAdmission:
    wcet_seconds = 2e-6


class _StubRecord:
    admission = _StubAdmission()


class _StubBackend:
    def __init__(self, loads):
        self.loads = loads

    def target_load(self, target):
        return self.loads[target]

    def healthy_targets(self):
        return sorted(self.loads)


class _StubManager:
    def __init__(self, backends):
        self.backends = backends

    def record(self, workload):
        return _StubRecord()

    def backend(self, kind):
        return self.backends[kind]


class _StubMonitoring:
    def __init__(self, rps):
        self.rps = rps

    def rate(self, name, labels=None, window_seconds=None):
        return self.rps


def test_scorer_headroom_is_capacity_minus_wcet_occupancy():
    manager = _StubManager({
        "lambda-nic": _StubBackend({"m2-nic": (10, 64), "m3-nic": (2, 64)}),
        "bare-metal": _StubBackend({"m2-bm": (3, 4)}),
    })
    scorer = PlacementScorer(manager, monitoring=_StubMonitoring(1e6))
    # (64 - 10) - 1e6 * 2e-6 = 52; (64 - 2) - 2 = 60; (4 - 3) - 2 = -1.
    assert scorer.headroom("w", "lambda-nic", "m2-nic") == pytest.approx(52.0)
    assert scorer.headroom("w", "lambda-nic", "m3-nic") == pytest.approx(60.0)
    assert scorer.headroom("w", "bare-metal", "m2-bm") == pytest.approx(-1.0)
    assert scorer.rank("w", "lambda-nic", ["m2-nic", "m3-nic"]) == \
        ["m3-nic", "m2-nic"]
    assert scorer.best_kind("w") == "lambda-nic"
    assert scorer.best_kind("w", exclude="lambda-nic") == "bare-metal"


def test_scorer_without_monitoring_scores_live_load_only():
    manager = _StubManager({
        "lambda-nic": _StubBackend({"m2-nic": (0, 64), "m3-nic": (0, 64)}),
    })
    scorer = PlacementScorer(manager)
    assert scorer.headroom("w", "lambda-nic", "m2-nic") == pytest.approx(64.0)
    # Ties break by name so rankings are deterministic.
    assert scorer.rank("w", "lambda-nic", ["m3-nic", "m2-nic"]) == \
        ["m2-nic", "m3-nic"]


def test_autoscaler_places_replicas_by_headroom():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    spec = web_server_spec()
    tb.run(until=tb.manager.deploy(spec, "lambda-nic"))
    # Pool order deliberately lists m3 first: without a scorer the
    # autoscaler would pick ["m3-nic"]; with one, the deterministic
    # headroom ranking (tie -> name order) picks ["m2-nic"].
    pool = ["m3-nic", "m2-nic"]
    unscored = AutoScaler(tb.env, tb.gateway, pool)
    scored = AutoScaler(tb.env, tb.gateway, pool, scorer=tb.scorer)
    assert unscored._pick_workers(spec.name, 1) == ["m3-nic"]
    assert scored._pick_workers(spec.name, 1) == ["m2-nic"]
    assert scored._pick_workers(spec.name, 2) == ["m2-nic", "m3-nic"]
    # Unknown workloads fall back to pool order rather than raising.
    assert scored._pick_workers("nope", 1) == ["m3-nic"]


# -- the migration policy ---------------------------------------------------


def test_policy_queue_depth_triggers_migration_decision():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "bare-metal")
        policy = MigrationPolicy(env, tb.manager, tb.gateway,
                                 queue_depth_threshold=4,
                                 scorer=tb.scorer)
        proc = closed_loop(env, tb.gateway, spec.name, n_requests=40,
                           concurrency=10)
        yield env.timeout(0.002)  # host latencies are ms: all in flight
        decisions = policy.evaluate()
        again = policy.evaluate()  # cooldown: no duplicate decision
        yield proc
        return decisions, again

    decisions, again = run_scenario(tb, scenario)
    assert len(decisions) == 1
    assert decisions[0].reason == "queue"
    assert decisions[0].target_kind == "lambda-nic"
    assert again == []


def test_policy_p99_over_slo_triggers_migration_decision():
    tb = make_testbed()
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "bare-metal")
        policy = MigrationPolicy(env, tb.manager, tb.gateway,
                                 slo_seconds={spec.name: 1e-6},
                                 min_window_requests=20,
                                 scorer=tb.scorer)
        yield closed_loop(env, tb.gateway, spec.name, n_requests=30)
        return policy.evaluate()

    decisions = run_scenario(tb, scenario)
    assert len(decisions) == 1
    assert decisions[0].reason == "slo"
    assert decisions[0].target_kind == "lambda-nic"
    assert "p99=" in decisions[0].detail


def test_policy_sees_injected_faults():
    from repro.faults import FaultPlan

    tb = make_testbed()
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        tb.add_fault_injector(FaultPlan().kill_nic(env.now + 0.5, "m2-nic"))
        yield env.timeout(1.0)

    run_scenario(tb, scenario)
    assert [(action, target) for _, action, target
            in tb.migration_policy.faults_seen] == [("kill_nic", "m2-nic")]


def test_concurrent_migration_for_same_workload_is_rejected():
    tb = make_testbed(migration_kwargs={"drain_timeout": 0.5})
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        first = tb.migrator.migrate(spec.name, target_kind="bare-metal")
        yield env.timeout(1e-4)
        second = yield tb.migrator.migrate(spec.name,
                                           target_kind="bare-metal")
        assert second is None  # already migrating
        migration = yield first
        return migration

    migration = run_scenario(tb, scenario)
    assert migration is not None and migration.outcome == "completed"
    assert len(tb.migrator.migrations) == 1
