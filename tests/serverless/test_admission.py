"""Verifier-backed admission control at the workload manager.

Under the default 1 ms NIC SLO the paper's interactive workloads
(web_server ~13.5 us, kv_client ~0.5 us WCET) are admitted to the NIC,
while image_transformer (~31 ms WCET at 633 MHz) is verified-correct
but too slow for run-to-completion cores — it must transparently land
on a host backend. Programs with error-grade findings are rejected
before anything is packaged or flashed.
"""

import pytest

from repro.serverless import (
    AdmissionError,
    AdmissionPolicy,
    NIC_CLOCK_HZ,
    Testbed,
)
from repro.workloads import (
    WorkloadSpec,
    image_transformer_spec,
    kv_client_spec,
    web_server_spec,
)
from repro.workloads.webserver import web_server_host


def buggy_nic_program(name="buggy"):
    """Reads r3 without initializing it — an error-grade finding."""
    from repro.isa import ProgramBuilder

    builder = ProgramBuilder(name)
    fn = builder.function(name)
    fn.add("r0", "r3", 1)
    fn.ret("r0")
    builder.close(fn)
    return builder.build()


def buggy_spec(name="buggy"):
    return WorkloadSpec(
        name=name,
        kind="web",
        nic_factory=lambda name=name: buggy_nic_program(name),
        host_factory=web_server_host,
    )


# -- pure policy -------------------------------------------------------------


def test_interactive_workloads_admitted_to_nic():
    policy = AdmissionPolicy()
    for spec in (web_server_spec(), kv_client_spec()):
        decision = policy.evaluate(spec, "lambda-nic",
                                   available_kinds=("lambda-nic",))
        assert decision.reason == "admitted"
        assert decision.admitted_kind == "lambda-nic"
        assert not decision.rerouted
        assert decision.wcet_seconds < policy.nic_slo_seconds
        assert decision.report is not None and decision.report.ok


def test_slow_workload_rerouted_to_host():
    policy = AdmissionPolicy()
    decision = policy.evaluate(
        image_transformer_spec(), "lambda-nic",
        available_kinds=("lambda-nic", "bare-metal", "container"),
    )
    assert decision.reason == "rerouted-wcet"
    assert decision.admitted_kind == "bare-metal"
    assert decision.rerouted
    assert decision.wcet_seconds > policy.nic_slo_seconds


def test_slow_workload_without_fallback_rejected():
    policy = AdmissionPolicy()
    with pytest.raises(AdmissionError, match="exceeds the"):
        policy.evaluate(image_transformer_spec(), "lambda-nic",
                        available_kinds=("lambda-nic",))


def test_buggy_workload_rejected_with_report():
    policy = AdmissionPolicy()
    with pytest.raises(AdmissionError, match="failed verification") as info:
        policy.evaluate(buggy_spec(), "lambda-nic",
                        available_kinds=("lambda-nic", "bare-metal"))
    report = info.value.report
    assert report is not None and not report.ok
    assert any(f.code == "uninit-read" for f in report.errors)


def test_host_deploys_bypass_verification():
    decision = AdmissionPolicy().evaluate(buggy_spec(), "container")
    assert decision.reason == "not-nic"
    assert decision.admitted_kind == "container"
    assert decision.report is None


def test_raising_the_slo_admits_the_image_workload():
    policy = AdmissionPolicy(nic_slo_seconds=0.1)
    decision = policy.evaluate(image_transformer_spec(), "lambda-nic",
                               available_kinds=("lambda-nic",))
    assert decision.reason == "admitted"
    # Sanity: the WCET is ~31 ms at the NIC clock.
    assert 0.01 < decision.wcet_seconds < 0.1
    assert NIC_CLOCK_HZ == pytest.approx(633e6)


# -- wired into the workload manager ----------------------------------------


def admission_testbed(seed=21, **policy_kwargs):
    tb = Testbed(
        seed=seed,
        manager_kwargs={"admission": AdmissionPolicy(**policy_kwargs)},
    )
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    return tb


def test_manager_admits_interactive_workload_to_nic():
    tb = admission_testbed()

    def scenario(env):
        record = yield tb.manager.deploy(web_server_spec(), "lambda-nic")
        return record

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    record = process.value
    assert record.backend_kind == "lambda-nic"
    assert record.admission is not None
    assert record.admission.reason == "admitted"
    assert tb.manager.admission_total.total == 1


def test_manager_reroutes_slow_workload_to_host():
    tb = admission_testbed()

    def scenario(env):
        record = yield tb.manager.deploy(
            image_transformer_spec(), "lambda-nic"
        )
        return record

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    record = process.value
    # Asked for the NIC, landed on the host — transparently.
    assert record.admission.requested_kind == "lambda-nic"
    assert record.backend_kind == "bare-metal"
    assert record.home_backend == "bare-metal"
    assert record.admission.reason == "rerouted-wcet"
    # The NIC never saw the workload.
    assert all(nic.firmware is None for nic in tb.nics)


def test_manager_rejects_buggy_workload_before_deploying():
    tb = admission_testbed()

    def scenario(env):
        with pytest.raises(AdmissionError):
            yield tb.manager.deploy(buggy_spec(), "lambda-nic")

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert "buggy" not in tb.manager.deployments
    assert all(nic.firmware is None for nic in tb.nics)
    assert tb.manager.admission_total.total == 1


def test_manager_without_policy_is_unchanged():
    tb = Testbed(seed=22)
    tb.add_lambda_nic_backend()

    def scenario(env):
        record = yield tb.manager.deploy(
            image_transformer_spec(), "lambda-nic"
        )
        return record

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    record = process.value
    assert record.backend_kind == "lambda-nic"
    assert record.admission is None


# -- differential guard for verifier deepening -------------------------------


def interval_flagged_nic_program(name="flagged"):
    """Verifies clean pre-intervals (warning-grade unknown offset);
    the interval pass proves the offset entirely out of bounds."""
    from repro.isa import ProgramBuilder

    builder = ProgramBuilder(name)
    builder.object("small", 8)
    fn = builder.function(name)
    fn.hload("r1", "LambdaHeader", "request_id")
    fn.hash("r2", "r1")
    fn.band("r2", "r2", 7)
    fn.add("r2", "r2", 64)  # proven range [64, 71] into 8 B
    fn.load("r0", "small", "r2")
    fn.ret("r0")
    builder.close(fn)
    return builder.build()


def interval_flagged_spec(name="flagged"):
    return WorkloadSpec(
        name=name,
        kind="web",
        nic_factory=lambda name=name: interval_flagged_nic_program(name),
        host_factory=web_server_host,
    )


def test_differential_guard_keeps_previously_admitted_lambdas():
    """Sharper analysis must only tighten diagnostics, never flip a
    lambda the pre-interval verifier admitted to rejected."""
    from repro.serverless.admission import VerifyOptions
    from repro.isa.verify import verify_program

    program = interval_flagged_nic_program()
    # Precondition: the two analysis depths genuinely disagree.
    assert not verify_program(program).ok
    assert verify_program(program, VerifyOptions(use_intervals=False)).ok

    decision = AdmissionPolicy().evaluate(
        interval_flagged_spec(), "lambda-nic",
        available_kinds=("lambda-nic",),
    )
    assert decision.reason == "admitted"
    assert decision.report.ok


def test_differential_guard_can_be_disabled():
    policy = AdmissionPolicy(differential_guard=False)
    with pytest.raises(AdmissionError) as excinfo:
        policy.evaluate(interval_flagged_spec(), "lambda-nic",
                        available_kinds=("lambda-nic",))
    assert "oob-load" in str(excinfo.value.report.errors[0])


def test_guard_does_not_mask_genuine_errors():
    """Bugs both analysis depths agree on still reject."""
    with pytest.raises(AdmissionError):
        AdmissionPolicy().evaluate(buggy_spec(), "lambda-nic",
                                   available_kinds=("lambda-nic",))
