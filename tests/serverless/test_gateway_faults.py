"""Gateway under failure: backoff, retry/late counters, breakers."""

import pytest

from repro.net import Network
from repro.serverless import GatewayTimeout, Gateway, Testbed, closed_loop
from repro.sim import Environment, RngRegistry
from repro.workloads import web_server_spec


def make_gateway(**kwargs):
    env = Environment()
    network = Network(env)
    return Gateway(env, network.add_node("gw"), **kwargs)


def test_backoff_schedule_deterministic_without_rng():
    gw = make_gateway(backoff_base=0.02, backoff_factor=2.0,
                      backoff_max=0.1, rng=None)
    delays = [gw._backoff_delay(attempt) for attempt in range(1, 6)]
    assert delays == [0.02, 0.04, 0.08, 0.1, 0.1]  # capped at backoff_max


def test_backoff_jitter_stays_within_half_to_full_delay():
    rng = RngRegistry(seed=9).stream("gw")
    gw = make_gateway(backoff_base=0.02, backoff_factor=2.0,
                      backoff_max=1.0, rng=rng)
    for attempt in range(1, 5):
        full = 0.02 * 2.0 ** (attempt - 1)
        for _ in range(50):
            delay = gw._backoff_delay(attempt)
            assert full / 2 <= delay <= full


def test_retries_and_late_responses_are_counted():
    """A timeout shorter than the NIC round-trip: every attempt times
    out, the retries are counted per attempt, and the responses that
    arrive after their waiter fired are counted as late."""
    tb = Testbed(seed=12, n_workers=1,
                 gateway_kwargs={"request_timeout": 2e-6, "max_retries": 3,
                                 "backoff_base": 0.001, "backoff_max": 0.01})
    tb.add_lambda_nic_backend()
    spec = web_server_spec()
    seen = {}

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        try:
            yield tb.gateway.request(spec.name)
            seen["ok"] = True
        except GatewayTimeout:
            seen["ok"] = False
        yield env.timeout(1.0)  # let straggler responses drain

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)

    labels = {"workload": spec.name}
    assert seen["ok"] is False
    # One initial attempt + 3 retries, each counted individually.
    assert tb.gateway.retries_total.value(labels=labels) == 4
    # Failures carry a ``reason`` label; sum across it for the total.
    assert tb.gateway.failures_total.sum_matching(labels=labels) == 1
    assert tb.gateway.failures_total.value(
        labels={**labels, "reason": "timeout"}) == 1
    # The NIC answered every attempt — just after the waiter timed out.
    assert tb.gateway.late_responses_total.value() == 4


def test_breaker_ejects_dead_target_and_requests_keep_flowing():
    tb = Testbed(seed=13, n_workers=2,
                 gateway_kwargs={"request_timeout": 0.01, "max_retries": 4,
                                 "backoff_base": 0.001, "backoff_max": 0.01,
                                 "breaker_threshold": 2,
                                 "breaker_reset_timeout": 100.0})
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        tb.nic("m2-nic").fail()
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=20)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    result = process.value

    # Every request completed via the survivor; the dead NIC was
    # ejected after `breaker_threshold` failures and skipped afterwards.
    assert result.completed == 20
    assert result.failures == 0
    assert tb.gateway.ejected_targets() == ["m2-nic"]
    breaker = tb.gateway.breaker_for("m2-nic")
    assert breaker.ejected
    assert tb.gateway.breaker_state.value(
        labels={"target": "m2-nic"}) == 1.0
    # Only the pre-ejection attempts hit the dead target.
    assert tb.gateway.retries_total.value(
        labels={"workload": spec.name}) == 2


def test_probe_closes_breaker_after_target_recovers():
    tb = Testbed(seed=14, n_workers=2,
                 gateway_kwargs={"request_timeout": 0.01, "max_retries": 4,
                                 "breaker_threshold": 1,
                                 "breaker_reset_timeout": 1000.0})
    tb.add_lambda_nic_backend()
    spec = web_server_spec()
    outcomes = {}

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        tb.nic("m2-nic").fail()
        yield closed_loop(tb.env, tb.gateway, spec.name, n_requests=6)
        assert tb.gateway.ejected_targets() == ["m2-nic"]

        outcomes["dead_probe"] = yield tb.gateway.probe_target(
            spec.name, "m2-nic", timeout=0.01
        )
        tb.nic("m2-nic").restore()
        outcomes["live_probe"] = yield tb.gateway.probe_target(
            spec.name, "m2-nic", timeout=0.01
        )

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)

    assert outcomes["dead_probe"] is False
    assert outcomes["live_probe"] is True
    assert tb.gateway.ejected_targets() == []
    assert tb.gateway.probes_total.value(labels={"target": "m2-nic"}) == 2
    assert tb.gateway.probe_failures_total.value(
        labels={"target": "m2-nic"}) == 1


def test_all_targets_ejected_fails_open():
    """With every breaker open the gateway still picks a target rather
    than livelocking — the attempt doubles as a recovery probe."""
    gw = make_gateway(breaker_threshold=1, breaker_reset_timeout=1000.0)
    gw.set_route("w", wid=1, targets=["a", "b"])
    for target in ["a", "b"]:
        gw.breaker_for(target).record_failure(now=0.0)
    assert gw.ejected_targets() == ["a", "b"]
    route = gw.route_for("w")
    assert gw._pick_target(route) in {"a", "b"}
