"""Tests for the metrics registry and object storage."""

import math

import pytest

from repro.serverless import MetricsRegistry, ObjectStorage, StorageError
from repro.sim import Environment


def test_counter_basics():
    registry = MetricsRegistry()
    counter = registry.counter("requests", "total requests")
    counter.inc()
    counter.inc(2, labels={"workload": "web"})
    assert counter.value() == 1
    assert counter.value(labels={"workload": "web"}) == 2
    assert counter.total == 3
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("replicas")
    gauge.set(3)
    gauge.add(-1)
    assert gauge.value() == 2


def test_histogram_percentiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.count() == 100
    assert histogram.mean() == pytest.approx(50.5)
    assert histogram.percentile(50) == 50
    assert histogram.percentile(99) == 99
    assert histogram.percentile(100) == 100
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_histogram_ecdf_and_fraction():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in [1.0, 2.0, 3.0, 4.0]:
        histogram.observe(value)
    ecdf = histogram.ecdf()
    assert ecdf[0] == (1.0, 0.25)
    assert ecdf[-1] == (4.0, 1.0)
    assert histogram.fraction_below(2.5) == 0.5


def test_histogram_empty_is_nan():
    histogram = MetricsRegistry().histogram("empty")
    assert math.isnan(histogram.mean())
    assert math.isnan(histogram.percentile(50))


def test_registry_same_name_same_metric():
    registry = MetricsRegistry()
    a = registry.counter("x")
    b = registry.counter("x")
    assert a is b
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_histogram_labels_separate():
    histogram = MetricsRegistry().histogram("latency")
    histogram.observe(1.0, labels={"workload": "a"})
    histogram.observe(9.0, labels={"workload": "b"})
    assert histogram.observations(labels={"workload": "a"}) == [1.0]


def test_storage_put_download_roundtrip():
    env = Environment()
    storage = ObjectStorage(env, bandwidth_bytes_per_second=100e6)
    results = []

    def scenario():
        record = yield storage.put("binary", 50_000_000)
        results.append(("put", env.now, record.version))
        record = yield storage.download("binary")
        results.append(("get", env.now, record.size_bytes))

    process = env.process(scenario())
    env.run(until=process)
    assert results[0][1] == pytest.approx(0.502)  # 0.5 s transfer + 2 ms
    assert results[1][2] == 50_000_000
    assert storage.uploads == 1 and storage.downloads == 1


def test_storage_versions_increment():
    env = Environment()
    storage = ObjectStorage(env)

    def scenario():
        first = yield storage.put("obj", 10)
        second = yield storage.put("obj", 20)
        return first.version, second.version

    process = env.process(scenario())
    env.run(until=process)
    assert process.value == (1, 2)


def test_storage_missing_object_raises():
    env = Environment()
    storage = ObjectStorage(env)

    def scenario():
        with pytest.raises(StorageError):
            yield storage.download("ghost")

    process = env.process(scenario())
    env.run(until=process)
    assert "ghost" not in storage
    assert storage.stat("ghost") is None
