"""Tests for the monitoring engine and watch service."""

import pytest

from repro.net import Network
from repro.serverless import (
    Gateway,
    MetricsRegistry,
    MonitoringEngine,
    TimeSeries,
    WatchService,
)
from repro.sim import Environment


def test_time_series_rate():
    series = TimeSeries()
    for t, v in [(0, 0), (1, 100), (2, 200), (3, 300)]:
        series.append(float(t), float(v))
    assert series.rate(window_seconds=10, now=3.0) == pytest.approx(100.0)
    assert series.rate(window_seconds=1.5, now=3.0) == pytest.approx(100.0)
    assert series.latest().value == 300


def test_time_series_rate_needs_two_samples():
    series = TimeSeries()
    series.append(0.0, 5.0)
    assert series.rate(10, now=1.0) == 0.0
    assert TimeSeries().rate(10, now=1.0) == 0.0


def test_time_series_counter_reset_clamped():
    series = TimeSeries()
    series.append(0.0, 100.0)
    series.append(1.0, 10.0)  # counter reset
    assert series.rate(10, now=1.0) == 0.0


def test_time_series_bounded():
    series = TimeSeries(max_samples=10)
    for index in range(50):
        series.append(float(index), float(index))
    assert len(series.samples) == 10
    assert series.samples[0].at == 40.0


def test_monitoring_engine_scrapes_counters():
    env = Environment()
    registry = MetricsRegistry()
    requests = registry.counter("requests")
    engine = MonitoringEngine(env, registry, scrape_interval=1.0)

    def load(env):
        for _ in range(5):
            requests.inc(100, labels={"workload": "web"})
            yield env.timeout(1.0)
        engine.stop()

    engine.start()
    env.process(load(env))
    env.run(until=10.0)
    assert engine.scrapes >= 4
    rate = engine.rate("requests", labels={"workload": "web"},
                       window_seconds=10.0)
    assert 50 < rate < 200  # ~100/s


def test_monitoring_engine_validates_interval():
    env = Environment()
    with pytest.raises(ValueError):
        MonitoringEngine(env, MetricsRegistry(), scrape_interval=0)


def make_gateway(env):
    network = Network(env)
    gateway = Gateway(env, network.add_node("gw"),
                      metrics=MetricsRegistry())
    gateway.set_route("web", wid=1, targets=["w1"])
    return gateway


def test_watch_service_raises_alert_on_failures():
    env = Environment()
    gateway = make_gateway(env)
    watch = WatchService(env, gateway, check_interval=1.0)
    watch.check()  # baseline
    gateway.failures_total.inc(3, labels={"workload": "web"})
    raised = watch.check()
    assert len(raised) == 1
    assert raised[0].workload == "web"
    assert watch.unhealthy() == ["web"]


def test_watch_service_clears_alert_on_recovery():
    env = Environment()
    gateway = make_gateway(env)
    watch = WatchService(env, gateway)
    watch.check()
    gateway.failures_total.inc(1, labels={"workload": "web"})
    watch.check()
    assert watch.unhealthy() == ["web"]
    gateway.requests_total.inc(5, labels={"workload": "web"})
    watch.check()
    assert watch.unhealthy() == []
    assert watch.alerts[0].cleared_at is not None


def test_watch_service_quiet_when_healthy():
    env = Environment()
    gateway = make_gateway(env)
    watch = WatchService(env, gateway)
    watch.check()
    gateway.requests_total.inc(10, labels={"workload": "web"})
    assert watch.check() == []
    assert watch.unhealthy() == []


def test_watch_service_loop_runs():
    env = Environment()
    gateway = make_gateway(env)
    watch = WatchService(env, gateway, check_interval=0.5)

    def fail_then_stop(env):
        yield env.timeout(0.6)
        gateway.failures_total.inc(1, labels={"workload": "web"})
        yield env.timeout(1.0)
        watch.stop()

    watch.start()
    env.process(fail_then_stop(env))
    env.run(until=3.0)
    assert watch.alerts
