"""Tests for the rate-based autoscaler."""

import pytest

from repro.serverless import AutoScaler, Gateway, MetricsRegistry
from repro.net import Network
from repro.sim import Environment


def make_gateway():
    env = Environment()
    network = Network(env)
    gateway = Gateway(env, network.add_node("gw"), metrics=MetricsRegistry())
    gateway.set_route("web", wid=1, targets=["w1"])
    return env, gateway


def test_desired_replicas_clamped():
    env, gateway = make_gateway()
    scaler = AutoScaler(env, gateway, worker_pool=["w1", "w2", "w3"],
                        target_rps_per_replica=100)
    assert scaler.desired_replicas(0) == 1
    assert scaler.desired_replicas(150) == 2
    assert scaler.desired_replicas(10_000) == 3


def test_scale_up_on_load():
    env, gateway = make_gateway()
    scaler = AutoScaler(env, gateway, worker_pool=["w1", "w2", "w3", "w4"],
                        check_interval=1.0, target_rps_per_replica=100)
    # Simulate 250 completed requests in the interval.
    gateway.requests_total.inc(250, labels={"workload": "web"})
    decisions = scaler.evaluate()
    assert len(decisions) == 1
    assert decisions[0].replicas == 3
    assert scaler.replicas_for("web") == 3


def test_scale_down_when_idle():
    env, gateway = make_gateway()
    scaler = AutoScaler(env, gateway, worker_pool=["w1", "w2", "w3"],
                        check_interval=1.0, target_rps_per_replica=100)
    gateway.requests_total.inc(300, labels={"workload": "web"})
    scaler.evaluate()
    assert scaler.replicas_for("web") == 3
    # Next interval: no new requests.
    scaler.evaluate()
    assert scaler.replicas_for("web") == 1


def test_no_decision_when_stable():
    env, gateway = make_gateway()
    scaler = AutoScaler(env, gateway, worker_pool=["w1", "w2"],
                        target_rps_per_replica=100)
    gateway.requests_total.inc(50, labels={"workload": "web"})
    assert scaler.evaluate() == []  # 1 replica desired; already 1


def test_control_loop_runs_periodically():
    env, gateway = make_gateway()
    scaler = AutoScaler(env, gateway, worker_pool=["w1", "w2"],
                        check_interval=0.5, target_rps_per_replica=10)

    def load(env):
        for _ in range(4):
            gateway.requests_total.inc(20, labels={"workload": "web"})
            yield env.timeout(0.5)
        scaler.stop()

    scaler.start()
    env.process(load(env))
    env.run(until=3.0)
    # The loop must have scaled up to 2 replicas at some point.
    assert any(decision.replicas == 2 for decision in scaler.decisions)


def test_validation():
    env, gateway = make_gateway()
    with pytest.raises(ValueError):
        AutoScaler(env, gateway, worker_pool=[])
    with pytest.raises(ValueError):
        AutoScaler(env, gateway, worker_pool=["w1"], target_rps_per_replica=0)
