"""End-to-end overload control: deadlines, budgets, shedding, hedging."""

import pytest

from repro.net import DEADLINE_META, Network, Packet
from repro.serverless import (
    CoDelShedder,
    Gateway,
    GatewayTimeout,
    OverloadConfig,
    RequestExpired,
    RequestShed,
    RetryBudget,
    RetryBudgetExhausted,
    Testbed,
)
from repro.serverless.loadgen import ARRIVAL_PROCESSES, LoadResult, _arrival_gaps
from repro.sim import Environment, RngRegistry, exponential
from repro.workloads import web_server_spec


# -- retry budget ----------------------------------------------------------


def test_retry_budget_deposits_and_withdrawals():
    budget = RetryBudget(ratio=0.5, floor=2.0, cap=10.0)
    assert budget.balance == 2.0  # seeded at the floor
    for _ in range(4):
        budget.note_request()
    assert budget.balance == pytest.approx(4.0)
    assert budget.withdraw() is True
    assert budget.withdraw() is True
    assert budget.withdraw() is True
    assert budget.balance == pytest.approx(1.0)
    assert budget.withdraw() is True
    # Broke: below one full token.
    assert budget.withdraw() is False
    assert budget.withdrawn == 4
    assert budget.denied == 1


def test_retry_budget_caps_banked_tokens():
    budget = RetryBudget(ratio=1.0, floor=0.0, cap=3.0)
    for _ in range(100):
        budget.note_request()
    assert budget.balance == 3.0  # an idle period cannot bank unbounded retries


def test_retry_budget_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RetryBudget(ratio=-0.1)
    with pytest.raises(ValueError):
        RetryBudget(ratio=0.1, floor=10.0, cap=5.0)


# -- CoDel-style shedder ---------------------------------------------------


def test_shedder_trips_only_after_a_full_interval_above_target():
    shedder = CoDelShedder(target_seconds=0.01, interval_seconds=0.1)
    shedder.observe(0.05, now=0.0)
    shedder.observe(0.05, now=0.05)
    assert not shedder.shedding  # above target, but not for long enough
    shedder.observe(0.05, now=0.11)
    assert shedder.shedding
    assert 0.0 < shedder.drop_probability <= shedder.max_probability


def test_shedder_resets_the_moment_sojourn_recovers():
    shedder = CoDelShedder(target_seconds=0.01, interval_seconds=0.1)
    for i in range(20):
        shedder.observe(0.05, now=0.02 * i)
    assert shedder.shedding
    shedder.observe(0.005, now=1.0)  # one good dequeue clears the state
    assert not shedder.shedding
    assert shedder.drop_probability == 0.0
    assert shedder.should_shed() is False


def test_shedder_probability_ramps_with_persistence():
    shedder = CoDelShedder(target_seconds=0.01, interval_seconds=0.0)
    probabilities = []
    for i in range(50):
        shedder.observe(0.05, now=0.01 * i)
        probabilities.append(shedder.drop_probability)
    assert probabilities == sorted(probabilities)
    assert probabilities[-1] <= shedder.max_probability


def test_shedder_consumes_no_randomness_while_idle():
    """Disabled/idle runs must stay draw-for-draw identical, so the
    admission check may only touch the RNG while actively shedding."""

    class ExplodingRng:
        def random(self):
            raise AssertionError("rng consulted while not shedding")

    shedder = CoDelShedder(target_seconds=0.01, rng=ExplodingRng())
    for _ in range(10):
        assert shedder.should_shed() is False
    shedder.observe(0.005, now=0.0)
    assert shedder.should_shed() is False


def test_shedder_rejects_bad_target():
    with pytest.raises(ValueError):
        CoDelShedder(target_seconds=0.0)


def test_overload_config_enabled_flag():
    assert not OverloadConfig().enabled
    assert OverloadConfig(deadline_seconds=0.1).enabled
    assert OverloadConfig(hedge_quantile=95.0).enabled


# -- arrival processes -----------------------------------------------------


def test_poisson_arrivals_match_the_legacy_exponential_stream():
    """``arrival="poisson"`` must reproduce the exact pre-overload draw
    sequence so existing golden traces stay byte-identical."""
    rng_a = RngRegistry(seed=3).stream("load")
    rng_b = RngRegistry(seed=3).stream("load")
    gaps = _arrival_gaps("poisson", 50.0, rng_a, 1.5, 4.0)
    drawn = [next(gaps) for _ in range(100)]
    legacy = [exponential(rng_b, 1.0 / 50.0) for _ in range(100)]
    assert drawn == legacy


@pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
def test_arrival_gaps_hit_the_requested_mean_rate(arrival):
    rng = RngRegistry(seed=11).stream(f"load:{arrival}")
    gaps = _arrival_gaps(arrival, 100.0, rng, 1.5, 4.0)
    drawn = [next(gaps) for _ in range(20_000)]
    assert all(gap > 0 for gap in drawn)
    mean = sum(drawn) / len(drawn)
    # Pareto at alpha=1.5 has infinite variance: generous tolerance.
    assert mean == pytest.approx(1.0 / 100.0, rel=0.35)


@pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
def test_arrival_gaps_deterministic_per_rng(arrival):
    first = _arrival_gaps(arrival, 40.0,
                          RngRegistry(seed=7).stream("x"), 1.5, 4.0)
    second = _arrival_gaps(arrival, 40.0,
                           RngRegistry(seed=7).stream("x"), 1.5, 4.0)
    assert [next(first) for _ in range(500)] == \
        [next(second) for _ in range(500)]


def test_arrival_gaps_reject_bad_parameters():
    rng = RngRegistry(seed=1).stream("x")
    with pytest.raises(ValueError):
        next(_arrival_gaps("uniform", 10.0, rng, 1.5, 4.0))
    with pytest.raises(ValueError):
        next(_arrival_gaps("pareto", 10.0, rng, 1.0, 4.0))
    with pytest.raises(ValueError):
        next(_arrival_gaps("mmpp", 10.0, rng, 1.5, 1.0))


# -- LoadResult goodput / typed failures -----------------------------------


def test_goodput_counts_only_in_deadline_completions():
    result = LoadResult(workload="w", started_at=0.0, finished_at=2.0,
                        deadline_seconds=0.1)
    result.latencies.extend([0.05, 0.09, 0.11, 0.5])
    assert result.throughput_rps == pytest.approx(2.0)
    assert result.goodput_rps == pytest.approx(1.0)  # two useful completions


def test_goodput_equals_throughput_without_a_deadline():
    result = LoadResult(workload="w", started_at=0.0, finished_at=2.0)
    result.latencies.extend([0.05, 3.0])
    assert result.goodput_rps == result.throughput_rps


def test_record_failure_splits_typed_outcomes():
    result = LoadResult(workload="w")
    result.record_failure(GatewayTimeout("plain"))
    result.record_failure(RequestShed("shed"))
    result.record_failure(RequestExpired("expired"))
    result.record_failure(RetryBudgetExhausted("broke"))
    assert result.failures == 4
    assert (result.shed, result.expired, result.budget_exhausted) == (1, 1, 1)


# -- gateway: deadlines, shedding, budgets ---------------------------------


class Responder:
    """A stub backend: answers each request after a scripted delay.

    ``delays`` is consumed per request; the last entry repeats.
    """

    def __init__(self, env, node, delays):
        self.env = env
        self.node = node
        self.delays = list(delays)
        self.received = 0
        node.attach(self.receive)

    def receive(self, packet):
        header = packet.headers.get("LambdaHeader")
        if header is None or header.is_response:
            return
        self.received += 1
        delay = (self.delays.pop(0) if len(self.delays) > 1
                 else self.delays[0])
        if delay is None:
            return  # scripted black hole
        self.env.process(self._reply(packet, delay))

    def _reply(self, packet, delay):
        yield self.env.timeout(delay)
        headers = packet.headers.copy()
        headers.get("LambdaHeader").is_response = True
        self.node.send(Packet(
            src=self.node.name, dst=packet.src,
            headers=headers, payload_bytes=64,
        ))


def make_gateway(network=None, **kwargs):
    env = Environment()
    network = Network(env)
    gateway = Gateway(env, network.add_node("gw"), **kwargs)
    return env, network, gateway


def test_request_expires_in_the_proxy_queue():
    """The gateway's own dequeue check: a request whose deadline passes
    while queued behind the serialised proxy is dropped before any
    packet is sent downstream."""
    env, network, gw = make_gateway(proxy_seconds=0.05)
    sink = network.add_node("sink")
    sink.attach(lambda packet: None)
    gw.set_route("w", wid=1, targets=["sink"])
    seen = {}

    def scenario(env):
        first = gw.request("w", deadline=env.now + 10.0)
        # Queued behind the first request's 50 ms proxy occupancy, but
        # only allowed 20 ms of life.
        second = gw.request("w", deadline=env.now + 0.02)
        try:
            yield second
            seen["error"] = None
        except GatewayTimeout as error:
            seen["error"] = error
        first.defused = True  # the first request's fate is not under test
        yield env.timeout(0.01)  # let the first request's packet land

    env.run(until=env.process(scenario(env)))

    assert isinstance(seen["error"], RequestExpired)
    assert "proxy queue" in str(seen["error"])
    assert sink.rx_packets == 1  # only the first request was ever sent
    assert gw.expired_total.value(labels={"workload": "w"}) == 1
    assert gw.failures_total.value(
        labels={"workload": "w", "reason": "expired"}) == 1


def test_attempt_deadline_is_min_of_deadline_and_timeout():
    """Packets carry the gRPC-style per-attempt deadline: the backend
    must never work past the point this attempt's waiter gives up."""
    env, network, gw = make_gateway(request_timeout=0.05, max_retries=0)
    captured = []
    sink = network.add_node("sink")
    sink.attach(captured.append)
    gw.set_route("w", wid=1, targets=["sink"])

    def scenario(env):
        try:
            yield gw.request("w", deadline=env.now + 10.0)
        except GatewayTimeout:
            pass
        sent_at = captured[0].meta[DEADLINE_META] - 0.05
        try:
            yield gw.request("w", deadline=env.now + 0.01)
        except GatewayTimeout:
            pass
        return sent_at

    env.run(until=env.process(scenario(env)))

    # Far deadline: clipped to send-time + request_timeout.
    far, near = captured
    assert far.meta[DEADLINE_META] < 10.0
    # Near deadline: the deadline itself is the binding constraint.
    assert near.meta[DEADLINE_META] - far.meta[DEADLINE_META] < 0.05


def test_gateway_sheds_at_admission_when_tripped():
    env, network, gw = make_gateway(
        overload=OverloadConfig(shed_target_seconds=0.01),
        request_timeout=0.001, max_retries=0,
    )
    sink = network.add_node("sink")
    sink.attach(lambda packet: None)
    gw.set_route("w", wid=1, targets=["sink"])
    # Force the shedder deep into its ramp so the next few admission
    # rolls are near-certain drops.
    for i in range(400):
        gw.shedder.observe(0.05, now=0.001 * i)
    assert gw.shedder.shedding
    outcomes = []

    def scenario(env):
        for _ in range(10):
            try:
                yield gw.request("w")
            except RequestShed:
                outcomes.append("shed")
            except GatewayTimeout:
                outcomes.append("timeout")

    env.run(until=env.process(scenario(env)))

    assert "shed" in outcomes
    shed = outcomes.count("shed")
    assert gw.shed_total.value(labels={"workload": "w"}) == shed
    assert gw.shedder.shed_count == shed
    assert gw.failures_total.value(
        labels={"workload": "w", "reason": "shed"}) == shed


def test_empty_retry_budget_fails_fast():
    """With a zero budget the first retry attempt fails fast instead of
    piling retries onto an overloaded backend."""
    env, network, gw = make_gateway(
        overload=OverloadConfig(retry_budget_ratio=0.0,
                                retry_budget_floor=0.0),
        request_timeout=0.01, max_retries=5, backoff_base=0.001,
    )
    sink = network.add_node("sink")
    sink.attach(lambda packet: None)
    gw.set_route("w", wid=1, targets=["sink"])
    seen = {}

    def scenario(env):
        try:
            yield gw.request("w")
        except GatewayTimeout as error:
            seen["error"] = error

    env.run(until=env.process(scenario(env)))

    assert isinstance(seen["error"], RetryBudgetExhausted)
    # One send happened (the initial attempt), no retries ever went out.
    assert sink.rx_packets == 1
    assert gw.retry_budget("w").denied == 1
    assert gw.retry_budget_exhausted_total.value(
        labels={"workload": "w"}) == 1
    assert gw.failures_total.value(
        labels={"workload": "w", "reason": "retry_budget_exhausted"}) == 1


# -- deadline propagation through the backends -----------------------------


def test_host_drops_expired_work_before_running_the_handler():
    tb = Testbed(seed=21, n_workers=1,
                 overload=OverloadConfig(deadline_seconds=5e-6))
    tb.add_bare_metal_backend()
    spec = web_server_spec()
    seen = {}

    def scenario(env):
        yield tb.manager.deploy(spec, "bare-metal")
        try:
            yield tb.gateway.request(spec.name)
            seen["error"] = None
        except GatewayTimeout as error:
            seen["error"] = error
        yield env.timeout(0.1)  # let the dead packet reach the host

    tb.run(until=tb.env.process(scenario(tb.env)))

    assert isinstance(seen["error"], RequestExpired)
    host = tb.host_servers("bare-metal")[0]
    assert host.stats.expired == 1
    assert host.stats.requests_served == 0


def test_nic_drops_provably_late_work_on_arrival():
    """The WCET-aware arrival check: at a 50 kHz clock web_server's
    verified WCET (~27 ms) cannot fit a 10 ms deadline, so the NPU
    never grants it a thread — zero cycles wasted on dead work."""
    tb = Testbed(
        seed=22, n_workers=1,
        nic_kwargs=dict(n_cores=1, threads_per_core=2, cores_per_island=1,
                        clock_hz=5e4),
        overload=OverloadConfig(deadline_seconds=0.01),
    )
    tb.add_lambda_nic_backend()
    spec = web_server_spec()
    seen = {}

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        try:
            yield tb.gateway.request(spec.name)
            seen["error"] = None
        except GatewayTimeout as error:
            seen["error"] = error
        yield env.timeout(0.1)

    tb.run(until=tb.env.process(scenario(tb.env)))

    assert isinstance(seen["error"], RequestExpired)
    nic = tb.nic("m2-nic")
    assert nic.stats.expired_on_arrival == 1
    assert nic.stats.requests_served == 0
    assert nic.stats.total_cycles == 0  # dead work never charged a cycle


def test_nic_serves_normally_when_the_deadline_is_generous():
    tb = Testbed(seed=23, n_workers=1,
                 overload=OverloadConfig(deadline_seconds=1.0))
    tb.add_lambda_nic_backend()
    spec = web_server_spec()
    outcomes = {}

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        outcomes["result"] = yield tb.gateway.request(spec.name)

    tb.run(until=tb.env.process(scenario(tb.env)))

    assert outcomes["result"].ok
    nic = tb.nic("m2-nic")
    assert nic.stats.requests_served == 1
    assert nic.stats.expired_on_arrival == 0
    assert nic.stats.expired_completions == 0


# -- hedged requests -------------------------------------------------------


def hedging_gateway(warm=True, **overrides):
    config = OverloadConfig(hedge_quantile=50.0, hedge_min_samples=4,
                            **overrides)
    env, network, gw = make_gateway(overload=config, request_timeout=1.0,
                                    max_retries=0)
    gw.set_route("w", wid=1, targets=["a", "b"])
    slow = Responder(env, network.add_node("a"), delays=[0.05])
    fast = Responder(env, network.add_node("b"), delays=[0.005])
    if warm:
        # Warm the latency estimate: four 10 ms observations put p50 at
        # 10 ms, far below the slow replica's 50 ms.
        for _ in range(4):
            gw.latency_histogram.observe(0.01, labels={"workload": "w"})
    return env, gw, slow, fast


def test_hedged_request_delivers_exactly_one_outcome():
    """Tail-at-scale hedging: the original goes to the slow replica,
    the hedge fires at p50 and wins, and the slow copy's eventual
    response is absorbed as a duplicate — never delivered twice, never
    counted as late."""
    env, gw, slow, fast = hedging_gateway()
    outcomes = []

    def scenario(env):
        outcome = yield gw.request("w")
        outcomes.append(outcome)
        yield env.timeout(0.1)  # let the losing copy's response arrive

    env.run(until=env.process(scenario(env)))

    assert len(outcomes) == 1 and outcomes[0].ok
    assert outcomes[0].latency < 0.02  # served by the hedge, not the original
    assert slow.received == 1 and fast.received == 1
    assert gw.hedged_requests_total.value(labels={"workload": "w"}) == 1
    assert gw.duplicate_responses_total.value() == 1
    assert gw.late_responses_total.value() == 0
    assert gw.requests_total.value(labels={"workload": "w"}) == 1


def test_hedge_is_denied_when_the_retry_budget_is_empty():
    env, gw, slow, fast = hedging_gateway(retry_budget_ratio=0.0,
                                          retry_budget_floor=0.0)
    outcomes = []

    def scenario(env):
        outcome = yield gw.request("w")
        outcomes.append(outcome)

    env.run(until=env.process(scenario(env)))

    # No token, no hedge: the request rides out the slow replica.
    assert outcomes[0].ok and outcomes[0].latency > 0.04
    assert fast.received == 0
    assert gw.hedged_requests_total.value(labels={"workload": "w"}) == 0
    assert gw.retry_budget("w").denied == 1


def test_no_hedging_without_enough_latency_samples():
    env, gw, slow, fast = hedging_gateway(warm=False)
    outcomes = []

    def scenario(env):
        outcomes.append((yield gw.request("w")))

    env.run(until=env.process(scenario(env)))

    assert outcomes[0].ok
    assert fast.received == 0  # estimate not trusted yet: no hedge sent


# -- breaker half-open probe racing a late response ------------------------


def test_half_open_trial_unmoved_by_a_late_response():
    """A stale response from a pre-ejection request arrives while the
    half-open trial is still in flight: it must be absorbed as *late*
    (the waiter is gone), not treated as the trial's success — only the
    trial's own response may close the breaker."""
    env, network, gw = make_gateway(
        request_timeout=0.01, max_retries=0,
        breaker_threshold=1, breaker_reset_timeout=0.02,
    )
    gw.set_route("w", wid=1, targets=["a"])
    # First request answered after 35 ms (way past the 10 ms timeout),
    # later ones after 8 ms (inside it).
    responder = Responder(env, network.add_node("a"), delays=[0.035, 0.008])
    checkpoints = {}

    def scenario(env):
        try:
            yield gw.request("w")
        except GatewayTimeout:
            pass
        checkpoints["after_timeout"] = gw.breaker_for("a").state
        # Past the cool-down: the next request is the half-open trial.
        yield env.timeout(0.032 - env.now)
        trial = gw.request("w")
        # The stale response from request #1 lands at ~35 ms, while the
        # trial (sent at ~32 ms) is still waiting on its own reply.
        yield env.timeout(0.038 - env.now)
        checkpoints["during_trial"] = gw.breaker_for("a").state
        checkpoints["late_during_trial"] = gw.late_responses_total.value()
        outcome = yield trial
        checkpoints["outcome"] = outcome

    env.run(until=env.process(scenario(env)))

    assert checkpoints["after_timeout"] == "open"
    # The stale response was counted late and left the trial pending.
    assert checkpoints["during_trial"] == "half-open"
    assert checkpoints["late_during_trial"] == 1
    # The trial's own 8 ms response closed the breaker.
    assert checkpoints["outcome"].ok
    breaker = gw.breaker_for("a")
    assert breaker.state == "closed"
    assert breaker.closes == 1
