"""Integration tests: testbed, manager, gateway, backends, loadgen."""

import pytest

from repro.serverless import (
    GatewayTimeout,
    Testbed,
    closed_loop,
    open_loop,
    round_robin_closed_loop,
)
from repro.workloads import (
    image_transformer_spec,
    kv_client_spec,
    standard_workloads,
    web_server_spec,
)


def deploy_and(tb, kinds_specs, body):
    """Deploy (spec, kind) pairs then run body(env) as a process."""

    def scenario(env):
        for spec, kind in kinds_specs:
            yield tb.manager.deploy(spec, kind)
        result = yield from body(env)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    return process.value


def test_nic_backend_serves_web_requests():
    tb = Testbed(seed=2)
    tb.add_lambda_nic_backend()

    def body(env):
        result = yield closed_loop(tb.env, tb.gateway, "web_server",
                                   n_requests=20)
        return result

    result = deploy_and(tb, [(web_server_spec(), "lambda-nic")], body)
    assert result.completed == 20
    assert result.failures == 0
    assert result.mean_latency < 50e-6


def test_bare_metal_backend_serves_web_requests():
    tb = Testbed(seed=2)
    tb.add_bare_metal_backend()

    def body(env):
        result = yield closed_loop(tb.env, tb.gateway, "web_server",
                                   n_requests=20)
        return result

    result = deploy_and(tb, [(web_server_spec(), "bare-metal")], body)
    assert result.completed == 20
    assert 50e-6 < result.mean_latency < 2e-3


def test_container_slowest():
    means = {}
    for kind in ["lambda-nic", "bare-metal", "container"]:
        tb = Testbed(seed=2)
        tb.add_backend(kind)

        def body(env, tb=tb):
            result = yield closed_loop(tb.env, tb.gateway, "web_server",
                                       n_requests=20)
            return result

        means[kind] = deploy_and(tb, [(web_server_spec(), kind)], body).mean_latency
    assert means["lambda-nic"] < means["bare-metal"] < means["container"]
    assert means["container"] / means["lambda-nic"] > 100


def test_kv_workload_on_nic_uses_memcached():
    tb = Testbed(seed=3)
    tb.add_lambda_nic_backend()

    def body(env):
        result = yield closed_loop(tb.env, tb.gateway, "kv_client",
                                   n_requests=10)
        return result

    result = deploy_and(tb, [(kv_client_spec(), "lambda-nic")], body)
    assert result.completed == 10
    assert tb.memcached.stats.gets == 10


def test_image_workload_rdma_on_nic():
    tb = Testbed(seed=3)
    tb.add_lambda_nic_backend()
    spec = image_transformer_spec(width=64, height=64)

    def body(env):
        result = yield closed_loop(
            tb.env, tb.gateway, "image_transformer", n_requests=3,
            payload_bytes=spec.request_bytes,
        )
        return result

    result = deploy_and(tb, [(spec, "lambda-nic")], body)
    assert result.completed == 3
    total_segments = sum(nic.stats.rdma_segments for nic in tb.nics)
    assert total_segments == 3 * (spec.request_bytes // 4096)


def test_deployment_records_table4_shape():
    """Startup: bare-metal < lambda-nic < container (Table 4)."""
    startups = {}
    for kind in ["lambda-nic", "bare-metal", "container"]:
        tb = Testbed(seed=4)
        tb.add_backend(kind)

        def body(env, tb=tb):
            yield env.timeout(0)
            return None

        deploy_and(tb, [(image_transformer_spec(), kind)], body)
        record = tb.manager.deployments["image_transformer"]
        startups[kind] = record.startup_seconds
    assert startups["bare-metal"] < startups["lambda-nic"] < startups["container"]
    assert 3 < startups["bare-metal"] < 8
    assert 15 < startups["lambda-nic"] < 25
    assert 25 < startups["container"] < 40


def test_duplicate_deployment_rejected():
    tb = Testbed(seed=5)
    tb.add_lambda_nic_backend()

    def scenario(env):
        yield tb.manager.deploy(web_server_spec(), "lambda-nic")
        with pytest.raises(ValueError):
            yield tb.manager.deploy(web_server_spec(), "lambda-nic")

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)


def test_unknown_backend_rejected():
    tb = Testbed(seed=5)
    with pytest.raises(KeyError):
        tb.manager.backend("quantum")
    with pytest.raises(ValueError):
        tb.add_backend("quantum")


def test_round_robin_contention_driver():
    tb = Testbed(seed=6)
    tb.add_lambda_nic_backend()
    specs = [web_server_spec(f"web{index}") for index in range(3)]

    def body(env):
        results = yield round_robin_closed_loop(
            tb.env, tb.gateway, [spec.name for spec in specs],
            n_requests=30, concurrency=3,
        )
        return results

    results = deploy_and(tb, [(spec, "lambda-nic") for spec in specs], body)
    assert results["__all__"].completed == 30
    for spec in specs:
        assert results[spec.name].completed == 10


def test_open_loop_generator():
    tb = Testbed(seed=7)
    tb.add_lambda_nic_backend()

    def body(env):
        result = yield open_loop(
            tb.env, tb.gateway, "web_server", rate_rps=2000,
            duration=0.05, rng=tb.rng.stream("load"),
        )
        return result

    result = deploy_and(tb, [(web_server_spec(), "lambda-nic")], body)
    assert 40 < result.completed < 220  # ~100 expected
    assert result.failures == 0


def test_gateway_timeout_on_black_hole():
    tb = Testbed(seed=8, gateway_kwargs={"request_timeout": 0.01,
                                         "max_retries": 1})
    sink = tb.network.add_node("sink")
    sink.attach(lambda p: None)
    tb.gateway.set_route("dead", wid=42, targets=["sink"])

    def scenario(env):
        with pytest.raises(GatewayTimeout):
            yield tb.gateway.request("dead")

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert tb.gateway.failures_total.total == 1


def test_etcd_placement_sync():
    tb = Testbed(seed=9, with_etcd=True)
    tb.add_lambda_nic_backend()

    def scenario(env):
        yield tb.etcd_cluster.wait_for_leader()
        yield tb.manager.deploy(web_server_spec(), "lambda-nic")
        placement = yield tb.manager.placement("web_server")
        assert placement["backend"] == "lambda-nic"
        assert placement["targets"]

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)


def test_gateway_metrics_recorded():
    tb = Testbed(seed=10)
    tb.add_lambda_nic_backend()

    def body(env):
        result = yield closed_loop(tb.env, tb.gateway, "web_server",
                                   n_requests=5)
        return result

    deploy_and(tb, [(web_server_spec(), "lambda-nic")], body)
    histogram = tb.metrics.histogram("gateway_request_seconds")
    assert histogram.count(labels={"workload": "web_server"}) == 5


def test_undeploy_lambda_nic_reflashes_without_workload():
    tb = Testbed(seed=11)
    tb.add_lambda_nic_backend()
    web_a = web_server_spec("web_a")
    web_b = web_server_spec("web_b")

    def scenario(env):
        yield tb.manager.deploy(web_a, "lambda-nic")
        yield tb.manager.deploy(web_b, "lambda-nic")
        yield tb.manager.undeploy("web_a")
        # web_b still serves; web_a is gone from routes and firmware.
        result = yield closed_loop(tb.env, tb.gateway, "web_b", n_requests=5)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert process.value.completed == 5
    assert "web_a" not in tb.gateway.workloads
    assert "web_a" not in tb.nic_runtime.workloads
    assert "web_a" not in tb.nics[0].firmware.lambda_ids
    with pytest.raises(KeyError):
        tb.gateway.route_for("web_a")


def test_undeploy_last_nic_lambda_leaves_bare_nics():
    tb = Testbed(seed=12, n_workers=1)
    tb.add_lambda_nic_backend()

    def scenario(env):
        yield tb.manager.deploy(web_server_spec(), "lambda-nic")
        yield tb.manager.undeploy("web_server")

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert tb.nics[0].firmware is None
    assert tb.manager.deployments == {}


def test_undeploy_host_backend_frees_memory():
    tb = Testbed(seed=13, n_workers=1)
    tb.add_container_backend()

    def scenario(env):
        yield tb.manager.deploy(web_server_spec(), "container")
        used = tb.host_servers("container")[0].memory.used_bytes
        assert used > 0
        yield tb.manager.undeploy("web_server")

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert tb.host_servers("container")[0].memory.used_bytes == 0


def test_undeploy_unknown_workload_raises():
    tb = Testbed(seed=14)
    tb.add_lambda_nic_backend()

    def scenario(env):
        with pytest.raises(KeyError):
            yield tb.manager.undeploy("ghost")

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)


def test_monitoring_wired_into_testbed():
    tb = Testbed(seed=15, n_workers=1, with_monitoring=True)
    tb.add_lambda_nic_backend()

    def scenario(env):
        yield tb.manager.deploy(web_server_spec(), "lambda-nic")
        result = yield closed_loop(tb.env, tb.gateway, "web_server",
                                   n_requests=30, think_time=0.2)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert tb.monitoring.scrapes > 3
    rate = tb.monitoring.rate("gateway_requests_total",
                              labels={"workload": "web_server"},
                              window_seconds=30.0)
    assert rate > 0
    assert tb.watch.unhealthy() == []
