"""Unit tests for the typed metrics registry."""

import math

import pytest

from repro.obs import (
    Counter,
    CounterAttribute,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_of,
)


# -- percentile_of (the single percentile implementation) --------------------


def test_percentile_of_nearest_rank():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile_of(data, 0) == 1.0
    assert percentile_of(data, 50) == 2.0
    assert percentile_of(data, 75) == 3.0
    assert percentile_of(data, 100) == 4.0


def test_percentile_of_empty_is_nan_and_bad_q_raises():
    assert math.isnan(percentile_of([], 50))
    with pytest.raises(ValueError):
        percentile_of([1.0], 101)
    with pytest.raises(ValueError):
        percentile_of([1.0], -1)


# -- counters ---------------------------------------------------------------


def test_counter_inc_labels_total_items():
    counter = Counter("requests_total")
    counter.inc()
    counter.inc(2, labels={"node": "m2"})
    counter.inc(3, labels={"node": "m3"})
    assert counter.value() == 1
    assert counter.value({"node": "m2"}) == 2
    assert counter.total == 6
    assert sorted((labels.get("node", ""), value)
                  for labels, value in counter.items()) == [
        ("", 1.0), ("m2", 2.0), ("m3", 3.0)]


def test_counter_rejects_negative_increment():
    counter = Counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_merge_commutative():
    a, b = Counter("c"), Counter("c")
    a.inc(1)
    a.inc(5, labels={"x": "1"})
    b.inc(2, labels={"x": "1"})
    b.inc(7, labels={"y": "2"})
    ab, ba = a.merge(b), b.merge(a)
    for labels in (None, {"x": "1"}, {"y": "2"}):
        assert ab.value(labels) == ba.value(labels)
    assert ab.total == ba.total == 15


# -- gauges -----------------------------------------------------------------


def test_gauge_set_add_and_merge():
    gauge = Gauge("queue_depth")
    gauge.set(5)
    gauge.add(-2)
    assert gauge.value() == 3
    other = Gauge("queue_depth")
    other.set(4)
    assert gauge.merge(other).value() == other.merge(gauge).value() == 7


# -- CounterAttribute descriptor --------------------------------------------


class _Stats:
    served = CounterAttribute("served_total", "requests served")
    busy = CounterAttribute("busy_seconds_total", cast=float)

    def __init__(self, registry=None, node=""):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = {"node": node} if node else None


def test_counter_attribute_reads_and_increments():
    stats = _Stats()
    assert stats.served == 0 and isinstance(stats.served, int)
    stats.served += 1
    stats.served += 2
    assert stats.served == 3
    stats.busy += 0.25
    assert stats.busy == pytest.approx(0.25)
    assert isinstance(stats.busy, float)


def test_counter_attribute_rejects_decrease():
    stats = _Stats()
    stats.served = 5
    with pytest.raises(ValueError):
        stats.served = 4
    assert stats.served == 5


def test_counter_attribute_shares_registry_with_labels():
    registry = MetricsRegistry()
    a = _Stats(registry, node="m2")
    b = _Stats(registry, node="m3")
    a.served += 2
    b.served += 3
    assert a.served == 2 and b.served == 3
    assert registry.counter("served_total").total == 5


def test_counter_attribute_class_access_returns_descriptor():
    assert isinstance(_Stats.served, CounterAttribute)


# -- histograms -------------------------------------------------------------


def test_histogram_basic_queries():
    hist = Histogram("latency_seconds")
    for value in [0.4, 0.1, 0.3, 0.2]:
        hist.observe(value)
    assert hist.count() == 4
    assert hist.mean() == pytest.approx(0.25)
    assert hist.percentile(50) == 0.2
    assert hist.percentile(100) == 0.4
    assert hist.ecdf() == [(0.1, 0.25), (0.2, 0.5), (0.3, 0.75), (0.4, 1.0)]
    assert hist.fraction_below(0.25) == 0.5
    assert hist.observations() == [0.4, 0.1, 0.3, 0.2]


def test_histogram_empty_and_bad_q():
    hist = Histogram("h")
    assert hist.count() == 0
    assert math.isnan(hist.mean())
    assert math.isnan(hist.percentile(99))
    assert math.isnan(hist.fraction_below(1.0))
    with pytest.raises(ValueError):
        hist.percentile(120)


def test_histogram_raw_is_a_live_view():
    """Legacy ``stats.latencies.append(...)`` sites flow into queries."""
    hist = Histogram("h")
    raw = hist.raw()
    raw.append(3.0)
    raw.append(1.0)
    assert hist.percentile(50) == 1.0  # sort cache rebuilt on demand
    raw.append(0.5)
    assert hist.percentile(0) == 0.5  # cache invalidated by length change
    assert hist.count() == 3


def test_histogram_labelled_series_are_independent():
    hist = Histogram("h")
    hist.observe(1.0, labels={"node": "m2"})
    hist.observe(9.0, labels={"node": "m3"})
    assert hist.percentile(50, labels={"node": "m2"}) == 1.0
    assert hist.percentile(50, labels={"node": "m3"}) == 9.0
    assert hist.count() == 0  # unlabelled series untouched


def test_histogram_windowed_queries_use_sim_time():
    clock = {"now": 0.0}
    hist = Histogram("h", clock=lambda: clock["now"])
    for now, value in [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]:
        clock["now"] = now
        hist.observe(value)
    assert hist.count(since=2.0) == 2
    assert hist.count(until=1.5) == 1
    assert hist.mean(since=2.0, until=3.0) == pytest.approx(25.0)
    assert hist.percentile(100, until=2.0) == 20.0
    # Raw appends carry no timestamp: outside every window, inside none.
    hist.raw().append(40.0)
    assert hist.count() == 4
    assert hist.count(since=0.0) == 3


def test_histogram_windows_without_clock_are_empty():
    hist = Histogram("h")
    hist.observe(1.0)
    assert hist.count(since=0.0) == 0
    assert math.isnan(hist.percentile(50, since=0.0))


def test_histogram_merge_commutative():
    a, b = Histogram("h"), Histogram("h")
    for value in [1.0, 5.0, 3.0]:
        a.observe(value)
    for value in [2.0, 4.0]:
        b.observe(value, labels={"node": "m2"})
        b.observe(value)
    ab, ba = a.merge(b), b.merge(a)
    for labels in (None, {"node": "m2"}):
        assert ab.count(labels) == ba.count(labels)
        for q in (0, 25, 50, 75, 100):
            assert ab.percentile(q, labels) == ba.percentile(q, labels)
    assert ab.ecdf() == ba.ecdf()


def test_histogram_merge_drops_timestamps_unless_both_timed():
    clock = {"now": 1.0}
    timed = Histogram("h", clock=lambda: clock["now"])
    timed.observe(1.0)
    untimed = Histogram("h")
    untimed.observe(2.0)
    merged = timed.merge(untimed)
    assert merged.count() == 2
    assert merged.count(since=0.0) == 0  # window support lost

    other = Histogram("h", clock=lambda: clock["now"])
    other.observe(3.0)
    both = timed.merge(other)
    assert both.count(since=0.0) == 2


# -- registry ---------------------------------------------------------------


def test_registry_returns_same_instance_and_checks_types():
    registry = MetricsRegistry()
    counter = registry.counter("x_total", "help")
    assert registry.counter("x_total") is counter
    with pytest.raises(TypeError):
        registry.gauge("x_total")
    with pytest.raises(TypeError):
        registry.histogram("x_total")
    registry.histogram("h")
    with pytest.raises(TypeError):
        registry.counter("h")


def test_registry_clock_wires_histograms():
    clock = {"now": 7.0}
    registry = MetricsRegistry(clock=lambda: clock["now"])
    hist = registry.histogram("latency")
    hist.observe(1.0)
    assert hist.count(since=7.0) == 1

    late = MetricsRegistry()
    before = late.histogram("a")
    late.bind_clock(lambda: clock["now"])
    after = late.histogram("b")
    before.observe(1.0)
    after.observe(1.0)
    assert before.count(since=0.0) == 0  # created before the clock
    assert after.count(since=0.0) == 1


def test_registry_names_and_scrape():
    registry = MetricsRegistry()
    registry.counter("b_total")
    registry.gauge("a_depth")
    assert registry.names() == ["a_depth", "b_total"]
    snapshot = registry.scrape()
    assert set(snapshot) == {"a_depth", "b_total"}
    assert isinstance(snapshot["b_total"], Counter)


# -- registry merge and the process-boundary (pickle) path -------------------


def _two_registries():
    clock = {"now": 0.0}
    a = MetricsRegistry(clock=lambda: clock["now"])
    a.counter("requests_total").inc(3, labels={"w": "echo"})
    a.counter("requests_total").inc(2, labels={"w": "kv"})
    a.histogram("latency").observe(1.0)
    clock["now"] = 5.0
    a.histogram("latency").observe(9.0)
    a.gauge("depth").set(4)

    b = MetricsRegistry(clock=lambda: clock["now"])
    b.counter("requests_total").inc(7, labels={"w": "echo"})
    b.histogram("latency").observe(3.0)
    b.counter("only_b_total").inc(11)
    return a, b


def test_registry_merge_is_commutative_and_covers_one_sided_metrics():
    a, b = _two_registries()
    ab, ba = a.merge(b), b.merge(a)
    assert ab.names() == ba.names() == \
        ["depth", "latency", "only_b_total", "requests_total"]
    assert ab.counter("requests_total").total == 12
    assert ab.counter("requests_total").value({"w": "echo"}) == 10
    assert ab.counter("only_b_total").total == 11
    assert ab.gauge("depth").value() == 4
    assert sorted(ab.histogram("latency").observations()) == \
        sorted(ba.histogram("latency").observations()) == [1.0, 3.0, 9.0]


def test_registry_merge_does_not_alias_operands():
    a, b = _two_registries()
    merged = a.merge(b)
    merged.counter("only_b_total").inc(100)
    merged.histogram("latency").observe(77.0)
    assert b.counter("only_b_total").total == 11
    assert 77.0 not in a.histogram("latency").observations()


def test_registry_merge_rejects_type_conflicts():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("x")
    b.gauge("x")
    with pytest.raises(TypeError):
        a.merge(b)


def test_registry_merge_all_folds_and_copies():
    a, b = _two_registries()
    merged = MetricsRegistry.merge_all([a, b])
    assert merged.counter("requests_total").total == 12
    empty = MetricsRegistry.merge_all([])
    assert empty.names() == []
    single = MetricsRegistry.merge_all([a])
    single.counter("requests_total").inc(100)
    assert a.counter("requests_total").total == 5


def test_pickle_round_trip_merge_equals_in_process_merge():
    import pickle

    a, b = _two_registries()
    in_process = a.merge(b)
    shipped = pickle.loads(pickle.dumps(a)).merge(
        pickle.loads(pickle.dumps(b)))
    assert shipped.names() == in_process.names()
    for name in in_process.names():
        mine, theirs = in_process.scrape()[name], shipped.scrape()[name]
        assert type(mine) is type(theirs)
        if isinstance(mine, Histogram):
            assert sorted(mine.observations()) == \
                sorted(theirs.observations())
        elif isinstance(mine, Counter):
            assert sorted(map(repr, mine.items())) == \
                sorted(map(repr, theirs.items()))


def test_pickled_histogram_drops_clock_but_keeps_timestamps():
    import pickle

    a, _ = _two_registries()
    thawed = pickle.loads(pickle.dumps(a))
    hist = thawed.histogram("latency")
    assert hist.clock is None
    # Timestamps recorded before pickling still answer window queries.
    assert hist.count(since=4.0) == 1
    # And merging two thawed registries preserves timed-ness.
    b_thawed = pickle.loads(pickle.dumps(_two_registries()[1]))
    merged = thawed.merge(b_thawed)
    assert merged.histogram("latency").count(since=4.0) == \
        a.merge(_two_registries()[1]).histogram("latency").count(since=4.0)


def test_registry_register_adopts_and_rejects_collisions():
    registry = MetricsRegistry()
    counter = Counter("adopted_total")
    counter.inc(3)
    registry.register(counter)
    assert registry.counter("adopted_total").total == 3
    registry.register(counter)  # idempotent for the same object
    with pytest.raises(ValueError):
        registry.register(Counter("adopted_total"))
