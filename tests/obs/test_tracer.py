"""Unit tests for the span tracer and its trace-analysis helpers."""

import pytest

from repro.obs import (
    META_KEY,
    Span,
    Tracer,
    check_invariants,
    children_index,
    coverage_of,
    roots,
    spans_by_trace,
    trace_digest,
    tree_shape,
)


class FakeEnv:
    """A stand-in environment: just a settable clock."""

    def __init__(self):
        self.now = 0.0


class FakePacket:
    def __init__(self):
        self.meta = {}


def test_begin_end_records_interval_and_tags():
    env = FakeEnv()
    tracer = Tracer(env)
    tid = tracer.new_trace()
    span = tracer.begin("gateway.request", "gateway", trace_id=tid,
                        node="m1", tags={"workload": "web_server"})
    assert not span.finished
    env.now = 2.5
    tracer.end(span, tags={"ok": 1})
    assert span.finished
    assert span.start == 0.0 and span.end == 2.5
    assert span.duration == 2.5
    assert span.tags == {"workload": "web_server", "ok": 1}
    assert span.trace_id == tid


def test_parent_accepts_span_or_id():
    env = FakeEnv()
    tracer = Tracer(env)
    root = tracer.begin("root", trace_id=1)
    by_span = tracer.begin("child", trace_id=1, parent=root)
    by_id = tracer.begin("child", trace_id=1, parent=root.span_id)
    assert by_span.parent_id == root.span_id
    assert by_id.parent_id == root.span_id


def test_retroactive_start_covers_queueing():
    env = FakeEnv()
    tracer = Tracer(env)
    env.now = 5.0
    span = tracer.begin("host.cpu", trace_id=1, start=3.0)
    env.now = 6.0
    tracer.end(span)
    assert span.start == 3.0 and span.end == 6.0


def test_instant_has_zero_duration():
    env = FakeEnv()
    env.now = 4.0
    tracer = Tracer(env)
    span = tracer.instant("fault.injected", "fault", node="m2-nic")
    assert span.start == span.end == 4.0
    assert span.duration == 0.0


def test_end_is_none_safe():
    tracer = Tracer(FakeEnv())
    tracer.end(None)  # must not raise
    assert tracer.spans == []


def test_max_spans_drops_and_counts():
    env = FakeEnv()
    tracer = Tracer(env, max_spans=2)
    assert tracer.begin("a") is not None
    assert tracer.begin("b") is not None
    assert tracer.begin("c") is None
    assert tracer.instant("d") is None
    assert len(tracer.spans) == 2
    assert tracer.dropped_spans == 2


def test_open_span_duration_raises():
    tracer = Tracer(FakeEnv())
    span = tracer.begin("open")
    with pytest.raises(ValueError):
        _ = span.duration


def test_new_trace_ids_are_distinct():
    tracer = Tracer(FakeEnv())
    ids = {tracer.new_trace() for _ in range(10)}
    assert len(ids) == 10


# -- packet context ----------------------------------------------------------


def test_stamp_propagate_and_context_roundtrip():
    env = FakeEnv()
    tracer = Tracer(env)
    span = tracer.begin("gateway.proxy", trace_id=7)
    request, response = FakePacket(), FakePacket()

    Tracer.stamp_packet(request, span)
    assert request.meta[META_KEY] == (7, span.span_id)
    assert Tracer.context(request) == (7, span.span_id)

    Tracer.propagate(request, response)
    assert Tracer.context(response) == (7, span.span_id)


def test_unstamped_packet_has_null_context():
    packet = FakePacket()
    assert Tracer.context(packet) == (0, None)
    Tracer.stamp_packet(packet, None)  # None-safe
    assert packet.meta == {}
    Tracer.propagate(packet, FakePacket())  # nothing to copy, no raise


# -- analysis helpers --------------------------------------------------------


def _make_tree(tracer=None):
    """root [0..10] with children [0..4] and [6..10] (child2 nested)."""
    tracer = tracer if tracer is not None else Tracer(FakeEnv())
    env = tracer.env
    env.now = 0.0
    root = tracer.begin("root", trace_id=1, node="m1")
    left = tracer.begin("left", trace_id=1, parent=root)
    env.now = 4.0
    tracer.end(left)
    env.now = 6.0
    right = tracer.begin("right", trace_id=1, parent=root)
    nested = tracer.begin("nested", trace_id=1, parent=right)
    env.now = 10.0
    tracer.end(nested)
    tracer.end(right)
    tracer.end(root)
    return tracer


def test_spans_by_trace_and_roots_and_children():
    tracer = _make_tree()
    other = tracer.begin("solo", trace_id=2)
    tracer.end(other)
    by_trace = spans_by_trace(tracer.spans)
    assert set(by_trace) == {1, 2}
    assert [s.name for s in roots(by_trace[1])] == ["root"]
    index = children_index(by_trace[1])
    root = roots(by_trace[1])[0]
    assert sorted(s.name for s in index[root.span_id]) == ["left", "right"]


def test_check_invariants_clean_tree():
    tracer = _make_tree()
    assert check_invariants(tracer.spans) == []


def test_check_invariants_flags_violations():
    env = FakeEnv()
    tracer = Tracer(env)
    never_ended = tracer.begin("open", trace_id=1)
    orphan = tracer.begin("orphan", trace_id=1, parent=9999)
    tracer.end(orphan)
    root = tracer.begin("root", trace_id=1)
    crosser = tracer.begin("crosser", trace_id=2, parent=root)
    env.now = 1.0
    tracer.end(root)
    env.now = 2.0
    tracer.end(crosser)  # also escapes its parent's interval
    messages = "\n".join(check_invariants(tracer.spans))
    assert "never ended" in messages
    assert "orphan parent" in messages
    assert "crosses traces" in messages
    assert "escapes parent" in messages
    assert never_ended.end is None


def test_coverage_of_partial_and_overlapping():
    tracer = _make_tree()
    root = roots(tracer.spans)[0]
    # left covers [0..4], right+nested cover [6..10]: 8 of 10 seconds.
    assert coverage_of(root, tracer.spans) == pytest.approx(0.8)


def test_coverage_ignores_other_traces_and_open_spans():
    env = FakeEnv()
    tracer = Tracer(env)
    root = tracer.begin("root", trace_id=1)
    stranger = tracer.begin("stranger", trace_id=2)
    tracer.begin("open-child", trace_id=1, parent=root)
    env.now = 10.0
    tracer.end(stranger)
    tracer.end(root)
    assert coverage_of(root, tracer.spans) == 0.0


def test_coverage_of_zero_duration_root_is_full():
    tracer = Tracer(FakeEnv())
    root = tracer.instant("root", trace_id=1)
    assert coverage_of(root, tracer.spans) == 1.0


def test_coverage_of_open_root_raises():
    tracer = Tracer(FakeEnv())
    root = tracer.begin("root", trace_id=1)
    with pytest.raises(ValueError):
        coverage_of(root, tracer.spans)


def test_tree_shape_counts_names_and_edges():
    tracer = _make_tree()
    shape = tree_shape(tracer.spans)
    assert shape["root"] == 1
    assert shape["root>left"] == 1
    assert shape["root>right"] == 1
    assert shape["right>nested"] == 1


def test_trace_digest_deterministic_and_sensitive():
    first = trace_digest(_make_tree().spans)
    second = trace_digest(_make_tree().spans)
    assert first == second

    tracer = _make_tree()
    tracer.spans[0].tags["extra"] = 1
    assert trace_digest(tracer.spans) != first


def test_trace_digest_independent_of_span_id_offsets():
    """Digest canonicalises via name-paths, not raw span ids."""
    plain = _make_tree()
    offset = Tracer(FakeEnv())
    for _ in range(5):  # burn span ids before building the same tree
        offset.end(offset.begin("warmup", trace_id=99))
    offset.spans.clear()
    _make_tree(offset)
    assert trace_digest(plain.spans) == trace_digest(offset.spans)


def test_span_repr_mentions_name_and_state():
    tracer = Tracer(FakeEnv())
    span = tracer.begin("nic.serve", trace_id=3)
    assert "nic.serve" in repr(span) and "open" in repr(span)
    tracer.end(span)
    assert "open" not in repr(span)
