"""Unit tests for the Chrome trace / JSONL exporters."""

import json

from repro.obs import (
    TraceCollection,
    Tracer,
    chrome_events,
    span_records,
    write_chrome_trace,
)


class FakeEnv:
    def __init__(self):
        self.now = 0.0


def _sample_tracer():
    env = FakeEnv()
    tracer = Tracer(env)
    root = tracer.begin("gateway.request", "gateway", trace_id=1, node="m1",
                        tags={"workload": "web_server"})
    child = tracer.begin("net.link", "net", trace_id=1, parent=root,
                         node="m1", tags={"bytes": 128})
    env.now = 0.5
    tracer.end(child)
    tracer.instant("fault.injected", "fault", node="m2-nic",
                   tags={"action": "kill_nic"})
    env.now = 1.0
    tracer.end(root, tags={"ok": 1})
    tracer.begin("never.finished", trace_id=1, parent=root)
    return tracer


def test_chrome_events_shapes():
    events = chrome_events(_sample_tracer().spans)
    by_phase = {}
    for event in events:
        by_phase.setdefault(event["ph"], []).append(event)
    # One process_name metadata record per node (the open span's empty
    # node shows up as "(none)").
    assert {e["args"]["name"] for e in by_phase["M"]} == {
        "m1", "m2-nic", "(none)"}
    # Two finished intervals; the open span is skipped.
    assert {event["name"] for event in by_phase["X"]} == {
        "gateway.request", "net.link"}
    # The zero-duration fault becomes an instant event.
    (instant,) = by_phase["i"]
    assert instant["name"] == "fault.injected"
    assert instant["s"] == "t"
    # Sim seconds scale to microseconds and args carry tags + ids.
    (link,) = [e for e in by_phase["X"] if e["name"] == "net.link"]
    assert link["dur"] == 0.5 * 1e6
    assert link["args"]["bytes"] == 128
    assert "parent_id" in link["args"] and "span_id" in link["args"]


def test_chrome_events_pid_offset_and_label():
    events = chrome_events(_sample_tracer().spans, pid_offset=1000,
                           label="runA")
    metas = [e for e in events if e["ph"] == "M"]
    assert all(e["pid"] > 1000 for e in events)
    assert all(e["args"]["name"].startswith("runA:") for e in metas)


def test_span_records_skips_open_spans_and_labels_runs():
    records = span_records(_sample_tracer().spans, label="cell1")
    assert {record["name"] for record in records} == {
        "gateway.request", "net.link", "fault.injected"}
    assert all(record["run"] == "cell1" for record in records)
    unlabelled = span_records(_sample_tracer().spans)
    assert all("run" not in record for record in unlabelled)


def test_non_jsonable_tags_are_repred():
    tracer = _sample_tracer()
    tracer.spans[0].tags["obj"] = {"nested": 1}
    records = span_records(tracer.spans)
    (root,) = [r for r in records if r["name"] == "gateway.request"]
    assert root["tags"]["obj"] == repr({"nested": 1})
    json.dumps(records)  # must be serialisable end to end


def test_collection_accessors():
    collection = TraceCollection()
    tracer = _sample_tracer()
    collection.add("a", tracer)
    collection.add("b", tracer.spans[:2])
    assert collection.labels() == ["a", "b"]
    assert collection.n_spans == len(tracer.spans) + 2
    assert collection.spans_for("b") == tracer.spans[:2]
    try:
        collection.spans_for("missing")
    except KeyError:
        pass
    else:
        raise AssertionError("expected KeyError")


def test_collection_chrome_keeps_runs_apart(tmp_path):
    collection = TraceCollection()
    collection.add("a", _sample_tracer())
    collection.add("b", _sample_tracer())
    data = collection.to_chrome()
    pids_a = {e["pid"] for e in data["traceEvents"]
              if e["pid"] <= TraceCollection.PID_STRIDE}
    pids_b = {e["pid"] for e in data["traceEvents"]
              if e["pid"] > TraceCollection.PID_STRIDE}
    assert pids_a and pids_b and not (pids_a & pids_b)

    path = tmp_path / "trace.json"
    collection.write_chrome(str(path))
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == len(data["traceEvents"])


def test_collection_jsonl_roundtrip(tmp_path):
    collection = TraceCollection()
    collection.add("only", _sample_tracer())
    path = tmp_path / "trace.spans.jsonl"
    collection.write_jsonl(str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == 3  # open span skipped
    assert {record["run"] for record in records} == {"only"}


def test_write_chrome_trace_single_shot(tmp_path):
    path = tmp_path / "one.json"
    write_chrome_trace(_sample_tracer().spans, str(path))
    loaded = json.loads(path.read_text())
    assert any(event["name"] == "gateway.request"
               for event in loaded["traceEvents"])
