"""Tests for the host server backend datapath."""

import pytest

from repro.host import (
    BareMetalRuntime,
    ContainerRuntime,
    HostServer,
    ServiceTimeout,
)
from repro.net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Network,
    Packet,
    RpcHeader,
    UDPHeader,
)
from repro.sim import Environment


def lambda_packet(wid, request_id=1, src="client", dst="worker"):
    return Packet(
        src, dst,
        HeaderStack([
            EthernetHeader(), IPv4Header(), UDPHeader(),
            LambdaHeader(wid=wid, request_id=request_id),
        ]),
        payload_bytes=64,
    )


def simple_handler(ctx):
    yield ctx.compute(100e-6)
    ctx.response_bytes = 200
    ctx.response_meta["ok"] = 1


def make_setup(runtime=None, **deploy_kwargs):
    env = Environment()
    network = Network(env)
    client = network.add_node("client")
    worker_node = network.add_node("worker")
    server = HostServer(env, worker_node)
    server.deploy(
        "web", wid=1, handler=simple_handler,
        runtime=runtime or BareMetalRuntime(), **deploy_kwargs,
    )
    return env, network, client, server


def test_request_response_roundtrip():
    env, network, client, server = make_setup()
    responses = []
    client.attach(lambda p: responses.append((p, env.now)))
    client.send(lambda_packet(wid=1, request_id=5))
    env.run()
    assert len(responses) == 1
    response, at = responses[0]
    assert response.headers.require("LambdaHeader").is_response
    assert response.meta["lambda_meta"]["ok"] == 1
    assert response.payload_bytes == 200
    # Host path: kernel + dispatch + compute -> hundreds of microseconds.
    assert 100e-6 < at < 5e-3


def test_container_slower_than_bare_metal():
    def run(runtime):
        env, network, client, server = make_setup(runtime=runtime)
        times = []
        client.attach(lambda p: times.append(env.now))
        client.send(lambda_packet(wid=1))
        env.run()
        return times[0]

    assert run(ContainerRuntime()) > 5 * run(BareMetalRuntime())


def test_unknown_wid_dropped():
    env, network, client, server = make_setup()
    client.attach(lambda p: None)
    client.send(lambda_packet(wid=99))
    env.run()
    assert server.stats.dropped_unknown == 1
    assert server.stats.requests_served == 0


def test_cold_deployment_drops_until_started():
    env, network, client, server = make_setup(warm=False)
    responses = []
    client.attach(lambda p: responses.append(p))

    def scenario(env):
        client.send(lambda_packet(wid=1))
        yield env.timeout(1.0)
        yield server.start("web")
        client.send(lambda_packet(wid=1))

    env.process(scenario(env))
    env.run()
    assert server.stats.dropped_cold == 1
    assert len(responses) == 1


def test_startup_time_depends_on_runtime():
    env, network, client, server = make_setup(warm=False)
    start = server.start("web")
    env.run(until=start)
    assert 3.0 < env.now < 10.0  # bare-metal startup window


def test_duplicate_deploy_rejected():
    env, network, client, server = make_setup()
    with pytest.raises(ValueError):
        server.deploy("web", wid=7, handler=simple_handler,
                      runtime=BareMetalRuntime())
    with pytest.raises(ValueError):
        server.deploy("other", wid=1, handler=simple_handler,
                      runtime=BareMetalRuntime())


def test_undeploy_frees_memory():
    env, network, client, server = make_setup()
    used = server.memory.used_bytes
    assert used > 0
    server.undeploy("web")
    assert server.memory.used_bytes == 0


def test_max_workers_serialises_requests():
    env = Environment()
    network = Network(env)
    client = network.add_node("client")
    worker_node = network.add_node("worker")
    server = HostServer(env, worker_node)

    def slow_handler(ctx):
        yield ctx.compute(1e-3)

    server.deploy("slow", wid=1, handler=slow_handler,
                  runtime=BareMetalRuntime(), max_workers=1)
    times = []
    client.attach(lambda p: times.append(env.now))
    for index in range(3):
        client.send(lambda_packet(wid=1, request_id=index))
    env.run()
    assert len(times) == 3
    # Strictly serialised: ~1 ms apart.
    assert times[1] - times[0] > 0.9e-3
    assert times[2] - times[1] > 0.9e-3


def test_call_service_roundtrip():
    env = Environment()
    network = Network(env)
    client = network.add_node("client")
    worker_node = network.add_node("worker")
    cache_node = network.add_node("cache")
    server = HostServer(env, worker_node)

    def cache_service(packet):
        reply = Packet(
            "cache", packet.src,
            HeaderStack([
                EthernetHeader(), IPv4Header(), UDPHeader(),
                LambdaHeader(
                    request_id=packet.headers.require("LambdaHeader").request_id,
                    is_response=True,
                ),
                RpcHeader(method="resp", status=0),
            ]),
            payload_bytes=100,
        )
        cache_node.send(reply)

    cache_node.attach(cache_service)

    def kv_handler(ctx):
        response = yield ctx.call("cache", method="GET", key="user1")
        ctx.response_meta["cache_status"] = \
            response.headers.require("RpcHeader").status
        yield ctx.compute(50e-6)

    server.deploy("kv", wid=2, handler=kv_handler, runtime=BareMetalRuntime())
    responses = []
    client.attach(lambda p: responses.append(p))
    client.send(lambda_packet(wid=2))
    env.run()
    assert len(responses) == 1
    assert responses[0].meta["lambda_meta"]["cache_status"] == 0
    assert cache_node.rx_packets == 1


def test_call_service_times_out_and_raises():
    env = Environment()
    network = Network(env)
    client = network.add_node("client")
    worker_node = network.add_node("worker")
    dead_node = network.add_node("dead")
    dead_node.attach(lambda p: None)  # Never replies.
    server = HostServer(env, worker_node)
    outcomes = []

    def kv_handler(ctx):
        try:
            yield ctx.call("dead", timeout=0.01, retries=2)
        except ServiceTimeout:
            outcomes.append("timeout")
        yield ctx.compute(10e-6)

    server.deploy("kv", wid=2, handler=kv_handler, runtime=BareMetalRuntime())
    client.attach(lambda p: None)
    client.send(lambda_packet(wid=2))
    env.run()
    assert outcomes == ["timeout"]
    assert dead_node.rx_packets == 3  # initial + 2 retries


def test_call_service_retries_on_loss_then_succeeds():
    env = Environment()
    network = Network(env)
    client = network.add_node("client")
    worker_node = network.add_node("worker")
    flaky_node = network.add_node("flaky")
    server = HostServer(env, worker_node)
    seen = []

    def flaky_service(packet):
        seen.append(packet)
        if len(seen) < 2:
            return  # Drop the first request.
        reply = Packet(
            "flaky", packet.src,
            HeaderStack([
                EthernetHeader(), IPv4Header(), UDPHeader(),
                LambdaHeader(
                    request_id=packet.headers.require("LambdaHeader").request_id,
                    is_response=True,
                ),
            ]),
            payload_bytes=50,
        )
        flaky_node.send(reply)

    flaky_node.attach(flaky_service)

    def handler(ctx):
        yield ctx.call("flaky", timeout=0.01)
        ctx.response_meta["done"] = 1

    server.deploy("kv", wid=2, handler=handler, runtime=BareMetalRuntime())
    responses = []
    client.attach(lambda p: responses.append(p))
    client.send(lambda_packet(wid=2))
    env.run()
    assert responses[0].meta["lambda_meta"]["done"] == 1
    assert len(seen) == 2
