"""Tests for the decomposed container overlay path."""

import pytest

from repro.host import (
    ContainerParams,
    ContainerRuntime,
    DEFAULT_COMPONENTS,
    OverlayComponent,
    OverlayPath,
    host_networking_path,
)


def test_default_components_sum_to_flat_constant():
    """The decomposition must audit to the flat dispatch constant."""
    path = OverlayPath()
    params = ContainerParams()
    assert path.dispatch_seconds == pytest.approx(params.dispatch_seconds)
    assert path.cpu_seconds == pytest.approx(params.cpu_overhead_seconds)


def test_runtime_uses_overlay_when_given():
    runtime = ContainerRuntime(overlay=OverlayPath())
    assert runtime.dispatch_seconds == pytest.approx(
        ContainerParams().dispatch_seconds
    )
    slim = ContainerRuntime(overlay=host_networking_path())
    assert slim.dispatch_seconds < runtime.dispatch_seconds


def test_without_removes_components():
    path = OverlayPath().without("docker_proxy")
    assert "docker_proxy" not in path.breakdown()
    assert path.dispatch_seconds == pytest.approx(3.8e-3 - 800e-6)


def test_without_unknown_component_raises():
    with pytest.raises(KeyError):
        OverlayPath().without("quantum_tunnel")


def test_non_removable_component_protected():
    fixed = OverlayComponent("kernel", 10e-6, removable=False)
    path = OverlayPath((fixed,))
    with pytest.raises(ValueError):
        path.without("kernel")


def test_duplicate_components_rejected():
    duplicate = DEFAULT_COMPONENTS + (DEFAULT_COMPONENTS[0],)
    with pytest.raises(ValueError):
        OverlayPath(duplicate)


def test_host_networking_keeps_proxy_and_watchdog():
    path = host_networking_path()
    names = set(path.breakdown())
    assert "docker_proxy" in names
    assert "watchdog_fork" in names
    assert "overlay_encap" not in names
    # Host networking removes roughly 0.5 ms of the 3.8 ms path.
    assert 3.0e-3 < path.dispatch_seconds < 3.5e-3


def test_breakdown_ordering_preserved():
    path = OverlayPath()
    assert list(path.breakdown()) == [c.name for c in DEFAULT_COMPONENTS]
