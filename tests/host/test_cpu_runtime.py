"""Tests for the host CPU model and the runtimes."""

import pytest

from repro.host import (
    BareMetalRuntime,
    ContainerRuntime,
    CpuParams,
    HostCPU,
    HostMemory,
    MIB,
    Runtime,
)
from repro.sim import Environment


def test_cpu_executes_work():
    env = Environment()
    cpu = HostCPU(env, CpuParams(n_threads=2, context_switch_seconds=0.0))
    done = []

    def work(env, cpu):
        cost = yield env.process(cpu.execute("web", 1e-3))
        done.append((env.now, cost))

    env.process(work(env, cpu))
    env.run()
    assert done[0][0] == pytest.approx(1e-3)
    assert cpu.stats.busy_seconds == pytest.approx(1e-3)


def test_cpu_thread_limit_queues_work():
    env = Environment()
    cpu = HostCPU(env, CpuParams(n_threads=1, context_switch_seconds=0.0))
    finishes = []

    def work(env, cpu):
        yield env.process(cpu.execute("web", 1e-3))
        finishes.append(env.now)

    env.process(work(env, cpu))
    env.process(work(env, cpu))
    env.run()
    assert finishes == pytest.approx([1e-3, 2e-3])


def test_same_task_keeps_thread_warm():
    """A single lambda in a closed loop pays one context switch total."""
    env = Environment()
    cpu = HostCPU(env, CpuParams(n_threads=4, context_switch_seconds=10e-6))

    def loop(env, cpu):
        for _ in range(10):
            yield env.process(cpu.execute("web", 1e-4))

    env.process(loop(env, cpu))
    env.run()
    assert cpu.stats.context_switches == 1


def test_distinct_tasks_context_switch_every_time():
    """Round-robin lambdas on one thread switch on every request."""
    env = Environment()
    cpu = HostCPU(env, CpuParams(n_threads=1, context_switch_seconds=10e-6))

    def loop(env, cpu):
        for index in range(9):
            yield env.process(cpu.execute(f"lambda{index % 3}", 1e-4))

    env.process(loop(env, cpu))
    env.run()
    assert cpu.stats.context_switches == 9


def test_context_switch_adds_latency():
    env = Environment()
    switching = HostCPU(env, CpuParams(n_threads=1, context_switch_seconds=50e-6))
    durations = []

    def work(env, cpu):
        cost = yield env.process(cpu.execute("a", 1e-4))
        durations.append(cost)
        cost = yield env.process(cpu.execute("b", 1e-4))
        durations.append(cost)
        cost = yield env.process(cpu.execute("b", 1e-4))
        durations.append(cost)

    env.process(work(env, switching))
    env.run()
    assert durations[0] == pytest.approx(1e-4 + 50e-6)  # cold thread
    assert durations[1] == pytest.approx(1e-4 + 50e-6)  # a -> b switch
    assert durations[2] == pytest.approx(1e-4)          # warm b


def test_cpu_utilization_and_task_attribution():
    env = Environment()
    cpu = HostCPU(env, CpuParams(n_threads=2, context_switch_seconds=0.0))

    def work(env, cpu):
        yield env.process(cpu.execute("img", 5e-3))

    env.process(work(env, cpu))
    env.run(until=10e-3)
    assert cpu.stats.utilization(10e-3, 2) == pytest.approx(0.25)
    assert cpu.stats.task_utilization("img", 10e-3, 2) == pytest.approx(0.25)
    assert cpu.stats.task_utilization("other", 10e-3, 2) == 0.0


def test_cpu_account_without_thread():
    env = Environment()
    cpu = HostCPU(env, CpuParams(n_threads=2))
    cpu.account("kernel", 1e-3)
    assert cpu.stats.per_task_busy["kernel"] == pytest.approx(1e-3)


def test_cpu_validates_threads():
    env = Environment()
    with pytest.raises(ValueError):
        HostCPU(env, n_threads=0)


def test_runtime_package_sizes_match_table4_shape():
    bare = BareMetalRuntime()
    container = ContainerRuntime()
    code = 1 * MIB
    assert bare.package_bytes(code) == pytest.approx(17 * MIB, rel=0.1)
    assert container.package_bytes(code) == pytest.approx(153 * MIB, rel=0.1)
    # Container image is an order of magnitude bigger.
    assert container.package_bytes(code) > 8 * bare.package_bytes(code)


def test_runtime_startup_ordering():
    """Container startup must exceed bare-metal (Table 4: 31.7 vs 5 s)."""
    bare = BareMetalRuntime()
    container = ContainerRuntime()
    code = 1 * MIB
    bare_start = bare.startup_seconds(bare.package_bytes(code))
    container_start = container.startup_seconds(container.package_bytes(code))
    assert container_start > 4 * bare_start
    assert 3 < bare_start < 8
    assert 25 < container_start < 40


def test_container_memory_overhead_larger():
    assert ContainerRuntime().memory_overhead_bytes > \
        3 * BareMetalRuntime().memory_overhead_bytes


def test_base_runtime_is_free():
    runtime = Runtime()
    assert runtime.dispatch_seconds == 0.0
    assert runtime.memory_overhead_bytes == 0
    assert runtime.startup_seconds(runtime.package_bytes(100)) == 0.0


def test_host_memory_accounting():
    memory = HostMemory(capacity_bytes=100)
    memory.allocate(60)
    with pytest.raises(MemoryError):
        memory.allocate(50)
    memory.free(30)
    memory.allocate(50)
    assert memory.used_bytes == 80
    with pytest.raises(ValueError):
        memory.allocate(-1)
