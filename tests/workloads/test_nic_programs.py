"""Tests for the NIC (lambda-IR) forms of the benchmark workloads."""

import pytest

from repro.isa import Interpreter, VERDICT_DROP, VERDICT_FORWARD
from repro.isa.analysis import function_signature
from repro.workloads import (
    ACK_BYTES,
    KV_RESPONSE_BYTES,
    grayscale_reference,
    image_transformer_nic,
    kv_client_nic,
    make_rgba_image,
    populate_content,
    web_server_nic,
)


def run(program, headers=None, meta=None, memory=None):
    return Interpreter().run(program, headers=headers or {}, meta=meta or {},
                             memory=memory)


def test_web_server_serves_requested_page():
    program = web_server_nic(pages=8, page_bytes=100)
    memory = {name: bytearray(obj.size_bytes)
              for name, obj in program.objects.items()}
    populate_content(memory["content"], pages=8, page_bytes=100)
    result = run(
        program,
        headers={"LambdaHeader": {"request_id": 3}},
        memory=memory,
    )
    assert result.verdict == VERDICT_FORWARD
    assert result.meta["response_bytes"] == 100
    assert result.response_payload == bytes([3] * 100)
    assert result.headers["LambdaHeader"]["is_response"] == 1


def test_web_server_pages_differ():
    program = web_server_nic(pages=8, page_bytes=50)
    memory = {name: bytearray(obj.size_bytes)
              for name, obj in program.objects.items()}
    populate_content(memory["content"], pages=8, page_bytes=50)
    p1 = run(program, headers={"LambdaHeader": {"request_id": 1}},
             memory=memory).response_payload
    p2 = run(program, headers={"LambdaHeader": {"request_id": 2}},
             memory=memory).response_payload
    assert p1 != p2


def test_web_server_counts_hits_persistently():
    program = web_server_nic(pages=8, page_bytes=50)
    memory = {name: bytearray(obj.size_bytes)
              for name, obj in program.objects.items()}
    for _ in range(3):
        run(program, headers={"LambdaHeader": {"request_id": 0}}, memory=memory)
    assert int.from_bytes(memory["stats"][:8], "little") == 3


def test_web_server_requires_power_of_two_pages():
    with pytest.raises(ValueError):
        web_server_nic(pages=12)


def test_kv_client_phase1_emits_call_and_parks():
    program = kv_client_nic(keys=8)
    result = run(program, headers={"LambdaHeader": {"request_id": 5}},
                 meta={"service_response": 0})
    assert result.verdict == VERDICT_DROP
    assert len(result.emitted) == 1
    emitted = result.emitted[0]
    assert emitted.meta["emit_dst"] == "memcached"
    assert emitted.meta["emit_key"] == 5  # request_id & 7
    assert emitted.meta["emit_method"] == "GET"


def test_kv_client_set_variant():
    program = kv_client_nic(method="SET", keys=8)
    result = run(program, headers={"LambdaHeader": {"request_id": 2}})
    assert result.emitted[0].meta["emit_method"] == "SET"


def test_kv_client_phase2_replies():
    program = kv_client_nic(keys=8)
    result = run(
        program,
        headers={"LambdaHeader": {"request_id": 5}},
        meta={"service_response": 1, "service_status": 0},
    )
    assert result.verdict == VERDICT_FORWARD
    assert result.meta["response_bytes"] == KV_RESPONSE_BYTES
    assert not result.emitted


def test_kv_client_phase2_error_short_reply():
    program = kv_client_nic(keys=8)
    result = run(
        program,
        headers={"LambdaHeader": {"request_id": 5}},
        meta={"service_response": 1, "service_status": 1},
    )
    assert result.verdict == VERDICT_FORWARD
    assert result.meta["response_bytes"] == 32


def test_kv_client_validates_args():
    with pytest.raises(ValueError):
        kv_client_nic(keys=10)
    with pytest.raises(ValueError):
        kv_client_nic(method="FROB")


def test_image_transformer_grayscale_matches_reference():
    width = height = 32
    program = image_transformer_nic(width=width, height=height,
                                    tile_blocks=4, block_pad=2)
    memory = {name: bytearray(obj.size_bytes)
              for name, obj in program.objects.items()}
    rgba = make_rgba_image(width, height, seed=3)
    memory["image"][:] = rgba
    result = run(
        program,
        headers={"LambdaHeader": {"request_id": 1, "seq": 0}},
        meta={"rdma_len": len(rgba)},
        memory=memory,
    )
    assert result.verdict == VERDICT_FORWARD
    assert result.meta["response_bytes"] == ACK_BYTES
    expected = grayscale_reference(rgba)
    assert bytes(memory["image"][:width * height]) == expected


def test_image_transformer_rejects_empty():
    program = image_transformer_nic(width=8, height=8, tile_blocks=2,
                                    block_pad=1)
    result = run(program, headers={"LambdaHeader": {"request_id": 1, "seq": 0}},
                 meta={"rdma_len": 0})
    assert result.meta["response_bytes"] == 32


def test_image_transform_cost_scales_with_pixels():
    small = image_transformer_nic(width=16, height=16, tile_blocks=2,
                                  block_pad=1)
    big = image_transformer_nic(width=64, height=64, tile_blocks=2,
                                block_pad=1)

    def cycles(program, n):
        memory = {name: bytearray(obj.size_bytes)
                  for name, obj in program.objects.items()}
        return run(
            program,
            headers={"LambdaHeader": {"request_id": 1, "seq": 0}},
            meta={"rdma_len": n},
            memory=memory,
        ).cycles

    assert cycles(big, 64 * 64 * 4) > 10 * cycles(small, 16 * 16 * 4)


def test_shared_helpers_are_coalescable():
    """The reply and request-gen helpers must be byte-identical."""
    web = web_server_nic()
    img = image_transformer_nic()
    assert function_signature(web.functions["reply_static"]) == \
        function_signature(img.functions["reply_static"])
    kv_get = kv_client_nic("kv1", method="GET")
    kv_set = kv_client_nic("kv2", method="SET")
    assert function_signature(kv_get.functions["gen_memcached_request"]) == \
        function_signature(kv_set.functions["gen_memcached_request"])


def test_all_nic_programs_validate():
    for program in [web_server_nic(), kv_client_nic(), image_transformer_nic()]:
        program.validate()
        assert program.instruction_count > 500
