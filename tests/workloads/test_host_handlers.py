"""Tests for the host-handler forms of the benchmark workloads."""

import pytest

from repro.host import BareMetalRuntime, ContainerRuntime, HostServer
from repro.kvcache import MemcachedServer
from repro.net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Network,
    Packet,
    UDPHeader,
)
from repro.sim import Environment, RngRegistry
from repro.workloads import (
    ACK_BYTES,
    KV_RESPONSE_BYTES,
    fig9_workloads,
    image_transformer_host,
    kv_client_host,
    standard_workloads,
    web_server_host,
)


def request(wid, request_id=1, payload_bytes=64):
    return Packet(
        "client", "worker",
        HeaderStack([
            EthernetHeader(), IPv4Header(), UDPHeader(),
            LambdaHeader(wid=wid, request_id=request_id),
        ]),
        payload_bytes=payload_bytes,
    )


def make_env():
    env = Environment()
    network = Network(env)
    client = network.add_node("client")
    worker = HostServer(env, network.add_node("worker"))
    return env, network, client, worker


def test_web_host_handler_latency_and_size():
    env, network, client, worker = make_env()
    worker.deploy("web", wid=1, handler=web_server_host(),
                  runtime=BareMetalRuntime())
    responses = []
    client.attach(lambda p: responses.append((p, env.now)))
    client.send(request(wid=1))
    env.run()
    response, at = responses[0]
    assert response.payload_bytes == 1400
    # Bare-metal isolation latency: order 100 us (kernel+dispatch+compute).
    assert 100e-6 < at < 1e-3


def test_kv_host_handler_queries_memcached():
    env, network, client, worker = make_env()
    cache = MemcachedServer(env, network.add_node("memcached"))
    worker.deploy("kv", wid=2, handler=kv_client_host(),
                  runtime=BareMetalRuntime())
    responses = []
    client.attach(lambda p: responses.append(p))
    client.send(request(wid=2, request_id=7))
    env.run()
    assert cache.stats.gets == 1
    assert responses[0].meta["lambda_meta"]["status"] == 1  # miss (empty cache)
    assert responses[0].payload_bytes == 32


def test_kv_host_handler_hit_after_set():
    env, network, client, worker = make_env()
    cache = MemcachedServer(env, network.add_node("memcached"))
    cache.data["user7"] = b"profile"
    worker.deploy("kv", wid=2, handler=kv_client_host(),
                  runtime=BareMetalRuntime())
    responses = []
    client.attach(lambda p: responses.append(p))
    client.send(request(wid=2, request_id=7))
    env.run()
    assert responses[0].meta["lambda_meta"]["status"] == 0
    assert responses[0].payload_bytes == KV_RESPONSE_BYTES


def test_image_host_handler_compute_scales():
    env, network, client, worker = make_env()
    worker.deploy(
        "img", wid=3,
        handler=image_transformer_host(width=256, height=256),
        runtime=BareMetalRuntime(),
    )
    responses = []
    client.attach(lambda p: responses.append((p, env.now)))
    client.send(request(wid=3, payload_bytes=256 * 256 * 4))
    env.run()
    response, at = responses[0]
    assert response.payload_bytes == ACK_BYTES
    # 65536 pixels x 0.36 us/px ~ 23.6 ms of compute.
    assert 20e-3 < at < 60e-3


def test_container_image_handler_slower_than_bare_metal():
    def run_backend(runtime):
        env, network, client, worker = make_env()
        worker.deploy("img", wid=3,
                      handler=image_transformer_host(width=128, height=128),
                      runtime=runtime)
        times = []
        client.attach(lambda p: times.append(env.now))
        client.send(request(wid=3, payload_bytes=128 * 128 * 4))
        env.run()
        return times[0]

    bare = run_backend(BareMetalRuntime())
    container = run_backend(ContainerRuntime())
    assert 1.3 < container / bare < 4.0  # compute multiplier + dispatch


def test_rng_jitter_varies_latency():
    rng = RngRegistry(seed=9).stream("jitter")
    env, network, client, worker = make_env()
    worker.deploy("web", wid=1, handler=web_server_host(rng=rng),
                  runtime=BareMetalRuntime())
    times = []
    last = [0.0]

    def on_response(packet):
        times.append(env.now - last[0])

    client.attach(on_response)

    def driver(env):
        for index in range(20):
            last[0] = env.now
            client.send(request(wid=1, request_id=index))
            yield env.timeout(0.01)

    env.process(driver(env))
    env.run()
    assert len(set(round(t, 9) for t in times)) > 10  # jittered


def test_registry_specs_complete():
    workloads = standard_workloads()
    assert set(workloads) == {"web_server", "kv_client", "image_transformer"}
    for spec in workloads.values():
        program = spec.nic_program()
        program.validate()
        handler = spec.host_handler()
        assert callable(handler)
    assert workloads["image_transformer"].uses_rdma
    assert workloads["image_transformer"].request_bytes == 1024 * 1024


def test_fig9_registry_has_two_kv_clients():
    workloads = fig9_workloads()
    assert len(workloads) == 4
    assert workloads["kv_client_get"].nic_kwargs["method"] == "GET"
    assert workloads["kv_client_set"].nic_kwargs["method"] == "SET"
