"""Fault-tolerance integration: RPC over a lossy fabric, Raft failover."""

from repro.net import (
    HeaderStack,
    LambdaHeader,
    Network,
    Packet,
    RpcHeader,
    UDPHeader,
)
from repro.raft import EtcdClient, EtcdCluster
from repro.sim import Environment, RngRegistry
from repro.transport import RpcEndpoint


def echo_responder(env, node, packet):
    lam = packet.headers.require("LambdaHeader")
    node.send(Packet(
        node.name, packet.src,
        headers=HeaderStack([
            UDPHeader(),
            LambdaHeader(request_id=lam.request_id, is_response=True),
            RpcHeader(method="RESP", status=0),
        ]),
        payload_bytes=32,
    ))


def test_rpc_retransmits_through_lossy_fabric():
    """20% loss on every link: the weakly-consistent sender's timeouts
    and retransmissions still complete every call."""
    env = Environment()
    rng = RngRegistry(seed=17)
    network = Network(env, drop_probability=0.2, rng=rng.stream("loss"))
    caller_node = network.add_node("caller")
    server_node = network.add_node("server")
    endpoint = RpcEndpoint(env, caller_node, timeout=0.01, retries=10)
    caller_node.attach(endpoint.on_packet)
    server_node.attach(lambda p: echo_responder(env, server_node, p))
    completed = []

    def scenario():
        for index in range(40):
            response = yield endpoint.call("server", method="GET",
                                           key=f"k{index}")
            assert response.headers.require("RpcHeader").status == 0
            completed.append(index)

    process = env.process(scenario())
    env.run(until=process)
    assert len(completed) == 40
    assert endpoint.outstanding == 0
    # With 20% loss per link (~36% per round trip) retransmissions are
    # statistically certain across 40 calls.
    assert endpoint.retransmissions > 0
    assert endpoint.timeouts > 0


def test_raft_leader_crash_reelection_and_convergence():
    """Crash the leader mid-workload: a new leader takes over, writes
    keep succeeding, and the recovered node converges on the full log."""
    env = Environment()
    rng = RngRegistry(seed=23)
    network = Network(env)
    cluster = EtcdCluster(env, network, n_nodes=5, rng=rng)
    client = EtcdClient(env, network.add_node("client"), cluster.names)
    observed = {}

    def scenario(env):
        leader = yield cluster.wait_for_leader()
        observed["first_leader"] = leader.name
        observed["first_term"] = leader.current_term

        for index in range(3):
            yield client.set(f"/k{index}", f"v{index}")

        leader.crash()
        new_leader = yield cluster.wait_for_leader()
        observed["second_leader"] = new_leader.name
        observed["second_term"] = new_leader.current_term

        # Committed state survived; the cluster still accepts writes.
        value = yield client.get("/k1")
        assert value == "v1"
        for index in range(3, 6):
            yield client.set(f"/k{index}", f"v{index}")

        cluster.recover(leader.name)
        yield env.timeout(3.0)  # heartbeats replay the missed entries

    process = env.process(scenario(env))
    env.run(until=process)

    assert observed["second_leader"] != observed["first_leader"]
    assert observed["second_term"] > observed["first_term"]
    expected = {f"/k{i}": f"v{i}" for i in range(6)}
    # Every store (including the recovered ex-leader's) converged.
    for name in cluster.names:
        data = cluster.stores[name].data
        assert expected.items() <= data.items(), f"{name} diverged"
