"""Integration: multi-worker fleets and gateway routing behaviour."""

import pytest

from repro.serverless import Testbed, closed_loop
from repro.workloads import image_transformer_spec, web_server_spec


def test_requests_round_robin_across_nic_fleet():
    tb = Testbed(seed=41, n_workers=4)
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=40)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert process.value.completed == 40
    served = [nic.stats.requests_served for nic in tb.nics]
    assert served == [10, 10, 10, 10]


def test_all_nics_carry_same_firmware():
    tb = Testbed(seed=42, n_workers=3)
    tb.add_lambda_nic_backend()

    def scenario(env):
        yield tb.manager.deploy(web_server_spec(), "lambda-nic")

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    firmwares = {id(nic.firmware) for nic in tb.nics}
    assert len(firmwares) == 1
    assert all(nic.firmware is tb.nic_runtime.firmware for nic in tb.nics)


def test_rdma_image_round_robins_and_reassembles_per_nic():
    tb = Testbed(seed=43, n_workers=2)
    tb.add_lambda_nic_backend()
    spec = image_transformer_spec(width=64, height=64)

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        result = yield closed_loop(
            tb.env, tb.gateway, spec.name, n_requests=4,
            payload_bytes=spec.request_bytes,
        )
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert process.value.completed == 4
    # Segments of one message all went to the same NIC (2 messages each).
    for nic in tb.nics:
        assert nic.stats.rdma_messages == 2
        assert nic.stats.rdma_segments == 2 * (spec.request_bytes // 4096)


def test_host_backend_spreads_over_workers():
    tb = Testbed(seed=44, n_workers=2)
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "bare-metal")
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=20, concurrency=4)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert process.value.completed == 20
    served = [server.stats.requests_served
              for server in tb.host_servers("bare-metal")]
    assert sum(served) == 20
    assert all(count > 0 for count in served)


def test_mixed_backends_coexist():
    """One framework can host all three backends at once (paper §6.1.1:
    'the baseline framework can simultaneously deploy lambdas to
    containers, bare-metal, and SmartNIC backends')."""
    tb = Testbed(seed=45, n_workers=2)
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    tb.add_container_backend()

    def scenario(env):
        yield tb.manager.deploy(web_server_spec("on_nic"), "lambda-nic")
        yield tb.manager.deploy(web_server_spec("on_bare"), "bare-metal")
        yield tb.manager.deploy(web_server_spec("on_ctr"), "container")
        results = {}
        for name in ["on_nic", "on_bare", "on_ctr"]:
            results[name] = yield closed_loop(tb.env, tb.gateway, name,
                                              n_requests=10)
        return results

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    results = process.value
    assert all(result.completed == 10 for result in results.values())
    assert results["on_nic"].mean_latency < results["on_bare"].mean_latency
    assert results["on_bare"].mean_latency < results["on_ctr"].mean_latency
