"""Failure-injection integration tests across the whole stack."""

import pytest

from repro.serverless import GatewayTimeout, Testbed, closed_loop
from repro.workloads import kv_client_spec, web_server_spec


def test_gateway_retry_recovers_from_packet_loss():
    """5% packet loss: the weakly-consistent sender retransmits and
    every request eventually completes."""
    tb = Testbed(seed=31, n_workers=1,
                 gateway_kwargs={"request_timeout": 0.02, "max_retries": 6})
    # Make the whole fabric lossy.
    tb.network.drop_probability = 0.05
    tb.network.rng = tb.rng.stream("loss")
    for link in tb.network._links.values():
        link._ab.drop_probability = 0.05
        link._ab.rng = tb.network.rng
        link._ba.drop_probability = 0.05
        link._ba.rng = tb.network.rng
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        # New nodes (the NIC) were cabled after we patched links; patch
        # again so their links are lossy too.
        for link in tb.network._links.values():
            link._ab.drop_probability = 0.05
            link._ab.rng = tb.network.rng
            link._ba.drop_probability = 0.05
            link._ba.rng = tb.network.rng
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=60)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    result = process.value
    assert result.completed + result.failures == 60
    assert result.completed >= 55  # retries recover nearly everything
    retried = [lat for lat in result.latencies if lat > 0.02]
    assert retried, "some requests must have gone through a retry"


def test_memcached_outage_host_backend_degrades_gracefully():
    """With memcached black-holed, kv requests fail without killing the
    worker, and the web workload keeps serving."""
    tb = Testbed(seed=32, n_workers=1,
                 gateway_kwargs={"request_timeout": 0.5, "max_retries": 0})
    tb.memcached.node.attach(lambda p: None)  # black hole
    tb.add_bare_metal_backend()
    kv = kv_client_spec()
    web = web_server_spec()
    outcomes = {"kv_failures": 0}

    def scenario(env):
        yield tb.manager.deploy(kv, "bare-metal")
        yield tb.manager.deploy(web, "bare-metal")
        for _ in range(3):
            try:
                yield tb.gateway.request(kv.name)
            except GatewayTimeout:
                outcomes["kv_failures"] += 1
        result = yield closed_loop(tb.env, tb.gateway, web.name,
                                   n_requests=10)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    web_result = process.value
    assert outcomes["kv_failures"] == 3
    server = tb.host_servers("bare-metal")[0]
    assert server.stats.handler_errors == 3  # ServiceTimeout contained
    assert web_result.completed == 10  # worker survived


def test_firmware_swap_under_load_drops_then_recovers():
    """Deploying a second lambda swaps firmware; in-flight traffic is
    dropped during the window (the §7 limitation) and service resumes."""
    tb = Testbed(seed=33, n_workers=1,
                 gateway_kwargs={"request_timeout": 0.1, "max_retries": 0})
    tb.add_lambda_nic_backend()
    web = web_server_spec("web_a")
    web2 = web_server_spec("web_b")

    def scenario(env):
        yield tb.manager.deploy(web, "lambda-nic")
        results = {"during": 0, "after": 0}

        # Start the second deployment (compile + swap takes ~20 s).
        deploy_proc = tb.manager.deploy(web2, "lambda-nic")
        yield env.timeout(18.5)  # inside the swap window

        for _ in range(3):
            try:
                yield tb.gateway.request("web_a")
                results["during"] += 1
            except GatewayTimeout:
                pass
        yield deploy_proc
        for _ in range(3):
            yield tb.gateway.request("web_a")
            results["after"] += 1
        for _ in range(3):
            yield tb.gateway.request("web_b")
        return results

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    results = process.value
    nic = tb.nics[0]
    assert results["after"] == 3
    assert nic.stats.dropped_during_swap >= 1
    assert results["during"] < 3


def test_slow_backend_does_not_block_gateway_for_others():
    """A slow (container) workload must not head-of-line-block a fast
    λ-NIC workload behind the same gateway."""
    tb = Testbed(seed=34)
    tb.add_lambda_nic_backend()
    tb.add_container_backend()
    fast = web_server_spec("fast_web")
    slow = web_server_spec("slow_web")

    def scenario(env):
        yield tb.manager.deploy(fast, "lambda-nic")
        yield tb.manager.deploy(slow, "container")
        slow_requests = [tb.gateway.request("slow_web") for _ in range(5)]
        fast_result = yield closed_loop(tb.env, tb.gateway, "fast_web",
                                        n_requests=20)
        yield tb.env.all_of(slow_requests)
        return fast_result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    fast_result = process.value
    # Fast requests stayed microsecond-scale despite the slow neighbours.
    assert fast_result.mean_latency < 200e-6
