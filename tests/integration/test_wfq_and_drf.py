"""Integration: WFQ scheduling on the NIC driven by DRF weights."""

import pytest

from repro.compiler import CompilationUnit, compile_unit
from repro.core import DrfAllocator, nic_capacities
from repro.hw import SmartNIC, WFQScheduler
from repro.net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Network,
    Packet,
    UDPHeader,
)
from repro.sim import Environment, RngRegistry
from repro.workloads import web_server_nic


def lambda_packet(wid, request_id):
    return Packet(
        "client", "nic",
        HeaderStack([
            EthernetHeader(), IPv4Header(), UDPHeader(),
            LambdaHeader(wid=wid, request_id=request_id),
        ]),
        payload_bytes=64,
    )


def test_wfq_scheduler_on_smartnic_serves_all():
    env = Environment()
    network = Network(env)
    client = network.add_node("client")
    nic_node = network.add_node("nic")
    scheduler = WFQScheduler(weights={"a": 2.0, "b": 1.0})
    nic = SmartNIC(env, nic_node, n_cores=2, threads_per_core=2,
                   scheduler=scheduler, rng=RngRegistry(seed=1).stream("n"))
    unit = CompilationUnit()
    unit.add_lambda(web_server_nic("a", pages=8, page_bytes=64), wid=1)
    unit.add_lambda(web_server_nic("b", pages=8, page_bytes=64), wid=2)
    nic.install_firmware(compile_unit(unit))

    responses = []
    client.attach(lambda p: responses.append(p))
    for index in range(30):
        client.send(lambda_packet(wid=1 + index % 2, request_id=index))
    env.run()
    assert len(responses) == 30
    # WFQ tracked per-lambda virtual time; lambda "a" (weight 2) has
    # less lag per request than "b".
    assert scheduler.lag("b") >= scheduler.lag("a")


def test_drf_weights_feed_wfq():
    """End-to-end of the D1 future-work pipeline: demands -> DRF ->
    WFQ weights -> NIC scheduler."""
    allocator = DrfAllocator(nic_capacities(n_cores=4, threads_per_core=2))
    allocator.add_user("web", {"threads": 1, "instruction_store": 40})
    allocator.add_user("image", {"threads": 2, "instruction_store": 80,
                                 "memory_bandwidth_gbps": 2.0})
    allocator.allocate()
    weights = allocator.wfq_weights()
    assert set(weights) == {"web", "image"}
    assert weights["web"] > weights["image"]

    scheduler = WFQScheduler(weights=weights)
    env = Environment()
    network = Network(env)
    nic_node = network.add_node("nic")
    nic = SmartNIC(env, nic_node, n_cores=4, threads_per_core=2,
                   scheduler=scheduler,
                   rng=RngRegistry(seed=2).stream("nic"))
    unit = CompilationUnit()
    unit.add_lambda(web_server_nic("web", pages=8, page_bytes=64), wid=1)
    nic.install_firmware(compile_unit(unit))
    client = network.add_node("client")
    done = []
    client.attach(lambda p: done.append(p))
    for index in range(10):
        client.send(lambda_packet(wid=1, request_id=index))
    env.run()
    assert len(done) == 10
