"""Tests for segmentation, reordering, and the RPC endpoint."""

import pytest

from repro.net import (
    HeaderStack,
    LambdaHeader,
    Network,
    Packet,
    RpcHeader,
    UDPHeader,
)
from repro.sim import Environment
from repro.transport import (
    REORDER_INSTRUCTIONS_PER_SEGMENT,
    ReorderBuffer,
    ReorderError,
    RpcEndpoint,
    RpcTimeout,
    reassemble,
    segment_message,
)


def test_segment_message_sizes():
    segments = segment_message(10_000, segment_bytes=4096)
    assert [s.length for s in segments] == [4096, 4096, 1808]
    assert [s.offset for s in segments] == [0, 4096, 8192]
    assert segments[-1].is_last
    assert all(s.total == 3 for s in segments)


def test_segment_single_packet():
    segments = segment_message(100)
    assert len(segments) == 1
    assert segments[0].length == 100


def test_segment_zero_bytes():
    segments = segment_message(0)
    assert len(segments) == 1
    assert segments[0].length == 0


def test_segment_with_payload_roundtrip():
    blob = bytes(range(256)) * 40  # 10240 bytes
    segments = segment_message(len(blob), segment_bytes=4096, payload=blob)
    assert reassemble(segments) == blob
    # Reassembly works regardless of order.
    assert reassemble(list(reversed(segments))) == blob


def test_segment_validation():
    with pytest.raises(ValueError):
        segment_message(-1)
    with pytest.raises(ValueError):
        segment_message(10, segment_bytes=0)
    with pytest.raises(ValueError):
        segment_message(10, payload=b"wrong-length-payload")


def test_reassemble_missing_segment_raises():
    segments = segment_message(10_000, segment_bytes=4096, payload=b"\0" * 10_000)
    with pytest.raises(ValueError):
        reassemble(segments[:-1])


def test_reorder_buffer_in_order():
    buffer = ReorderBuffer()
    assert buffer.add("m", 0, 3, "a") is None
    assert buffer.add("m", 1, 3, "b") is None
    assert buffer.add("m", 2, 3, "c") == ["a", "b", "c"]
    assert buffer.completed_messages == 1
    assert buffer.in_flight == 0


def test_reorder_buffer_out_of_order():
    buffer = ReorderBuffer()
    buffer.add("m", 2, 3, "c")
    buffer.add("m", 0, 3, "a")
    result = buffer.add("m", 1, 3, "b")
    assert result == ["a", "b", "c"]


def test_reorder_buffer_duplicates_ignored():
    buffer = ReorderBuffer()
    buffer.add("m", 0, 2, "a")
    assert buffer.add("m", 0, 2, "a-again") is None
    assert buffer.duplicate_segments == 1
    assert buffer.add("m", 1, 2, "b") == ["a", "b"]


def test_reorder_buffer_interleaved_messages():
    buffer = ReorderBuffer()
    buffer.add("m1", 0, 2, "x0")
    buffer.add("m2", 0, 2, "y0")
    assert buffer.in_flight == 2
    assert buffer.add("m2", 1, 2, "y1") == ["y0", "y1"]
    assert buffer.add("m1", 1, 2, "x1") == ["x0", "x1"]


def test_reorder_buffer_validation():
    buffer = ReorderBuffer()
    with pytest.raises(ReorderError):
        buffer.add("m", 0, 0, "a")
    with pytest.raises(ReorderError):
        buffer.add("m", 5, 3, "a")
    buffer.add("m", 0, 3, "a")
    with pytest.raises(ReorderError):
        buffer.add("m", 1, 4, "b")  # total changed


def test_reorder_buffer_pending_and_evict():
    buffer = ReorderBuffer()
    buffer.add("m", 0, 4, "a")
    assert buffer.pending("m") == 3
    assert buffer.evict("m") == 1
    assert buffer.pending("m") == 0
    assert buffer.evict("m") == 0


def test_reorder_cost_matches_paper_footnote():
    """Four 100 B packets cost 120 instructions (paper fn. 3)."""
    buffer = ReorderBuffer()
    assert buffer.instructions_for(4) == 120
    assert REORDER_INSTRUCTIONS_PER_SEGMENT == 30


def make_endpoint_pair(responder):
    env = Environment()
    network = Network(env)
    caller_node = network.add_node("caller")
    server_node = network.add_node("server")
    endpoint = RpcEndpoint(env, caller_node, timeout=0.01, retries=2)
    caller_node.attach(lambda p: endpoint.on_packet(p))
    server_node.attach(lambda p: responder(env, server_node, p))
    return env, endpoint, server_node


def echo_responder(env, node, packet):
    lam = packet.headers.require("LambdaHeader")
    node.send(Packet(
        node.name, packet.src,
        headers=HeaderStack([
            UDPHeader(),
            LambdaHeader(request_id=lam.request_id, is_response=True),
            RpcHeader(method="RESP", status=0),
        ]),
        payload_bytes=32,
    ))


def test_rpc_endpoint_roundtrip():
    env, endpoint, server = make_endpoint_pair(echo_responder)

    def scenario():
        response = yield endpoint.call("server", method="GET", key="k")
        assert response.headers.require("RpcHeader").status == 0
        assert endpoint.outstanding == 0

    process = env.process(scenario())
    env.run(until=process)


def test_rpc_endpoint_retransmits_on_loss():
    calls = []

    def flaky(env, node, packet):
        calls.append(packet)
        if len(calls) >= 2:
            echo_responder(env, node, packet)

    env, endpoint, server = make_endpoint_pair(flaky)

    def scenario():
        yield endpoint.call("server")
        assert endpoint.retransmissions == 1

    process = env.process(scenario())
    env.run(until=process)
    assert len(calls) == 2


def test_rpc_endpoint_timeout():
    env, endpoint, server = make_endpoint_pair(lambda env, node, p: None)

    def scenario():
        with pytest.raises(RpcTimeout):
            yield endpoint.call("server")
        assert endpoint.timeouts == 3  # initial + 2 retries

    process = env.process(scenario())
    env.run(until=process)


def test_rpc_endpoint_ignores_unknown_responses():
    env, endpoint, server = make_endpoint_pair(echo_responder)
    stray = Packet(
        "server", "caller",
        headers=HeaderStack([
            UDPHeader(), LambdaHeader(request_id=999, is_response=True),
        ]),
    )
    assert endpoint.on_packet(stray) is False
