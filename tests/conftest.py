"""Shared pytest configuration: the golden-trace update flag."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current run instead "
             "of comparing against them",
    )


@pytest.fixture
def update_goldens(request):
    """True when the run should regenerate golden files."""
    return request.config.getoption("--update-goldens")
