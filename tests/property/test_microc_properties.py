"""Property-based tests for the Micro-C compiler.

The key property: for any expression the language accepts, the
compiled NPU code computes the same value Python does.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Interpreter
from repro.microc import compile_microc

small = st.integers(min_value=0, max_value=2**16)


@st.composite
def expression(draw, depth=0):
    """A random Micro-C integer expression and its Python value."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(small)
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    left_src, left_val = draw(expression(depth=depth + 1))
    right_src, right_val = draw(expression(depth=depth + 1))
    import operator

    fold = {"+": operator.add, "-": operator.sub, "*": operator.mul,
            "&": operator.and_, "|": operator.or_, "^": operator.xor}
    return f"({left_src} {op} {right_src})", fold[op](left_val, right_val)


@given(expr=expression())
@settings(max_examples=80)
def test_compiled_expressions_match_python(expr):
    source, expected = expr
    program = compile_microc(f"int f() {{ return {source}; }}")
    result = Interpreter().run(program)
    assert result.return_value == expected


@given(values=st.lists(small, min_size=1, max_size=6))
def test_compiled_locals_chain(values):
    """Chained local assignments accumulate exactly like Python."""
    lines = ["int acc = 0;"]
    total = 0
    for value in values:
        lines.append(f"acc = acc + {value};")
        total += value
    body = "\n".join(lines)
    program = compile_microc(f"int f() {{ {body} return acc; }}")
    assert Interpreter().run(program).return_value == total


@given(
    a=st.integers(min_value=0, max_value=1000),
    b=st.integers(min_value=0, max_value=1000),
)
def test_compiled_comparisons_match_python(a, b):
    import operator

    for op_text, op in [("==", operator.eq), ("!=", operator.ne),
                        ("<", operator.lt), ("<=", operator.le),
                        (">", operator.gt), (">=", operator.ge)]:
        program = compile_microc(
            f"int f() {{ if (meta.a {op_text} meta.b) "
            f"{{ return 1; }} return 0; }}"
        )
        result = Interpreter().run(program, meta={"a": a, "b": b})
        assert result.return_value == int(op(a, b)), op_text


@given(n=st.integers(min_value=0, max_value=40))
def test_compiled_loops_iterate_exactly_n_times(n):
    program = compile_microc(f"""
        int f() {{
            int i = 0;
            int count = 0;
            while (i < {n}) {{
                count = count + 1;
                i = i + 1;
            }}
            return count;
        }}
    """)
    assert Interpreter().run(program).return_value == n


@given(indices=st.lists(st.integers(min_value=0, max_value=7),
                        min_size=1, max_size=20))
def test_compiled_array_writes_match_model(indices):
    """Word-array stores through compiled code match a Python dict."""
    program = compile_microc("""
        uint64_t slots[8];
        int f() {
            int idx = meta.idx;
            slots[idx] = slots[idx] + 1;
            return slots[idx];
        }
    """)
    memory = {"slots": bytearray(64)}
    model = {}
    interp = Interpreter()
    for index in indices:
        model[index] = model.get(index, 0) + 1
        result = interp.run(program, meta={"idx": index}, memory=memory)
        assert result.return_value == model[index]
