"""Property-based tests for shard-split determinism.

Three layers, cheapest first: pure partition algebra (any request
stream splits into a disjoint cover, any shard count), metric algebra
(splitting a fuzzed counter/histogram stream across shard registries
and merging recovers the unsharded registry exactly — including
through the pickle path pool workers use), and the full-stack
invariant (a real sharded sweep's merged request-conserving counter
totals are independent of the partition width on a fixed seed).
"""

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import scale_sweep
from repro.experiments.calibration import ExperimentConfig
from repro.obs import MetricsRegistry
from repro.serverless import iter_arrivals, plan_arrivals
from repro.sim import make_shard_specs, owner_of, split_arrivals


class Record:
    def __init__(self, request_id):
        self.request_id = request_id


# -- partition algebra -------------------------------------------------------


@given(request_ids=st.lists(st.integers(min_value=0, max_value=10**6),
                            max_size=300),
       n_shards=st.integers(min_value=1, max_value=9))
def test_split_is_a_disjoint_cover(request_ids, n_shards):
    stream = [Record(rid) for rid in request_ids]
    shards = split_arrivals(stream, n_shards)
    assert len(shards) == n_shards
    assert sum(len(shard) for shard in shards) == len(stream)
    for index, shard in enumerate(shards):
        for record in shard:
            assert owner_of(record.request_id, n_shards) == index


@given(rid=st.integers(min_value=0, max_value=10**9),
       n_shards=st.integers(min_value=1, max_value=64))
def test_ownership_is_total_and_deterministic(rid, n_shards):
    owner = owner_of(rid, n_shards)
    assert 0 <= owner < n_shards
    assert owner == owner_of(rid, n_shards)
    specs = make_shard_specs(n_shards, seed=0)
    assert sum(spec.owns(rid) for spec in specs) == 1


@given(seed=st.integers(min_value=0, max_value=2**31),
       rate=st.floats(min_value=10.0, max_value=500.0),
       duration=st.floats(min_value=0.1, max_value=3.0))
@settings(max_examples=25, deadline=None)
def test_arrival_plans_are_deterministic_in_the_seed(seed, rate, duration):
    first = plan_arrivals(rate, duration, random.Random(seed))
    second = list(iter_arrivals(rate, duration, random.Random(seed)))
    assert first == second
    assert [a.request_id for a in first] == list(range(len(first)))
    times = [a.at for a in first]
    assert times == sorted(times)


@given(seed=st.integers(min_value=0, max_value=2**31),
       n_shards=st.integers(min_value=1, max_value=6))
@settings(max_examples=25, deadline=None)
def test_any_partition_width_covers_the_same_plan(seed, n_shards):
    plan = plan_arrivals(300.0, 1.0, random.Random(seed))
    shards = split_arrivals(plan, n_shards)
    recovered = sorted((a for shard in shards for a in shard),
                       key=lambda a: a.request_id)
    assert recovered == plan


# -- metric algebra under sharding -------------------------------------------


@given(events=st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**4),   # request id
              st.sampled_from(["served", "failed", "shed"]),
              st.floats(min_value=1e-6, max_value=10.0)),  # latency
    max_size=200),
    n_shards=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_sharded_registries_merge_to_the_unsharded_registry(events,
                                                            n_shards):
    whole = MetricsRegistry()
    parts = [MetricsRegistry() for _ in range(n_shards)]
    for rid, outcome, latency in events:
        for registry in (whole, parts[owner_of(rid, n_shards)]):
            registry.counter("events_total").inc(
                labels={"outcome": outcome})
            registry.histogram("latency").observe(latency)
    merged = MetricsRegistry.merge_all(parts)
    assert merged.counter("events_total").total == \
        whole.counter("events_total").total
    for outcome in ("served", "failed", "shed"):
        assert merged.counter("events_total").value(
            {"outcome": outcome}) == \
            whole.counter("events_total").value({"outcome": outcome})
    assert sorted(merged.histogram("latency").observations()) == \
        sorted(whole.histogram("latency").observations())


@given(events=st.lists(
    st.tuples(st.integers(min_value=0, max_value=100),
              st.floats(min_value=0.0, max_value=5.0)),
    max_size=100),
    n_shards=st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_pickle_round_trip_merge_is_lossless(events, n_shards):
    parts = [MetricsRegistry() for _ in range(n_shards)]
    for rid, value in events:
        registry = parts[owner_of(rid, n_shards)]
        registry.counter("total").inc()
        registry.histogram("h").observe(value)
    direct = MetricsRegistry.merge_all(parts)
    shipped = MetricsRegistry.merge_all(
        pickle.loads(pickle.dumps(registry)) for registry in parts)
    assert shipped.counter("total").total == direct.counter("total").total
    assert sorted(shipped.histogram("h").observations()) == \
        sorted(direct.histogram("h").observations())


# -- full stack: partition width cannot change merged totals -----------------


@given(n_shards=st.sampled_from([1, 2, 4]))
@settings(max_examples=3, deadline=None)
def test_merged_counter_totals_independent_of_partition(n_shards):
    config = ExperimentConfig(scale_rate_rps=2000.0)
    sweep = scale_sweep.run_sweep(config, n_shards=n_shards,
                                  total_requests=240, inline=True,
                                  ship_histograms=True)
    merged = sweep["registry"]
    # Reference: the monolithic (1-shard, same worker count) totals.
    mono = scale_sweep.run_monolithic(config, total_requests=240,
                                      n_workers=n_shards)
    for name in scale_sweep.REQUEST_CONSERVED_COUNTERS:
        assert merged.counter(name).total == \
            mono["registry"].counter(name).total, name
