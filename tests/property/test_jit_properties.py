"""Property-based differential tests: JIT tier vs the reference.

Hypothesis drives random packet headers/meta through every registered
workload on both the reference interpreter and the JIT engine and
requires byte-identical results — verdicts, cycles, region-access
profiles, emitted packets, mutated headers/meta, persistent-memory
contents, and the memory-write flag the memo cache keys off. A second
group proves memo soundness at the NIC level: JIT-executed writes
invalidate the memo cache and bump the state epoch, while pure repeats
replay from it.
"""

import copy
import random
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import FastInterpreter, Interpreter, JitInterpreter
from repro.serverless import Testbed, closed_loop
from repro.workloads import web_server_spec
from repro.workloads.registry import fig9_workloads, standard_workloads

WORKLOADS = sorted(
    [f"std:{name}" for name in standard_workloads()]
    + [f"fig9:{name}" for name in fig9_workloads()]
)


def program_for(key):
    kind, _, name = key.partition(":")
    registry = standard_workloads() if kind == "std" else fig9_workloads()
    return registry[name].nic_program()


packet_headers = st.fixed_dictionaries({
    "LambdaHeader": st.fixed_dictionaries({
        "wid": st.integers(min_value=0, max_value=8),
        "request_id": st.integers(min_value=0, max_value=(1 << 16) - 1),
        "seq": st.integers(min_value=0, max_value=7),
        "is_response": st.integers(min_value=0, max_value=1),
        "total_segments": st.integers(min_value=1, max_value=4),
    }),
})

packet_meta = st.fixed_dictionaries({
    "has_LambdaHeader": st.just(1),
    "ingress_port": st.integers(min_value=0, max_value=3),
    "service_response": st.integers(min_value=0, max_value=1),
    "service_status": st.integers(min_value=0, max_value=1),
    "rdma_len": st.sampled_from([0, 64, 1024, 4096]),
})


def outcome(engine, program, headers, meta, memory):
    """(result-or-error, wrote_memory) for one engine run."""
    try:
        if isinstance(engine, Interpreter):
            result = engine.run(program, headers=copy.deepcopy(headers),
                                meta=dict(meta), memory=memory)
            wrote = None
        else:
            result, wrote = engine.execute(
                program, headers=copy.deepcopy(headers), meta=dict(meta),
                memory=memory)
        return ("ok", asdict(result)), wrote
    except Exception as error:
        return ("err", type(error).__name__, str(error)), None


@pytest.mark.parametrize("key", WORKLOADS)
@settings(max_examples=25, deadline=None)
@given(headers=packet_headers, meta=packet_meta, memory_seed=st.integers(
    min_value=0, max_value=2**32 - 1))
def test_jit_matches_reference_on_random_packets(key, headers, meta,
                                                 memory_seed):
    """Random packets, random pre-seeded persistent state: the JIT is
    byte-identical to the reference (results, errors, memory, and the
    wrote-memory flag agrees with the fastpath tier's)."""
    program = program_for(key)
    rng = random.Random(memory_seed)
    ref_memory = {
        obj.name: bytearray(rng.randrange(256) for _ in range(obj.size_bytes))
        for obj in program.objects.values()
    }
    jit_memory = {k: bytearray(v) for k, v in ref_memory.items()}
    fast_memory = {k: bytearray(v) for k, v in ref_memory.items()}

    jit = JitInterpreter()
    ref, _ = outcome(Interpreter(), program, headers, meta, ref_memory)
    jt, jit_wrote = outcome(jit, program, headers, meta, jit_memory)
    fast, fast_wrote = outcome(FastInterpreter(), program, headers, meta,
                               fast_memory)
    assert ref == jt, f"{key}: {ref} != {jt}"
    assert ref_memory == jit_memory
    assert jit_wrote == fast_wrote
    assert jit.stats.fallbacks == 0


def _jit_nic(builder_fn, name):
    """A SmartNIC (engine="jit") with one composed lambda installed."""
    from repro.compiler import CompilationUnit, compile_unit
    from repro.hw.nic import SmartNIC
    from repro.isa import ProgramBuilder
    from repro.net.network import Network
    from repro.sim import Environment

    builder = ProgramBuilder(name)
    builder_fn(builder)
    unit = CompilationUnit()
    unit.add_lambda(builder.build(), wid=1, route_port="p0")
    firmware = compile_unit(unit, optimize=False)

    env = Environment()
    net = Network(env)
    node = net.add_node("nic")
    nic = SmartNIC(env, node, rng=random.Random(3), engine="jit")
    nic.install_firmware(firmware)
    return nic


def _request(nic, request_id=7):
    from repro.net import HeaderStack, LambdaHeader, Packet

    headers = {"LambdaHeader": {"wid": 1, "request_id": request_id, "seq": 0,
                                "is_response": 0, "total_segments": 1}}
    meta = {"has_LambdaHeader": 1, "ingress_port": 0}
    packet = Packet(src="client", dst="nic",
                    headers=HeaderStack([LambdaHeader(wid=1,
                                                      request_id=request_id)]))
    return nic._execute(packet, copy.deepcopy(headers), dict(meta))


def test_memo_soundness_pure_jit_executions_replay():
    """Pure JIT executions memoise; direct state writes fence them."""
    def reader(builder):
        builder.object("state", 64)
        fn = builder.function("reader")
        fn.load("r1", "state", 0)
        fn.forward()
        builder.close(fn)

    nic = _jit_nic(reader, "reader")
    assert nic.engine_tier == "jit"
    first = _request(nic)
    again = _request(nic)
    assert nic.memo.stats.hits == 1  # byte-identical pure repeat replayed
    assert again == first
    epoch = nic.state_epoch

    # A direct write through lambda_memory() fences the cache: the next
    # identical request recomputes against the new contents.
    invalidations = nic.memo.stats.invalidations
    nic.lambda_memory("reader.state")[0] = 0xFF
    assert nic.state_epoch == epoch + 1
    assert nic.memo.stats.invalidations > invalidations
    _request(nic)
    assert nic.memo.stats.hits == 1  # no stale replay


def test_jit_write_through_execution_bumps_epoch():
    """An execution that writes persistent memory (wrote_memory=True
    from the JIT) flushes the memo cache via _state_written."""
    def writer(builder):
        builder.object("state", 64)
        fn = builder.function("writer")
        fn.hload("r1", "LambdaHeader", "request_id")
        fn.store("state", 0, "r1")
        fn.forward()
        builder.close(fn)

    nic = _jit_nic(writer, "writer")
    epoch = nic.state_epoch
    result = _request(nic)
    assert result.verdict == "forward"
    assert nic.state_epoch == epoch + 1  # write invalidated the memo
    assert nic._lambda_memory["writer.state"][0] == 7
    # The same request again: still a write, never served from memo.
    _request(nic)
    assert nic.state_epoch == epoch + 2
    assert nic.memo.stats.hits == 0


def test_jit_serves_gateway_traffic_end_to_end():
    """The default (JIT) tier serves real gateway traffic and reports
    compile-cache stats with zero fallbacks."""
    tb = Testbed(seed=11, n_workers=1, nic_kwargs={"engine": "jit"})
    tb.add_lambda_nic_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=12)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    assert process.value.completed == 12
    nic = tb.nics[0]
    stats = nic.stats.compile_cache_stats()
    assert stats["jit"]["fallbacks"] == 0
    assert stats["jit"]["misses"] == 1  # one firmware, compiled once
    assert stats["jit"]["hits"] >= 11
