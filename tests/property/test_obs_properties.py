"""Property-based tests for the observability layer.

Three families: metric algebra (percentile monotonicity, counter
monotonicity, merge commutativity) over fuzzed observation streams,
span-tree structure (invariants hold for any tracer usage that nests
properly), and end-to-end span invariants under fuzzed testbed
workloads (random seeds and request mixes through the real gateway ->
NIC stack).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Counter,
    Histogram,
    Tracer,
    check_invariants,
    coverage_of,
    roots,
    spans_by_trace,
    trace_digest,
)
from repro.serverless import Testbed, closed_loop
from repro.workloads import standard_workloads

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


# -- metric algebra ----------------------------------------------------------


@given(values=st.lists(finite_floats, min_size=1, max_size=200),
       qs=st.lists(st.floats(min_value=0, max_value=100), min_size=2,
                   max_size=10))
def test_histogram_percentiles_are_monotone_in_q(values, qs):
    hist = Histogram("h")
    for value in values:
        hist.observe(value)
    qs = sorted(qs)
    results = [hist.percentile(q) for q in qs]
    assert all(lo <= hi for lo, hi in zip(results, results[1:]))
    assert hist.percentile(0) == min(values)
    assert hist.percentile(100) == max(values)


@given(increments=st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
              st.sampled_from(["", "m2", "m3"])),
    max_size=100))
def test_counter_value_never_decreases(increments):
    counter = Counter("c")
    previous_total = 0.0
    previous = {"": 0.0, "m2": 0.0, "m3": 0.0}
    for amount, node in increments:
        labels = {"node": node} if node else None
        counter.inc(amount, labels=labels)
        assert counter.value(labels) >= previous[node]
        assert counter.total >= previous_total
        previous[node] = counter.value(labels)
        previous_total = counter.total


@given(a_incs=st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
              st.sampled_from(["", "x"])), max_size=50),
    b_incs=st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False),
              st.sampled_from(["", "x", "y"])), max_size=50))
def test_counter_merge_commutative(a_incs, b_incs):
    a, b = Counter("c"), Counter("c")
    for amount, label in a_incs:
        a.inc(amount, labels={"l": label} if label else None)
    for amount, label in b_incs:
        b.inc(amount, labels={"l": label} if label else None)
    ab, ba = a.merge(b), b.merge(a)
    for label in ("", "x", "y"):
        labels = {"l": label} if label else None
        assert math.isclose(ab.value(labels), ba.value(labels),
                            rel_tol=1e-12, abs_tol=1e-12)


@given(a_values=st.lists(finite_floats, max_size=100),
       b_values=st.lists(finite_floats, max_size=100))
def test_histogram_merge_commutative(a_values, b_values):
    a, b = Histogram("h"), Histogram("h")
    for value in a_values:
        a.observe(value)
    for value in b_values:
        b.observe(value)
    ab, ba = a.merge(b), b.merge(a)
    assert ab.count() == ba.count() == len(a_values) + len(b_values)
    for q in (0, 10, 50, 90, 99, 100):
        lhs, rhs = ab.percentile(q), ba.percentile(q)
        assert (math.isnan(lhs) and math.isnan(rhs)) or lhs == rhs
    assert ab.ecdf() == ba.ecdf()


# -- span-tree structure -----------------------------------------------------


class _FakeEnv:
    def __init__(self):
        self.now = 0.0


@st.composite
def nesting_scripts(draw):
    """Random well-nested begin/advance/end scripts (Dyck-like words)."""
    ops = []
    depth = 0
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0 or depth == 0:
            ops.append(("begin", draw(st.sampled_from("abcd"))))
            depth += 1
        elif choice == 1:
            ops.append(("advance",
                        draw(st.floats(min_value=0, max_value=10,
                                       allow_nan=False))))
        else:
            ops.append(("end", None))
            depth -= 1
    for _ in range(depth):
        ops.append(("end", None))
    return ops


@given(script=nesting_scripts())
def test_properly_nested_usage_never_violates_invariants(script):
    env = _FakeEnv()
    tracer = Tracer(env)
    tid = tracer.new_trace()
    stack = []
    for op, arg in script:
        if op == "begin":
            parent = stack[-1] if stack else None
            stack.append(tracer.begin(arg, trace_id=tid, parent=parent))
        elif op == "advance":
            env.now += arg
        else:
            tracer.end(stack.pop())
    assert check_invariants(tracer.spans) == []
    for root in roots(tracer.spans):
        assert 0.0 <= coverage_of(root, tracer.spans) <= 1.0 + 1e-9
    assert trace_digest(tracer.spans) == trace_digest(tracer.spans)


# -- end-to-end: span invariants under fuzzed workloads ----------------------


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       workload=st.sampled_from(["web_server", "kv_client"]),
       n_requests=st.integers(min_value=1, max_value=6),
       backend=st.sampled_from(["lambda-nic", "bare-metal"]))
def test_traced_workload_spans_are_well_formed(seed, workload, n_requests,
                                               backend):
    tb = Testbed(seed=seed, n_workers=1, with_tracing=True)
    tb.add_backend(backend)
    spec = standard_workloads()[workload]

    def scenario(env):
        yield tb.manager.deploy(spec, backend)
        result = yield closed_loop(
            tb.env, tb.gateway, spec.name,
            n_requests=n_requests, concurrency=1,
            payload_bytes=spec.request_bytes if spec.uses_rdma else None,
        )
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    load = process.value
    assert load.completed == n_requests

    spans = tb.tracer.spans
    assert check_invariants(spans) == []
    request_roots = [root for root in roots(spans)
                     if root.name == "gateway.request"]
    assert len(request_roots) == n_requests
    by_trace = spans_by_trace(spans)
    for root in request_roots:
        assert coverage_of(root, by_trace[root.trace_id]) >= 0.95
