"""Property-based tests for the lambda ISA."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    AccessMode,
    Interpreter,
    Op,
    ProgramBuilder,
    assemble,
    disassemble,
)
from repro.isa.analysis import function_signature

small_int = st.integers(min_value=0, max_value=2**31 - 1)


@given(a=small_int, b=small_int)
def test_alu_ops_match_python_semantics(a, b):
    cases = {
        Op.ADD: a + b,
        Op.SUB: a - b,
        Op.MUL: a * b,
        Op.AND: a & b,
        Op.OR: a | b,
        Op.XOR: a ^ b,
        Op.MIN: min(a, b),
        Op.MAX: max(a, b),
    }
    for op, expected in cases.items():
        builder = ProgramBuilder("p")
        fn = builder.function("p")
        fn.mov("r1", a).mov("r2", b).emit(op, "r0", "r1", "r2").ret("r0")
        builder.close(fn)
        result = Interpreter().run(builder.build())
        assert result.return_value == expected, op


@given(value=small_int, offset=st.integers(min_value=0, max_value=56))
def test_memory_roundtrip_any_aligned_offset(value, offset):
    builder = ProgramBuilder("p")
    builder.object("buf", 64)
    fn = builder.function("p")
    fn.mov("r1", value)
    fn.store("buf", offset, "r1")
    fn.load("r2", "buf", offset)
    fn.ret("r2")
    builder.close(fn)
    result = Interpreter().run(builder.build())
    assert result.return_value == value


@given(data=st.binary(min_size=1, max_size=64))
def test_memcpy_preserves_bytes(data):
    builder = ProgramBuilder("p")
    builder.object("src", len(data))
    builder.object("dst", len(data))
    fn = builder.function("p")
    fn.memcpy("dst", 0, "src", 0, len(data))
    fn.ret()
    builder.close(fn)
    program = builder.build()
    memory = {"src": bytearray(data), "dst": bytearray(len(data))}
    Interpreter().run(program, memory=memory)
    assert bytes(memory["dst"]) == data


@st.composite
def random_program(draw):
    """A small random (but valid) lambda program."""
    builder = ProgramBuilder("rand")
    n_objects = draw(st.integers(min_value=0, max_value=2))
    for index in range(n_objects):
        builder.object(
            f"obj{index}",
            draw(st.integers(min_value=8, max_value=256)),
            draw(st.sampled_from(list(AccessMode))),
            hot=draw(st.booleans()),
        )
    fn = builder.function("rand")
    n_instructions = draw(st.integers(min_value=1, max_value=25))
    for step in range(n_instructions):
        choice = draw(st.integers(min_value=0, max_value=4))
        reg = f"r{draw(st.integers(min_value=1, max_value=7))}"
        if choice == 0:
            fn.mov(reg, draw(small_int))
        elif choice == 1:
            fn.add(reg, reg, draw(small_int))
        elif choice == 2 and n_objects:
            fn.load(reg, "obj0", draw(st.integers(min_value=0, max_value=7)))
        elif choice == 3 and n_objects:
            fn.store("obj0", draw(st.integers(min_value=0, max_value=7)), reg)
        else:
            fn.nop()
    fn.ret("r1")
    builder.close(fn)
    return builder.build()


@given(program=random_program())
@settings(max_examples=50)
def test_assembler_roundtrip_random_programs(program):
    """disassemble -> assemble preserves structure for any program."""
    text = disassemble(program)
    parsed = assemble(text)
    assert parsed.name == program.name
    assert parsed.instruction_count == program.instruction_count
    assert set(parsed.objects) == set(program.objects)
    for name, function in program.functions.items():
        assert function_signature(parsed.function(name)) == \
            function_signature(function)
    for name, obj in program.objects.items():
        parsed_obj = parsed.object(name)
        assert parsed_obj.size_bytes == obj.size_bytes
        assert parsed_obj.access is obj.access
        assert parsed_obj.hot == obj.hot


@given(program=random_program())
@settings(max_examples=50)
def test_random_programs_execute_deterministically(program):
    """Same program, same inputs -> identical results and cycles."""
    first = Interpreter().run(program)
    second = Interpreter().run(program)
    assert first.return_value == second.return_value
    assert first.cycles == second.cycles
    assert first.instructions_executed == second.instructions_executed
