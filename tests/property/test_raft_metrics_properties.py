"""Property-based tests for the Raft log, KV semantics, and metrics."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft import LogEntry, RaftLog
from repro.raft.kv import EtcdStore
from repro.serverless import MetricsRegistry


@given(terms=st.lists(st.integers(min_value=1, max_value=10),
                      min_size=0, max_size=50))
def test_log_terms_index_consistency(terms):
    """Appending in term order keeps last_index/last_term consistent."""
    log = RaftLog()
    for term in sorted(terms):
        log.append(LogEntry(term=term, command=("SET", "k", "v")))
    assert log.last_index == len(terms)
    if terms:
        assert log.last_term == max(terms)
        for index in range(1, len(terms) + 1):
            assert log.term_at(index) == sorted(terms)[index - 1]


@given(
    terms=st.lists(st.integers(min_value=1, max_value=5),
                   min_size=1, max_size=30),
    cut=st.integers(min_value=1, max_value=30),
)
def test_log_truncate_is_prefix(terms, cut):
    log = RaftLog()
    for term in terms:
        log.append(LogEntry(term=term, command=("SET", "k", "v")))
    before = [entry.term for entry in log.all_entries()]
    log.truncate_from(cut)
    after = [entry.term for entry in log.all_entries()]
    assert after == before[:max(0, cut - 1)]


@given(
    other_index=st.integers(min_value=0, max_value=40),
    other_term=st.integers(min_value=0, max_value=10),
    terms=st.lists(st.integers(min_value=1, max_value=10),
                   min_size=0, max_size=30),
)
def test_up_to_date_is_total_order(other_index, other_term, terms):
    """For any two logs, at least one is up-to-date w.r.t. the other."""
    log = RaftLog()
    for term in sorted(terms):
        log.append(LogEntry(term=term, command=()))
    forward = log.is_up_to_date(other_index, other_term)
    # Simulate the reverse comparison.
    reverse = (log.last_term, log.last_index) >= (other_term, other_index) \
        if (other_term, other_index) != (log.last_term, log.last_index) \
        else True
    assert forward or reverse


@given(commands=st.lists(
    st.one_of(
        st.tuples(st.just("SET"), st.sampled_from("abc"), st.integers()),
        st.tuples(st.just("GET"), st.sampled_from("abc")),
        st.tuples(st.just("DEL"), st.sampled_from("abc")),
    ),
    max_size=60,
))
def test_etcd_store_matches_model_dict(commands):
    """The replicated state machine agrees with a plain dict model."""
    store = EtcdStore()
    model = {}
    for command in commands:
        result = store.apply(command)
        op = command[0]
        if op == "SET":
            model[command[1]] = command[2]
            assert result == "OK"
        elif op == "GET":
            assert result == model.get(command[1])
        elif op == "DEL":
            assert result == (command[1] in model)
            model.pop(command[1], None)
    assert store.data == model


@given(values=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=200),
       q=st.floats(min_value=1, max_value=100))
@settings(max_examples=60)
def test_histogram_percentile_matches_numpy_nearest_rank(values, q):
    histogram = MetricsRegistry().histogram("h")
    for value in values:
        histogram.observe(value)
    measured = histogram.percentile(q)
    data = sorted(values)
    rank = max(0, min(len(data) - 1, math.ceil(q / 100 * len(data)) - 1))
    assert measured == data[rank]
    # Bracketing sanity vs numpy's linear interpolation.
    lo, hi = np.percentile(values, [0, 100])
    assert lo <= measured <= hi


@given(values=st.lists(st.floats(min_value=0, max_value=1e3,
                                 allow_nan=False), min_size=1, max_size=100))
def test_histogram_ecdf_monotone_and_complete(values):
    histogram = MetricsRegistry().histogram("h")
    for value in values:
        histogram.observe(value)
    ecdf = histogram.ecdf()
    fractions = [fraction for _, fraction in ecdf]
    xs = [value for value, _ in ecdf]
    assert xs == sorted(xs)
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    assert len(ecdf) == len(values)
