"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=40))
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    """Events must be processed in timestamp order regardless of
    creation order."""
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False),
                       min_size=1, max_size=30))
def test_equal_timestamps_preserve_creation_order(delays):
    """Ties break FIFO by creation order (determinism invariant)."""
    env = Environment()
    order = []

    def waiter(env, index, delay):
        yield env.timeout(delay)
        order.append(index)

    for index, delay in enumerate(delays):
        env.process(waiter(env, index, delay))
    env.run()
    # Stable sort of indices by delay equals observed order.
    expected = [index for index, _ in
                sorted(enumerate(delays), key=lambda pair: pair[1])]
    assert order == expected


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    env = Environment()
    received = []

    def producer(env, store):
        for item in items:
            yield store.put(item)

    def consumer(env, store):
        for _ in items:
            value = yield store.get()
            received.append(value)

    store = Store(env)
    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == items


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.floats(min_value=0.001, max_value=10.0,
                             allow_nan=False),
                   min_size=1, max_size=30),
)
@settings(max_examples=40)
def test_resource_never_exceeds_capacity(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    max_seen = [0]

    def user(env, hold):
        with resource.request() as req:
            yield req
            max_seen[0] = max(max_seen[0], resource.count)
            yield env.timeout(hold)

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert max_seen[0] <= capacity
    assert resource.count == 0  # everything released


@given(
    n_users=st.integers(min_value=1, max_value=20),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_resource_work_conserving(n_users, capacity):
    """Total makespan of N unit jobs on a k-server equals ceil(N/k)."""
    import math

    env = Environment()
    resource = Resource(env, capacity=capacity)

    def user(env):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)

    for _ in range(n_users):
        env.process(user(env))
    env.run()
    assert env.now == math.ceil(n_users / capacity)
