"""Property-based tests for segmentation and reordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import ReorderBuffer, reassemble, segment_message


@given(
    size=st.integers(min_value=0, max_value=200_000),
    segment_bytes=st.integers(min_value=64, max_value=9000),
)
@settings(deadline=None)
def test_segmentation_covers_message_exactly(size, segment_bytes):
    segments = segment_message(size, segment_bytes=segment_bytes)
    assert sum(segment.length for segment in segments) == size
    assert segments[0].offset == 0
    # Contiguous, non-overlapping coverage.
    for previous, current in zip(segments, segments[1:]):
        assert current.offset == previous.offset + previous.length
    assert segments[-1].is_last
    assert all(segment.total == len(segments) for segment in segments)


@given(data=st.binary(min_size=0, max_size=50_000),
       segment_bytes=st.integers(min_value=1, max_value=4096))
@settings(max_examples=50)
def test_segment_reassemble_roundtrip(data, segment_bytes):
    segments = segment_message(len(data), segment_bytes=segment_bytes,
                               payload=data)
    assert reassemble(segments) == data


@given(
    n=st.integers(min_value=1, max_value=60),
    permutation_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_reorder_buffer_yields_order_for_any_permutation(n, permutation_seed):
    import random

    order = list(range(n))
    random.Random(permutation_seed).shuffle(order)
    buffer = ReorderBuffer()
    result = None
    for count, seq in enumerate(order, start=1):
        result = buffer.add("m", seq, n, f"item{seq}")
        if count < n:
            assert result is None
    assert result == [f"item{index}" for index in range(n)]
    assert buffer.completed_messages == 1
    assert buffer.total_segments == n


@given(
    n_messages=st.integers(min_value=1, max_value=5),
    n_segments=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40)
def test_reorder_buffer_interleaved_messages_all_complete(
    n_messages, n_segments, seed,
):
    """Arbitrary interleaving of several messages' segments still
    completes each message exactly once, in order."""
    import random

    rng = random.Random(seed)
    events = [
        (message, seq)
        for message in range(n_messages)
        for seq in range(n_segments)
    ]
    rng.shuffle(events)
    buffer = ReorderBuffer()
    completed = {}
    for message, seq in events:
        result = buffer.add(message, seq, n_segments, (message, seq))
        if result is not None:
            assert message not in completed
            completed[message] = result
    assert len(completed) == n_messages
    for message, items in completed.items():
        assert items == [(message, seq) for seq in range(n_segments)]
    assert buffer.in_flight == 0
