"""Property-based tests for the static-analysis layer.

The properties the verifier's soundness rests on:

* every dataflow fixpoint terminates on arbitrary (fuzzed) CFGs —
  including irreducible flow graphs the builder would never emit;
* constant propagation agrees exactly with the interpreter on
  straight-line programs (where the all-NAC entry state plus concrete
  ``mov`` seeds make every register's value statically known);
* the interval lattice is algebraically well-behaved (join is an upper
  bound, meet a lower bound, widening jumps to a fixpoint) and the
  interval analysis never excludes a value the interpreter actually
  produces — on straight-line *and* branchy programs, where the
  branch-edge refinement must only ever shave values a path cannot
  carry.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Function, Interpreter, Op, ProgramBuilder, ins
from repro.isa.verify import (
    NAC,
    Interval,
    build_cfg,
    constant_states,
    dead_stores,
    estimate_wcet,
    interval_states,
    reaching_definitions,
    uninitialized_reads,
    verify_program,
)

_REGISTERS = [f"r{i}" for i in range(4)]
_ALU = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.MIN, Op.MAX]


@st.composite
def fuzzed_function(draw):
    """An arbitrary function body: random ALU ops, branches to random
    labels (always defined), random terminators. The CFG may contain
    arbitrary cycles and unreachable islands."""
    n = draw(st.integers(min_value=1, max_value=25))
    n_labels = draw(st.integers(min_value=1, max_value=5))
    labels = [f"L{i}" for i in range(n_labels)]
    body = []
    for _ in range(n):
        kind = draw(st.integers(0, 5))
        if kind == 0:
            body.append(ins(Op.LABEL, draw(st.sampled_from(labels))))
        elif kind == 1:
            body.append(ins(Op.JMP, draw(st.sampled_from(labels))))
        elif kind == 2:
            body.append(ins(
                draw(st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGE])),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.integers(0, 7)),
                draw(st.sampled_from(labels)),
            ))
        elif kind == 3:
            body.append(ins(
                draw(st.sampled_from(_ALU)),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.one_of(st.sampled_from(_REGISTERS),
                               st.integers(0, 100))),
            ))
        elif kind == 4:
            body.append(ins(Op.MOV, draw(st.sampled_from(_REGISTERS)),
                            draw(st.integers(0, 100))))
        else:
            body.append(ins(
                draw(st.sampled_from([Op.RET, Op.FORWARD, Op.DROP])),
            ))
    # Ensure every label used exists (duplicates are fine for the CFG;
    # labels() keeps the last occurrence, like the interpreter).
    present = {i.args[0] for i in body if i.op is Op.LABEL}
    for label in labels:
        if label not in present:
            body.append(ins(Op.LABEL, label))
    body.append(ins(Op.RET, 0))
    return Function("fuzz", body)


@given(function=fuzzed_function())
@settings(max_examples=120, deadline=None)
def test_fixpoints_terminate_on_fuzzed_cfgs(function):
    """No analysis may diverge, whatever the control flow looks like."""
    cfg = build_cfg(function)
    # Structural invariants first.
    for block in cfg.blocks:
        for succ in block.succs:
            assert block.bid in cfg.blocks[succ].preds
    assert set(cfg.postorder()) == cfg.reachable()

    # Every solver reaches a fixpoint (FixpointError would propagate).
    reaching_definitions(function, cfg)
    consts = constant_states(function, cfg=cfg)
    # Reachable instructions have a state; unreachable ones do not.
    reachable_indices = {
        index
        for bid in cfg.reachable()
        for index, _ in cfg.blocks[bid].instructions
    }
    assert set(consts.instr_in) == reachable_indices


@given(function=fuzzed_function())
@settings(max_examples=60, deadline=None)
def test_whole_program_analyses_terminate(function):
    from repro.isa import LambdaProgram

    program = LambdaProgram("fuzz", [function])
    uninitialized_reads(program)
    dead_stores(program)
    estimate_wcet(program)
    # The full pipeline tolerates anything the fuzzer produces; it may
    # reject the program, but it must return a report.
    report = verify_program(program)
    assert report.program == "fuzz"


@st.composite
def straight_line_program(draw):
    """mov-seeded straight-line ALU program; every value is static."""
    builder = ProgramBuilder("line")
    fn = builder.function("line")
    for reg in _REGISTERS:
        fn.mov(reg, draw(st.integers(0, 1000)))
    n = draw(st.integers(min_value=1, max_value=15))
    for _ in range(n):
        op = draw(st.sampled_from(_ALU + [Op.SHL, Op.SHR]))
        dst = draw(st.sampled_from(_REGISTERS))
        a = draw(st.sampled_from(_REGISTERS))
        if op in (Op.SHL, Op.SHR):
            b = draw(st.integers(0, 8))
        else:
            b = draw(st.one_of(st.sampled_from(_REGISTERS),
                               st.integers(0, 1000)))
        fn.emit(op, dst, a, b)
    ret_reg = draw(st.sampled_from(_REGISTERS))
    fn.ret(ret_reg)
    builder.close(fn)
    return builder.build(), ret_reg


@given(case=straight_line_program())
@settings(max_examples=120, deadline=None)
def test_constprop_agrees_with_interpreter_on_straight_line(case):
    program, ret_reg = case
    function = program.functions["line"]
    consts = constant_states(function)
    ret_index = len(function.body) - 1
    predicted = consts.value_before(ret_index, ret_reg)
    assert predicted is not NAC, "fully-seeded program must fold"
    observed = Interpreter().run(program).return_value
    assert predicted == observed


# -- interval lattice: algebra ----------------------------------------------


@st.composite
def an_interval(draw):
    lo = draw(st.one_of(st.none(), st.integers(-500, 500)))
    if lo is None:
        hi = draw(st.one_of(st.none(), st.integers(-500, 500)))
    else:
        hi = draw(st.one_of(st.none(), st.integers(lo, lo + 1000)))
    return Interval(lo, hi)


def _points_in(draw, iv):
    lo = iv.lo if iv.lo is not None else -1000
    hi = iv.hi if iv.hi is not None else 1000
    return draw(st.integers(lo, hi))


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_interval_join_is_a_commutative_upper_bound(data):
    a = data.draw(an_interval())
    b = data.draw(an_interval())
    joined = a.join(b)
    assert joined == b.join(a)
    assert a.join(a) == a
    assert joined.contains(_points_in(data.draw, a))
    assert joined.contains(_points_in(data.draw, b))


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_interval_meet_is_a_lower_bound(data):
    a = data.draw(an_interval())
    b = data.draw(an_interval())
    met = a.meet(b)
    assert met == b.meet(a)
    assert a.meet(a) == a
    if met is not None:
        point = _points_in(data.draw, met)
        assert a.contains(point) and b.contains(point)
    else:
        # Empty meet: no point may be in both.
        point = _points_in(data.draw, a)
        assert not b.contains(point)


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_interval_widening_is_a_one_step_fixpoint(data):
    a = data.draw(an_interval())
    b = data.draw(an_interval())
    widened = a.widen(b)
    # Widening over-approximates both arguments...
    assert widened.contains(_points_in(data.draw, a))
    assert widened.contains(_points_in(data.draw, b))
    # ...is stationary on equal input (termination at a fixpoint)...
    assert a.widen(a) == a
    # ...and re-widening with anything already covered changes nothing:
    # the ascending chain stabilizes after one jump per bound.
    assert widened.widen(b) == widened
    assert widened.widen(a.join(b)) == widened


# -- interval analysis: termination and soundness ---------------------------


@given(function=fuzzed_function())
@settings(max_examples=60, deadline=None)
def test_interval_fixpoint_terminates_on_fuzzed_cfgs(function):
    """Widening + bounded narrowing must converge on any CFG shape."""
    cfg = build_cfg(function)
    states = interval_states(function, cfg=cfg)
    reachable_indices = {
        index
        for bid in cfg.reachable()
        for index, _ in cfg.blocks[bid].instructions
    }
    # Branch-edge refinement may prove syntactically-reachable blocks
    # dead (e.g. `mov r0, 0; beq r0, 0, ...` has an infeasible
    # fall-through), so the analysis covers a *subset* of the CFG's
    # reachable set — but never anything outside it.
    assert set(states.instr_in) <= reachable_indices
    if reachable_indices:
        # The entry block's first real instruction always has a state.
        assert min(reachable_indices) in states.instr_in


@given(case=straight_line_program())
@settings(max_examples=120, deadline=None)
def test_intervals_contain_interpreter_value_on_straight_line(case):
    program, ret_reg = case
    function = program.functions["line"]
    states = interval_states(function, program=program)
    ret_index = len(function.body) - 1
    predicted = states.range_before(ret_index, ret_reg)
    observed = Interpreter().run(program).return_value
    if predicted is not None:
        assert predicted.contains(observed)


@st.composite
def branchy_program(draw):
    """Seeded registers, then forward-only compare-and-skip diamonds:
    always terminates, and every branch edge exercises refinement."""
    builder = ProgramBuilder("branchy")
    fn = builder.function("branchy")
    for reg in _REGISTERS:
        fn.mov(reg, draw(st.integers(0, 50)))
    n = draw(st.integers(min_value=1, max_value=6))
    for i in range(n):
        skip = f"skip{i}"
        op = draw(st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGE]))
        fn.emit(op, draw(st.sampled_from(_REGISTERS)),
                draw(st.integers(0, 50)), skip)
        fn.emit(draw(st.sampled_from(_ALU)),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.integers(0, 50)))
        fn.label(skip)
    ret_reg = draw(st.sampled_from(_REGISTERS))
    fn.ret(ret_reg)
    builder.close(fn)
    return builder.build(), ret_reg


@given(case=branchy_program())
@settings(max_examples=120, deadline=None)
def test_intervals_contain_interpreter_value_on_branchy_programs(case):
    """Branch-edge refinement may shave only values a path cannot
    carry: whatever the interpreter returns must stay inside the
    interval the analysis proved for the merged exit state."""
    program, ret_reg = case
    function = program.functions["branchy"]
    states = interval_states(function, program=program)
    ret_index = len(function.body) - 1
    predicted = states.range_before(ret_index, ret_reg)
    observed = Interpreter().run(program).return_value
    if predicted is not None:
        assert predicted.contains(observed)
