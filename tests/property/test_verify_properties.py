"""Property-based tests for the static-analysis layer.

Two properties the verifier's soundness rests on:

* every dataflow fixpoint terminates on arbitrary (fuzzed) CFGs —
  including irreducible flow graphs the builder would never emit;
* constant propagation agrees exactly with the interpreter on
  straight-line programs (where the all-NAC entry state plus concrete
  ``mov`` seeds make every register's value statically known).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Function, Interpreter, Op, ProgramBuilder, ins
from repro.isa.verify import (
    NAC,
    build_cfg,
    constant_states,
    dead_stores,
    estimate_wcet,
    reaching_definitions,
    uninitialized_reads,
    verify_program,
)

_REGISTERS = [f"r{i}" for i in range(4)]
_ALU = [Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.MIN, Op.MAX]


@st.composite
def fuzzed_function(draw):
    """An arbitrary function body: random ALU ops, branches to random
    labels (always defined), random terminators. The CFG may contain
    arbitrary cycles and unreachable islands."""
    n = draw(st.integers(min_value=1, max_value=25))
    n_labels = draw(st.integers(min_value=1, max_value=5))
    labels = [f"L{i}" for i in range(n_labels)]
    body = []
    for _ in range(n):
        kind = draw(st.integers(0, 5))
        if kind == 0:
            body.append(ins(Op.LABEL, draw(st.sampled_from(labels))))
        elif kind == 1:
            body.append(ins(Op.JMP, draw(st.sampled_from(labels))))
        elif kind == 2:
            body.append(ins(
                draw(st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGE])),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.integers(0, 7)),
                draw(st.sampled_from(labels)),
            ))
        elif kind == 3:
            body.append(ins(
                draw(st.sampled_from(_ALU)),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.sampled_from(_REGISTERS)),
                draw(st.one_of(st.sampled_from(_REGISTERS),
                               st.integers(0, 100))),
            ))
        elif kind == 4:
            body.append(ins(Op.MOV, draw(st.sampled_from(_REGISTERS)),
                            draw(st.integers(0, 100))))
        else:
            body.append(ins(
                draw(st.sampled_from([Op.RET, Op.FORWARD, Op.DROP])),
            ))
    # Ensure every label used exists (duplicates are fine for the CFG;
    # labels() keeps the last occurrence, like the interpreter).
    present = {i.args[0] for i in body if i.op is Op.LABEL}
    for label in labels:
        if label not in present:
            body.append(ins(Op.LABEL, label))
    body.append(ins(Op.RET, 0))
    return Function("fuzz", body)


@given(function=fuzzed_function())
@settings(max_examples=120, deadline=None)
def test_fixpoints_terminate_on_fuzzed_cfgs(function):
    """No analysis may diverge, whatever the control flow looks like."""
    cfg = build_cfg(function)
    # Structural invariants first.
    for block in cfg.blocks:
        for succ in block.succs:
            assert block.bid in cfg.blocks[succ].preds
    assert set(cfg.postorder()) == cfg.reachable()

    # Every solver reaches a fixpoint (FixpointError would propagate).
    reaching_definitions(function, cfg)
    consts = constant_states(function, cfg=cfg)
    # Reachable instructions have a state; unreachable ones do not.
    reachable_indices = {
        index
        for bid in cfg.reachable()
        for index, _ in cfg.blocks[bid].instructions
    }
    assert set(consts.instr_in) == reachable_indices


@given(function=fuzzed_function())
@settings(max_examples=60, deadline=None)
def test_whole_program_analyses_terminate(function):
    from repro.isa import LambdaProgram

    program = LambdaProgram("fuzz", [function])
    uninitialized_reads(program)
    dead_stores(program)
    estimate_wcet(program)
    # The full pipeline tolerates anything the fuzzer produces; it may
    # reject the program, but it must return a report.
    report = verify_program(program)
    assert report.program == "fuzz"


@st.composite
def straight_line_program(draw):
    """mov-seeded straight-line ALU program; every value is static."""
    builder = ProgramBuilder("line")
    fn = builder.function("line")
    for reg in _REGISTERS:
        fn.mov(reg, draw(st.integers(0, 1000)))
    n = draw(st.integers(min_value=1, max_value=15))
    for _ in range(n):
        op = draw(st.sampled_from(_ALU + [Op.SHL, Op.SHR]))
        dst = draw(st.sampled_from(_REGISTERS))
        a = draw(st.sampled_from(_REGISTERS))
        if op in (Op.SHL, Op.SHR):
            b = draw(st.integers(0, 8))
        else:
            b = draw(st.one_of(st.sampled_from(_REGISTERS),
                               st.integers(0, 1000)))
        fn.emit(op, dst, a, b)
    ret_reg = draw(st.sampled_from(_REGISTERS))
    fn.ret(ret_reg)
    builder.close(fn)
    return builder.build(), ret_reg


@given(case=straight_line_program())
@settings(max_examples=120, deadline=None)
def test_constprop_agrees_with_interpreter_on_straight_line(case):
    program, ret_reg = case
    function = program.functions["line"]
    consts = constant_states(function)
    ret_index = len(function.body) - 1
    predicted = consts.value_before(ret_index, ret_reg)
    assert predicted is not NAC, "fully-seeded program must fold"
    observed = Interpreter().run(program).return_value
    assert predicted == observed
