"""Property-based tests for live migration.

Two contracts, fuzzed rather than scripted:

* **Exactly-once under chaos** — for any fault schedule crossed with
  any migration point and drain mode, every issued request resolves to
  exactly one observable outcome (success or failure — never zero,
  never two), the gateway is left with no dangling hold or mirror, and
  the migration counters exactly account for every state machine run.
* **Tracing is inert** — with migrations in the schedule, a traced run
  and an untraced run of the same seed are byte-identical in every
  observable output (exact latencies, migration history timestamps,
  final sim time).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.serverless import Testbed, open_loop
from repro.workloads import web_server_spec

GATEWAY = {
    "request_timeout": 0.05, "max_retries": 6,
    "backoff_base": 0.005, "backoff_max": 0.05,
    "breaker_reset_timeout": 0.25,
}

#: Fault actions the fuzzer may schedule, as (plan method, target).
FAULTS = ["kill_m2", "kill_m3", "island_m3", "flap_m3"]


def _apply_fault(plan: FaultPlan, kind: str, at: float) -> None:
    if kind == "kill_m2":
        plan.kill_nic(at, "m2-nic")
    elif kind == "kill_m3":
        plan.kill_nic(at, "m3-nic")
    elif kind == "island_m3":
        plan.kill_island(at, "m3-nic", island=0)
    elif kind == "flap_m3":
        plan.link_flap(at, "m3-nic", down_for=0.05)


def _run_chaos(seed, faults, migrate_at, drain_mode, with_tracing=False):
    tb = Testbed(seed=seed, n_workers=2, with_failover=True,
                 with_migration=True, with_tracing=with_tracing,
                 gateway_kwargs=dict(GATEWAY),
                 failover_kwargs={"check_interval": 0.1},
                 migration_kwargs={"drain_timeout": 0.05})
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        yield tb.manager.prepare_standby(spec.name, "bare-metal")
        t0 = env.now
        plan = FaultPlan()
        for offset, kind in faults:
            _apply_fault(plan, kind, t0 + offset)
        if plan.events:
            tb.add_fault_injector(plan)
        load = open_loop(env, tb.gateway, spec.name, rate_rps=200.0,
                         duration=0.6, rng=tb.rng.stream("load"))
        yield env.timeout(migrate_at)
        yield tb.migrator.migrate(spec.name, target_kind="bare-metal",
                                  reason="fuzz", drain_mode=drain_mode)
        result = yield load
        yield env.timeout(1.0)  # let failover + stragglers settle
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    tb.run(until=tb.env.now + 1.0)
    return tb, spec, process.value


@given(
    seed=st.integers(min_value=0, max_value=2 ** 10),
    faults=st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=0.4),
                  st.sampled_from(FAULTS)),
        min_size=0, max_size=3),
    migrate_at=st.floats(min_value=0.0, max_value=0.4),
    drain_mode=st.sampled_from(["queue", "dual"]),
)
@settings(max_examples=12, deadline=None)
def test_exactly_once_under_fuzzed_faults_and_migrations(
        seed, faults, migrate_at, drain_mode):
    tb, spec, load = _run_chaos(seed, faults, migrate_at, drain_mode)

    # Exactly-once observable outcomes: every issued request resolved
    # to exactly one success or one failure.
    issued = load.completed + load.failures
    assert issued > 0
    assert load.completed == len(load.latencies)
    # Whatever the interleaving, the gateway is left clean: no hold,
    # no mirror, nothing still in flight.
    assert not tb.gateway.held(spec.name)
    assert tb.gateway.inflight(spec.name) == 0
    # Duplicates were absorbed at the gateway, never delivered: they
    # can only exist for requests that were actually mirrored.
    dupes = tb.gateway.duplicate_responses_total.total
    assert dupes <= tb.gateway.mirrored_requests_total.total

    # The migration counters are a complete, monotone account of every
    # state machine run: each attempt ended in exactly one outcome.
    migrations = tb.migrator.migrations
    assert all(m.outcome in ("completed", "rolled-back")
               for m in migrations)
    assert tb.migrator.migrations_total.total == len(migrations)
    for reason in {m.reason for m in migrations}:
        for outcome in ("completed", "rolled-back"):
            want = sum(1 for m in migrations
                       if m.reason == reason and m.outcome == outcome)
            got = tb.migrator.migrations_total.value(
                labels={"reason": reason, "outcome": outcome})
            assert got == want
    # A rolled-back migration left the source serving: the workload
    # still has a route either way.
    assert tb.gateway.route_for(spec.name).targets


def _fingerprint(seed, faults, migrate_at, drain_mode, with_tracing):
    tb, spec, load = _run_chaos(seed, faults, migrate_at, drain_mode,
                                with_tracing=with_tracing)
    lines = [
        f"completed={load.completed!r} failures={load.failures!r}",
        f"latencies={[f'{x!r}' for x in load.latencies]}",
        f"now={tb.env.now!r}",
        f"held={tb.gateway.held_requests_total.total!r} "
        f"dupes={tb.gateway.duplicate_responses_total.total!r} "
        f"mirrored={tb.gateway.mirrored_requests_total.total!r}",
    ]
    for m in tb.migrator.migrations:
        lines.append(
            f"migration {m.workload} {m.source_kind}->{m.target_kind} "
            f"reason={m.reason} outcome={m.outcome} "
            f"history={[(f'{t!r}', s) for t, s in m.history]} "
            f"bytes={m.state_bytes!r} retries={m.handoff_retries!r}"
        )
    return "\n".join(lines)


@given(
    seed=st.integers(min_value=0, max_value=2 ** 10),
    migrate_at=st.floats(min_value=0.0, max_value=0.3),
    drain_mode=st.sampled_from(["queue", "dual"]),
)
@settings(max_examples=6, deadline=None)
def test_traced_run_is_byte_identical_with_migration(
        seed, migrate_at, drain_mode):
    """Tracing must not perturb migration timing or outcomes."""
    faults = [(0.2, "kill_m2")]
    untraced = _fingerprint(seed, faults, migrate_at, drain_mode, False)
    traced = _fingerprint(seed, faults, migrate_at, drain_mode, True)
    assert traced == untraced
    assert "migration" in untraced  # the fingerprint is non-trivial
