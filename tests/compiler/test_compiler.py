"""Tests for the Match+Lambda compiler: composition, passes, codegen."""

import pytest

from repro.compiler import (
    CompilationUnit,
    CompileError,
    Firmware,
    MAX_INSTRUCTIONS_PER_CORE,
    compile_unit,
    dead_code_elimination,
    lambda_coalescing,
    match_reduction,
    memory_stratification,
)
from repro.isa import (
    AccessMode,
    Interpreter,
    Op,
    ProgramBuilder,
    Region,
)


def make_lambda(name, with_helper=True, content_size=64, pad=0):
    """A small lambda: reads a header, copies content, replies."""
    builder = ProgramBuilder(name)
    builder.object("content", content_size, AccessMode.READ)
    builder.object("scratch", 32, AccessMode.READ_WRITE, hot=True)
    if with_helper:
        helper = builder.function("make_reply")
        helper.hstore("LambdaHeader", "is_response", 1)
        helper.nop(4)
        helper.ret()
        builder.close(helper)
    fn = builder.function(name)
    fn.hload("r1", "LambdaHeader", "request_id")
    fn.load("r2", "content", 0)
    fn.store("scratch", 0, "r2")
    if pad:
        fn.nop(pad)
    if with_helper:
        fn.call("make_reply")
    fn.forward()
    builder.close(fn)
    return builder.build()


def make_unit(names=("web", "kv"), **kwargs):
    unit = CompilationUnit()
    for index, name in enumerate(names):
        unit.add_lambda(make_lambda(name, **kwargs), wid=index + 1,
                        route_port=f"p{index}")
    return unit


def test_unit_rejects_duplicates():
    unit = make_unit(["web"])
    with pytest.raises(CompileError):
        unit.add_lambda(make_lambda("web"), wid=9)
    with pytest.raises(CompileError):
        unit.add_lambda(make_lambda("other"), wid=1)


def test_build_program_contains_all_stages():
    program = make_unit().build_program()
    assert "main" in program.functions
    assert "parse" in program.functions
    assert "match_dispatch" in program.functions
    assert "web" in program.functions
    assert "web.make_reply" in program.functions
    assert "web.content" in program.objects


def test_empty_unit_rejected():
    with pytest.raises(CompileError):
        CompilationUnit().build_program()


def test_firmware_executes_end_to_end():
    firmware = compile_unit(make_unit())
    result = Interpreter().run(
        firmware.program,
        headers={"LambdaHeader": {"wid": 1, "request_id": 5}},
        meta={"has_EthernetHeader": 1, "has_IPv4Header": 1,
              "has_UDPHeader": 1, "has_LambdaHeader": 1},
    )
    assert result.verdict == "forward"
    assert result.headers["LambdaHeader"]["is_response"] == 1


def test_firmware_unknown_wid_to_host():
    firmware = compile_unit(make_unit())
    result = Interpreter().run(
        firmware.program,
        headers={"LambdaHeader": {"wid": 99, "request_id": 5}},
        meta={"has_LambdaHeader": 1},
    )
    assert result.verdict == "to_host"


def test_dead_code_elimination_removes_unused():
    unit = make_unit(["web"])
    program = unit.lambdas["web"]
    # An uncalled function and an untouched object.
    from repro.isa import Function, ins

    program.add_function(Function("orphan", [ins(Op.RET)]))
    program.add_object(
        __import__("repro.isa", fromlist=["MemoryObject"]).MemoryObject("unused", 99)
    )
    dead_code_elimination(unit)
    assert "orphan" not in program.functions
    assert "unused" not in program.objects
    assert "content" in program.objects


def test_lambda_coalescing_hoists_identical_helpers():
    unit = make_unit(["web", "kv"])
    before = unit.build_program().instruction_count
    lambda_coalescing(unit)
    after = unit.build_program().instruction_count
    assert len(unit.shared_functions) == 1
    assert "make_reply" not in unit.lambdas["web"].functions
    assert after < before


def test_coalesced_firmware_still_correct():
    unit = make_unit(["web", "kv"])
    lambda_coalescing(unit)
    firmware_program = unit.build_program()
    result = Interpreter().run(
        firmware_program,
        headers={"LambdaHeader": {"wid": 2, "request_id": 1}},
        meta={"has_LambdaHeader": 1},
    )
    assert result.verdict == "forward"
    assert result.headers["LambdaHeader"]["is_response"] == 1


def test_match_reduction_shrinks_dispatch():
    unit = make_unit(["web", "kv", "img"])
    before = unit.build_program().instruction_count
    match_reduction(unit)
    after = unit.build_program().instruction_count
    assert after < before
    assert unit.merged_routes and unit.if_else_tables and unit.prune_parser


def test_match_reduction_preserves_routing():
    unit = make_unit(["web", "kv"])
    match_reduction(unit)
    result = Interpreter().run(
        unit.build_program(),
        headers={"LambdaHeader": {"wid": 1, "request_id": 0}},
        meta={"has_LambdaHeader": 1},
    )
    assert result.verdict == "forward"
    assert result.meta["route_port"] == "p0"


def test_memory_stratification_places_objects():
    unit = make_unit(["web"])
    memory_stratification(unit)
    program = unit.lambdas["web"]
    assert program.object("scratch").region is Region.LOCAL  # hot + small
    assert program.object("content").region is Region.CTM


def test_memory_stratification_folds_accesses():
    unit = make_unit(["web"])
    before = unit.build_program().instruction_count
    memory_stratification(unit)
    after = unit.build_program().instruction_count
    assert after < before
    body = unit.lambdas["web"].functions["web"].body
    ops = [instruction.op for instruction in body]
    assert Op.LOADD in ops
    assert Op.STORED in ops
    assert Op.RESOLVE not in ops


def test_stratified_firmware_still_correct():
    unit = make_unit(["web", "kv"])
    memory_stratification(unit)
    result = Interpreter().run(
        unit.build_program(),
        headers={"LambdaHeader": {"wid": 1, "request_id": 3}},
        meta={"has_LambdaHeader": 1},
    )
    assert result.verdict == "forward"


def test_large_object_goes_to_imem():
    unit = CompilationUnit()
    builder = ProgramBuilder("img")
    builder.object("image", 1024 * 1024, AccessMode.READ)
    fn = builder.function("img")
    fn.load("r1", "image", 0)
    fn.forward()
    builder.close(fn)
    unit.add_lambda(builder.build(), wid=1)
    memory_stratification(unit, ctm_budget=1000)
    assert unit.lambdas["img"].object("image").region is Region.IMEM


def test_huge_object_goes_to_emem():
    unit = CompilationUnit()
    builder = ProgramBuilder("big")
    builder.object("blob", 8 * 1024 * 1024, AccessMode.READ_WRITE)
    fn = builder.function("big")
    fn.store("blob", 0, 1)
    fn.forward()
    builder.close(fn)
    unit.add_lambda(builder.build(), wid=1)
    memory_stratification(unit)
    assert unit.lambdas["big"].object("blob").region is Region.EMEM


def test_compile_unit_report_monotonic():
    firmware = compile_unit(make_unit(["web", "kv", "img"]))
    counts = [stage.instructions for stage in firmware.report.stages]
    assert counts == sorted(counts, reverse=True)
    assert firmware.report.stages[0].stage == "Unoptimized"
    assert firmware.report.total_reduction_percent > 0


def test_compile_unit_unoptimized():
    firmware = compile_unit(make_unit(), optimize=False)
    assert len(firmware.report.stages) == 1
    assert firmware.instruction_count == firmware.report.baseline


def test_firmware_resource_check():
    unit = make_unit(["web"], pad=MAX_INSTRUCTIONS_PER_CORE + 10)
    with pytest.raises(CompileError, match="instructions"):
        compile_unit(unit, optimize=False)


def test_firmware_sizes_and_layout():
    firmware = compile_unit(make_unit())
    assert firmware.binary_size_bytes > firmware.code_bytes
    assert sum(firmware.region_layout.values()) == firmware.data_bytes
    assert firmware.wid_for("web") == 1
    with pytest.raises(KeyError):
        firmware.wid_for("ghost")


def test_optimized_beats_unoptimized_cycles():
    """Stratification must reduce executed cycles, not just code size."""
    headers = {"LambdaHeader": {"wid": 1, "request_id": 5}}
    meta = {"has_LambdaHeader": 1}
    naive = compile_unit(make_unit(), optimize=False)
    optimized = compile_unit(make_unit())
    naive_cycles = Interpreter().run(
        naive.program, headers=dict(headers), meta=dict(meta)
    ).cycles
    optimized_cycles = Interpreter().run(
        optimized.program, headers=dict(headers), meta=dict(meta)
    ).cycles
    assert optimized_cycles < naive_cycles
