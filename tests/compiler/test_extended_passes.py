"""The verifier-powered passes: smaller firmware, identical semantics.

``EXTENDED_PASSES`` appends constant folding and dead-store elimination
to the paper's three stages. These tests pin the two claims that make
the extension safe to enable:

* the extended pipeline strictly reduces the composed firmware's
  instruction count (Figure-9 stages are untouched — the extension is
  opt-in);
* the optimised firmware is observationally identical to the standard
  one on fuzzed request streams — same verdicts, return values, header
  and metadata mutations, emitted packets, response payloads, and
  persistent-memory effects — under both the reference interpreter and
  the fast-path engine. (Cycle counts legitimately drop: fewer
  instructions execute.)
"""

import copy
import random
from dataclasses import asdict

import pytest

from repro.compiler import (
    CompilationUnit,
    EXTENDED_PASSES,
    STANDARD_PASSES,
    compile_unit,
)
from repro.isa import FastInterpreter, Interpreter
from repro.workloads.registry import fig9_workloads
from tests.isa.test_fastpath import fresh_memory, fuzz_inputs


def build_unit():
    unit = CompilationUnit()
    for index, (_, spec) in enumerate(sorted(fig9_workloads().items())):
        unit.add_lambda(spec.nic_program(), wid=index + 1,
                        route_port=f"p{index}")
    return unit


@pytest.fixture(scope="module")
def firmwares():
    standard = compile_unit(build_unit(), passes=STANDARD_PASSES)
    extended = compile_unit(build_unit(), passes=EXTENDED_PASSES)
    return standard, extended


def test_extended_passes_reduce_instruction_count(firmwares):
    standard, extended = firmwares
    assert extended.instruction_count < standard.instruction_count
    stages = [stage for stage, _, _ in extended.report.rows()]
    assert stages[-2:] == ["Constant Folding", "Dead Store Elimination"]
    # The Figure-9 series is untouched: the first four stages match.
    assert extended.report.rows()[:4] == standard.report.rows()[:4]


def test_extended_firmware_still_verifies(firmwares):
    _, extended = firmwares
    assert extended.verifier_report is not None
    assert extended.verifier_report.ok
    assert extended.verifier_report.wcet_cycles is not None


def observable(outcome):
    """Everything but the cycle/instruction counters and access profile."""
    if outcome[0] != "ok":
        return outcome
    result = dict(outcome[1])
    for counter in ("cycles", "instructions_executed", "region_accesses"):
        result.pop(counter)
    return ("ok", result)


def run_one(engine, program, headers, meta, memory):
    try:
        if isinstance(engine, FastInterpreter):
            result, _ = engine.execute(
                program, headers=copy.deepcopy(headers), meta=dict(meta),
                memory=memory)
        else:
            result = engine.run(
                program, headers=copy.deepcopy(headers), meta=dict(meta),
                memory=memory)
        return ("ok", asdict(result))
    except Exception as error:
        return ("err", type(error).__name__, str(error))


@pytest.mark.parametrize("engine_cls", [Interpreter, FastInterpreter])
def test_extended_firmware_is_observationally_identical(firmwares,
                                                        engine_cls):
    standard, extended = firmwares
    rng = random.Random(4242)
    std_engine, ext_engine = engine_cls(), engine_cls()
    std_memory = fresh_memory(standard.program)
    ext_memory = {k: bytearray(v) for k, v in std_memory.items()}
    for headers, meta in fuzz_inputs(rng, 50):
        std = run_one(std_engine, standard.program, headers, meta,
                      std_memory)
        ext = run_one(ext_engine, extended.program, headers, meta,
                      ext_memory)
        assert observable(std) == observable(ext)
    # Persistent state evolved identically across the whole stream.
    assert std_memory == ext_memory


def test_constant_folding_rewrites_known_alu(firmwares):
    """A concrete example: a known mul becomes a mov."""
    from repro.isa import Op, ProgramBuilder
    from repro.compiler import constant_folding

    builder = ProgramBuilder("cf")
    fn = builder.function("cf")
    fn.mov("r1", 6).mov("r2", 7).mul("r3", "r1", "r2").ret("r3")
    builder.close(fn)
    unit = CompilationUnit()
    unit.add_lambda(builder.build(), wid=1, route_port="p0")
    constant_folding(unit)
    body = unit.lambdas["cf"].functions["cf"].body
    folded = [i for i in body if i.op is Op.MOV and i.args == ("r3", 42)]
    assert folded, f"mul not folded: {body}"
    assert not any(i.op is Op.MUL for i in body)


def test_dead_store_elimination_removes_unread_writes():
    from repro.isa import Op, ProgramBuilder
    from repro.compiler import dead_store_elimination

    builder = ProgramBuilder("dse")
    fn = builder.function("dse")
    fn.mov("r5", 123)  # never read anywhere in the composed firmware
    fn.mov("r0", 1)
    fn.forward()
    builder.close(fn)
    unit = CompilationUnit()
    unit.add_lambda(builder.build(), wid=1, route_port="p0")
    dead_store_elimination(unit)
    body = unit.lambdas["dse"].functions["dse"].body
    assert not any(i.op is Op.MOV and i.args[0] == "r5" for i in body)
    assert any(i.op is Op.FORWARD for i in body)
