"""Tests for the λ-NIC core runtime and Match+Lambda abstraction."""

import pytest

from repro.core import LambdaNicRuntime, MatchLambdaWorkload, RdmaBinding
from repro.hw import SmartNIC
from repro.net import Network
from repro.sim import Environment, RngRegistry
from repro.workloads import image_transformer_nic, web_server_nic


def make_fleet(n_nics=2):
    env = Environment()
    rng = RngRegistry(seed=1)
    network = Network(env)
    nics = []
    for index in range(n_nics):
        node = network.add_node(f"nic{index}")
        nics.append(SmartNIC(env, node, n_cores=4, threads_per_core=2,
                             rng=rng.stream(f"nic{index}")))
    return env, network, nics


def test_register_assigns_wids():
    env, network, nics = make_fleet()
    runtime = LambdaNicRuntime(env, nics)
    wid1 = runtime.register(MatchLambdaWorkload(web_server_nic("a")))
    wid2 = runtime.register(MatchLambdaWorkload(web_server_nic("b")))
    assert wid1 != wid2
    assert runtime.wid_for("a") == wid1


def test_duplicate_registration_rejected():
    env, network, nics = make_fleet()
    runtime = LambdaNicRuntime(env, nics)
    runtime.register(MatchLambdaWorkload(web_server_nic("a")))
    with pytest.raises(ValueError):
        runtime.register(MatchLambdaWorkload(web_server_nic("a")))


def test_deploy_instant_installs_everywhere():
    env, network, nics = make_fleet(n_nics=3)
    runtime = LambdaNicRuntime(env, nics)
    runtime.register(MatchLambdaWorkload(web_server_nic("web")))
    firmware = runtime.deploy_instant()
    for nic in nics:
        assert nic.firmware is firmware


def test_deploy_with_swap_takes_time():
    env, network, nics = make_fleet()
    runtime = LambdaNicRuntime(env, nics)
    runtime.register(MatchLambdaWorkload(web_server_nic("web")))
    process = runtime.deploy(swap=True)
    env.run(until=process)
    assert env.now == pytest.approx(nics[0].firmware_swap_seconds)
    assert all(nic.firmware is not None for nic in nics)


def test_rdma_binding_applied_on_deploy():
    env, network, nics = make_fleet()
    runtime = LambdaNicRuntime(env, nics)
    workload = MatchLambdaWorkload(
        image_transformer_nic("img", width=16, height=16, tile_blocks=2,
                              block_pad=1),
        rdma=RdmaBinding(object_name="image", qp=7),
    )
    runtime.register(workload)
    runtime.deploy_instant()
    assert runtime.rdma_qp_for("img") == 7
    for nic in nics:
        assert nic._rdma_bindings[7] == ("img", "img.image")


def test_rdma_binding_validated():
    workload = MatchLambdaWorkload(
        web_server_nic("web"),
        rdma=RdmaBinding(object_name="nonexistent"),
    )
    with pytest.raises(ValueError):
        workload.validate()


def test_target_round_robin():
    env, network, nics = make_fleet(n_nics=3)
    runtime = LambdaNicRuntime(env, nics)
    runtime.register(MatchLambdaWorkload(web_server_nic("web")))
    targets = [runtime.target_for("web").name for _ in range(6)]
    assert len(set(targets[:3])) == 3
    assert targets[:3] == targets[3:]


def test_unknown_workload_queries_raise():
    env, network, nics = make_fleet()
    runtime = LambdaNicRuntime(env, nics)
    with pytest.raises(KeyError):
        runtime.wid_for("ghost")
    with pytest.raises(KeyError):
        runtime.target_for("ghost")
    with pytest.raises(KeyError):
        runtime.rdma_qp_for("ghost")


def test_runtime_requires_nics():
    env = Environment()
    with pytest.raises(ValueError):
        LambdaNicRuntime(env, [])


def test_workload_headers_discovery():
    workload = MatchLambdaWorkload(web_server_nic("web"))
    assert "LambdaHeader" in workload.headers()


def test_incremental_deploy_preserves_old_lambdas():
    env, network, nics = make_fleet()
    runtime = LambdaNicRuntime(env, nics)
    runtime.register(MatchLambdaWorkload(web_server_nic("first")))
    runtime.deploy_instant()
    first_wid = runtime.wid_for("first")
    runtime.register(MatchLambdaWorkload(web_server_nic("second")))
    firmware = runtime.deploy_instant()
    assert firmware.wid_for("first") == first_wid
    assert firmware.wid_for("second") != first_wid
