"""Tests for the DRF allocator."""

import pytest

from repro.core import DrfAllocator, nic_capacities


def test_classic_drf_example():
    """The example from the DRF paper: capacities <9 CPU, 18 GB>,
    user A tasks need <1, 4>, user B tasks need <3, 1>.
    DRF gives A three tasks and B two."""
    allocator = DrfAllocator({"cpu": 9, "memory": 18})
    allocator.add_user("A", {"cpu": 1, "memory": 4})
    allocator.add_user("B", {"cpu": 3, "memory": 1})
    allocation = allocator.allocate()
    assert allocation == {"A": 3, "B": 2}
    shares = allocator.dominant_shares()
    # Both dominant shares equalised at 2/3.
    assert shares["A"] == pytest.approx(2 / 3)
    assert shares["B"] == pytest.approx(2 / 3)


def test_single_user_gets_everything():
    allocator = DrfAllocator({"cpu": 4})
    allocator.add_user("only", {"cpu": 1})
    assert allocator.allocate() == {"only": 4}
    assert allocator.utilization()["cpu"] == pytest.approx(1.0)


def test_weighted_drf_favours_heavier_user():
    allocator = DrfAllocator({"cpu": 10})
    allocator.add_user("heavy", {"cpu": 1}, weight=3.0)
    allocator.add_user("light", {"cpu": 1}, weight=1.0)
    allocation = allocator.allocate()
    assert allocation["heavy"] > allocation["light"]
    assert allocation["heavy"] + allocation["light"] == 10


def test_max_tasks_cap():
    allocator = DrfAllocator({"cpu": 100})
    allocator.add_user("a", {"cpu": 1})
    allocator.add_user("b", {"cpu": 1})
    allocation = allocator.allocate(max_tasks=6)
    assert sum(allocation.values()) == 6
    assert abs(allocation["a"] - allocation["b"]) <= 1


def test_no_users_empty_allocation():
    allocator = DrfAllocator({"cpu": 4})
    assert allocator.allocate() == {}


def test_validation():
    with pytest.raises(ValueError):
        DrfAllocator({})
    with pytest.raises(ValueError):
        DrfAllocator({"cpu": 0})
    allocator = DrfAllocator({"cpu": 4})
    allocator.add_user("a", {"cpu": 1})
    with pytest.raises(ValueError):
        allocator.add_user("a", {"cpu": 1})
    with pytest.raises(ValueError):
        allocator.add_user("b", {"gpu": 1})
    with pytest.raises(ValueError):
        allocator.add_user("c", {})
    with pytest.raises(ValueError):
        allocator.add_user("d", {"cpu": -1})
    with pytest.raises(ValueError):
        allocator.add_user("e", {"cpu": 1}, weight=0)


def test_allocation_never_exceeds_capacity():
    allocator = DrfAllocator(nic_capacities())
    allocator.add_user("web", {"threads": 1, "memory_bandwidth_gbps": 0.05,
                               "instruction_store": 30})
    allocator.add_user("image", {"threads": 2, "memory_bandwidth_gbps": 1.0,
                                 "instruction_store": 60})
    allocator.allocate()
    for resource, used in allocator.utilization().items():
        assert used <= 1.0 + 1e-9


def test_wfq_weights_sum_to_one():
    allocator = DrfAllocator({"cpu": 10})
    allocator.add_user("a", {"cpu": 1})
    allocator.add_user("b", {"cpu": 2})
    allocator.allocate()
    weights = allocator.wfq_weights()
    assert sum(weights.values()) == pytest.approx(1.0)
    assert weights["a"] > weights["b"]  # cheaper tasks -> more of them


def test_wfq_weights_default_when_unallocated():
    allocator = DrfAllocator({"cpu": 10})
    allocator.add_user("a", {"cpu": 1})
    assert allocator.wfq_weights() == {"a": 1.0}
