"""Tests for the Raft log."""

import pytest

from repro.raft import LogEntry, RaftLog


def entry(term, command=("SET", "k", "v")):
    return LogEntry(term=term, command=command)


def test_empty_log():
    log = RaftLog()
    assert log.last_index == 0
    assert log.last_term == 0
    assert log.term_at(0) == 0


def test_append_and_access():
    log = RaftLog()
    assert log.append(entry(1)) == 1
    assert log.append(entry(2)) == 2
    assert log.last_index == 2
    assert log.last_term == 2
    assert log.entry(1).term == 1
    assert log.term_at(2) == 2


def test_entry_bounds():
    log = RaftLog()
    log.append(entry(1))
    with pytest.raises(IndexError):
        log.entry(0)
    with pytest.raises(IndexError):
        log.entry(2)


def test_entries_from():
    log = RaftLog()
    for term in [1, 1, 2, 3]:
        log.append(entry(term))
    assert [e.term for e in log.entries_from(3)] == [2, 3]
    assert log.entries_from(5) == []
    assert [e.term for e in log.entries_from(1)] == [1, 1, 2, 3]


def test_truncate_from():
    log = RaftLog()
    for term in [1, 2, 3]:
        log.append(entry(term))
    log.truncate_from(2)
    assert log.last_index == 1
    assert log.last_term == 1


def test_matches_consistency_check():
    log = RaftLog()
    log.append(entry(1))
    log.append(entry(2))
    assert log.matches(0, 0)
    assert log.matches(2, 2)
    assert not log.matches(2, 1)
    assert not log.matches(3, 2)


def test_is_up_to_date():
    log = RaftLog()
    log.append(entry(1))
    log.append(entry(3))
    assert log.is_up_to_date(2, 3)      # identical
    assert log.is_up_to_date(5, 3)      # longer same term
    assert log.is_up_to_date(1, 4)      # higher term wins
    assert not log.is_up_to_date(1, 3)  # shorter same term
    assert not log.is_up_to_date(9, 2)  # lower term loses
