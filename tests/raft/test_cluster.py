"""Integration tests for Raft clusters and the etcd client."""

import pytest

from repro.net import Network
from repro.raft import EtcdClient, EtcdCluster, LEADER
from repro.sim import Environment, RngRegistry


def make_cluster(n_nodes=3, seed=11, drop_probability=0.0):
    env = Environment()
    rng = RngRegistry(seed=seed)
    network = Network(
        env,
        drop_probability=drop_probability,
        rng=rng.stream("net") if drop_probability else None,
    )
    cluster = EtcdCluster(env, network, n_nodes=n_nodes, rng=rng)
    client_node = network.add_node("client")
    client = EtcdClient(env, client_node, cluster.names)
    return env, network, cluster, client


def test_single_leader_elected():
    env, network, cluster, client = make_cluster()
    env.run(until=2.0)
    leaders = [node for node in cluster.nodes.values() if node.is_leader]
    assert len(leaders) == 1


def test_election_safety_over_time():
    """At any observed instant there is at most one leader per term."""
    env, network, cluster, client = make_cluster(n_nodes=5)
    seen = {}

    def observer(env):
        while env.now < 5.0:
            yield env.timeout(0.025)
            for node in cluster.nodes.values():
                if node.is_leader:
                    seen.setdefault(node.current_term, set()).add(node.name)

    env.process(observer(env))
    env.run(until=5.0)
    assert seen, "no leader was ever observed"
    for term, leaders in seen.items():
        assert len(leaders) == 1, f"term {term} had leaders {leaders}"


def test_set_then_get():
    env, network, cluster, client = make_cluster()

    def scenario(env):
        yield cluster.wait_for_leader()
        result = yield client.set("color", "green")
        assert result == "OK"
        value = yield client.get("color")
        assert value == "green"

    process = env.process(scenario(env))
    env.run(until=process)


def test_committed_entries_replicated_to_all():
    env, network, cluster, client = make_cluster()

    def scenario(env):
        yield cluster.wait_for_leader()
        for index in range(5):
            yield client.set(f"k{index}", index)
        yield env.timeout(0.5)  # let followers catch up

    process = env.process(scenario(env))
    env.run(until=process)
    for store in cluster.stores.values():
        assert store.data == {f"k{index}": index for index in range(5)}


def test_cas_semantics():
    env, network, cluster, client = make_cluster()
    outcomes = []

    def scenario(env):
        yield cluster.wait_for_leader()
        yield client.set("lock", "free")
        outcomes.append((yield client.cas("lock", "free", "held")))
        outcomes.append((yield client.cas("lock", "free", "held")))
        outcomes.append((yield client.get("lock")))

    process = env.process(scenario(env))
    env.run(until=process)
    assert outcomes == [True, False, "held"]


def test_delete():
    env, network, cluster, client = make_cluster()
    outcomes = []

    def scenario(env):
        yield cluster.wait_for_leader()
        yield client.set("tmp", 1)
        outcomes.append((yield client.delete("tmp")))
        outcomes.append((yield client.delete("tmp")))
        outcomes.append((yield client.get("tmp")))

    process = env.process(scenario(env))
    env.run(until=process)
    assert outcomes == [True, False, None]


def test_leader_crash_triggers_reelection_and_continuity():
    env, network, cluster, client = make_cluster(n_nodes=5)
    trace = {}

    def scenario(env):
        leader = yield cluster.wait_for_leader()
        yield client.set("before", 1)
        trace["old_leader"] = leader.name
        leader.crash()
        yield env.timeout(2.0)  # allow re-election
        new_leader = cluster.leader()
        assert new_leader is not None
        trace["new_leader"] = new_leader.name
        yield client.set("after", 2)
        value_before = yield client.get("before")
        value_after = yield client.get("after")
        assert value_before == 1
        assert value_after == 2

    process = env.process(scenario(env))
    env.run(until=process)
    assert trace["new_leader"] != trace["old_leader"]


def test_crashed_follower_catches_up_on_recovery():
    env, network, cluster, client = make_cluster(n_nodes=3)

    def scenario(env):
        leader = yield cluster.wait_for_leader()
        followers = [name for name in cluster.names if name != leader.name]
        victim = followers[0]
        cluster.crash(victim)
        for index in range(4):
            yield client.set(f"k{index}", index)
        cluster.recover(victim)
        yield env.timeout(1.5)
        assert cluster.stores[victim].data == \
            {f"k{index}": index for index in range(4)}

    process = env.process(scenario(env))
    env.run(until=process)


def test_minority_crash_still_commits():
    env, network, cluster, client = make_cluster(n_nodes=5)

    def scenario(env):
        leader = yield cluster.wait_for_leader()
        followers = [name for name in cluster.names if name != leader.name]
        cluster.crash(followers[0])
        cluster.crash(followers[1])
        result = yield client.set("quorum", "held")
        assert result == "OK"

    process = env.process(scenario(env))
    env.run(until=process)


def test_cluster_survives_lossy_network():
    env, network, cluster, client = make_cluster(seed=5, drop_probability=0.05)

    def scenario(env):
        yield cluster.wait_for_leader()
        for index in range(5):
            yield client.set(f"k{index}", index)
        value = yield client.get("k4")
        assert value == 4

    process = env.process(scenario(env))
    env.run(until=process)


def test_duplicate_client_command_not_reapplied():
    """Retried commands must be idempotent at the state machine."""
    env, network, cluster, client = make_cluster()

    def scenario(env):
        leader = yield cluster.wait_for_leader()
        yield client.set("x", 1)
        applied_before = cluster.stores[leader.name].applied_commands
        # Re-send the exact same (client, seq) command directly.
        from repro.raft import ClientCommand
        from repro.net import HeaderStack, Packet, RpcHeader, UDPHeader

        duplicate = ClientCommand(command=("SET", "x", 1),
                                  client=client.name, seq=1)
        client.node.send(Packet(
            src=client.name, dst=leader.name,
            headers=HeaderStack([UDPHeader(), RpcHeader()]),
            payload=duplicate, payload_bytes=80,
        ))
        yield env.timeout(0.5)
        applied_after = cluster.stores[leader.name].applied_commands
        assert applied_after == applied_before

    process = env.process(scenario(env))
    env.run(until=process)


def test_cluster_requires_nodes():
    env = Environment()
    network = Network(env)
    with pytest.raises(ValueError):
        EtcdCluster(env, network, n_nodes=0)
