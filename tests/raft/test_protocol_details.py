"""Protocol-level Raft tests: conflicts, stale terms, edge cases."""

import pytest

from repro.net import Network
from repro.raft import (
    AppendEntries,
    EtcdClient,
    EtcdCluster,
    LEADER,
    LogEntry,
    RaftNode,
    RequestVote,
)
from repro.sim import Environment, RngRegistry


def make_node(env=None, peers=("n2", "n3")):
    env = env or Environment()
    network = Network(env)
    applied = []
    node = RaftNode(
        env, network.add_node("n1"), peers=["n1", *peers],
        apply_fn=lambda command: applied.append(command) or "OK",
        rng=RngRegistry(seed=4).stream("raft"),
    )
    # Sink peers so outgoing RPCs have somewhere to go.
    for peer in peers:
        network.add_node(peer).attach(lambda p: None)
    return env, node, applied


def test_follower_truncates_conflicting_entries():
    env, node, applied = make_node()
    node.current_term = 2
    # Follower has entries from a deposed leader.
    node.log.append(LogEntry(term=1, command=("SET", "a", 1)))
    node.log.append(LogEntry(term=2, command=("SET", "b", 2)))
    node.log.append(LogEntry(term=2, command=("SET", "stale", 9)))
    # New leader (term 3) sends entries conflicting at index 2.
    node._on_append_entries(AppendEntries(
        term=3, leader="n2", prev_log_index=1, prev_log_term=1,
        entries=[LogEntry(term=3, command=("SET", "b", 99))],
        leader_commit=2,
    ))
    assert node.current_term == 3
    assert node.log.last_index == 2
    assert node.log.entry(2).command == ("SET", "b", 99)
    # Commit index followed leader_commit and applied both entries.
    assert node.commit_index == 2
    assert applied == [("SET", "a", 1), ("SET", "b", 99)]


def test_append_entries_rejects_stale_leader():
    env, node, applied = make_node()
    node.current_term = 5
    node._on_append_entries(AppendEntries(
        term=3, leader="n2", prev_log_index=0, prev_log_term=0,
        entries=[LogEntry(term=3, command=("SET", "x", 1))],
    ))
    assert node.log.last_index == 0
    assert node.current_term == 5


def test_append_entries_rejects_gap():
    env, node, applied = make_node()
    node.current_term = 1
    node._on_append_entries(AppendEntries(
        term=1, leader="n2", prev_log_index=5, prev_log_term=1,
        entries=[LogEntry(term=1, command=("SET", "x", 1))],
    ))
    assert node.log.last_index == 0  # consistency check failed


def test_vote_denied_to_stale_log():
    env, node, applied = make_node()
    node.current_term = 2
    node.log.append(LogEntry(term=2, command=()))
    sent = []
    node._send = lambda dst, message: sent.append((dst, message))
    node._on_request_vote(RequestVote(
        term=3, candidate="n2", last_log_index=5, last_log_term=1,
    ))
    assert sent[-1][1].granted is False  # lower last term loses
    node._on_request_vote(RequestVote(
        term=3, candidate="n3", last_log_index=1, last_log_term=2,
    ))
    assert sent[-1][1].granted is True


def test_vote_not_granted_twice_in_same_term():
    env, node, applied = make_node()
    sent = []
    node._send = lambda dst, message: sent.append((dst, message))
    node._on_request_vote(RequestVote(term=1, candidate="n2",
                                      last_log_index=0, last_log_term=0))
    node._on_request_vote(RequestVote(term=1, candidate="n3",
                                      last_log_index=0, last_log_term=0))
    assert sent[0][1].granted is True
    assert sent[1][1].granted is False


def test_single_node_cluster_self_elects_and_commits():
    env = Environment()
    network = Network(env)
    cluster = EtcdCluster(env, network, n_nodes=1,
                          rng=RngRegistry(seed=6))
    client = EtcdClient(env, network.add_node("client"), cluster.names)

    def scenario(env):
        yield cluster.wait_for_leader()
        result = yield client.set("solo", 1)
        assert result == "OK"
        value = yield client.get("solo")
        assert value == 1

    process = env.process(scenario(env))
    env.run(until=process)
    assert cluster.nodes[cluster.names[0]].state == LEADER


def test_client_times_out_when_cluster_dead():
    env = Environment()
    network = Network(env)
    cluster = EtcdCluster(env, network, n_nodes=3,
                          rng=RngRegistry(seed=7))
    client = EtcdClient(env, network.add_node("client"), cluster.names,
                        timeout=0.1, max_attempts=3)
    for name in cluster.names:
        cluster.crash(name)

    def scenario(env):
        with pytest.raises(TimeoutError):
            yield client.set("k", 1)

    process = env.process(scenario(env))
    env.run(until=process)
