"""Regression: packet ids must not leak process history across testbeds.

Packet ids used to come from one process-global ``itertools.count``,
so a testbed's packets were numbered differently depending on how many
simulations had already run in the process — the exact class of latent
shared state that breaks shard isolation (a shard executed inline
after three siblings would number packets differently than the same
shard in a fresh pool worker). ``Network.__init__`` now restarts the
counter; these tests pin that.
"""

from repro.net import Network, Packet, reset_packet_ids
from repro.sim import Environment


def test_network_construction_restarts_packet_numbering():
    net_a = Network(Environment())
    first = Packet(src="a", dst="b")
    second = Packet(src="a", dst="b")
    assert (first.packet_id, second.packet_id) == (1, 2)

    # A later, independent testbed must see the same numbering as a
    # fresh process would — not a continuation of net_a's.
    net_b = Network(Environment())
    again = Packet(src="a", dst="b")
    assert again.packet_id == 1


def test_reset_packet_ids_is_idempotent():
    reset_packet_ids()
    assert Packet(src="a", dst="b").packet_id == 1
    reset_packet_ids()
    assert Packet(src="a", dst="b").packet_id == 1


def test_identical_testbeds_emit_identical_packet_ids():
    from repro.serverless import Testbed, closed_loop
    from repro.workloads import standard_workloads

    def packet_ids_of_run():
        spec = standard_workloads()["web_server"]
        tb = Testbed(seed=3, n_workers=1)
        tb.add_backend("lambda-nic")
        seen = []
        original = tb.network.send_from

        def spy(src, packet):
            seen.append(packet.packet_id)
            return original(src, packet)

        tb.network.send_from = spy

        def scenario(env):
            yield tb.manager.deploy(spec, "lambda-nic")
            result = yield closed_loop(env, tb.gateway, spec.name,
                                       n_requests=5, concurrency=1)
            return result

        process = tb.env.process(scenario(tb.env))
        tb.run(until=process)
        return seen

    first = packet_ids_of_run()
    second = packet_ids_of_run()
    assert first, "run produced no packets"
    assert first == second
