"""Network-layer fault paths: dead links, partitions, lossy-fabric guard."""

import pytest

from repro.net import HeaderStack, Link, Network, Packet, UDPHeader
from repro.sim import Environment, RngRegistry


def make_packet(src, dst, payload_bytes=100):
    return Packet(src, dst, HeaderStack([UDPHeader()]),
                  payload_bytes=payload_bytes)


def make_network(env, **kwargs):
    network = Network(env, **kwargs)
    received = []
    for name in ["a", "b", "c"]:
        node = network.add_node(name)
        node.attach(lambda p, name=name: received.append((name, p)))
    return network, received


def test_lossy_network_requires_rng():
    env = Environment()
    with pytest.raises(ValueError):
        Network(env, drop_probability=0.05)
    with pytest.raises(ValueError):
        Network(env, drop_probability=1.5,
                rng=RngRegistry(seed=0).stream("n"))
    # Explicit rng makes a lossy fabric legal.
    Network(env, drop_probability=0.05, rng=RngRegistry(seed=0).stream("n"))


def test_lossy_network_propagates_to_new_links():
    env = Environment()
    rng = RngRegistry(seed=2).stream("loss")
    network = Network(env, drop_probability=0.5, rng=rng)
    received = []
    network.add_node("a").attach(lambda p: received.append(p))
    network.add_node("b").attach(lambda p: received.append(p))
    for _ in range(100):
        network.send_from("a", make_packet("a", "b"))
    env.run()
    assert 0 < len(received) < 100  # drops on uplink and downlink


def test_dead_link_drops_and_counts():
    env = Environment()
    network, received = make_network(env)
    network.set_link_state("b", up=False)
    assert not network.link_up("b")

    network.send_from("a", make_packet("a", "b"))
    network.send_from("a", make_packet("a", "c"))
    env.run()
    # b is unreachable, c unaffected.
    assert [name for name, _ in received] == ["c"]
    down_drops = network.link("b").stats("switch").packets_dropped_down
    assert down_drops == 1

    network.set_link_state("b", up=True)
    network.send_from("a", make_packet("a", "b"))
    env.run()
    assert [name for name, _ in received] == ["c", "b"]


def test_dead_uplink_drops_outbound_packets():
    env = Environment()
    network, received = make_network(env)
    network.set_link_state("a", up=False)
    network.send_from("a", make_packet("a", "b"))
    env.run()
    assert received == []
    assert network.link_stats("a").packets_dropped_down == 1


def test_partition_blocks_cross_group_traffic():
    env = Environment()
    network, received = make_network(env)
    network.partition(["a", "b"], ["c"])
    assert network.switch.partitioned

    network.send_from("a", make_packet("a", "b"))  # same group: flows
    network.send_from("a", make_packet("a", "c"))  # crosses: dropped
    env.run()
    assert [name for name, _ in received] == ["b"]
    assert network.switch.stats.packets_dropped_partition == 1

    network.heal_partition()
    assert not network.switch.partitioned
    network.send_from("a", make_packet("a", "c"))
    env.run()
    assert [name for name, _ in received] == ["b", "c"]


def test_partition_unlisted_nodes_default_to_group_zero():
    env = Environment()
    network, received = make_network(env)
    # 'a' is not listed: it lands in group 0 alongside its peers there.
    network.partition(["b"], ["c"])
    network.send_from("a", make_packet("a", "b"))
    network.send_from("c", make_packet("c", "b"))
    env.run()
    assert [name for name, _ in received] == ["b"]


def test_partition_requires_two_groups():
    env = Environment()
    network, _ = make_network(env)
    with pytest.raises(ValueError):
        network.partition(["a", "b"])


def test_link_set_state_both_directions():
    env = Environment()
    arrivals = []
    link = Link(env, "a", "b", bandwidth_bps=1e9, propagation_delay=0.0)
    link.attach("a", lambda p: arrivals.append("a"))
    link.attach("b", lambda p: arrivals.append("b"))
    link.set_state(False)
    assert not link.up
    link.send("a", make_packet("a", "b", payload_bytes=992))
    link.send("b", make_packet("b", "a", payload_bytes=992))
    env.run()
    assert arrivals == []
    assert link.stats("a").packets_dropped_down == 1
    assert link.stats("b").packets_dropped_down == 1
    link.set_state(True)
    assert link.up
    link.send("a", make_packet("a", "b", payload_bytes=992))
    env.run()
    assert arrivals == ["b"]
