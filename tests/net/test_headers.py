"""Tests for header types and the header stack."""

import pytest

from repro.net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    UDPHeader,
    header_class,
)


def standard_stack():
    return HeaderStack(
        [EthernetHeader(), IPv4Header(src_ip="10.0.0.1", dst_ip="10.0.0.2"), UDPHeader()]
    )


def test_header_sizes():
    assert EthernetHeader().size_bytes == 14
    assert IPv4Header().size_bytes == 20
    assert UDPHeader().size_bytes == 8
    assert LambdaHeader().size_bytes == 16


def test_stack_size_is_sum():
    stack = standard_stack()
    assert stack.size_bytes == 14 + 20 + 8


def test_stack_get_and_require():
    stack = standard_stack()
    assert stack.get("IPv4Header").dst_ip == "10.0.0.2"
    assert stack.get("LambdaHeader") is None
    with pytest.raises(KeyError):
        stack.require("LambdaHeader")


def test_stack_push_and_contains():
    stack = standard_stack()
    stack.push(LambdaHeader(wid=7))
    assert "LambdaHeader" in stack
    assert stack.require("LambdaHeader").wid == 7


def test_insert_after():
    stack = standard_stack()
    stack.insert_after("UDPHeader", LambdaHeader(wid=3))
    names = [header.name for header in stack]
    assert names == ["EthernetHeader", "IPv4Header", "UDPHeader", "LambdaHeader"]


def test_insert_after_missing_raises():
    stack = standard_stack()
    with pytest.raises(KeyError):
        stack.insert_after("TCPHeader", LambdaHeader())


def test_remove():
    stack = standard_stack()
    removed = stack.remove("UDPHeader")
    assert removed.name == "UDPHeader"
    assert "UDPHeader" not in stack
    with pytest.raises(KeyError):
        stack.remove("UDPHeader")


def test_copy_is_independent():
    stack = standard_stack()
    clone = stack.copy()
    clone.require("IPv4Header").dst_ip = "changed"
    assert stack.require("IPv4Header").dst_ip == "10.0.0.2"


def test_header_class_lookup():
    assert header_class("LambdaHeader") is LambdaHeader
    with pytest.raises(KeyError):
        header_class("NoSuchHeader")


def test_field_names():
    assert "wid" in LambdaHeader().field_names()
