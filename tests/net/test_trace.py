"""Tests for the packet tracer."""

import pytest

from repro.net import HeaderStack, LambdaHeader, Network, Packet, PacketTracer, UDPHeader
from repro.serverless import Testbed, closed_loop
from repro.sim import Environment
from repro.workloads import kv_client_spec


def test_tracer_records_rx_and_tx():
    env = Environment()
    network = Network(env)
    a = network.add_node("a")
    b = network.add_node("b")
    a.attach(lambda p: None)
    b.attach(lambda p: None)
    tracer = PacketTracer(env)
    tracer.attach_to_network(network)

    a.send(Packet("a", "b", HeaderStack([UDPHeader(),
                                         LambdaHeader(wid=3, request_id=9)]),
                  payload_bytes=50))
    env.run()
    assert tracer.summary() == {"a:tx": 1, "b:rx": 1}
    tx = tracer.filter(node="a", direction="tx")[0]
    assert tx.wid == 3 and tx.request_id == 9
    assert "Lambda" in tx.headers
    assert "us" in tx.format()


def test_tracer_flow_follows_request_through_testbed():
    """Trace a kv request: gateway -> NIC -> memcached -> NIC -> gateway."""
    tb = Testbed(seed=51, n_workers=1)
    tb.add_lambda_nic_backend()
    tracer = PacketTracer(tb.env)

    def scenario(env):
        yield tb.manager.deploy(kv_client_spec(), "lambda-nic")
        tracer.attach_to_network(tb.network)  # after all nodes exist
        yield closed_loop(tb.env, tb.gateway, "kv_client", n_requests=1)

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)

    records = tracer.records
    nodes_in_order = [record.node for record in records
                      if record.direction == "rx"]
    # The request visited the NIC, then memcached, then the NIC again,
    # and the response came back to the gateway (m1).
    nic_name = tb.nics[0].name
    assert nodes_in_order[0] == nic_name
    assert "memcached" in nodes_in_order
    assert nodes_in_order[-1] == "m1"
    # The whole flow shares the gateway's request id end to end.
    request_id = records[0].request_id
    flow = tracer.flow(request_id)
    assert len(flow) >= 4


def test_tracer_bounded():
    env = Environment()
    network = Network(env)
    a = network.add_node("a")
    b = network.add_node("b")
    b.attach(lambda p: None)
    a.attach(lambda p: None)
    tracer = PacketTracer(env, max_records=3)
    tracer.attach_to(a)
    for index in range(10):
        a.send(Packet("a", "b", HeaderStack([UDPHeader()]), payload_bytes=8))
    env.run()
    assert len(tracer.records) == 3
    assert tracer.dropped_records == 7


def test_tracer_filter_predicate():
    env = Environment()
    network = Network(env)
    a = network.add_node("a")
    b = network.add_node("b")
    b.attach(lambda p: None)
    a.attach(lambda p: None)
    tracer = PacketTracer(env)
    tracer.attach_to(a)
    a.send(Packet("a", "b", HeaderStack([UDPHeader()]), payload_bytes=10))
    a.send(Packet("a", "b", HeaderStack([UDPHeader()]), payload_bytes=2000))
    env.run()
    big = tracer.filter(predicate=lambda record: record.size_bytes > 1000)
    assert len(big) == 1
