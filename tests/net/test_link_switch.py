"""Tests for links, the switch, and the network topology builder."""

import pytest

from repro.sim import Environment, RngRegistry
from repro.net import HeaderStack, Link, Network, Packet, UDPHeader


def make_packet(src, dst, payload_bytes=100):
    return Packet(src, dst, HeaderStack([UDPHeader()]), payload_bytes=payload_bytes)


def test_link_serialization_plus_propagation():
    env = Environment()
    received = []
    link = Link(env, "a", "b", bandwidth_bps=1e9, propagation_delay=1e-6)
    link.attach("a", lambda p: None)
    link.attach("b", lambda p: received.append((p, env.now)))

    packet = make_packet("a", "b", payload_bytes=992)  # 1000 B total
    link.send("a", packet)
    env.run()
    # 1000 B at 1 Gb/s = 8 us serialization + 1 us propagation.
    assert received[0][1] == pytest.approx(9e-6)


def test_link_back_to_back_packets_queue():
    env = Environment()
    times = []
    link = Link(env, "a", "b", bandwidth_bps=1e9, propagation_delay=0.0)
    link.attach("b", lambda p: times.append(env.now))
    for _ in range(3):
        link.send("a", make_packet("a", "b", payload_bytes=992))
    env.run()
    assert times == pytest.approx([8e-6, 16e-6, 24e-6])


def test_link_is_full_duplex():
    env = Environment()
    arrivals = []
    link = Link(env, "a", "b", bandwidth_bps=1e9, propagation_delay=0.0)
    link.attach("a", lambda p: arrivals.append(("a", env.now)))
    link.attach("b", lambda p: arrivals.append(("b", env.now)))
    link.send("a", make_packet("a", "b", payload_bytes=992))
    link.send("b", make_packet("b", "a", payload_bytes=992))
    env.run()
    # Both directions complete at the same time: no shared serializer.
    assert arrivals[0][1] == arrivals[1][1] == pytest.approx(8e-6)


def test_link_drop_probability():
    env = Environment()
    rng = RngRegistry(seed=1).stream("link")
    received = []
    link = Link(
        env, "a", "b", bandwidth_bps=1e9, propagation_delay=0.0,
        drop_probability=0.5, rng=rng,
    )
    link.attach("b", lambda p: received.append(p))
    for _ in range(200):
        link.send("a", make_packet("a", "b"))
    env.run()
    assert 60 < len(received) < 140
    assert link.stats("a").packets_dropped == 200 - len(received)


def test_link_argument_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, "a", "b", bandwidth_bps=0)
    with pytest.raises(ValueError):
        Link(env, "a", "b", propagation_delay=-1)
    with pytest.raises(ValueError):
        Link(env, "a", "b", drop_probability=0.5)  # rng required
    link = Link(env, "a", "b")
    with pytest.raises(ValueError):
        link.send("c", make_packet("c", "b"))
    with pytest.raises(ValueError):
        link.attach("c", lambda p: None)


def test_network_end_to_end_delivery():
    env = Environment()
    network = Network(env)
    received = []
    a = network.add_node("m1")
    b = network.add_node("m2")
    a.attach(lambda p: None)
    b.attach(lambda p: received.append((p.payload, env.now)))

    a.send(Packet("m1", "m2", HeaderStack([UDPHeader()]), payload="hello",
                  payload_bytes=50))
    env.run()
    assert len(received) == 1
    assert received[0][0] == "hello"
    assert received[0][1] > 0


def test_network_latency_components():
    env = Environment()
    network = Network(
        env, bandwidth_bps=10e9, propagation_delay=1e-6, switching_latency=2e-6
    )
    arrival = []
    a = network.add_node("m1")
    b = network.add_node("m2")
    b.attach(lambda p: arrival.append(env.now))
    packet = Packet("m1", "m2", HeaderStack([UDPHeader()]), payload_bytes=1242)
    # 1250 B at 10 Gb/s = 1 us serialization per hop; two hops; two
    # propagations of 1 us; one switching latency of 2 us.
    a.send(packet)
    env.run()
    assert arrival[0] == pytest.approx(1e-6 + 1e-6 + 2e-6 + 1e-6 + 1e-6)


def test_network_duplicate_node_rejected():
    env = Environment()
    network = Network(env)
    network.add_node("m1")
    with pytest.raises(ValueError):
        network.add_node("m1")


def test_network_unknown_destination_dropped():
    env = Environment()
    network = Network(env)
    a = network.add_node("m1")
    a.attach(lambda p: None)
    a.send(make_packet("m1", "ghost"))
    env.run()
    assert network.switch.stats.packets_dropped_unknown == 1


def test_packet_trace_stamps():
    env = Environment()
    network = Network(env)
    a = network.add_node("m1")
    b = network.add_node("m2")
    b.attach(lambda p: None)
    packet = make_packet("m1", "m2")
    a.send(packet)
    env.run()
    locations = [location for location, _ in packet.trace]
    assert locations[0] == "m1"
    assert "switch" in locations


def test_packet_size_accounting():
    packet = make_packet("a", "b", payload_bytes=100)
    assert packet.size_bytes == 108
    assert packet.size_bits == 864
    with pytest.raises(ValueError):
        Packet("a", "b", payload_bytes=-1)


def test_packet_copy_fresh_id():
    packet = make_packet("a", "b")
    clone = packet.copy()
    assert clone.packet_id != packet.packet_id
    assert clone.size_bytes == packet.size_bytes


def test_node_counters():
    env = Environment()
    network = Network(env)
    a = network.add_node("m1")
    b = network.add_node("m2")
    b.attach(lambda p: None)
    a.send(make_packet("m1", "m2"))
    env.run()
    assert a.tx_packets == 1
    assert b.rx_packets == 1
