"""Benchmark: the fault storm — availability, failover, determinism.

Runs the scripted fault storm (NIC death, island loss, full-fleet loss
with degradation to bare-metal, restoration, a link flap, and a Raft
leader crash) under open-loop load, and asserts the robustness SLOs:

* availability stays >= 99% for every workload *through* the storm;
* every fault is answered by a bounded-time failover action;
* two same-seed runs produce identical fault traces and failover
  event sequences (full determinism).
"""

from repro.experiments import fault_recovery

#: The storm's service-level objectives.
MIN_AVAILABILITY = 0.99
MAX_TIME_TO_FAILOVER = 2.0  # seconds, detection -> route installed


def run_storm():
    return fault_recovery.run_storm(seed=42, rate_rps=20.0)


def test_fault_recovery(benchmark):
    storm = benchmark.pedantic(run_storm, rounds=1, iterations=1)

    # -- availability through the storm ---------------------------------
    for name, result in storm["during"].items():
        avail = fault_recovery.availability(result)
        benchmark.extra_info[f"availability_{name}"] = round(avail, 4)
        assert result.completed > 0
        assert avail >= MIN_AVAILABILITY, \
            f"{name}: availability {avail:.4f} < {MIN_AVAILABILITY}"

    # -- the storm actually exercised every recovery path ----------------
    actions = {action for _, action, _ in storm["trace"]}
    assert {"kill_nic", "kill_island", "restore_nic", "link_down",
            "crash_raft"} <= actions
    kinds = [event.kind for event in storm["events"]]
    assert "shrink" in kinds    # one NIC died, survivors kept serving
    assert "degrade" in kinds   # whole fleet died -> bare-metal standby
    assert "restore" in kinds   # fleet returned -> home routes restored

    # -- every failover completed within the SLO -------------------------
    assert storm["events"], "no failover actions recorded"
    worst = max(event.duration for event in storm["events"])
    benchmark.extra_info["worst_failover_s"] = round(worst, 4)
    benchmark.extra_info["mean_time_to_failover_s"] = round(storm["mttf"], 4)
    assert worst <= MAX_TIME_TO_FAILOVER

    # -- service recovers: post-storm tail is clean ----------------------
    for name, result in storm["after"].items():
        assert fault_recovery.availability(result) == 1.0
        during_p99 = storm["during"][name].percentile(99)
        assert result.percentile(99) <= during_p99 * 1.5 + 1e-3


def test_fault_storm_is_deterministic():
    first = run_storm()
    second = run_storm()
    assert first["trace"] == second["trace"]
    assert [(e.at, e.workload, e.kind, e.completed_at)
            for e in first["events"]] == \
        [(e.at, e.workload, e.kind, e.completed_at)
         for e in second["events"]]
    for name in first["during"]:
        assert first["during"][name].latencies == \
            second["during"][name].latencies
