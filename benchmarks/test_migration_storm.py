"""Benchmark: the migration storm — the Issue 6 robustness contract.

Runs scripted live migrations (NIC -> host, host -> NIC, NIC -> NIC)
overlapped with a fault storm (NIC kills, island loss, full-fleet
outage with forced migrations, link flap, Raft leader crash) under
open-loop load, and asserts:

* no request is lost or duplicated: exactly-once observable responses
  through every drain, cutover, and rollback;
* availability stays >= 99% for every workload through the storm;
* a failed migration rolls back to a serving source;
* p99 stays bounded while draining (held requests pay a bounded bump);
* two same-seed runs are identical down to exact latencies.
"""

from repro.experiments import migration_storm

MIN_AVAILABILITY = 0.99
#: Held requests wait at most drain_timeout + one service time; the
#: storm also rides through 250 ms gateway retry timeouts, so p99 over
#: the whole storm stays within a small multiple of the retry budget.
MAX_P99_DURING = 2.0  # seconds


def run_storm():
    return migration_storm.run_storm(seed=42, rate_rps=20.0)


def test_migration_storm(benchmark):
    storm = benchmark.pedantic(run_storm, rounds=1, iterations=1)
    tb = storm["testbed"]

    # -- exactly-once: nothing lost, nothing duplicated ------------------
    for name, result in storm["during"].items():
        issued = result.completed + result.failures
        assert issued > 0
        assert result.completed == len(result.latencies)
    assert tb.gateway.duplicate_responses_total.total == \
        tb.gateway.mirrored_requests_total.total  # dupes never delivered
    for name in storm["during"]:
        assert not tb.gateway.held(name)
        assert tb.gateway.inflight(name) == 0

    # -- availability through the storm ----------------------------------
    for name, result in storm["during"].items():
        avail = migration_storm.availability(result)
        benchmark.extra_info[f"availability_{name}"] = round(avail, 4)
        assert avail >= MIN_AVAILABILITY, \
            f"{name}: availability {avail:.4f} < {MIN_AVAILABILITY}"

    # -- the storm exercised every migration path ------------------------
    migrations = storm["migrations"]
    outcomes = {(m.source_kind, m.target_kind, m.outcome)
                for m in migrations}
    assert ("lambda-nic", "bare-metal", "completed") in outcomes
    assert ("bare-metal", "lambda-nic", "completed") in outcomes
    assert ("lambda-nic", "lambda-nic", "completed") in outcomes  # NIC->NIC
    rolled = [m for m in migrations if m.outcome == "rolled-back"]
    assert rolled, "no migration was forced to roll back"
    # Rollback left the source serving: the workload kept its route
    # and ended the storm back on its home substrate.
    for m in rolled:
        assert tb.gateway.route_for(m.workload).targets
    forced = [m for m in migrations if m.forced]
    assert any(m.reason == "fault" for m in forced)     # degrade
    assert any(m.reason == "restore" for m in forced)   # restore home
    assert any(m.state_transferred for m in migrations)  # state shipped
    benchmark.extra_info["migrations"] = len(migrations)
    benchmark.extra_info["rolled_back"] = len(rolled)

    # -- bounded p99 during draining -------------------------------------
    for name, result in storm["during"].items():
        p99 = result.percentile(99)
        benchmark.extra_info[f"p99_during_{name}"] = round(p99, 4)
        assert p99 <= MAX_P99_DURING
    held = tb.gateway.held_requests_total.total
    benchmark.extra_info["held_requests"] = int(held)
    assert held > 0  # the queue drain actually held arrivals

    # -- everything ends home and healthy --------------------------------
    for name, result in storm["after"].items():
        assert migration_storm.availability(result) == 1.0
        assert tb.manager.record(name).backend_kind == "lambda-nic"
    assert tb.manager.degraded_workloads.value() == 0


def test_migration_storm_is_deterministic():
    first = run_storm()
    second = run_storm()
    assert first["trace"] == second["trace"]
    assert [(m.workload, m.started_at, m.outcome, m.state_bytes,
             [(t, s) for t, s in m.history])
            for m in first["migrations"]] == \
        [(m.workload, m.started_at, m.outcome, m.state_bytes,
          [(t, s) for t, s in m.history])
         for m in second["migrations"]]
    for name in first["during"]:
        assert first["during"][name].latencies == \
            second["during"][name].latencies
