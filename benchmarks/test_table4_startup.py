"""Benchmark: regenerate Table 4 (workload size and startup time)."""

from repro.experiments import table4_startup
from repro.experiments.calibration import PAPER_TABLE4


def test_table4_startup(benchmark, config):
    report = benchmark.pedantic(
        table4_startup.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    for backend in ["lambda-nic", "bare-metal", "container"]:
        measured = report.cells[backend].extra
        paper = PAPER_TABLE4[backend]
        benchmark.extra_info[f"{backend}_startup_s"] = round(
            measured["startup_s"], 1
        )
        # Within 25% of the paper on both columns.
        assert abs(measured["size_mib"] - paper["size_mib"]) / \
            paper["size_mib"] < 0.25
        assert abs(measured["startup_s"] - paper["startup_s"]) / \
            paper["startup_s"] < 0.25

    # Ordering: bare-metal boots fastest; containers slowest; λ-NIC
    # pays firmware compilation but stays ~2x under container overhead.
    nic = report.cells["lambda-nic"].extra["startup_s"]
    bare = report.cells["bare-metal"].extra["startup_s"]
    container = report.cells["container"].extra["startup_s"]
    assert bare < nic < container
    assert (nic - bare) < (container - bare)
