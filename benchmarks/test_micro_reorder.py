"""Benchmark: footnote-3 reordering microbenchmark."""

from repro.experiments import micro_reorder
from repro.experiments.calibration import PAPER_REORDER_INSTRUCTIONS


def test_micro_reorder(benchmark, config):
    report = benchmark.pedantic(
        micro_reorder.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    instructions = report.rows[0][1]
    fraction = float(report.rows[2][1])
    benchmark.extra_info["reorder_instructions"] = instructions
    benchmark.extra_info["fraction_pct"] = fraction
    assert instructions == PAPER_REORDER_INSTRUCTIONS
    assert 0.5 < fraction < 3.0  # paper: 1.3%
