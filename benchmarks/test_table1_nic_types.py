"""Benchmark: print Table 1 and verify the modelled NIC's profile."""

from repro.experiments import table1_nic_types


def test_table1_nic_types(benchmark, config):
    report = benchmark.pedantic(
        table1_nic_types.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    profile = table1_nic_types.modeled_asic_profile()
    benchmark.extra_info.update(profile)
    # The modelled ASIC NIC matches the paper's testbed description:
    # 56 cores x 8 threads at 633 MHz (§6.1.2).
    assert profile["cores"] == 56
    assert profile["threads"] == 56 * 8
    assert profile["clock_mhz"] == 633.0
