"""Ablations of λ-NIC design choices (DESIGN.md §5).

Not paper figures — these quantify the design decisions the paper
argues for: the compiler optimisations' effect on executed latency,
the NIC scheduling policy, and the RDMA segment size.
"""

import pytest

from repro.hw import ShortestQueueScheduler
from repro.serverless import Testbed, closed_loop
from repro.workloads import image_transformer_spec, web_server_spec


def run_web(optimize=True, scheduler=None, n_requests=150, concurrency=1,
            seed=11):
    nic_kwargs = {}
    if scheduler is not None:
        nic_kwargs["scheduler"] = scheduler
    tb = Testbed(seed=seed, n_workers=1, nic_kwargs=nic_kwargs)
    tb.add_lambda_nic_backend(optimize=optimize)
    spec = web_server_spec()

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                   n_requests=n_requests,
                                   concurrency=concurrency)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    return process.value


def run_image(segment_bytes, seed=12):
    tb = Testbed(seed=seed, n_workers=1,
                 gateway_kwargs={"rdma_segment_bytes": segment_bytes})
    tb.add_lambda_nic_backend()
    spec = image_transformer_spec(width=128, height=128)

    def scenario(env):
        yield tb.manager.deploy(spec, "lambda-nic")
        result = yield closed_loop(
            tb.env, tb.gateway, spec.name, n_requests=6,
            payload_bytes=spec.request_bytes,
        )
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    return process.value


def test_ablation_compiler_optimizations(benchmark, config):
    """Memory stratification & co must cut executed latency, not just
    code size."""

    def run_both():
        return run_web(optimize=True), run_web(optimize=False)

    optimized, naive = benchmark.pedantic(run_both, rounds=1, iterations=1)
    speedup = naive.mean_latency / optimized.mean_latency
    print(f"\nablation optimizer: optimized {optimized.mean_latency*1e6:.2f}us"
          f" vs naive {naive.mean_latency*1e6:.2f}us ({speedup:.2f}x)")
    benchmark.extra_info["optimizer_latency_speedup"] = round(speedup, 3)
    assert optimized.mean_latency < naive.mean_latency
    assert speedup > 1.02  # measurable, single-digit-percent-or-more win


def test_ablation_scheduler_policy(benchmark, config):
    """Shortest-queue dispatch should not beat uniform spray by much:
    the thread pool is so deep that random spray suffices (paper D1)."""

    def run_both():
        uniform = run_web(concurrency=100, n_requests=400)
        sq = run_web(concurrency=100, n_requests=400,
                     scheduler=ShortestQueueScheduler())
        return uniform, sq

    uniform, sq = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nablation scheduler: uniform p99 {uniform.percentile(99)*1e6:.1f}us"
          f" vs shortest-queue p99 {sq.percentile(99)*1e6:.1f}us")
    benchmark.extra_info["uniform_p99_us"] = round(uniform.percentile(99) * 1e6, 1)
    benchmark.extra_info["sq_p99_us"] = round(sq.percentile(99) * 1e6, 1)
    # Both serve everything; shortest-queue may be equal or mildly better.
    assert uniform.completed == sq.completed == 400
    assert sq.percentile(99) <= uniform.percentile(99) * 1.5


def test_ablation_rdma_segment_size(benchmark, config):
    """Smaller RDMA segments add per-packet overhead on the image path."""

    def run_sweep():
        return {size: run_image(size) for size in [1024, 4096, 16384]}

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    for size, result in results.items():
        print(f"ablation rdma segment {size:>6d}B: "
              f"mean {result.mean_latency*1e3:.3f} ms")
        benchmark.extra_info[f"seg{size}_ms"] = round(
            result.mean_latency * 1e3, 3
        )
    assert results[1024].mean_latency > results[4096].mean_latency
    assert results[4096].mean_latency >= results[16384].mean_latency * 0.95


def test_ablation_nic_hosted_gateway(benchmark, config):
    """Paper §7: running the gateway itself on a SmartNIC lifts the
    proxy cap that bounds λ-NIC's end-to-end throughput (Table 2)."""

    def run_gateway(proxy_seconds, proxy_concurrency):
        tb = Testbed(
            seed=17, n_workers=1,
            gateway_kwargs={"proxy_seconds": proxy_seconds,
                            "proxy_concurrency": proxy_concurrency},
        )
        tb.add_lambda_nic_backend()
        spec = web_server_spec()

        def scenario(env):
            yield tb.manager.deploy(spec, "lambda-nic")
            result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                       n_requests=600, concurrency=56)
            return result

        process = tb.env.process(scenario(tb.env))
        tb.run(until=process)
        return process.value

    def run_both():
        software = run_gateway(17.2e-6, 1)       # Go proxy on the master
        nic_gateway = run_gateway(1.5e-6, 16)    # gateway as NIC lambdas
        return software, nic_gateway

    software, nic_gateway = benchmark.pedantic(run_both, rounds=1,
                                               iterations=1)
    lift = nic_gateway.throughput_rps / software.throughput_rps
    print(f"\nablation gateway: software {software.throughput_rps:,.0f}/s "
          f"vs NIC-hosted {nic_gateway.throughput_rps:,.0f}/s ({lift:.1f}x)")
    benchmark.extra_info["software_rps"] = round(software.throughput_rps)
    benchmark.extra_info["nic_gateway_rps"] = round(nic_gateway.throughput_rps)
    assert lift > 3.0


def test_ablation_container_host_networking(benchmark, config):
    """Decomposed overlay: how much of the container penalty is the
    network path (vs the watchdog/proxy)? Host networking mode removes
    veth/bridge/NAT/encap and should shave ~0.5 ms, still leaving
    containers orders of magnitude behind λ-NIC."""
    from repro.host import ContainerRuntime, OverlayPath, host_networking_path
    from repro.host.server import HostServer

    def run_container(overlay):
        tb = Testbed(seed=19, n_workers=1)
        servers = tb._make_host_servers("ctr")
        tb._host_servers["container"] = servers
        from repro.serverless.backends import ContainerBackend

        class CustomContainerBackend(ContainerBackend):
            def runtime(self):
                return ContainerRuntime(overlay=overlay)

        backend = CustomContainerBackend(tb.env, servers,
                                         rng=tb.rng.stream("ctr"))
        tb.manager.add_backend(backend)
        spec = web_server_spec()

        def scenario(env):
            yield tb.manager.deploy(spec, "container")
            result = yield closed_loop(tb.env, tb.gateway, spec.name,
                                       n_requests=60)
            return result

        process = tb.env.process(scenario(tb.env))
        tb.run(until=process)
        return process.value

    def run_both():
        full = run_container(OverlayPath())
        host_net = run_container(host_networking_path())
        return full, host_net

    full, host_net = benchmark.pedantic(run_both, rounds=1, iterations=1)
    saved = (full.mean_latency - host_net.mean_latency) * 1e3
    print(f"\nablation overlay: full {full.mean_latency*1e3:.2f} ms vs "
          f"host-networking {host_net.mean_latency*1e3:.2f} ms "
          f"(saves {saved:.2f} ms/request)")
    benchmark.extra_info["overlay_saving_ms"] = round(saved, 3)
    assert host_net.mean_latency < full.mean_latency
    # Even stripped, the container path stays in the milliseconds.
    assert host_net.mean_latency > 1e-3
