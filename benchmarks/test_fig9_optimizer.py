"""Benchmark: regenerate Figure 9 (optimizer effectiveness)."""

from repro.experiments import fig9_optimizer
from repro.experiments.calibration import PAPER_FIG9


def test_fig9_optimizer(benchmark, config):
    report = benchmark.pedantic(
        fig9_optimizer.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    firmware = fig9_optimizer.compile_fig9()
    stages = firmware.report.rows()
    benchmark.extra_info["baseline_instructions"] = stages[0][1]
    benchmark.extra_info["final_instructions"] = stages[-1][1]
    benchmark.extra_info["total_reduction_pct"] = round(stages[-1][2], 2)

    # Monotonically decreasing instruction counts.
    counts = [count for _, count, _ in stages]
    assert counts == sorted(counts, reverse=True)

    # Within 5% of the paper's counts and 1.5pp of each cumulative
    # reduction at every stage.
    for (stage, count, reduction), (p_stage, p_count, p_red) in zip(
        stages, PAPER_FIG9,
    ):
        assert stage == p_stage
        assert abs(count - p_count) / p_count < 0.05
        assert abs(reduction - p_red) < 1.5
