"""Benchmark gates for the sharded simulation kernel.

Two regression floors guard the Issue-9 scale-out:

1. **Pooled-kernel floor** — event recycling must keep paying for
   itself: the kernel with the pool on must stay within a small noise
   margin of the pool-off kernel on the full stack, beat it on pure
   timeout churn, and actually recycle (a refcount-guard regression
   that silently disabled reuse would otherwise pass on wall-clock
   noise alone).
2. **Scaling efficiency** — a 4-shard sweep across a process pool
   must reach ``MIN_PARALLEL_EFFICIENCY`` (0.7). Parallel speedup
   needs parallel hardware, so the gate is core-aware: on a
   single-core box it degrades to bounding pool overhead instead.

The measured numbers land in ``BENCH_scale_sweep.json`` at the repo
root (CI archives it as an artifact).
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.experiments import scale_sweep
from repro.experiments.calibration import ExperimentConfig
from repro.sim import Environment

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scale_sweep.json"

#: Pooled may not fall below this fraction of unpooled on the full
#: stack (the probe costs a few percent; recycling wins it back —
#: anything below this is a real regression, not noise).
MIN_POOLED_MACRO_RATIO = 0.85
#: On pure timeout churn (the pool's home turf) pooled must not lose.
MIN_POOLED_CHURN_RATIO = 0.95
#: Floor on how much of the churn the pool actually recycles.
MIN_RECYCLE_FRACTION = 0.5


def _churn_events_per_s(event_pool: bool, n: int = 200_000) -> float:
    env = Environment(event_pool=event_pool)

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    started = time.perf_counter()
    env.run()
    return env._eid / (time.perf_counter() - started)


def test_pooled_kernel_floor(benchmark, config):
    def measure():
        _churn_events_per_s(True, n=20_000)  # warm-up
        pooled = max(_churn_events_per_s(True) for _ in range(3))
        unpooled = max(_churn_events_per_s(False) for _ in range(3))
        return pooled, unpooled

    pooled, unpooled = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = pooled / unpooled
    benchmark.extra_info["pooled_events_per_s"] = round(pooled)
    benchmark.extra_info["unpooled_events_per_s"] = round(unpooled)
    benchmark.extra_info["pooled_churn_ratio"] = round(ratio, 3)

    # The pool must actually engage, not just not-crash.
    env = Environment()

    def proc(env):
        for _ in range(10_000):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    recycle_fraction = env.pool.reused / 10_000
    benchmark.extra_info["recycle_fraction"] = round(recycle_fraction, 3)

    assert ratio >= MIN_POOLED_CHURN_RATIO, (
        f"pooled kernel only {ratio:.2f}x of unpooled on timeout churn "
        f"(floor: {MIN_POOLED_CHURN_RATIO})"
    )
    assert recycle_fraction >= MIN_RECYCLE_FRACTION, (
        f"pool recycled only {recycle_fraction:.0%} of churned timeouts"
    )


def test_single_shard_events_rate_with_pool(benchmark):
    """Full-stack floor: one shard's events/s with the pool on must
    stay within noise of the pool's own A/B baseline."""
    config = ExperimentConfig(scale_rate_rps=2000.0)

    def one_shard() -> float:
        result = scale_sweep.run_monolithic(config, total_requests=600,
                                            n_workers=1)
        return result["events"] / result["replay_wall_seconds"]

    rate = benchmark.pedantic(lambda: max(one_shard() for _ in range(2)),
                              rounds=1, iterations=1)
    benchmark.extra_info["single_shard_events_per_s"] = round(rate)
    # Absolute sanity floor only (machine-independent gates live in the
    # churn ratio above): the shard must simulate, not crawl.
    assert rate > 5_000


def test_scaling_efficiency_gate(benchmark, config):
    cores = os.cpu_count() or 1
    sweep_config = ExperimentConfig(scale_rate_rps=2000.0)
    requests = 1200

    def run_pooled():
        return scale_sweep.run_sweep(sweep_config, n_shards=4,
                                     total_requests=requests,
                                     inline=False)

    sweep = benchmark.pedantic(run_pooled, rounds=1, iterations=1)
    timing = sweep["timing"]
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["processes"] = timing["processes"]
    benchmark.extra_info["parallel_efficiency"] = round(
        timing["parallel_efficiency"], 3)
    benchmark.extra_info["requests_per_second"] = round(
        timing["requests_per_second"])

    payload = {
        "cores": cores,
        "processes": timing["processes"],
        "parallel_efficiency": round(timing["parallel_efficiency"], 4),
        "speedup": round(timing["speedup"], 4),
        "requests": requests,
        "requests_per_second": round(timing["requests_per_second"], 2),
        "completed": sweep["deterministic"]["totals"]["completed"],
        "events": sweep["deterministic"]["totals"]["events"],
        "min_parallel_efficiency": scale_sweep.MIN_PARALLEL_EFFICIENCY,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")

    # Whatever the hardware, the sweep must finish and cover the plan.
    assert sweep["deterministic"]["totals"]["completed"] > 0
    assert sweep["deterministic"]["totals"]["failures"] == 0

    if cores < 2:
        # One core cannot exhibit parallel speedup; bound the pool's
        # overhead instead so sharding never *costs* more than it is
        # architecturally worth on this box.
        inline = scale_sweep.run_sweep(sweep_config, n_shards=4,
                                       total_requests=requests,
                                       inline=True)
        overhead = (timing["elapsed_seconds"]
                    / max(inline["timing"]["elapsed_seconds"], 1e-9))
        benchmark.extra_info["single_core_overhead"] = round(overhead, 2)
        assert overhead < 3.0, (
            f"process-pool overhead {overhead:.2f}x inline on one core"
        )
        pytest.skip("single-core machine: parallel-efficiency gate "
                    "needs >= 2 cores (pool overhead bounded instead)")

    efficiency = timing["parallel_efficiency"]
    assert efficiency >= scale_sweep.MIN_PARALLEL_EFFICIENCY, (
        f"parallel efficiency {efficiency:.2f} at 4 shards over "
        f"{timing['processes']} processes "
        f"(gate: {scale_sweep.MIN_PARALLEL_EFFICIENCY})"
    )
