"""Benchmark: simulator throughput and the fast-path regression gate.

Unlike the table/figure benchmarks this one guards the simulator's own
wall-clock performance: the pre-decoded execution engine must stay at
least ``MIN_FASTPATH_SPEEDUP`` (3x) faster than the reference
interpreter on the web-server workload, the source-codegen JIT at
least ``MIN_JIT_SPEEDUP`` (2x) faster than the fast path, and memoized
replay must beat straight fast-path execution. The measured rates are
written to ``BENCH_sim_perf.json`` at the repository root so CI can
archive them and successive runs can be compared.
"""

import json
import platform
from pathlib import Path

from repro.experiments import perf

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sim_perf.json"


def test_sim_perf(benchmark, config):
    metrics = benchmark.pedantic(
        perf.collect, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(perf.run(config).format())

    for key in ("reference_exec_per_s", "fastpath_exec_per_s",
                "fastpath_speedup", "jit_exec_per_s", "jit_speedup",
                "memo_replay_per_s", "sim_events_per_s"):
        benchmark.extra_info[key] = round(metrics[key], 2)

    payload = dict(metrics)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")

    # The regression gates: each compiled tier must keep paying for
    # itself over the tier below.
    assert metrics["fastpath_speedup"] >= perf.MIN_FASTPATH_SPEEDUP, (
        f"fast path only {metrics['fastpath_speedup']:.2f}x over the "
        f"reference interpreter (gate: {perf.MIN_FASTPATH_SPEEDUP}x)"
    )
    assert metrics["jit_speedup"] >= perf.MIN_JIT_SPEEDUP, (
        f"JIT only {metrics['jit_speedup']:.2f}x over the fast path "
        f"(gate: {perf.MIN_JIT_SPEEDUP}x)"
    )
    # The gate must measure real JIT execution, not its fallback tier.
    assert metrics["jit_fallbacks"] == 0
    # Replaying a memoized pure execution must beat re-executing it.
    assert metrics["memo_replay_per_s"] > metrics["fastpath_exec_per_s"]
    assert metrics["memo_hit_rate"] > 0.9
    # The end-to-end loop actually simulated something.
    assert metrics["sim_events_per_s"] > 0
    assert metrics["sim_requests_per_s"] > 0
