"""Benchmark: regenerate Figure 8 (latency under lambda contention)."""

from repro.experiments import fig8_contention


def test_fig8_contention(benchmark, config):
    report = benchmark.pedantic(
        fig8_contention.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    nic = report.cells["lambda-nic-56"]
    bare56 = report.cells["bare-metal-56"]
    bare1 = report.cells["bare-metal-1"]

    factor56 = bare56.mean / nic.mean
    factor1 = bare1.mean / nic.mean
    benchmark.extra_info["bare56_vs_nic"] = round(factor56, 1)
    benchmark.extra_info["bare1_vs_nic"] = round(factor1, 1)

    # Paper: bare-metal 178x-330x worse under contention. We accept the
    # same order of magnitude.
    assert 80 < factor56 < 700
    assert 80 < factor1 < 700
    # λ-NIC is essentially unaffected by running 3 lambdas: its mean
    # stays in the tens of microseconds.
    assert nic.mean < 100e-6
    # Bare-metal context switching shows up as a heavy tail.
    assert bare56.p99 > 5 * nic.p99
