"""Shared configuration for the benchmark harness.

Each benchmark regenerates one paper table/figure, prints the
paper-vs-measured report, and records headline numbers in
``benchmark.extra_info`` so they land in pytest-benchmark's JSON.
"""

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def config():
    """Benchmark-scale experiment configuration.

    Sized between FAST (CI) and DEFAULT so the whole harness finishes
    in a couple of minutes while keeping the distributions smooth.
    """
    return ExperimentConfig(
        seed=42,
        latency_requests=120,
        image_latency_requests=10,
        throughput_requests=200,
        image_throughput_requests=12,
        contention_requests=300,
        contention_concurrency=4,
    )
