"""Benchmark: regenerate Table 3 (resource utilization)."""

from repro.experiments import table3_resources
from repro.experiments.calibration import PAPER_TABLE3


def test_table3_resources(benchmark, config):
    report = benchmark.pedantic(
        table3_resources.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    nic = report.cells["lambda-nic"].extra
    bare = report.cells["bare-metal"].extra
    container = report.cells["container"].extra

    benchmark.extra_info["nic_mem_mib"] = round(nic["nic_mem_mib"], 1)
    benchmark.extra_info["bare_cpu_pct"] = round(bare["host_cpu_pct"], 1)
    benchmark.extra_info["container_cpu_pct"] = round(
        container["host_cpu_pct"], 1
    )

    # λ-NIC leaves the host alone but consumes NIC memory (paper 63.2 MiB).
    assert nic["host_cpu_pct"] < 1.0
    assert nic["host_mem_mib"] == 0.0
    assert 30 < nic["nic_mem_mib"] < 90
    # Host backends consume host memory exactly per their runtimes.
    assert bare["host_mem_mib"] == 62.5
    assert container["host_mem_mib"] == 219.5
    assert bare["nic_mem_mib"] == container["nic_mem_mib"] == 0.0
    # Container burns more CPU than bare-metal (paper 13.7 vs 9.2 %).
    assert container["host_cpu_pct"] > bare["host_cpu_pct"] > 2.0
    assert container["host_cpu_pct"] < 25.0
