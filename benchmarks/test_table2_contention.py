"""Benchmark: regenerate Table 2 (throughput under contention)."""

from repro.experiments import fig8_contention
from repro.experiments.calibration import PAPER_TABLE2


def test_table2_contention_throughput(benchmark, config):
    report = benchmark.pedantic(
        fig8_contention.run_table2, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    nic = report.cells["lambda-nic-56"].throughput
    bare56 = report.cells["bare-metal-56"].throughput
    bare1 = report.cells["bare-metal-1"].throughput
    benchmark.extra_info["nic_rps"] = round(nic)
    benchmark.extra_info["bare56_rps"] = round(bare56)
    benchmark.extra_info["bare1_rps"] = round(bare1)

    # λ-NIC saturates the gateway near the paper's 58k req/s.
    assert abs(nic - PAPER_TABLE2["lambda-nic-56"]) / \
        PAPER_TABLE2["lambda-nic-56"] < 0.25
    # Bare-metal collapses to around a thousand req/s (paper: 950/520),
    # and extra threads cannot save it (GIL + context switches).
    assert bare56 < nic / 20
    assert 200 < bare1 < 4_000
    assert bare56 < 5_000
    assert bare1 <= bare56 * 1.5
