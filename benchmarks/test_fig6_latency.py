"""Benchmark: regenerate Figure 6 (latency ECDFs in isolation)."""

from repro.experiments import fig6_latency
from repro.experiments.calibration import (
    PAPER_BARE_METAL_LATENCY_IMPROVEMENT,
    PAPER_MAX_LATENCY_IMPROVEMENT,
)


def test_fig6_latency(benchmark, config):
    report = benchmark.pedantic(
        fig6_latency.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    cells = report.cells
    nic_web = cells[("web_server", "lambda-nic")]
    bare_web = cells[("web_server", "bare-metal")]
    container_web = cells[("web_server", "container")]
    nic_img = cells[("image_transformer", "lambda-nic")]
    bare_img = cells[("image_transformer", "bare-metal")]
    container_img = cells[("image_transformer", "container")]

    container_factor = container_web.mean / nic_web.mean
    bare_factor = bare_web.mean / nic_web.mean
    benchmark.extra_info["container_vs_nic_web"] = round(container_factor, 1)
    benchmark.extra_info["bare_vs_nic_web"] = round(bare_factor, 1)
    benchmark.extra_info["container_vs_nic_image"] = round(
        container_img.mean / nic_img.mean, 2
    )

    # Paper shape: ~880x container / ~30x bare-metal on web; 5x / 3x on
    # image; λ-NIC better at the tail too.
    assert container_factor > PAPER_MAX_LATENCY_IMPROVEMENT / 3
    assert bare_factor > PAPER_BARE_METAL_LATENCY_IMPROVEMENT / 2
    assert 2.0 < bare_img.mean / nic_img.mean < 6.0
    assert 3.0 < container_img.mean / nic_img.mean < 10.0
    assert bare_web.p99 / nic_web.p99 > 5.0
    # Ordering holds for every workload.
    for workload in ["web_server", "kv_client", "image_transformer"]:
        nic = cells[(workload, "lambda-nic")]
        bare = cells[(workload, "bare-metal")]
        container = cells[(workload, "container")]
        assert nic.mean < bare.mean < container.mean
