"""Benchmark: the overload storm — the Issue 8 robustness contract.

Drives bursty open-loop MMPP load at a small λ-NIC fleet in two phases
(saturation, then 2× saturation) with the full overload stack on —
deadline propagation, retry budgets, CoDel-style shedding, hedged
requests — and asserts:

* goodput at 2× saturation stays >= 80% of peak goodput (graceful
  degradation: overload costs throughput, not collapse);
* the p99 of *successful* requests stays under the 300 ms deadline —
  failures are fast and typed, successes are still interactive;
* no expired work is ever executed on the NPUs: the WCET-aware arrival
  check plus the provable-lateness dequeue check keep every charged
  cycle attributable to a request that could still meet its deadline;
* retries stay inside the retry budget (no retry amplification);
* two same-seed runs are identical down to exact latencies.
"""

from repro.experiments import overload_storm

#: Goodput at 2x saturation must stay within this fraction of peak.
MIN_GOODPUT_RATIO = 0.8
#: Successful requests must complete inside their deadline; p99 of
#: successes is therefore bounded by it.
MAX_SUCCESS_P99 = overload_storm.DEADLINE_SECONDS


def run_storm():
    return overload_storm.run_storm(seed=42)


def test_overload_storm(benchmark):
    storm = benchmark.pedantic(run_storm, rounds=1, iterations=1)
    peak, over = storm["peak"], storm["overload"]

    # -- goodput degrades gracefully, never collapses --------------------
    peak_goodput = sum(r.goodput_rps for r in peak["results"].values())
    over_goodput = sum(r.goodput_rps for r in over["results"].values())
    ratio = over_goodput / peak_goodput
    benchmark.extra_info["peak_goodput_rps"] = round(peak_goodput, 1)
    benchmark.extra_info["overload_goodput_rps"] = round(over_goodput, 1)
    benchmark.extra_info["goodput_ratio"] = round(ratio, 3)
    assert ratio >= MIN_GOODPUT_RATIO, \
        f"goodput collapsed under overload: {ratio:.3f} < {MIN_GOODPUT_RATIO}"

    # -- successes stay interactive in both phases -----------------------
    for phase, run in storm.items():
        for name, result in run["results"].items():
            assert result.completed > 0, f"{phase}/{name}: nothing completed"
            p99 = result.percentile(99)
            benchmark.extra_info[f"p99_{phase}_{name}"] = round(p99, 4)
            assert p99 <= MAX_SUCCESS_P99, \
                f"{phase}/{name}: success p99 {p99:.3f}s past the deadline"

    # -- zero expired executions -----------------------------------------
    for phase, run in storm.items():
        nic = run["nic"]
        # Nothing provably late is ever granted a thread, and nothing
        # granted a thread finishes late: the race window is closed by
        # the WCET check at dispatch.
        assert nic["expired_completions"] == 0, \
            f"{phase}: {nic['expired_completions']} expired executions"
        benchmark.extra_info[f"nic_arrival_drops_{phase}"] = \
            nic["expired_on_arrival"]

    # -- overload actually engaged every mechanism -----------------------
    assert over["nic"]["expired_on_arrival"] > 0   # WCET-aware drops fired
    assert over["gateway"]["hedges"] > 0           # hedging engaged
    failures = sum(r.failures for r in over["results"].values())
    typed = sum(r.shed + r.expired + r.budget_exhausted
                for r in over["results"].values())
    assert failures > 0 and typed > 0              # failures are typed
    benchmark.extra_info["overload_failures"] = failures

    # -- retry/hedge sends bounded by the budget -------------------------
    # ``gateway_retries_total`` counts timeout events (including
    # attempts the budget then denied); what the budget bounds is the
    # number of retry/hedge *sends* — its own ``withdrawn`` counter.
    config = overload_storm.OVERLOAD
    for phase, run in storm.items():
        for name, result in run["results"].items():
            budget = run["testbed"].gateway.retry_budget(name)
            issued = result.completed + result.failures
            cap = config.retry_budget_floor + \
                config.retry_budget_ratio * issued
            assert budget.withdrawn <= cap, \
                f"{phase}/{name}: {budget.withdrawn} retry sends " \
                f"exceed budget {cap:.0f}"
        benchmark.extra_info[f"retry_timeouts_{phase}"] = \
            run["gateway"]["retries"]

    # -- dedup held: hedges never delivered a second outcome -------------
    for phase, run in storm.items():
        for result in run["results"].values():
            assert result.completed == len(result.latencies)


def test_overload_storm_is_deterministic():
    first = run_storm()
    second = run_storm()
    for phase in first:
        assert first[phase]["nic"] == second[phase]["nic"]
        assert first[phase]["gateway"] == second[phase]["gateway"]
        for name in first[phase]["results"]:
            assert first[phase]["results"][name].latencies == \
                second[phase]["results"][name].latencies
