"""Benchmark: regenerate Figure 7 (throughput in isolation)."""

from repro.experiments import fig7_throughput


def test_fig7_throughput(benchmark, config):
    report = benchmark.pedantic(
        fig7_throughput.run, args=(config,), rounds=1, iterations=1,
    )
    print()
    print(report.format())

    cells = report.cells
    for concurrency in config.concurrencies:
        for workload in ["web_server", "kv_client", "image_transformer"]:
            nic = cells[(workload, "lambda-nic", concurrency)]
            bare = cells[(workload, "bare-metal", concurrency)]
            container = cells[(workload, "container", concurrency)]
            # λ-NIC always fastest, container always slowest.
            assert nic.throughput > bare.throughput > container.throughput

    nic56 = cells[("web_server", "lambda-nic", 56)]
    container56 = cells[("web_server", "container", 56)]
    img_nic56 = cells[("image_transformer", "lambda-nic", 56)]
    img_bare56 = cells[("image_transformer", "bare-metal", 56)]

    benchmark.extra_info["nic_web_rps_56"] = round(nic56.throughput)
    benchmark.extra_info["container_speedup_56"] = round(
        nic56.throughput / container56.throughput, 1
    )

    # Paper shape: one-to-two orders of magnitude on web/kv (27x-736x),
    # and 5x-15x on the image transformer.
    assert nic56.throughput / container56.throughput > 100
    assert 3.0 < img_nic56.throughput / img_bare56.throughput < 40.0
    # λ-NIC's 56-thread web throughput is gateway-proxy-capped near the
    # paper's 58k req/s.
    assert 40_000 < nic56.throughput < 70_000
