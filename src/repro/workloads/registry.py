"""Workload registry: the paper's benchmark suite in one place."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..host import MIB
from ..isa import LambdaProgram
from .image_transformer import (
    image_bytes,
    image_transformer_host,
    image_transformer_nic,
)
from .kvclient import kv_client_host, kv_client_nic
from .webserver import web_server_host, web_server_nic


@dataclass
class WorkloadSpec:
    """Everything a backend needs to deploy one benchmark workload."""

    name: str
    kind: str  # "web" | "kv" | "image"
    nic_factory: Callable[..., LambdaProgram]
    host_factory: Callable[..., Callable]
    #: Raw compiled-code size (pre-packaging; Table 4 adds runtime deps).
    code_bytes: int = 1 * MIB
    #: Request payload from the client, in bytes.
    request_bytes: int = 64
    #: True if request data arrives via multi-packet RDMA on λ-NIC.
    uses_rdma: bool = False
    #: Extra keyword arguments for the factories.
    nic_kwargs: Dict[str, Any] = field(default_factory=dict)
    host_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Host worker-pool size per backend kind (None = unbounded). The
    #: Python runtimes serve GIL-releasing workloads through a small
    #: thread pool; this is what bounds their CPU use (Table 3).
    host_max_workers: Optional[Dict[str, int]] = None

    def max_workers_for(self, backend_kind: str) -> Optional[int]:
        if self.host_max_workers is None:
            return None
        return self.host_max_workers.get(backend_kind)

    def nic_program(self, name: Optional[str] = None) -> LambdaProgram:
        return self.nic_factory(name=name or self.name, **self.nic_kwargs)

    def host_handler(self, rng=None) -> Callable:
        kwargs = dict(self.host_kwargs)
        if rng is not None:
            kwargs.setdefault("rng", rng)
        return self.host_factory(**kwargs)


def web_server_spec(name: str = "web_server") -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        kind="web",
        nic_factory=web_server_nic,
        host_factory=web_server_host,
        code_bytes=1 * MIB,
        request_bytes=64,
    )


def kv_client_spec(name: str = "kv_client", method: str = "GET") -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        kind="kv",
        nic_factory=kv_client_nic,
        host_factory=kv_client_host,
        code_bytes=1 * MIB,
        request_bytes=64,
        nic_kwargs={"method": method},
        host_kwargs={"method": method},
    )


def image_transformer_spec(
    name: str = "image_transformer",
    width: int = 512,
    height: int = 512,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        kind="image",
        nic_factory=image_transformer_nic,
        host_factory=image_transformer_host,
        code_bytes=1 * MIB,
        request_bytes=image_bytes(width, height),
        uses_rdma=True,
        nic_kwargs={"width": width, "height": height},
        host_kwargs={"width": width, "height": height},
        host_max_workers={"bare-metal": 5, "container": 8},
    )


def standard_workloads() -> Dict[str, WorkloadSpec]:
    """The three benchmark workloads of §6.2."""
    return {
        "web_server": web_server_spec(),
        "kv_client": kv_client_spec(),
        "image_transformer": image_transformer_spec(),
    }


def fig9_workloads() -> Dict[str, WorkloadSpec]:
    """The four-lambda set compiled in Figure 9: two kv clients, one
    web server, one image transformer."""
    return {
        "kv_client_get": kv_client_spec("kv_client_get", method="GET"),
        "kv_client_set": kv_client_spec("kv_client_set", method="SET"),
        "web_server": web_server_spec(),
        "image_transformer": image_transformer_spec(),
    }
