"""The key-value client benchmark workload (paper §6.2b).

Queries user data from memcached (SET/GET), customises the result, and
replies. On λ-NIC this is a two-phase, event-driven lambda: phase 1
emits the memcached RPC and parks; the NIC resumes the lambda when the
service responds (§4.2.1-D3), and phase 2 replies to the client.
"""

from __future__ import annotations

from ..isa import LambdaProgram, ProgramBuilder
from .common import build_gen_request_helper, emit_pad
from . import intrinsics  # noqa: F401

#: Key space and per-key customisation block size.
DEFAULT_KEYS = 64
KEY_BLOCK_PAD = 25
#: Response size returned to the client after customisation.
KV_RESPONSE_BYTES = 128


def kv_client_nic(
    name: str = "kv_client",
    method: str = "GET",
    keys: int = DEFAULT_KEYS,
    block_pad: int = KEY_BLOCK_PAD,
) -> LambdaProgram:
    """Build the NIC kv-client lambda (``method`` = GET or SET)."""
    if keys & (keys - 1):
        raise ValueError("keys must be a power of two")
    if method not in ("GET", "SET"):
        raise ValueError("method must be GET or SET")
    builder = ProgramBuilder(name)
    builder.scratch("r6", "r7")  # pad filler registers; nobody reads them

    gen = builder.function("gen_memcached_request")
    build_gen_request_helper(gen)
    builder.close(gen)

    fn = builder.function(name)
    # Phase selector: has the external service already responded?
    fn.mload("r1", "service_response")
    respond = fn.fresh_label("respond")
    fn.bne("r1", 0, respond)

    # -- Phase 1: pick the key, generate the memcached RPC, park. -----
    fn.hload("r2", "LambdaHeader", "request_id")
    fn.band("r3", "r2", keys - 1)
    key_labels = [f"{name}_key{index}" for index in range(keys)]
    for index, label in enumerate(key_labels):
        fn.beq("r3", index, label)
    fn.drop()  # unreachable guard
    issue = fn.fresh_label("issue")
    for index, label in enumerate(key_labels):
        fn.label(label)
        fn.mov("r4", index)
        fn.mstore("emit_key", "r4")
        emit_pad(fn, block_pad)  # per-key customisation logic
        fn.jmp(issue)
    fn.label(issue)
    fn.mstore("emit_method", method)
    fn.call("gen_memcached_request")
    fn.drop()  # Wait for the service response event.

    # -- Phase 2: service responded; customise and reply. -------------
    fn.label(respond)
    fn.mload("r8", "service_status")
    ok = fn.fresh_label("ok")
    fn.beq("r8", 0, ok)
    # Miss/error: short error reply.
    fn.hstore("LambdaHeader", "is_response", 1)
    fn.mstore("response_bytes", 32)
    fn.forward()
    fn.label(ok)
    emit_pad(fn, 24)  # response customisation
    fn.hstore("LambdaHeader", "is_response", 1)
    fn.mstore("response_bytes", KV_RESPONSE_BYTES)
    fn.forward()
    builder.close(fn)
    return builder.build()


def kv_client_host(
    server: str = "memcached",
    method: str = "GET",
    keys: int = DEFAULT_KEYS,
    cpu_seconds: float = 40e-6,
    value_bytes: int = 64,
    rng=None,
    sigma: float = 0.35,
):
    """Host handler: memcached round trip plus customisation compute."""

    def handler(ctx):
        key = f"user{ctx.request_id % keys}"
        pre = cpu_seconds / 2
        post = cpu_seconds / 2
        if rng is not None:
            jitter = rng.lognormvariate(0.0, sigma)
            pre *= jitter
            post *= jitter
        yield ctx.compute(pre)
        response = yield ctx.call(
            server, method=method, key=key,
            request_bytes=value_bytes if method == "SET" else 64,
        )
        status = response.headers.require("RpcHeader").status
        yield ctx.compute(post)
        ctx.response_bytes = KV_RESPONSE_BYTES if status == 0 else 32
        ctx.response_meta["status"] = status

    return handler
