"""The web-server benchmark workload (paper §6.2a, Listing 2).

Returns static text/HTML content selected by the request. Two forms:

* :func:`web_server_nic` — the Micro-C/IR lambda for λ-NIC: picks a
  page by request id, copies it from the content store into the
  transmit buffer, and replies through the shared reply helper.
* :func:`web_server_host` — the equivalent host handler for the
  container and bare-metal backends.
"""

from __future__ import annotations

from typing import Optional

from ..isa import AccessMode, LambdaProgram, Op, ProgramBuilder
from .common import build_reply_helper, emit_pad
from . import intrinsics  # noqa: F401  (registers intrinsics on import)

#: Default content layout: 64 pages of 1400 B (one MTU-ish page each).
DEFAULT_PAGES = 64
DEFAULT_PAGE_BYTES = 1400
#: Per-page routing-block padding (bounds checks, content-type logic).
PAGE_BLOCK_PAD = 19


def web_server_nic(
    name: str = "web_server",
    pages: int = DEFAULT_PAGES,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    block_pad: int = PAGE_BLOCK_PAD,
) -> LambdaProgram:
    """Build the NIC lambda. ``pages`` must be a power of two."""
    if pages & (pages - 1):
        raise ValueError("pages must be a power of two")
    builder = ProgramBuilder(name)
    builder.scratch("r6", "r7")  # pad filler registers; nobody reads them
    builder.object("content", pages * page_bytes, AccessMode.READ)
    builder.object("txbuf", page_bytes, AccessMode.READ_WRITE, hot=True)
    builder.object("stats", 64, AccessMode.READ_WRITE, hot=True)

    reply = builder.function("reply_static")
    build_reply_helper(reply)
    builder.close(reply)

    fn = builder.function(name)
    fn.hload("r1", "LambdaHeader", "request_id")
    fn.band("r3", "r1", pages - 1)  # page index
    # Hit counter in hot memory (flat until stratified).
    fn.load("r9", "stats", 0)
    fn.add("r9", "r9", 1)
    fn.store("stats", 0, "r9")
    # Routing: if-chain over pages (the compiled form of the URL map).
    labels = [f"{name}_page{index}" for index in range(pages)]
    for index, label in enumerate(labels):
        fn.beq("r3", index, label)
    # Unknown page: empty 404 reply.
    fn.mov("r5", 64)
    fn.call("reply_static")
    fn.forward()
    for index, label in enumerate(labels):
        fn.label(label)
        fn.mov("r4", index * page_bytes)
        emit_pad(fn, block_pad)
        fn.memcpy("txbuf", 0, "content", "r4", page_bytes)
        fn.emit(Op.INTRINSIC, "reply_from_memory", ("mem", "txbuf", 0), page_bytes)
        fn.mov("r5", page_bytes)
        fn.call("reply_static")
        fn.forward()
    builder.close(fn)
    return builder.build()


def populate_content(memory: bytearray, pages: int = DEFAULT_PAGES,
                     page_bytes: int = DEFAULT_PAGE_BYTES) -> None:
    """Fill a content object with distinguishable per-page bytes."""
    for page in range(pages):
        start = page * page_bytes
        memory[start:start + page_bytes] = bytes([page % 251] * page_bytes)


def web_server_host(
    page_bytes: int = DEFAULT_PAGE_BYTES,
    cpu_seconds: float = 150e-6,
    rng=None,
    sigma: float = 0.35,
):
    """Host handler: render/serve one page of content."""

    def handler(ctx):
        service = cpu_seconds
        if rng is not None:
            service *= rng.lognormvariate(0.0, sigma)
        yield ctx.compute(service)
        ctx.response_bytes = page_bytes
        ctx.response_meta["page"] = ctx.request_id % DEFAULT_PAGES

    return handler
