"""Shared building blocks for the benchmark lambdas.

The coalescable helpers live here so that the web-server and
image-transformer lambdas get *byte-identical* reply logic and the two
key-value clients get byte-identical request-generation logic — which
is exactly what the paper's lambda-coalescing pass merges (§6.4).
"""

from __future__ import annotations

from ..isa import FunctionBuilder, Op

#: Instruction counts of the shared helpers (tuned so the composed
#: firmware's Figure-9 series lands near the paper's 8 902-instruction
#: naive binary).
REPLY_HELPER_PAD = 248
GEN_REQUEST_PAD = 196


def emit_pad(fn: FunctionBuilder, count: int) -> None:
    """Deterministic filler representing straight-line compiled code.

    The pattern cycles through ALU ops on scratch registers so that two
    helpers padded with the same count have identical bodies (required
    for coalescing) while still being executable. The first two steps
    are plain moves so the scratch registers are written before any
    read-modify-write op touches them (mov, add and xor all cost one
    cycle, so the pad's cycle count is unchanged).
    """
    for index in range(count):
        step = index % 4
        if step == 0:
            fn.mov("r6", 1)
        elif step == 1:
            fn.mov("r7", "r6")
        elif step == 2:
            fn.shl("r6", "r6", 0)
        else:
            fn.bor("r7", "r7", 1)


def build_reply_helper(fn: FunctionBuilder) -> None:
    """Response serialisation shared by web server and image transformer.

    Convention: the caller puts the response byte count in ``r5``.
    The body rewrites the response headers, computes the checksum-ish
    trailer, and returns; identical across both lambdas by design.
    """
    fn.hstore("LambdaHeader", "is_response", 1)
    fn.mstore("response_bytes", "r5")
    fn.hstore("UDPHeader", "length", "r5")
    emit_pad(fn, REPLY_HELPER_PAD)
    fn.ret()


def build_gen_request_helper(fn: FunctionBuilder) -> None:
    """memcached request generation shared by both kv-client lambdas.

    Convention: the caller stores ``emit_key`` and ``emit_method`` in
    metadata first. The body assembles the outgoing packet (headers,
    checksum) and emits it.
    """
    fn.mstore("emit_dst", "memcached")
    fn.mstore("emit_bytes", 64)
    fn.hstore("UDPHeader", "dst_port", 11211)
    emit_pad(fn, GEN_REQUEST_PAD)
    fn.emit_packet()
    fn.ret()
