"""The image-transformer benchmark workload (paper §6.2c).

Transforms RGBA images to grayscale. Images span multiple packets and
arrive in NIC memory over RDMA (paper D3); an event RPC then triggers
the lambda, which runs the transform and acknowledges. On host backends
the image arrives as request payload and is processed on the CPU.
"""

from __future__ import annotations

import numpy as np

from ..isa import AccessMode, LambdaProgram, Op, ProgramBuilder
from .common import build_reply_helper, emit_pad
from . import intrinsics  # noqa: F401

#: Default image geometry: 512x512 RGBA = 1 MiB per image (the paper's
#: data-intensive workload scale: ~1 MiB images, ~30-100 ms transforms).
DEFAULT_WIDTH = 512
DEFAULT_HEIGHT = 512
#: Unrolled tile-dispatch blocks in the compiled lambda.
TILE_BLOCKS = 96
TILE_BLOCK_PAD = 18
#: Bytes of the acknowledgement sent back after a transform.
ACK_BYTES = 256

#: Host-side per-pixel compute cost (partially vectorised runtime).
HOST_SECONDS_PER_PIXEL = 0.36e-6


def image_bytes(width: int = DEFAULT_WIDTH, height: int = DEFAULT_HEIGHT) -> int:
    return width * height * 4


def image_transformer_nic(
    name: str = "image_transformer",
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    tile_blocks: int = TILE_BLOCKS,
    block_pad: int = TILE_BLOCK_PAD,
) -> LambdaProgram:
    """Build the NIC lambda: grayscale over an RDMA-filled buffer."""
    pixels = width * height
    builder = ProgramBuilder(name)
    builder.scratch("r6", "r7")  # pad filler registers; nobody reads them
    builder.object("image", image_bytes(width, height), AccessMode.READ_WRITE)
    builder.object("tile_table", max(8, tile_blocks) * 8,
                   AccessMode.READ_WRITE, hot=True)

    reply = builder.function("reply_static")
    build_reply_helper(reply)
    builder.close(reply)

    fn = builder.function(name)
    fn.mload("r1", "rdma_len")
    have_data = fn.fresh_label("have_data")
    fn.bne("r1", 0, have_data)
    # No RDMA payload: reject.
    fn.hstore("LambdaHeader", "is_response", 1)
    fn.mstore("response_bytes", 32)
    fn.forward()
    fn.label(have_data)
    # Format dispatch (RGBA / BGRA / RGB / padded rows ...).
    formats = 8
    fn.hload("r2", "LambdaHeader", "seq")
    fn.band("r2", "r2", formats - 1)
    fmt_done = fn.fresh_label("fmt_done")
    fmt_labels = [fn.fresh_label(f"fmt{index}") for index in range(formats)]
    for index, label in enumerate(fmt_labels):
        fn.beq("r2", index, label)
    fn.jmp(fmt_done)
    for label in fmt_labels:
        fn.label(label)
        emit_pad(fn, 6)
        fn.jmp(fmt_done)
    fn.label(fmt_done)
    # Unrolled tile table setup: offsets of each processing tile.
    tile_pixels = max(1, pixels // tile_blocks)
    for tile in range(tile_blocks):
        fn.mov("r4", tile * tile_pixels * 4)
        fn.store("tile_table", tile * 8, "r4")
        emit_pad(fn, block_pad)
    # The transform itself (hardware-assisted bulk op).
    fn.emit(Op.INTRINSIC, "grayscale", ("mem", "image", 0), pixels)
    fn.mov("r5", ACK_BYTES)
    fn.call("reply_static")
    fn.forward()
    builder.close(fn)
    return builder.build()


def make_rgba_image(width: int = DEFAULT_WIDTH, height: int = DEFAULT_HEIGHT,
                    seed: int = 0) -> bytes:
    """A synthetic RGBA image with deterministic content."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=width * height * 4, dtype=np.uint16) \
        .astype(np.uint8).tobytes()


def grayscale_reference(rgba: bytes) -> bytes:
    """NumPy reference transform for verifying the NIC intrinsic."""
    array = np.frombuffer(rgba, dtype=np.uint8).reshape(-1, 4).astype(np.uint16)
    return ((array[:, 0] + array[:, 1] + array[:, 2]) // 3) \
        .astype(np.uint8).tobytes()


def image_transformer_host(
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    seconds_per_pixel: float = HOST_SECONDS_PER_PIXEL,
    rng=None,
    sigma: float = 0.15,
):
    """Host handler: per-pixel transform on the CPU."""
    pixels = width * height

    def handler(ctx):
        service = pixels * seconds_per_pixel
        if rng is not None:
            service *= rng.lognormvariate(0.0, sigma)
        yield ctx.compute(service, gil=False)
        ctx.response_bytes = ACK_BYTES
        ctx.response_meta["pixels"] = pixels

    return handler
