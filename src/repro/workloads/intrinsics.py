"""Bulk intrinsics used by the benchmark lambdas.

NPU cores expose hardware-assisted bulk operations; in the IR these are
``Op.INTRINSIC`` instructions whose semantics live here. Each intrinsic
mutates the machine state and returns the extra cycles it costs, so the
cost model scales with data size while the interpreter executes a
single IR instruction.
"""

from __future__ import annotations

import math

import numpy as np

from ..isa import REGION_ACCESS_CYCLES, register_intrinsic
from ..isa.interpreter import Machine

#: NPU cycles per pixel for the RGBA->grayscale transform: three loads,
#: two adds, a shift, and a store on a scalar RISC core.
GRAYSCALE_CYCLES_PER_PIXEL = 75


def _object_region(machine: Machine, name: str):
    return machine.program.object(name).region


def reply_from_memory(machine: Machine, args) -> int:
    """Copy ``length`` bytes of an object into the response payload.

    args: (("mem", obj, offset), length)
    """
    memref, length = args
    _, obj, offset = memref
    offset = machine.read(offset)
    length = machine.read(length)
    data = machine.memory[obj]
    if offset + length > len(data):
        length = max(0, len(data) - offset)
    machine.response_payload = bytes(data[offset:offset + length])
    bursts = max(1, math.ceil(length / 64))  # 64 B DMA bursts
    return bursts * REGION_ACCESS_CYCLES[_object_region(machine, obj)]


def grayscale(machine: Machine, args) -> int:
    """RGBA -> grayscale in place over an image object.

    args: (("mem", obj, 0), n_pixels). The gray plane is written back
    into the first quarter of the buffer.
    """
    memref, n_pixels = args
    _, obj, _ = memref
    n_pixels = machine.read(n_pixels)
    buffer = machine.memory[obj]
    usable = min(n_pixels, len(buffer) // 4)
    if usable > 0:
        rgba = np.frombuffer(bytes(buffer[:usable * 4]), dtype=np.uint8)
        rgba = rgba.reshape(-1, 4).astype(np.uint16)
        gray = ((rgba[:, 0] + rgba[:, 1] + rgba[:, 2]) // 3).astype(np.uint8)
        buffer[:usable] = gray.tobytes()
    return usable * GRAYSCALE_CYCLES_PER_PIXEL


def checksum(machine: Machine, args) -> int:
    """Ones-complement-style checksum over an object (cost model only)."""
    memref, length = args
    _, obj, _ = memref
    length = machine.read(length)
    data = machine.memory[obj]
    usable = min(length, len(data))
    total = int(np.frombuffer(
        bytes(data[:usable]).ljust((usable + 1) // 2 * 2, b"\x00"),
        dtype=np.uint16,
    ).sum()) & 0xFFFF
    machine.meta["checksum"] = total
    bursts = max(1, math.ceil(usable / 64))
    return bursts * REGION_ACCESS_CYCLES[_object_region(machine, obj)] // 4


# -- static cost models (the verifier's WCET estimator) ---------------------
#
# Each model receives ``(program, args, reader)`` where ``reader``
# returns an operand's statically-known value or None, and must return
# an upper bound on the cycles the runtime implementation above charges.
# All three runtime costs are clamped by the object size, so "length
# unknown" still has a finite worst case.


def _static_object(program, memref):
    _, obj, _ = memref
    return program.object(obj)


def reply_from_memory_wcet(program, args, reader) -> int:
    memref, length = args
    obj = _static_object(program, memref)
    n = reader(length)
    offset = reader(memref[2])
    if isinstance(n, int) and isinstance(offset, int):
        n = min(max(n, 0), max(0, obj.size_bytes - offset))
    else:
        n = obj.size_bytes  # Runtime clamps to the object.
    bursts = max(1, math.ceil(n / 64))
    return bursts * REGION_ACCESS_CYCLES[obj.region]


def grayscale_wcet(program, args, reader) -> int:
    memref, n_pixels = args
    obj = _static_object(program, memref)
    n = reader(n_pixels)
    ceiling = obj.size_bytes // 4
    usable = min(max(n, 0), ceiling) if isinstance(n, int) else ceiling
    return usable * GRAYSCALE_CYCLES_PER_PIXEL


def checksum_wcet(program, args, reader) -> int:
    memref, length = args
    obj = _static_object(program, memref)
    n = reader(length)
    usable = min(max(n, 0), obj.size_bytes) if isinstance(n, int) \
        else obj.size_bytes
    bursts = max(1, math.ceil(usable / 64))
    return bursts * REGION_ACCESS_CYCLES[obj.region] // 4


def install_intrinsics() -> None:
    """Idempotently register all workload intrinsics.

    Effect declarations matter for the NIC's execution memo cache:
    ``reply_from_memory`` and ``checksum`` only read objects (their
    outputs land in per-request state), while ``grayscale`` rewrites
    the image buffer in place and therefore marks its executions as
    stateful. The ``wcet`` models give the static verifier a sound
    cycle bound for each.
    """
    register_intrinsic("reply_from_memory", reply_from_memory,
                       writes_memory=False, wcet=reply_from_memory_wcet)
    register_intrinsic("grayscale", grayscale, writes_memory=True,
                       wcet=grayscale_wcet)
    register_intrinsic("checksum", checksum, writes_memory=False,
                       wcet=checksum_wcet)


install_intrinsics()
