"""The paper's benchmark workloads: web server, kv client, image transformer."""

from .common import (
    GEN_REQUEST_PAD,
    REPLY_HELPER_PAD,
    build_gen_request_helper,
    build_reply_helper,
    emit_pad,
)
from .image_transformer import (
    ACK_BYTES,
    DEFAULT_HEIGHT,
    DEFAULT_WIDTH,
    HOST_SECONDS_PER_PIXEL,
    grayscale_reference,
    image_bytes,
    image_transformer_host,
    image_transformer_nic,
    make_rgba_image,
)
from .intrinsics import GRAYSCALE_CYCLES_PER_PIXEL, install_intrinsics
from .kvclient import KV_RESPONSE_BYTES, kv_client_host, kv_client_nic
from .registry import (
    WorkloadSpec,
    fig9_workloads,
    image_transformer_spec,
    kv_client_spec,
    standard_workloads,
    web_server_spec,
)
from .webserver import (
    DEFAULT_PAGES,
    DEFAULT_PAGE_BYTES,
    populate_content,
    web_server_host,
    web_server_nic,
)

__all__ = [
    "ACK_BYTES",
    "DEFAULT_HEIGHT",
    "DEFAULT_PAGES",
    "DEFAULT_PAGE_BYTES",
    "DEFAULT_WIDTH",
    "GEN_REQUEST_PAD",
    "GRAYSCALE_CYCLES_PER_PIXEL",
    "HOST_SECONDS_PER_PIXEL",
    "KV_RESPONSE_BYTES",
    "REPLY_HELPER_PAD",
    "WorkloadSpec",
    "build_gen_request_helper",
    "build_reply_helper",
    "emit_pad",
    "fig9_workloads",
    "grayscale_reference",
    "image_bytes",
    "image_transformer_host",
    "image_transformer_nic",
    "image_transformer_spec",
    "install_intrinsics",
    "kv_client_host",
    "kv_client_nic",
    "kv_client_spec",
    "make_rgba_image",
    "populate_content",
    "standard_workloads",
    "web_server_host",
    "web_server_nic",
    "web_server_spec",
]
