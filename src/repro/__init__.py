"""λ-NIC reproduction: interactive serverless compute on SmartNICs.

A full-system, simulation-based reproduction of "λ-NIC: Interactive
Serverless Compute on Programmable SmartNICs" (ICDCS 2020). Subpackages:

- :mod:`repro.sim` — discrete-event simulation kernel
- :mod:`repro.net` — packets, links, switch, topology
- :mod:`repro.transport` — weakly-consistent RPC, segmentation, reordering
- :mod:`repro.isa` — the lambda IR and its interpreter/cost model
- :mod:`repro.microc` — the Micro-C source language front-end
- :mod:`repro.p4` — parsers, match-action tables, control blocks
- :mod:`repro.compiler` — Match+Lambda composition and optimisations
- :mod:`repro.hw` — the NPU-grid SmartNIC model
- :mod:`repro.host` — host CPU/OS/container/bare-metal models
- :mod:`repro.raft` — Raft consensus + etcd-like store
- :mod:`repro.kvcache` — memcached-like cache
- :mod:`repro.workloads` — the paper's three benchmark lambdas
- :mod:`repro.core` — λ-NIC framework core (Match+Lambda, fleet runtime, DRF)
- :mod:`repro.serverless` — the OpenFaaS-like framework and testbed
- :mod:`repro.faults` — deterministic fault injection (chaos plans)
- :mod:`repro.experiments` — one driver per paper table/figure

Start with :class:`repro.serverless.Testbed` (see README / examples).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
