"""NIC memory accounting across the CTM/IMEM/EMEM hierarchy.

The interpreter charges per-access *cycle* costs; this module tracks
*capacity*: how many bytes of each region a loaded firmware consumes
(Table 3's "NIC Memory" column) and rejects over-subscription.
"""

from __future__ import annotations

from typing import Dict

from ..isa import REGION_CAPACITY_BYTES, Region


class NicMemoryError(Exception):
    """Raised when a placement exceeds a region's capacity."""


class NicMemory:
    """Byte-level accounting for each memory region."""

    def __init__(self, capacities: Dict[Region, int] = None) -> None:
        self.capacities = dict(capacities or REGION_CAPACITY_BYTES)
        self.used: Dict[Region, int] = {region: 0 for region in self.capacities}

    def allocate(self, region: Region, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if region is Region.FLAT:
            # Unstratified objects live in EMEM until placed.
            region = Region.EMEM
        if self.used[region] + nbytes > self.capacities[region]:
            raise NicMemoryError(
                f"{region.value} overflow: {self.used[region] + nbytes} > "
                f"{self.capacities[region]}"
            )
        self.used[region] += nbytes

    def free(self, region: Region, nbytes: int) -> None:
        if region is Region.FLAT:
            region = Region.EMEM
        self.used[region] = max(0, self.used[region] - nbytes)

    def reset(self) -> None:
        for region in self.used:
            self.used[region] = 0

    @property
    def total_used_bytes(self) -> int:
        return sum(self.used.values())

    def utilization(self, region: Region) -> float:
        capacity = self.capacities[region]
        return self.used[region] / capacity if capacity else 0.0

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{region.value}={used}" for region, used in self.used.items() if used
        )
        return f"<NicMemory {parts or 'empty'}>"
