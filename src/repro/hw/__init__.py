"""SmartNIC hardware model: NPU cores, memory hierarchy, scheduler, NIC."""

from .memo import ExecutionMemoCache, MemoCacheStats
from .memory import NicMemory, NicMemoryError
from .nic import (
    NicStats,
    PIPELINE_OVERHEAD_CYCLES,
    REORDER_CYCLES_PER_SEGMENT,
    SmartNIC,
)
from .npu import CoreStats, Island, NPUCore
from .scheduler import (
    Scheduler,
    ShortestQueueScheduler,
    UniformRandomScheduler,
    WFQScheduler,
)

__all__ = [
    "CoreStats",
    "ExecutionMemoCache",
    "Island",
    "MemoCacheStats",
    "NPUCore",
    "NicMemory",
    "NicMemoryError",
    "NicStats",
    "PIPELINE_OVERHEAD_CYCLES",
    "REORDER_CYCLES_PER_SEGMENT",
    "Scheduler",
    "ShortestQueueScheduler",
    "SmartNIC",
    "UniformRandomScheduler",
    "WFQScheduler",
]
