"""The λ-NIC SmartNIC: firmware execution, dispatch, RDMA, swap.

A :class:`SmartNIC` attaches to a network node and serves lambda
requests entirely on-NIC: packets are parsed, matched on the lambda ID
header, and executed run-to-completion on an NPU thread; responses go
straight back out the wire without host involvement (paper §4/§5).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..compiler import Firmware
from ..isa import (
    FastInterpreter,
    Interpreter,
    JitInterpreter,
    Region,
    VERDICT_DROP,
    VERDICT_FORWARD,
    VERDICT_TO_HOST,
)
from ..net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Packet,
    RdmaHeader,
    RpcHeader,
    UDPHeader,
)
from ..net.network import Node
from ..net.packet import DEADLINE_META
from ..obs import CounterAttribute, MetricsRegistry, Tracer
from ..sim import Environment
from ..transport import ReorderBuffer
from .memo import ExecutionMemoCache, make_key
from .memory import NicMemory
from .npu import Island, NPUCore
from .scheduler import Scheduler, UniformRandomScheduler

#: Fixed ingress/egress pipeline cost (MAC, DMA into CTM, egress DMA)
#: charged once per request, in NPU cycles.
PIPELINE_OVERHEAD_CYCLES = 300

#: Paper footnote 3: reordering four 100 B packets takes 120
#: instructions, i.e. 30 per segment.
REORDER_CYCLES_PER_SEGMENT = 30

#: Execution-engine tiers, slowest to fastest. All three are
#: cycle-exact and verdict-identical (differentially proven); they only
#: differ in host wall-clock speed. "jit" transparently degrades to
#: fastpath for programs the JIT cannot lower.
ENGINE_TIERS = ("interpreter", "fastpath", "jit")


class NicStats:
    """Per-NIC accounting, backed by a typed metrics registry.

    Attribute-compatible with the dataclass it replaces: counters read
    and ``+=`` like plain ints/floats (:class:`CounterAttribute`),
    ``latencies`` is the live observation list of a registry histogram,
    and ``per_lambda_requests`` is a dict view over a labelled counter
    (writers use :meth:`count_lambda`). Passing a shared registry plus
    a ``node`` label folds many NICs into one scrape surface.
    """

    requests_served = CounterAttribute(
        "nic_requests_served_total", "requests answered on-NIC")
    responses_sent = CounterAttribute(
        "nic_responses_sent_total", "response packets emitted")
    sent_to_host = CounterAttribute(
        "nic_sent_to_host_total", "requests punted to the host CPU")
    dropped_no_firmware = CounterAttribute(
        "nic_dropped_no_firmware_total", "packets dropped: no firmware")
    dropped_during_swap = CounterAttribute(
        "nic_dropped_during_swap_total", "packets dropped mid-swap")
    dropped_nic_down = CounterAttribute(
        "nic_dropped_down_total", "packets dropped: NIC dark or coreless")
    rdma_segments = CounterAttribute(
        "nic_rdma_segments_total", "RDMA segments received")
    rdma_messages = CounterAttribute(
        "nic_rdma_messages_total", "RDMA messages reassembled")
    total_cycles = CounterAttribute(
        "nic_cycles_total", "NPU cycles charged")
    busy_seconds = CounterAttribute(
        "nic_busy_seconds_total", "NPU busy time", cast=float)
    firmware_swaps = CounterAttribute(
        "nic_firmware_swaps_total", "firmware installs")
    swap_downtime_seconds = CounterAttribute(
        "nic_swap_downtime_seconds_total", "time spent dark in swaps",
        cast=float)
    expired_on_arrival = CounterAttribute(
        "nic_expired_arrivals_total",
        "requests dropped on arrival: deadline unreachable (WCET-aware)")
    expired_on_dequeue = CounterAttribute(
        "nic_expired_dequeued_total",
        "requests dropped at the NPU thread grant: deadline passed")
    expired_completions = CounterAttribute(
        "nic_expired_completions_total",
        "executions that finished past their deadline (in-flight race)")
    shed = CounterAttribute(
        "nic_shed_total", "requests rejected by the NIC load shedder")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 node: str = "") -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = {"node": node} if node else None
        self._latency_histogram = self.registry.histogram(
            "nic_latency_seconds", "on-NIC serve latency")
        self._per_lambda = self.registry.counter(
            "nic_lambda_requests_total", "requests served per lambda")
        # Engine compile-cache statistics, per tier. The counters live
        # on the engine objects (CompileCacheStats); these gauges mirror
        # the current totals into the registry so tier behaviour —
        # including JIT lowering fallbacks — is observable in scrapes.
        self._compile_hits = self.registry.gauge(
            "nic_compile_cache_hits", "compile-cache hits per engine tier")
        self._compile_misses = self.registry.gauge(
            "nic_compile_cache_misses",
            "compile-cache misses (compilations) per engine tier")
        self._compile_fallbacks = self.registry.gauge(
            "nic_compile_cache_fallbacks",
            "programs an engine tier could not lower")

    def record_compile_stats(self, tier: str, stats) -> None:
        """Mirror one engine tier's CompileCacheStats into the registry."""
        labels = dict(self.labels or {})
        labels["tier"] = tier
        self._compile_hits.set(float(stats.hits), labels)
        self._compile_misses.set(float(stats.misses), labels)
        self._compile_fallbacks.set(float(stats.fallbacks), labels)

    def compile_cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier compile-cache totals as plain dicts (tests/REPL)."""
        node = (self.labels or {}).get("node")
        out: Dict[str, Dict[str, int]] = {}
        for gauge, field in ((self._compile_hits, "hits"),
                             (self._compile_misses, "misses"),
                             (self._compile_fallbacks, "fallbacks")):
            for labels, value in gauge.items():
                if node is not None and labels.get("node") != node:
                    continue
                out.setdefault(labels["tier"], {})[field] = int(value)
        return out

    @property
    def latencies(self) -> List[float]:
        """Live latency list (a histogram view; appends flow through)."""
        return self._latency_histogram.raw(self.labels)

    def count_lambda(self, name: str) -> None:
        labels = dict(self.labels or {})
        labels["lambda"] = name
        self._per_lambda.inc(labels=labels)

    @property
    def per_lambda_requests(self) -> Dict[str, int]:
        node = (self.labels or {}).get("node")
        out: Dict[str, int] = {}
        for labels, value in self._per_lambda.items():
            if node is not None and labels.get("node") != node:
                continue
            out[labels["lambda"]] = int(value)
        return out


class SmartNIC:
    """An ASIC-based SmartNIC in the style of the Netronome Agilio CX.

    Parameters mirror the paper's testbed NIC: 56 cores x 8 threads at
    633 MHz with 2 GiB of on-board memory.
    """

    def __init__(
        self,
        env: Environment,
        node: Node,
        n_cores: int = 56,
        threads_per_core: int = 8,
        clock_hz: float = 633e6,
        cores_per_island: int = 8,
        scheduler: Optional[Scheduler] = None,
        host_handler: Optional[Callable[[Packet], None]] = None,
        rng=None,
        firmware_swap_seconds: float = 2.0,
        use_fast_path: bool = True,
        enable_memo: bool = True,
        memo_entries: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        engine: Optional[str] = None,
        shedder=None,
    ) -> None:
        if scheduler is None:
            if rng is None:
                raise ValueError("UniformRandomScheduler requires an rng")
            scheduler = UniformRandomScheduler(rng)
        self.env = env
        self.node = node
        self.name = node.name
        self.clock_hz = clock_hz
        self.scheduler = scheduler
        self.host_handler = host_handler
        self.firmware_swap_seconds = firmware_swap_seconds
        self.memory = NicMemory()
        self.stats = NicStats(registry=metrics, node=self.name)
        #: Optional per-NIC load shedder (CoDel-style): fed the NPU
        #: thread-grant wait on every dispatch, consulted at arrival.
        self.shedder = shedder
        #: Verifier WCET of the installed firmware at this NIC's clock,
        #: cached at install time; powers the arrival-time deadline
        #: feasibility check. None when the firmware ships no report.
        self._wcet_seconds: Optional[float] = None
        #: Per-lambda WCET (seconds) from the composed firmware's
        #: function-level verifier bounds.
        self._lambda_wcet: Dict[str, float] = {}
        #: Service-seconds sitting in NPU run queues right now (cycle
        #: counts are known at dispatch, so this tally is exact).
        self._queued_service_seconds = 0.0
        #: Reference interpreter — kept as the executable specification
        #: (and the engine when ``engine="interpreter"``).
        self.interpreter = Interpreter(clock_hz=clock_hz)
        # Resolve the engine tier: the explicit ``engine`` knob wins;
        # otherwise the legacy ``use_fast_path`` flag picks the fastest
        # tier (jit) or the reference interpreter.
        if engine is None:
            engine = "jit" if use_fast_path else "interpreter"
        if engine not in ENGINE_TIERS:
            raise ValueError(
                f"unknown engine {engine!r} (choose from {ENGINE_TIERS})"
            )
        self.engine_tier = engine
        self.use_fast_path = engine != "interpreter"
        #: The execution engine for the resolved tier. "fastpath" is the
        #: pre-decoded threaded-code engine; "jit" compiles each lambda
        #: to Python source (falling back to fastpath per program). Both
        #: are cycle- and result-identical to ``interpreter`` (proved by
        #: tests/isa/test_fastpath.py and tests/isa/test_jit.py).
        if engine == "jit":
            self.engine = JitInterpreter(clock_hz=clock_hz)
        elif engine == "fastpath":
            self.engine = FastInterpreter(clock_hz=clock_hz)
        else:
            self.engine = self.interpreter
        #: Result memoization is only sound with the compiled tiers,
        #: which report whether an execution wrote persistent memory.
        self.memo: Optional[ExecutionMemoCache] = (
            ExecutionMemoCache(memo_entries)
            if (self.use_fast_path and enable_memo) else None
        )

        self.islands: List[Island] = []
        self.cores: List[NPUCore] = []
        for core_id in range(n_cores):
            island_id = core_id // cores_per_island
            if island_id >= len(self.islands):
                self.islands.append(Island(island_id))
            core = NPUCore(env, core_id, island_id, threads_per_core, clock_hz)
            self.islands[island_id].add_core(core)
            self.cores.append(core)

        #: False after :meth:`fail`: the whole NIC is dark (power loss,
        #: PCIe fault) and drops every packet until :meth:`restore`.
        self.online = True
        self.firmware: Optional[Firmware] = None
        self._wid_to_lambda: Dict[int, str] = {}
        self._lambda_memory: Dict[str, bytearray] = {}
        #: Monotone persistent-state version: bumped by every write to
        #: lambda memory (impure executions, RDMA DMA, firmware
        #: installs, direct access). Live migration exports state at an
        #: epoch and re-checks it after the transfer — an unchanged
        #: epoch proves the snapshot is still current (the fence).
        self.state_epoch = 0
        self._swapping = False
        #: RDMA queue-pair bindings: qp -> (lambda name, object name).
        self._rdma_bindings: Dict[int, Tuple[str, str]] = {}
        #: In-flight multi-packet messages, reordered on the NIC (fn. 3).
        self._reorder = ReorderBuffer()
        #: Outstanding service calls (e.g. to memcached): the original
        #: client request, resumed when the service responds (§4.2.1-D3,
        #: "an event RPC triggers the lambda").
        self._pending_calls: Dict[int, Packet] = {}

        node.attach(self.receive)

    # -- firmware management -------------------------------------------------

    def load_firmware(self, firmware: Firmware, swap: bool = True,
                      hitless: bool = False):
        """Process: flash new firmware.

        With ``hitless=True`` (the partial-reconfiguration/versioning
        capability the paper expects from next-generation NICs, §7) the
        old firmware keeps serving during the flash and no packets are
        dropped; otherwise the swap window drops traffic.
        """
        def loader():
            if swap and self.firmware is not None and not hitless:
                self._swapping = True
                started = self.env.now
                yield self.env.timeout(self.firmware_swap_seconds)
                self.stats.swap_downtime_seconds += self.env.now - started
                self._swapping = False
            elif swap:
                yield self.env.timeout(self.firmware_swap_seconds)
            self._install(firmware)
            self.stats.firmware_swaps += 1
            return firmware

        return self.env.process(loader())

    def install_firmware(self, firmware: Firmware) -> None:
        """Install instantly (used by tests and cold deployments)."""
        self._install(firmware)
        self.stats.firmware_swaps += 1

    def _install(self, firmware: Firmware) -> None:
        if self.firmware is not None:
            self.memory.reset()
        program = firmware.program
        # Account code + static data into NIC memory.
        self.memory.allocate(Region.IMEM, min(
            firmware.code_bytes, self.memory.capacities[Region.IMEM]))
        for obj in program.objects.values():
            self.memory.allocate(obj.region, obj.size_bytes)
        self.firmware = firmware
        self._wid_to_lambda = {
            wid: name for name, wid in firmware.lambda_ids.items()
        }
        report = firmware.verifier_report
        self._wcet_seconds = (
            report.wcet_seconds(self.clock_hz)
            if report is not None and report.wcet_cycles is not None
            else None
        )
        # Per-lambda WCET at this NIC's clock: each lambda's entry is a
        # function of the composed program, so the verifier's
        # function-level bounds give a per-lambda figure that the
        # whole-firmware bound (the max across lambdas) would smear.
        self._lambda_wcet = {}
        if report is not None:
            for name in firmware.lambda_ids:
                cycles = report.function_wcet.get(name)
                if cycles is not None:
                    self._lambda_wcet[name] = cycles / self.clock_hz
        # Persistent global objects (state persists across runs, §4.1).
        self._lambda_memory = {
            obj.name: bytearray(obj.size_bytes)
            for obj in program.objects.values()
        }
        self._state_written()

    def bind_rdma(self, qp: int, lambda_name: str, object_name: str,
                  buffer_pool: int = 1) -> None:
        """Bind an RDMA queue pair to a lambda's memory object.

        ``buffer_pool`` models per-thread staging buffers for concurrent
        multi-packet messages: the extra copies are accounted in EMEM
        (this is where the image workload's ~60 MiB of NIC memory in
        Table 3 comes from). Functionally a single buffer is kept.
        """
        if self.firmware is None:
            raise RuntimeError("no firmware loaded")
        if object_name not in self._lambda_memory:
            raise KeyError(f"firmware has no object {object_name!r}")
        if buffer_pool > 1:
            size = len(self._lambda_memory[object_name])
            self.memory.allocate(Region.EMEM, (buffer_pool - 1) * size)
        self._rdma_bindings[qp] = (lambda_name, object_name)

    def lambda_memory(self, object_name: str) -> bytearray:
        """Direct access to a persistent object (tests/inspection).

        The returned bytearray is mutable, so this counts as a
        potential write for the memo cache.
        """
        data = self._lambda_memory[object_name]
        self._state_written()
        return data

    def _state_written(self) -> None:
        """Every persistent-memory write funnels through here: bump
        the migration epoch fence and drop memoised results."""
        self.state_epoch += 1
        if self.memo is not None:
            self.memo.invalidate()

    # -- live-migration state transfer ----------------------------------------

    def export_lambda_state(self, workload: str) -> \
            Optional[Tuple[int, Dict[str, bytes]]]:
        """Snapshot one lambda's persistent memory objects.

        Returns ``(epoch, {qualified_name: bytes})`` — the epoch is the
        NIC-wide :attr:`state_epoch` at snapshot time; the migration
        controller re-reads it after shipping the bytes and retries if
        anything wrote in between. Returns ``None`` when the NIC is
        dark (an offline NIC's DRAM cannot be read over PCIe) or has no
        firmware.
        """
        if not self.online or self.firmware is None:
            return None
        prefix = workload + "."
        objects = {
            name: bytes(data)
            for name, data in self._lambda_memory.items()
            if name.startswith(prefix)
        }
        return (self.state_epoch, objects)

    def import_lambda_state(self, workload: str,
                            objects: Dict[str, bytes]) -> int:
        """Install exported persistent state for ``workload``.

        Only objects the resident firmware actually declares are
        written (truncated to their declared size); unknown names are
        ignored so firmware-version skew degrades to a partial import,
        not corruption. Returns bytes written. The import is a fence:
        it bumps :attr:`state_epoch` and flushes the memo cache.
        """
        if not self.online:
            raise RuntimeError(f"{self.name} cannot import state while dark")
        if self.firmware is None:
            raise RuntimeError(f"{self.name} has no firmware to import into")
        written = 0
        for name, blob in objects.items():
            target = self._lambda_memory.get(name)
            if target is None:
                continue
            n = min(len(blob), len(target))
            target[:n] = blob[:n]
            written += n
        self.state_epoch += 1
        if self.memo is not None:
            self.memo.fence()
        return written

    @property
    def busy_threads(self) -> int:
        return sum(core.busy_threads for core in self.cores)

    @property
    def total_threads(self) -> int:
        return sum(core.threads for core in self.cores)

    def wcet_for(self, lambda_name: Optional[str]) -> Optional[float]:
        """The WCET bound (seconds) to assume for one request.

        Prefers the lambda's own function-level bound; falls back to
        the whole-firmware bound when the lambda is unknown.
        """
        if lambda_name is not None:
            wcet = self._lambda_wcet.get(lambda_name)
            if wcet is not None:
                return wcet
        return self._wcet_seconds

    def queue_delay_estimate(self) -> float:
        """Expected thread-grant wait for a new arrival, in seconds.

        Every dispatch's cycle count is known before it queues, so the
        NIC keeps an exact tally of queued service-seconds; a new
        arrival behind a work-conserving fleet of ``threads`` threads
        waits about ``queued_seconds / threads``. With a free thread
        the wait is zero. The estimate omits the running requests'
        remainders (slightly optimistic); the dequeue-time deadline
        check is the backstop and wastes no cycles.
        """
        cores = self.available_cores
        if not cores:
            return 0.0
        free = sum(core.threads - core.busy_threads for core in cores)
        if free > 0:
            return 0.0
        threads = sum(core.threads for core in cores)
        return self._queued_service_seconds / threads

    # -- failure injection ----------------------------------------------------

    @property
    def available_cores(self) -> List[NPUCore]:
        """Cores the dispatcher may schedule onto (online islands only)."""
        return [core for core in self.cores if core.online]

    @property
    def serving(self) -> bool:
        """True when the NIC can execute at least one request."""
        return self.online and bool(self.available_cores)

    def fail(self) -> None:
        """Kill the whole NIC: every packet is dropped until restore.

        Firmware and persistent lambda memory survive (they live in
        flash / DRAM that is reloaded on power-up), so a restored NIC
        resumes serving immediately — the failure model is loss of the
        datapath, not of the deployment.
        """
        self.online = False
        if self.env.tracer is not None:
            self.env.tracer.instant("nic.fail", "fault", node=self.name)

    def restore(self) -> None:
        """Bring a failed NIC back; it serves the instant power returns."""
        self.online = True
        if self.env.tracer is not None:
            self.env.tracer.instant("nic.restore", "fault", node=self.name)

    def fail_island(self, island_id: int) -> None:
        """Take one NPU island offline; its cores stop being scheduled.

        In-flight work on the island's cores is allowed to drain (the
        run-to-completion contract, paper D1); only new dispatch avoids
        the island.
        """
        for core in self._island_cores(island_id):
            core.online = False

    def restore_island(self, island_id: int) -> None:
        for core in self._island_cores(island_id):
            core.online = True

    def _island_cores(self, island_id: int) -> List[NPUCore]:
        if not 0 <= island_id < len(self.islands):
            raise ValueError(
                f"no island {island_id} (have {len(self.islands)})"
            )
        return list(self.islands[island_id].cores.values())

    # -- datapath -------------------------------------------------------------

    def _trace_drop(self, packet: Packet, reason: str) -> None:
        tracer = self.env.tracer
        if tracer is None:
            return
        trace_id, parent = Tracer.context(packet)
        if trace_id:
            tracer.instant("nic.drop", "nic", trace_id=trace_id,
                           parent=parent, node=self.name,
                           tags={"reason": reason})

    def receive(self, packet: Packet) -> None:
        """Network-node receive handler."""
        if not self.online:
            self.stats.dropped_nic_down += 1
            self._trace_drop(packet, "nic_down")
            return
        if self._swapping:
            self.stats.dropped_during_swap += 1
            self._trace_drop(packet, "swap")
            return
        if self.firmware is None:
            self.stats.dropped_no_firmware += 1
            self._trace_drop(packet, "no_firmware")
            return
        if "RdmaHeader" in packet.headers:
            self._receive_rdma(packet)
            return
        lam = packet.headers.get("LambdaHeader")
        if lam is not None and lam.is_response and \
                lam.request_id in self._pending_calls:
            # A response from an external service: resume the lambda
            # that issued the call, against the original client request.
            original = self._pending_calls.pop(lam.request_id)
            service_meta: Dict[str, Any] = {"service_response": 1}
            rpc = packet.headers.get("RpcHeader")
            if rpc is not None:
                service_meta["service_status"] = rpc.status
            self.env.process(self._serve(original, extra_meta=service_meta))
            return
        self.env.process(self._serve(packet))

    def _execute(self, packet: Packet, headers: Dict[str, Dict[str, Any]],
                 meta: Dict[str, Any],
                 trace_tags: Optional[Dict[str, Any]] = None):
        """Run the firmware against one parsed request.

        Uses the pre-decoded fast-path engine, consulting the execution
        memo cache first: a pure execution of a byte-identical request
        is replayed instead of re-interpreted. The key is computed from
        the *pre-execution* inputs (the lambda mutates ``headers`` and
        ``meta`` in place) and any execution that writes persistent
        memory flushes the cache, so stateful lambdas never replay
        stale results.
        """
        program = self.firmware.program
        if not self.use_fast_path:
            if trace_tags is not None:
                trace_tags["engine"] = "interpreter"
                trace_tags["memo"] = "off"
            return self.interpreter.run(
                program, headers=headers, meta=meta,
                memory=self._lambda_memory,
            )
        if trace_tags is not None:
            trace_tags["engine"] = self.engine_tier
            trace_tags["memo"] = "off" if self.memo is None else "miss"
        memo = self.memo
        key = None
        if memo is not None:
            key = make_key(program, program.entry, headers, meta,
                           self._payload_digest(packet))
            cached = memo.get(key)
            if cached is not None:
                if trace_tags is not None:
                    trace_tags["memo"] = "hit"
                return cached
        result, wrote_memory = self.engine.execute(
            program, headers=headers, meta=meta,
            memory=self._lambda_memory,
        )
        if trace_tags is not None:
            # The JIT may degrade to fastpath per program; report the
            # tier that actually ran (memo hits keep the configured tier).
            trace_tags["engine"] = getattr(
                self.engine, "last_tier", self.engine_tier)
        self._publish_compile_stats()
        if wrote_memory:
            self._state_written()
        elif memo is not None:
            memo.put(key, result)
        return result

    def _publish_compile_stats(self) -> None:
        """Mirror engine compile-cache counters into the metrics registry."""
        stats = getattr(self.engine, "stats", None)
        if stats is not None:
            self.stats.record_compile_stats(self.engine_tier, stats)
        fallback = getattr(self.engine, "fallback", None)
        if fallback is not None and getattr(fallback, "stats", None) is not None:
            self.stats.record_compile_stats("fastpath", fallback.stats)

    @staticmethod
    def _payload_digest(packet: Packet) -> Any:
        payload = packet.payload
        if isinstance(payload, (bytes, bytearray, memoryview)):
            return (hashlib.sha256(bytes(payload)).digest(),
                    packet.payload_bytes)
        # Synthetic payloads with no byte representation: fold their
        # repr in; non-reprable objects make the request uncacheable.
        return (repr(payload), packet.payload_bytes)

    def _serve(self, packet: Packet, extra_meta: Optional[Dict[str, Any]] = None,
               extra_cycles: int = 0):
        arrival = self.env.now
        tracer = self.env.tracer
        serve_span = None
        if tracer is not None:
            trace_id, parent = Tracer.context(packet)
            if trace_id:
                serve_span = tracer.begin(
                    "nic.serve", "nic", trace_id=trace_id, parent=parent,
                    node=self.name,
                )
        headers = {
            header.name: {
                name: getattr(header, name) for name in header.field_names()
            }
            for header in packet.headers
        }
        meta: Dict[str, Any] = {f"has_{name}": 1 for name in headers}
        meta["ingress_port"] = packet.meta.get("ingress_port", 0)
        if extra_meta:
            meta.update(extra_meta)

        lambda_header = headers.get("LambdaHeader")
        lambda_name = None
        if lambda_header is not None:
            lambda_name = self._wid_to_lambda.get(lambda_header.get("wid"))

        deadline = packet.meta.get(DEADLINE_META)
        # A service-response continuation resumes a request that already
        # paid for its first pass: dropping it now would waste those
        # cycles, so it bypasses the feasibility estimate and the
        # shedder — only provable lateness (here and at dequeue) kills it.
        continuation = bool(extra_meta and extra_meta.get("service_response"))
        if deadline is not None:
            if continuation:
                feasible = self.env.now <= deadline
            else:
                # WCET-aware arrival check: with the verifier's WCET
                # bound even an optimally scheduled execution takes
                # queue_delay + WCET — if that lands past the deadline
                # the work is dead on arrival and is dropped before
                # costing any NPU cycles. The bound is this lambda's
                # own (function-level WCET of the composed firmware),
                # so a heavyweight co-resident lambda does not doom a
                # lightweight one's packets.
                wcet = self.wcet_for(lambda_name)
                feasible_at = (self.env.now + self.queue_delay_estimate()
                               + (wcet if wcet is not None else 0.0))
                feasible = feasible_at <= deadline
            if not feasible:
                self.stats.expired_on_arrival += 1
                self._trace_drop(packet, "expired")
                if serve_span is not None:
                    tracer.end(serve_span, tags={"verdict": "expired"})
                return
        if (self.shedder is not None and not continuation
                and self.shedder.should_shed()):
            self.stats.shed += 1
            self._trace_drop(packet, "shed")
            if serve_span is not None:
                tracer.end(serve_span, tags={"verdict": "shed"})
            return

        if serve_span is not None:
            tracer.instant(
                "nic.parse", "nic", trace_id=serve_span.trace_id,
                parent=serve_span, node=self.name,
                tags={"headers": len(headers)},
            )
        exec_tags: Optional[Dict[str, Any]] = (
            {} if serve_span is not None else None
        )
        result = self._execute(packet, headers, meta, trace_tags=exec_tags)
        cycles = result.cycles + PIPELINE_OVERHEAD_CYCLES + extra_cycles
        if serve_span is not None:
            exec_tags["lambda"] = lambda_name or "<none>"
            tracer.instant(
                "nic.execute", "nic", trace_id=serve_span.trace_id,
                parent=serve_span, node=self.name, tags=exec_tags,
            )

        cores = self.available_cores
        if not cores:
            # Every island is failed: nothing can execute the request.
            self.stats.dropped_nic_down += 1
            if serve_span is not None:
                tracer.end(serve_span, tags={"verdict": "dropped_no_cores"})
            return
        core = self.scheduler.pick_core(cores, lambda_name or "<none>")
        duration = cycles / self.clock_hz
        self._queued_service_seconds += duration

        def dequeued(waited, _duration=duration):
            # Thread granted (or dropped): the work is no longer queued.
            self._queued_service_seconds -= _duration
            if self.shedder is not None:
                self.shedder.observe(waited, self.env.now)

        elapsed = yield self.env.process(core.execute(
            cycles,
            trace=((serve_span.trace_id, serve_span.span_id)
                   if serve_span is not None else None),
            deadline=deadline,
            on_dequeue=dequeued,
        ))
        if elapsed is None:
            # Dequeue check: the deadline passed while queued for an
            # NPU thread — the core dropped the work without charging
            # cycles, so expired requests are never executed.
            self.stats.expired_on_dequeue += 1
            self._trace_drop(packet, "expired_dequeue")
            if serve_span is not None:
                tracer.end(serve_span, tags={"verdict": "expired_dequeue"})
            return
        if deadline is not None and self.env.now > deadline:
            # The in-flight race window: the execution had started (or
            # was committed) before the deadline passed. It is allowed
            # but counted — the overload gates bound this.
            self.stats.expired_completions += 1

        self.stats.total_cycles += cycles
        self.stats.busy_seconds += cycles / self.clock_hz
        if lambda_name is not None:
            self.stats.count_lambda(lambda_name)

        # Outbound service calls emitted by the lambda (kv client -> memcached).
        for emitted in result.emitted:
            dst = emitted.meta.get("emit_dst")
            if not dst:
                continue
            request_id = (lambda_header or {}).get("request_id", 0)
            self._pending_calls[request_id] = packet
            call = Packet(
                src=self.name,
                dst=dst,
                headers=HeaderStack([
                    EthernetHeader(),
                    IPv4Header(src_ip=self.name, dst_ip=dst),
                    UDPHeader(),
                    LambdaHeader(
                        wid=(lambda_header or {}).get("wid", 0),
                        request_id=request_id,
                    ),
                    RpcHeader(
                        method=str(emitted.meta.get("emit_method", "GET")),
                        key=str(emitted.meta.get("emit_key", "")),
                    ),
                ]),
                payload_bytes=int(emitted.meta.get("emit_bytes", 64)),
            )
            # The call outlives this serve pass, so it carries the
            # original (still-open) request context, not the serve span.
            # The deadline rides along too: the eventual response pass
            # is as useless past the deadline as the request itself.
            if deadline is not None:
                call.meta[DEADLINE_META] = deadline
            Tracer.propagate(packet, call)
            self.node.send(call)

        if result.verdict == VERDICT_FORWARD:
            self.stats.requests_served += 1
            self.stats.latencies.append(self.env.now - arrival)
            if serve_span is not None:
                tracer.end(serve_span,
                           tags={"verdict": "forward", "cycles": cycles})
            self._send_response(packet, result)
        elif result.verdict == VERDICT_TO_HOST:
            self.stats.sent_to_host += 1
            if serve_span is not None:
                tracer.end(serve_span,
                           tags={"verdict": "to_host", "cycles": cycles})
            if self.host_handler is not None:
                self.host_handler(packet)
        elif result.verdict == VERDICT_DROP:
            if serve_span is not None:
                tracer.end(serve_span,
                           tags={"verdict": "drop", "cycles": cycles})
        else:
            # Fallthrough without a verdict: treat as host-bound.
            self.stats.sent_to_host += 1
            if serve_span is not None:
                tracer.end(serve_span,
                           tags={"verdict": "to_host", "cycles": cycles})
            if self.host_handler is not None:
                self.host_handler(packet)

    def _send_response(self, request: Packet, result) -> None:
        headers = request.headers.copy()
        lambda_header = headers.get("LambdaHeader")
        if lambda_header is not None:
            lambda_header.is_response = True
        response_bytes = int(result.meta.get("response_bytes", 0)) or max(
            len(result.response_payload), 64
        )
        response = Packet(
            src=self.name,
            dst=request.src,
            headers=headers,
            payload=result.response_payload or result.meta.get("response", b""),
            payload_bytes=response_bytes,
            meta={"request_meta": dict(request.meta), "lambda_meta": result.meta},
        )
        Tracer.propagate(request, response)
        self.stats.responses_sent += 1
        self.node.send(response)

    # -- RDMA / multi-packet messages -----------------------------------------

    def _receive_rdma(self, packet: Packet) -> None:
        lam = packet.headers.get("LambdaHeader")
        request_id = lam.request_id if lam is not None else 0
        total = lam.total_segments if lam is not None else 1
        seq = lam.seq if lam is not None else 0
        key = (packet.src, request_id)
        ordered = self._reorder.add(key, seq, total, packet)
        self.stats.rdma_segments += 1
        if ordered is None:
            return
        self.stats.rdma_messages += 1
        self.env.process(self._complete_rdma(ordered, total, packet))

    def _complete_rdma(self, ordered, total, last_packet: Packet) -> Any:
        binding = self._rdma_bindings.get(
            last_packet.headers.require("RdmaHeader").qp
        )
        reorder_cycles = self._reorder.instructions_for(total)
        tracer = self.env.tracer
        rdma_span = None
        if tracer is not None:
            trace_id, parent = Tracer.context(last_packet)
            if trace_id:
                rdma_span = tracer.begin(
                    "nic.rdma", "nic", trace_id=trace_id, parent=parent,
                    node=self.name,
                    tags={"segments": total,
                          "reorder_cycles": reorder_cycles},
                )
        if binding is None:
            # No binding: punt whole message to host.
            yield self.env.timeout(reorder_cycles / self.clock_hz)
            self.stats.sent_to_host += 1
            if tracer is not None:
                tracer.end(rdma_span, tags={"verdict": "to_host"})
            if self.host_handler is not None:
                self.host_handler(last_packet)
            return
        lambda_name, object_name = binding
        target = self._lambda_memory[object_name]
        # The DMA below writes persistent memory behind the engine's
        # back; cached results may depend on the old contents.
        self._state_written()
        offset = 0
        total_len = 0
        for segment in ordered:
            data = segment.payload if isinstance(segment.payload, (bytes, bytearray)) \
                else b"\x00" * segment.payload_bytes
            n = min(len(data) or segment.payload_bytes, len(target) - offset)
            if isinstance(data, (bytes, bytearray)) and len(data) >= n:
                target[offset:offset + n] = data[:n]
            offset += n
            total_len += segment.payload_bytes
        # Trigger the lambda with an event RPC (paper D3): the request
        # header dispatches as usual but the data is already in memory.
        yield self.env.process(
            self._serve(
                last_packet,
                extra_meta={"rdma_len": total_len, "rdma_object": object_name},
                extra_cycles=reorder_cycles,
            )
        )
        if tracer is not None:
            tracer.end(rdma_span, tags={"bytes": total_len})
