"""Packet-to-core scheduling inside the SmartNIC.

The Netronome scheduler is work-conserving and sprays packets uniformly
across cores (paper §5); λ-NIC additionally implements weighted fair
queuing between lambdas (paper §4.2.1-D1). Both policies are provided,
plus a shortest-queue policy used by the ablation benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from .npu import NPUCore


class Scheduler:
    """Base class: picks the core a request should run on."""

    def pick_core(self, cores: Sequence[NPUCore], lambda_name: str) -> NPUCore:
        raise NotImplementedError


class UniformRandomScheduler(Scheduler):
    """The hardware default: uniform random spray over all cores."""

    def __init__(self, rng) -> None:
        self.rng = rng

    def pick_core(self, cores: Sequence[NPUCore], lambda_name: str) -> NPUCore:
        return cores[self.rng.randrange(len(cores))]


class ShortestQueueScheduler(Scheduler):
    """Join-shortest-queue: idealised global knowledge (ablation)."""

    def pick_core(self, cores: Sequence[NPUCore], lambda_name: str) -> NPUCore:
        return min(cores, key=lambda core: (core.busy_threads + core.queue_depth,
                                            core.core_id))


class WFQScheduler(Scheduler):
    """Weighted fair queuing across lambdas.

    Each lambda has a weight; the scheduler tracks a virtual finish
    time per lambda and serves the lambda with the smallest virtual
    time, then places its request on the least-loaded core. With equal
    weights this is fair round-robin service between lambdas, which is
    what prevents one chatty lambda from starving others.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self.weights = dict(weights or {})
        self._virtual_time: Dict[str, float] = {}
        self._tick = itertools.count()

    def weight_for(self, lambda_name: str) -> float:
        return self.weights.get(lambda_name, 1.0)

    def pick_core(self, cores: Sequence[NPUCore], lambda_name: str) -> NPUCore:
        # Advance this lambda's virtual time by 1/weight per request.
        current = self._virtual_time.get(lambda_name, 0.0)
        self._virtual_time[lambda_name] = current + 1.0 / self.weight_for(lambda_name)
        return min(cores, key=lambda core: (core.busy_threads + core.queue_depth,
                                            core.core_id))

    def lag(self, lambda_name: str) -> float:
        """How far ahead of the fair share this lambda has been served."""
        if not self._virtual_time:
            return 0.0
        minimum = min(self._virtual_time.values())
        return self._virtual_time.get(lambda_name, 0.0) - minimum

    def service_order(self, pending: Sequence[str]) -> List[str]:
        """Order pending lambda names by fairness (smallest vtime first)."""
        return sorted(
            pending,
            key=lambda name: (self._virtual_time.get(name, 0.0), name),
        )
