"""Execution memoization for the NIC datapath.

Serverless traffic is heavily repetitive: the same lambda sees the same
request over and over (the web server's handful of URLs, a hot key in
the KV cache). A pure execution — one that does not write any
persistent memory object — is a deterministic function of (program,
request headers, match metadata, payload), so its
:class:`~repro.isa.interpreter.ExecutionResult` can be replayed instead
of re-interpreted.

Soundness rests on two rules enforced by :class:`SmartNIC`:

* **Only pure executions are cached.** The fast-path engine reports
  whether a run wrote persistent memory (``STORE``/``STORED``/
  ``MEMCPY``/intrinsics declared with ``writes_memory=True``); impure
  runs are never memoised.
* **Any write to persistent memory invalidates the whole cache.** That
  includes impure lambda executions, RDMA message completion, firmware
  installs, and direct test access via ``SmartNIC.lambda_memory`` —
  cached results may depend on memory contents through loads, so after
  any write no stale replay can survive.

Keys canonicalize the *full* pre-execution input (headers, metadata,
payload digest): results capture their entire input (headers and meta
are returned, and surface as ``lambda_meta`` on response packets), so
only byte-identical requests may share a result. Inputs containing
unhashable values are simply treated as uncacheable.

The cache itself is a small LRU so a long tail of distinct requests
cannot grow it without bound; simulated time is never consulted, so
memoization cannot change simulation results — only wall-clock speed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from ..isa.interpreter import EmittedPacket, ExecutionResult


@dataclass
class MemoCacheStats:
    """Counters for one :class:`ExecutionMemoCache`."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0
    invalidations: int = 0
    evictions: int = 0
    fences: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _freeze(value: Any) -> Hashable:
    """Canonical hashable form of a (possibly nested) input value.

    Raises ``TypeError`` for values with no canonical form; callers
    treat that as "uncacheable", never as an error.
    """
    if isinstance(value, dict):
        return tuple(sorted(
            (key, _freeze(inner)) for key, inner in value.items()
        ))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(inner) for inner in value)
    if isinstance(value, (bytearray, memoryview)):
        return bytes(value)
    hash(value)  # raises TypeError for unhashable leaves
    return value


def make_key(
    program: Any,
    entry: Optional[str],
    headers: Dict[str, Dict[str, Any]],
    meta: Dict[str, Any],
    payload_digest: Hashable,
) -> Optional[Tuple]:
    """Canonical cache key for one execution, or ``None`` if the inputs
    cannot be canonicalized (unhashable header/meta values)."""
    try:
        return (
            id(program),
            program.name,
            entry,
            _freeze(headers),
            _freeze(meta),
            payload_digest,
        )
    except TypeError:
        return None


def _copy_result(result: ExecutionResult) -> ExecutionResult:
    """Deep-enough copy: cached results must be isolated from callers
    that mutate headers/meta in place (response construction does)."""
    return ExecutionResult(
        verdict=result.verdict,
        return_value=result.return_value,
        cycles=result.cycles,
        instructions_executed=result.instructions_executed,
        region_accesses=dict(result.region_accesses),
        emitted=[
            EmittedPacket(
                headers={k: dict(v) for k, v in emitted.headers.items()},
                meta=dict(emitted.meta),
                payload=emitted.payload,
            )
            for emitted in result.emitted
        ],
        headers={k: dict(v) for k, v in result.headers.items()},
        meta=dict(result.meta),
        response_payload=result.response_payload,
    )


class ExecutionMemoCache:
    """LRU cache of pure lambda :class:`ExecutionResult`s."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self.stats = MemoCacheStats()
        self._entries: "OrderedDict[Tuple, ExecutionResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Optional[Tuple]) -> Optional[ExecutionResult]:
        """A replayable copy of the cached result, or ``None``."""
        if key is None:
            self.stats.uncacheable += 1
            return None
        cached = self._entries.get(key)
        if cached is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return _copy_result(cached)

    def put(self, key: Optional[Tuple], result: ExecutionResult) -> None:
        """Cache a *pure* execution's result under ``key``."""
        if key is None:
            return
        self._entries[key] = _copy_result(result)
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop everything: persistent memory has changed."""
        if self._entries:
            self._entries.clear()
        self.stats.invalidations += 1

    def fence(self) -> None:
        """Migration epoch fence: a state import replaced persistent
        memory wholesale, so every cached result is suspect. Tracked
        separately from routine invalidations so migration tests can
        assert the fence actually fired."""
        self.stats.fences += 1
        self.invalidate()
