"""NPU cores: the compute fabric of the ASIC-based SmartNIC.

Each core has a private instruction store, local memory, and a fixed
number of hardware threads; lambdas run to completion on one thread
(paper D1). A core is modelled as a capacity-``threads`` resource whose
holders charge simulated time equal to ``cycles / clock_hz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim import Environment, Resource


@dataclass
class CoreStats:
    """Per-core accounting."""

    requests: int = 0
    busy_seconds: float = 0.0
    cycles: int = 0


class NPUCore:
    """One multi-threaded RISC core."""

    def __init__(
        self,
        env: Environment,
        core_id: int,
        island_id: int,
        threads: int = 8,
        clock_hz: float = 633e6,
    ) -> None:
        if threads <= 0:
            raise ValueError("threads must be positive")
        self.env = env
        self.core_id = core_id
        self.island_id = island_id
        self.threads = threads
        self.clock_hz = clock_hz
        self.slots = Resource(env, capacity=threads)
        self.stats = CoreStats()
        #: False while the core's island is failed (fault injection);
        #: the NIC dispatcher never schedules onto an offline core.
        self.online = True

    @property
    def busy_threads(self) -> int:
        return self.slots.count

    @property
    def queue_depth(self) -> int:
        return len(self.slots.queue)

    def execute(self, cycles: int, trace=None, deadline=None,
                on_dequeue=None):
        """Process generator: occupy one thread for ``cycles``.

        Run-to-completion: once started, the work is never preempted.
        ``trace`` is an optional ``(trace_id, parent_span_id)`` pair; a
        span then covers the thread-grant queueing plus the busy time.

        ``deadline`` (absolute sim time) is checked at the thread
        grant — the dequeue point of the NPU run queue. Run-to-
        completion with a known cycle count makes lateness provable
        before any cycle is charged: work that cannot finish by its
        deadline returns ``None`` without executing. ``on_dequeue``
        (optional callable) receives the thread-grant queue wait in
        seconds, the sojourn signal the load shedders watch. Without a
        deadline the return value is the elapsed (queue + busy)
        seconds, as before.
        """
        start = self.env.now
        with self.slots.request() as slot:
            yield slot
            if on_dequeue is not None:
                on_dequeue(self.env.now - start)
            if (deadline is not None
                    and self.env.now + cycles / self.clock_hz > deadline):
                return None
            duration = cycles / self.clock_hz
            yield self.env.timeout(duration)
            self.stats.requests += 1
            self.stats.cycles += cycles
            self.stats.busy_seconds += duration
        tracer = self.env.tracer
        if tracer is not None and trace is not None:
            trace_id, parent_id = trace
            tracer.end(tracer.begin(
                "nic.npu", "nic", trace_id=trace_id, parent=parent_id,
                node=f"island{self.island_id}/core{self.core_id}",
                start=start, tags={"cycles": cycles},
            ))
        return self.env.now - start

    def __repr__(self) -> str:
        return (
            f"<NPUCore {self.core_id} island={self.island_id} "
            f"busy={self.busy_threads}/{self.threads}>"
        )


class Island:
    """A cluster of cores sharing a Cluster Target Memory (CTM)."""

    def __init__(self, island_id: int, ctm_bytes: int = 256 * 1024) -> None:
        self.island_id = island_id
        self.ctm_bytes = ctm_bytes
        self.cores: Dict[int, NPUCore] = {}

    def add_core(self, core: NPUCore) -> None:
        self.cores[core.core_id] = core

    def __repr__(self) -> str:
        return f"<Island {self.island_id} cores={len(self.cores)}>"
