"""Shared experiment machinery: testbed runs and report formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs import TraceCollection
from ..serverless import Testbed
from ..workloads import WorkloadSpec


def run_scenario(
    tb: Testbed,
    specs: Sequence[WorkloadSpec],
    backend_kind: str,
    body: Callable,
):
    """Deploy ``specs`` on ``backend_kind``, then run ``body(env)``.

    ``body`` is a generator function; its return value is returned.
    """
    tb.add_backend(backend_kind)

    def scenario(env):
        for spec in specs:
            yield tb.manager.deploy(spec, backend_kind)
        result = yield from body(env)
        return result

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    return process.value


@dataclass
class Cell:
    """One (workload, backend) measurement in a table/figure."""

    workload: str
    backend: str
    mean: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    throughput: float = 0.0
    samples: List[float] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExperimentReport:
    """A formatted, paper-vs-measured experiment result."""

    experiment: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: List[str] = field(default_factory=list)
    cells: Dict[Any, Cell] = field(default_factory=dict)
    #: Spans collected across the experiment's cells when the config
    #: asked for tracing (``ExperimentConfig.trace``); None otherwise.
    trace: Optional[TraceCollection] = None

    def format(self) -> str:
        widths = [len(str(h)) for h in self.headers]
        rendered_rows = []
        for row in self.rows:
            rendered = [_render(value) for value in row]
            widths = [max(w, len(r)) for w, r in zip(widths, rendered)]
            rendered_rows.append(rendered)
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(str(h).ljust(w)
                               for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for rendered in rendered_rows:
            lines.append("  ".join(r.ljust(w)
                                   for r, w in zip(rendered, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - convenience
        print(self.format())


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        if abs(value) >= 1e-3:
            return f"{value * 1e3:.3f}m"
        return f"{value * 1e6:.2f}u"
    return str(value)


def seconds_to_ms(value: float) -> float:
    return value * 1e3


def mib(value_bytes: float) -> float:
    return value_bytes / (1024.0 * 1024.0)
