"""Static-verification summary: WCET and admission per workload.

Not a paper table — a repo-native report that shows what the eBPF-style
lambda verifier (``repro.isa.verify``) proves about each built-in
workload, and what the admission policy does with it: the interactive
lambdas (web server, KV client) are admitted to the NIC well under the
1 ms SLO, while the image transformer is verified-correct but orders of
magnitude too slow for run-to-completion NPU cores and is rerouted to a
host backend.
"""

from __future__ import annotations

from typing import Optional

from ..isa.verify import verify_program
from ..serverless.admission import NIC_CLOCK_HZ, AdmissionError, AdmissionPolicy
from ..workloads import standard_workloads
from .calibration import DEFAULT_CONFIG, ExperimentConfig
from .harness import ExperimentReport

AVAILABLE_KINDS = ("lambda-nic", "bare-metal", "container")


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    config = config or DEFAULT_CONFIG
    policy = AdmissionPolicy()
    rows = []
    for name, spec in sorted(standard_workloads().items()):
        program = spec.nic_program()
        report = verify_program(program)
        try:
            decision = policy.evaluate(spec, "lambda-nic",
                                       available_kinds=AVAILABLE_KINDS)
            outcome = decision.reason
            backend = decision.admitted_kind
        except AdmissionError:
            outcome, backend = "rejected", "-"
        wcet = report.wcet_cycles
        rows.append([
            name,
            program.instruction_count,
            "ok" if report.ok else "rejected",
            len(report.warnings),
            wcet if wcet is not None else "unbounded",
            (f"{wcet / NIC_CLOCK_HZ * 1e6:.2f}"
             if wcet is not None else "-"),
            f"{outcome} -> {backend}",
        ])
    return ExperimentReport(
        experiment="verify",
        title="Static verification and NIC admission (repo-native)",
        headers=["workload", "instrs", "verifier", "warnings",
                 "wcet_cycles", "wcet_us", "admission"],
        rows=rows,
        notes=[
            f"NIC SLO {policy.nic_slo_seconds * 1e3:.1f} ms at "
            f"{NIC_CLOCK_HZ / 1e6:.0f} MHz; WCET from the interpreter's "
            "cycle model (loop bounds inferred statically).",
            "Admission: reasons are admitted / rerouted-wcet / "
            "rerouted-unbounded / rejected; reroutes pick the first "
            "available host backend.",
        ],
    )
