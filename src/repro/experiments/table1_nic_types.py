"""Table 1: qualitative comparison of SmartNIC types (§2.2).

Static content from the paper, exposed as an experiment so every table
in the evaluation has a regeneration target, plus a quantitative
sanity check: the modelled ASIC NIC in this repo actually has the
200+-core/low-latency profile the table claims.
"""

from __future__ import annotations

from typing import Optional

from ..hw import SmartNIC
from ..net import Network
from ..sim import Environment, RngRegistry
from .calibration import DEFAULT_CONFIG, ExperimentConfig, PAPER_TABLE1
from .harness import ExperimentReport


def modeled_asic_profile() -> dict:
    """Core/thread/latency figures of the modelled Agilio CX."""
    env = Environment()
    network = Network(env)
    nic = SmartNIC(env, network.add_node("nic"),
                   rng=RngRegistry(seed=0).stream("nic"))
    return {
        "cores": len(nic.cores),
        "threads": nic.total_threads,
        "clock_mhz": nic.clock_hz / 1e6,
        "islands": len(nic.islands),
    }


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    rows = [["", "FPGA-based", "ASIC-based", "SoC-based"]]
    for metric, fpga, asic, soc in PAPER_TABLE1:
        rows.append([metric, fpga, asic, soc])
    profile = modeled_asic_profile()
    return ExperimentReport(
        experiment="Table 1",
        title="SmartNIC type comparison (paper, qualitative)",
        headers=["metric", "FPGA", "ASIC (this repo's model)", "SoC"],
        rows=rows[1:],
        notes=[
            f"modelled ASIC NIC: {profile['cores']} cores x "
            f"{profile['threads'] // profile['cores']} threads @ "
            f"{profile['clock_mhz']:.0f} MHz in {profile['islands']} islands",
        ],
    )
