"""Overload storm: open-loop load past saturation with overload control.

The robustness experiment for end-to-end overload control (Issue 8).
A deliberately small λ-NIC fleet (two NICs, one dual-thread core each,
a scaled-down clock so service times sit in the milliseconds) serves
two workloads with very different verifier WCETs — ``web_server``
(~1.3 k cycles) and ``kv_client`` (~100 cycles) — under bursty
open-loop MMPP arrivals, in two phases on fresh same-seed testbeds:

* ``peak`` — arrivals at the fleet's saturation rate;
* ``overload`` — the same fleet at 2× saturation.

Every request carries an absolute deadline; the full overload stack is
on: deadline propagation with WCET-aware drops at the NIC, CoDel-style
shedders at the gateway and per backend, a per-workload retry budget,
and p95 hedged requests. The contract under test (the benchmark's
gates): goodput at 2× saturation stays within 80 % of peak goodput,
the p99 of *successful* requests stays bounded by the deadline, and no
expired work is ever executed — NPU cycles are only ever charged to
requests that could still meet their deadline when dispatched (the
bounded race window is completions that expire mid-execution).

``image_transformer`` sits this storm out: at the scaled-down NIC
clock its WCET (~19.7 M cycles) exceeds any interactive deadline, so
the admission story for it is the arrival-time infeasibility drop the
unit tests cover, not a load-dependent gate.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs import TraceCollection
from ..serverless import OverloadConfig, Testbed, open_loop
from ..workloads import standard_workloads
from .calibration import DEFAULT_CONFIG, ExperimentConfig
from .harness import Cell, ExperimentReport

#: A small, slow NIC fleet: 2 NICs x 1 core x 2 threads at 50 kHz-class
#: clock puts web_server service at ~27 ms — saturation at O(100) rps,
#: cheap enough to drive well past saturation in simulation.
NIC_KWARGS = dict(
    n_cores=1,
    threads_per_core=2,
    cores_per_island=1,
    clock_hz=5e4,
)

#: Gateway stance: short timeout, few retries, breakers effectively out
#: of the way (overload is not a target-health signal; ejecting a NIC
#: that is merely busy would amplify the storm).
GATEWAY_KWARGS = dict(
    request_timeout=0.1,
    max_retries=2,
    backoff_base=0.01,
    backoff_max=0.04,
    breaker_threshold=10_000,
    breaker_reset_timeout=0.5,
)

#: The full overload stack (Issue 8), all four mechanisms on.
OVERLOAD = OverloadConfig(
    deadline_seconds=0.3,
    retry_budget_ratio=0.1,
    shed_target_seconds=0.02,
    backend_shed_target_seconds=0.06,
    hedge_quantile=95.0,
)

#: Per-request deadline stamped by the load generator (relative s).
DEADLINE_SECONDS = 0.3

STORM_WORKLOADS = ["web_server", "kv_client"]

#: Empirical fleet saturation (requests/s): web_server holds an NPU
#: thread ~33 ms per request (1328 WCET + 300 pipeline cycles) and
#: kv_client ~15 ms (two serve passes, each paying the pipeline cost),
#: so 60 + 135 rps ≈ the fleet's 4 threads fully busy.
SATURATION_RATE_RPS = {"web_server": 60.0, "kv_client": 135.0}

DURATION_SECONDS = 8.0

#: (phase label, arrival-rate multiplier over saturation).
PHASES = (("peak", 1.0), ("overload", 2.0))


def _nic_stats(tb: Testbed) -> Dict[str, int]:
    """Fleet-wide NIC drop/expiry accounting."""
    totals = dict(expired_on_arrival=0, expired_on_dequeue=0,
                  expired_completions=0, shed=0, served=0)
    for nic in tb.nics:
        totals["expired_on_arrival"] += nic.stats.expired_on_arrival
        totals["expired_on_dequeue"] += nic.stats.expired_on_dequeue
        totals["expired_completions"] += nic.stats.expired_completions
        totals["shed"] += nic.stats.shed
        totals["served"] += nic.stats.requests_served
    return totals


def run_phase(phase: str, scale: float, seed: int = 42,
              duration: float = DURATION_SECONDS,
              trace: bool = False) -> dict:
    """One load phase on a fresh testbed; returns results and stats."""
    tb = Testbed(
        seed=seed, n_workers=2, with_tracing=trace,
        gateway_kwargs=dict(GATEWAY_KWARGS),
        nic_kwargs=dict(NIC_KWARGS),
        overload=OVERLOAD,
    )
    tb.add_lambda_nic_backend()
    specs = standard_workloads()

    def scenario(env):
        for name in STORM_WORKLOADS:
            yield tb.manager.deploy(specs[name], "lambda-nic")
        procs = {}
        for name in STORM_WORKLOADS:
            spec = specs[name]
            procs[name] = open_loop(
                env, tb.gateway, name,
                rate_rps=SATURATION_RATE_RPS[name] * scale,
                duration=duration,
                rng=tb.rng.stream(f"load:{phase}:{name}"),
                payload_bytes=spec.request_bytes if spec.uses_rdma else None,
                arrival="mmpp",
                deadline_seconds=DEADLINE_SECONDS,
            )
        yield env.all_of(list(procs.values()))
        return {name: proc.value for name, proc in procs.items()}

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    results = process.value
    gw = tb.gateway
    return {
        "testbed": tb,
        "results": results,
        "nic": _nic_stats(tb),
        "gateway": {
            "hedges": int(gw.hedged_requests_total.total),
            "retries": int(gw.retries_total.total),
            "shed": int(gw.shed_total.total),
            "expired": int(gw.expired_total.total),
            "budget_exhausted": int(gw.retry_budget_exhausted_total.total),
            "duplicates": int(gw.duplicate_responses_total.total),
            "requests": int(gw.requests_total.total),
        },
    }


def run_storm(seed: int = 42, duration: float = DURATION_SECONDS,
              trace: bool = False) -> dict:
    """Run both phases; returns {phase: run_phase(...) dict}."""
    return {
        phase: run_phase(phase, scale, seed=seed, duration=duration,
                         trace=trace)
        for phase, scale in PHASES
    }


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """The registered experiment entry point."""
    config = config or DEFAULT_CONFIG
    storm = run_storm(seed=config.seed, trace=config.trace)
    collection = None
    if config.trace:
        collection = TraceCollection()
        for phase, _ in PHASES:
            collection.add(phase, storm[phase]["testbed"].tracer)

    cells = {}
    rows = []
    for phase, scale in PHASES:
        for name in STORM_WORKLOADS:
            result = storm[phase]["results"][name]
            cells[f"{name}:{phase}"] = Cell(
                workload=name, backend="lambda-nic",
                mean=result.mean_latency, p50=result.percentile(50),
                p99=result.percentile(99),
                samples=sorted(result.latencies),
                extra={
                    "phase": phase,
                    "goodput_rps": result.goodput_rps,
                    "shed": result.shed,
                    "expired": result.expired,
                    "budget_exhausted": result.budget_exhausted,
                },
            )
            rows.append([
                name,
                phase,
                result.goodput_rps,
                result.throughput_rps,
                result.percentile(99) * 1e3,
                result.shed,
                result.expired,
                result.budget_exhausted,
            ])

    peak_nic = storm["peak"]["nic"]
    over_nic = storm["overload"]["nic"]
    peak_gw = storm["peak"]["gateway"]
    over_gw = storm["overload"]["gateway"]
    report = ExperimentReport(
        experiment="Overload storm",
        title="open-loop load past saturation with overload control",
        headers=["workload", "phase", "goodput_rps", "throughput_rps",
                 "p99_ms", "shed", "expired", "budget_exh"],
        rows=rows,
        notes=[
            f"peak: {peak_gw['hedges']} hedges, {peak_gw['retries']} "
            f"retries, NIC drops "
            f"{peak_nic['expired_on_arrival']}+{peak_nic['shed']} "
            f"(arrival-expired + shed), "
            f"{peak_nic['expired_on_dequeue']} dequeue-expired",
            f"overload (2x): {over_gw['hedges']} hedges, "
            f"{over_gw['retries']} retries, "
            f"{over_gw['budget_exhausted']} budget-exhausted, NIC drops "
            f"{over_nic['expired_on_arrival']}+{over_nic['shed']} "
            f"(arrival-expired + shed), "
            f"{over_nic['expired_on_dequeue']} dequeue-expired, "
            f"{over_nic['expired_completions']} in-flight expiries",
        ],
        cells=cells,
        trace=collection,
    )
    return report
