"""Experiment drivers: one module per paper table and figure."""

from . import (
    fault_recovery,
    fig6_latency,
    fig7_throughput,
    fig8_contention,
    fig9_optimizer,
    micro_reorder,
    migration_storm,
    overload_storm,
    perf,
    scale_sweep,
    table1_nic_types,
    table3_resources,
    table4_startup,
    verify_lambdas,
)
from .calibration import (
    BACKENDS,
    DEFAULT_CONFIG,
    ExperimentConfig,
    FAST_CONFIG,
    WORKLOAD_NAMES,
)
from .harness import Cell, ExperimentReport, mib, run_scenario

ALL_EXPERIMENTS = {
    "table1": table1_nic_types.run,
    "fig6": fig6_latency.run,
    "fig7": fig7_throughput.run,
    "fig8": fig8_contention.run,
    "table2": fig8_contention.run_table2,
    "table3": table3_resources.run,
    "table4": table4_startup.run,
    "fig9": fig9_optimizer.run,
    "reorder": micro_reorder.run,
    "fault_recovery": fault_recovery.run,
    "migration_storm": migration_storm.run,
    "overload_storm": overload_storm.run,
    "perf": perf.run,
    "scale_sweep": scale_sweep.run,
    "verify": verify_lambdas.run,
}


def run_all(config=None):
    """Run every experiment; returns {name: ExperimentReport}."""
    return {name: runner(config) for name, runner in ALL_EXPERIMENTS.items()}


__all__ = [
    "ALL_EXPERIMENTS",
    "BACKENDS",
    "Cell",
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "ExperimentReport",
    "FAST_CONFIG",
    "WORKLOAD_NAMES",
    "fault_recovery",
    "fig6_latency",
    "fig7_throughput",
    "fig8_contention",
    "fig9_optimizer",
    "mib",
    "micro_reorder",
    "migration_storm",
    "overload_storm",
    "perf",
    "run_all",
    "run_scenario",
    "scale_sweep",
    "table1_nic_types",
    "table3_resources",
    "table4_startup",
    "verify_lambdas",
]
