"""Table 3: added resource use for the image transformer (§6.4).

Each backend serves a burst of 56 concurrent image-transformer
requests; we report the additional host CPU (averaged over the burst),
host memory, and NIC memory attributable to the workload — the paper's
λ-NIC row is ~0 host resources and ~63 MiB of NIC memory.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..compiler import FIRMWARE_BASE_BYTES
from ..serverless import Testbed, closed_loop
from ..workloads import image_transformer_spec
from .calibration import BACKENDS, DEFAULT_CONFIG, ExperimentConfig, PAPER_TABLE3
from .harness import Cell, ExperimentReport, mib

#: The paper's burst size: the testbed CPU's thread count.
BURST = 56


def run_cell(backend: str, config: ExperimentConfig) -> Cell:
    spec = image_transformer_spec()
    tb = Testbed(seed=config.seed, n_workers=1)
    tb.add_backend(backend)

    def scenario(env):
        yield tb.manager.deploy(spec, backend)
        window_start = env.now
        result = yield closed_loop(
            tb.env, tb.gateway, spec.name, n_requests=BURST,
            concurrency=BURST, payload_bytes=spec.request_bytes,
        )
        return result, window_start

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    load, window_start = process.value
    window = max(1e-9, tb.env.now - window_start)

    host_cpu_pct = 0.0
    host_mem = 0.0
    nic_mem = 0.0
    if backend in ("bare-metal", "container"):
        server = tb.host_servers(backend)[0]
        host_cpu_pct = 100.0 * server.cpu.stats.task_utilization(
            spec.name, window, server.cpu.n_threads
        )
        host_mem = server.memory.used_bytes
    else:
        # Firmware + writable data + the RDMA staging-buffer pool.
        nic_mem = tb.nics[0].memory.total_used_bytes
        # The host CPU is untouched; the tiny residual is the driver.
        host_cpu_pct = 0.1

    return Cell(
        workload="image_transformer",
        backend=backend,
        throughput=load.throughput_rps,
        extra={
            "host_cpu_pct": host_cpu_pct,
            "host_mem_mib": mib(host_mem),
            "nic_mem_mib": mib(nic_mem),
            "completed": load.completed,
        },
    )


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Regenerate Table 3."""
    config = config or DEFAULT_CONFIG
    cells: Dict[str, Cell] = {
        backend: run_cell(backend, config) for backend in BACKENDS
    }
    rows = []
    for metric, key, unit in [
        ("Host CPU (avg %)", "host_cpu_pct", "%"),
        ("Host memory (MiB)", "host_mem_mib", "MiB"),
        ("NIC memory (MiB)", "nic_mem_mib", "MiB"),
    ]:
        row = [metric]
        for backend in BACKENDS:
            measured = cells[backend].extra[key]
            paper = PAPER_TABLE3[backend][key]
            row.append(f"{measured:.1f} (paper {paper})")
        rows.append(row)
    return ExperimentReport(
        experiment="Table 3",
        title="added resources, image transformer @56 concurrent",
        headers=["metric"] + BACKENDS,
        rows=rows,
        cells=cells,
    )
