"""Figure 8 + Table 2: three web-server lambdas under contention (§6.3.2).

Three distinct web-server lambdas are deployed together and requests
are generated round-robin, forcing the backend to switch between
lambdas per request. The paper contrasts λ-NIC (no degradation) with
the bare-metal backend at 56 threads and on a single core; Table 2
reports throughput for the same setup.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..host import CpuParams, HostCPU
from ..serverless import Testbed, round_robin_closed_loop
from ..workloads import web_server_spec
from .calibration import DEFAULT_CONFIG, ExperimentConfig, PAPER_TABLE2
from .harness import Cell, ExperimentReport, run_scenario

#: The three contention scenarios of Figure 8 / Table 2.
SCENARIOS = ["lambda-nic-56", "bare-metal-56", "bare-metal-1"]


def _make_testbed(scenario: str, config: ExperimentConfig) -> Testbed:
    tb = Testbed(seed=config.seed, n_workers=1)
    if scenario == "bare-metal-1":
        # Single-core variant: replace each worker CPU with one thread.
        tb.add_bare_metal_backend()
        for server in tb.host_servers("bare-metal"):
            server.cpu = HostCPU(
                tb.env, CpuParams(n_threads=1,
                                  context_switch_seconds=server.cpu.params
                                  .context_switch_seconds),
            )
    elif scenario == "bare-metal-56":
        tb.add_bare_metal_backend()
    elif scenario == "lambda-nic-56":
        tb.add_lambda_nic_backend()
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    return tb


def run_scenario_cell(scenario: str, config: ExperimentConfig) -> Cell:
    backend = "bare-metal" if scenario.startswith("bare-metal") else "lambda-nic"
    concurrency = config.contention_concurrency \
        if scenario != "bare-metal-1" else max(2, config.contention_concurrency // 2)
    specs = [web_server_spec(f"web{index}") for index in range(3)]
    tb = _make_testbed(scenario, config)

    def deploy_and_drive(env):
        for spec in specs:
            yield tb.manager.deploy(spec, backend)
        results = yield round_robin_closed_loop(
            tb.env, tb.gateway, [spec.name for spec in specs],
            n_requests=config.contention_requests, concurrency=concurrency,
        )
        return results

    def scenario_body(env):
        result = yield from deploy_and_drive(env)
        return result

    process = tb.env.process(scenario_body(tb.env))
    tb.run(until=process)
    combined = process.value["__all__"]
    return Cell(
        workload="3x web_server",
        backend=scenario,
        mean=combined.mean_latency,
        p50=combined.percentile(50),
        p99=combined.percentile(99),
        throughput=combined.throughput_rps,
        samples=sorted(combined.latencies),
    )


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Regenerate Figure 8 (latency CDFs under contention)."""
    config = config or DEFAULT_CONFIG
    cells: Dict[str, Cell] = {
        scenario: run_scenario_cell(scenario, config)
        for scenario in SCENARIOS
    }
    nic = cells["lambda-nic-56"]
    rows = []
    for scenario in SCENARIOS:
        cell = cells[scenario]
        rows.append([
            scenario,
            cell.mean * 1e3,
            cell.p99 * 1e3,
            cell.mean / nic.mean,
        ])
    return ExperimentReport(
        experiment="Figure 8",
        title="latency with three concurrent web-server lambdas (ms)",
        headers=["scenario", "mean_ms", "p99_ms", "mean_vs_nic"],
        rows=rows,
        notes=[
            "paper: bare-metal 178x-330x worse than lambda-nic under "
            "contention; lambda-nic unaffected by context switching",
        ],
        cells=cells,
    )


def run_table2(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Regenerate Table 2 (throughput under the Figure-8 setup)."""
    config = config or DEFAULT_CONFIG
    cells = {scenario: run_scenario_cell(scenario, config)
             for scenario in SCENARIOS}
    rows = [
        [scenario, cells[scenario].throughput, PAPER_TABLE2[scenario]]
        for scenario in SCENARIOS
    ]
    return ExperimentReport(
        experiment="Table 2",
        title="throughput with three web-server lambdas (req/s)",
        headers=["scenario", "measured_rps", "paper_rps"],
        rows=rows,
        notes=["same run configuration as Figure 8"],
        cells=cells,
    )
