"""Figure 6: latency ECDFs, single warm lambda in isolation (§6.3.1).

For every (workload, backend) cell a fresh testbed is built, the single
workload deployed warm, and a one-at-a-time closed loop measures
gateway-observed latency. The paper's claims: λ-NIC beats containers by
~880x and bare-metal by ~30x on web/kv, 5x/3x on the image transformer,
and 5-24x at the 99th percentile vs bare-metal.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..obs import TraceCollection
from ..serverless import Testbed, closed_loop
from ..workloads import standard_workloads
from .calibration import BACKENDS, DEFAULT_CONFIG, ExperimentConfig
from .harness import Cell, ExperimentReport, run_scenario


def run_cell(workload_name: str, backend: str,
             config: ExperimentConfig,
             collection: Optional[TraceCollection] = None) -> Cell:
    """Measure one (workload, backend) cell in isolation."""
    spec = standard_workloads()[workload_name]
    n_requests = (config.image_latency_requests
                  if spec.kind == "image" else config.latency_requests)
    tb = Testbed(seed=config.seed, n_workers=1,
                 with_tracing=collection is not None)

    def body(env):
        result = yield closed_loop(
            tb.env, tb.gateway, spec.name,
            n_requests=n_requests, concurrency=1,
            payload_bytes=spec.request_bytes if spec.uses_rdma else None,
        )
        return result

    load = run_scenario(tb, [spec], backend, body)
    if collection is not None:
        collection.add(f"{workload_name}:{backend}", tb.tracer)
    return Cell(
        workload=workload_name,
        backend=backend,
        mean=load.mean_latency,
        p50=load.percentile(50),
        p99=load.percentile(99),
        samples=sorted(load.latencies),
    )


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Regenerate Figure 6 (all nine cells plus improvement factors)."""
    config = config or DEFAULT_CONFIG
    collection = TraceCollection() if config.trace else None
    cells: Dict[Tuple[str, str], Cell] = {}
    for workload_name in ["web_server", "kv_client", "image_transformer"]:
        for backend in BACKENDS:
            cells[(workload_name, backend)] = run_cell(
                workload_name, backend, config, collection
            )

    rows = []
    for workload_name in ["web_server", "kv_client", "image_transformer"]:
        nic = cells[(workload_name, "lambda-nic")]
        for backend in BACKENDS:
            cell = cells[(workload_name, backend)]
            rows.append([
                workload_name,
                backend,
                cell.mean * 1e3,
                cell.p50 * 1e3,
                cell.p99 * 1e3,
                cell.mean / nic.mean,
                cell.p99 / nic.p99,
            ])

    report = ExperimentReport(
        experiment="Figure 6",
        title="request latency, single lambda in isolation (ms)",
        headers=["workload", "backend", "mean_ms", "p50_ms", "p99_ms",
                 "mean_vs_nic", "p99_vs_nic"],
        rows=rows,
        notes=[
            "paper: container ~880x / bare-metal ~30x slower than lambda-nic "
            "(web/kv); 5x / 3x (image); 5-24x at p99 vs bare-metal",
        ],
        cells=cells,
        trace=collection,
    )
    return report


def ecdf(report: ExperimentReport, workload: str, backend: str):
    """(latency, fraction) pairs for plotting one ECDF curve."""
    cell = report.cells[(workload, backend)]
    n = len(cell.samples)
    return [(value, (index + 1) / n)
            for index, value in enumerate(cell.samples)]
