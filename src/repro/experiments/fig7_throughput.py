"""Figure 7: average throughput in isolation (§6.3.1).

Two modes, as in the paper: closed-loop with a single outstanding
request, and parallel testing with 56 outstanding requests (the
testbed CPU's hardware-thread count). λ-NIC should win by roughly one
to two orders of magnitude on web/kv and ~5-15x on the image
transformer.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..obs import TraceCollection
from ..serverless import Testbed, closed_loop
from ..workloads import standard_workloads
from .calibration import BACKENDS, DEFAULT_CONFIG, ExperimentConfig
from .harness import Cell, ExperimentReport, run_scenario


def run_cell(workload_name: str, backend: str, concurrency: int,
             config: ExperimentConfig,
             collection: Optional[TraceCollection] = None) -> Cell:
    spec = standard_workloads()[workload_name]
    n_requests = (config.image_throughput_requests
                  if spec.kind == "image" else config.throughput_requests)
    n_requests = max(n_requests, concurrency * 2)
    tb = Testbed(seed=config.seed, n_workers=1,
                 with_tracing=collection is not None)

    def body(env):
        result = yield closed_loop(
            tb.env, tb.gateway, spec.name,
            n_requests=n_requests, concurrency=concurrency,
            payload_bytes=spec.request_bytes if spec.uses_rdma else None,
        )
        return result

    load = run_scenario(tb, [spec], backend, body)
    if collection is not None:
        collection.add(f"{workload_name}:{backend}:c{concurrency}", tb.tracer)
    return Cell(
        workload=workload_name,
        backend=backend,
        mean=load.mean_latency,
        throughput=load.throughput_rps,
        extra={"concurrency": concurrency, "completed": load.completed},
    )


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Regenerate Figure 7 (throughput at 1 and 56 threads)."""
    config = config or DEFAULT_CONFIG
    collection = TraceCollection() if config.trace else None
    cells: Dict[Tuple[str, str, int], Cell] = {}
    for workload_name in ["web_server", "kv_client", "image_transformer"]:
        for backend in BACKENDS:
            for concurrency in config.concurrencies:
                cells[(workload_name, backend, concurrency)] = run_cell(
                    workload_name, backend, concurrency, config, collection
                )

    rows = []
    for workload_name in ["web_server", "kv_client", "image_transformer"]:
        for concurrency in config.concurrencies:
            nic = cells[(workload_name, "lambda-nic", concurrency)]
            for backend in BACKENDS:
                cell = cells[(workload_name, backend, concurrency)]
                rows.append([
                    workload_name,
                    f"{concurrency} thread" + ("s" if concurrency > 1 else ""),
                    backend,
                    cell.throughput,
                    nic.throughput / cell.throughput
                    if cell.throughput else float("inf"),
                ])

    return ExperimentReport(
        experiment="Figure 7",
        title="average throughput in isolation (req/s)",
        headers=["workload", "mode", "backend", "req_per_s", "nic_speedup"],
        rows=rows,
        notes=[
            "paper: lambda-nic 27x-736x faster for web/kv, 5x-15x for image",
        ],
        cells=cells,
        trace=collection,
    )
