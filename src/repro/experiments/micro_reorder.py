"""Footnote 3 microbenchmark: NIC-side packet reordering cost.

The paper measured that the Netronome NIC reorders four 100 B packets
in 120 instructions — about 1.3 % of the instructions used by the
benchmark lambdas. We reproduce both numbers from the model: the
reorder buffer's cost for a 4-segment message, and that cost as a
fraction of the per-lambda firmware footprint.
"""

from __future__ import annotations

from typing import Optional

from ..transport import ReorderBuffer
from ..workloads import fig9_workloads
from .calibration import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    PAPER_REORDER_FRACTION_PCT,
    PAPER_REORDER_INSTRUCTIONS,
)
from .harness import ExperimentReport


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    buffer = ReorderBuffer()
    # Functional check: actually reorder four out-of-order 100 B packets.
    message = None
    for seq in [3, 1, 0, 2]:
        message = buffer.add("msg", seq, 4, b"x" * 100)
    assert message is not None and len(message) == 4
    instructions = buffer.instructions_for(4)

    # "1.3% of the instructions used by our benchmark lambdas": the
    # composed benchmark firmware (the unoptimized Figure-9 image).
    from ..compiler import compile_unit
    from .fig9_optimizer import build_unit

    firmware = compile_unit(build_unit(), optimize=False)
    benchmark_instructions = firmware.instruction_count
    fraction_pct = 100.0 * instructions / benchmark_instructions

    rows = [
        ["reorder 4x100B packets (instructions)", instructions,
         PAPER_REORDER_INSTRUCTIONS],
        ["benchmark-lambda firmware instructions",
         benchmark_instructions, "-"],
        ["reordering fraction (%)", f"{fraction_pct:.2f}",
         PAPER_REORDER_FRACTION_PCT],
    ]
    return ExperimentReport(
        experiment="Footnote 3",
        title="multi-packet reordering microbenchmark",
        headers=["metric", "measured", "paper"],
        rows=rows,
    )
