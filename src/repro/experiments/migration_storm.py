"""Migration storm: live migrations under fault injection.

The robustness experiment for the "one resource pool" control plane
(Issue 6): all three workloads deploy on λ-NIC with warm bare-metal
standbys, open-loop load runs throughout, and two storms overlap:

* a *migration* storm — scripted live migrations (NIC → host, host →
  NIC, NIC → NIC) driven through the
  :class:`~repro.serverless.migration.MigrationController`'s state
  machine, some deliberately aimed at targets a fault has just killed
  (those must roll back to a serving source);
* a *fault* storm — NIC kills, island losses, link flaps, and a Raft
  leader crash from a scripted
  :class:`~repro.faults.FaultPlan`, including a full λ-NIC outage that
  the health monitor answers with *forced* migrations (degrade), then
  reverses (restore) when power returns.

The contract under test: no request is lost or duplicated (exactly-once
observable responses — held requests drain into the post-cutover route,
dual-routed copies dedup by request id), per-workload availability
stays ≥ 99 %, a failed migration leaves the source serving, and the
whole run is deterministic under a fixed seed.
"""

from __future__ import annotations

from typing import Optional

from ..faults import FaultPlan
from ..obs import TraceCollection
from ..serverless import Testbed, open_loop
from ..workloads import standard_workloads
from .calibration import DEFAULT_CONFIG, WORKLOAD_NAMES, ExperimentConfig
from .harness import Cell, ExperimentReport

#: Gateway tuned for fast failure detection (same stance as the fault
#: recovery storm: short timeouts, aggressive retries, quick breakers).
GATEWAY_KWARGS = dict(
    request_timeout=0.25,
    max_retries=8,
    backoff_base=0.05,
    backoff_max=0.5,
    breaker_threshold=3,
    breaker_reset_timeout=0.5,
)

#: Migration controller stance for the storm: short drains so held
#: requests see a bounded latency bump even when cutover races a fault.
MIGRATION_KWARGS = dict(
    drain_timeout=0.5,
    drain_poll_seconds=0.002,
)

SETTLE_SECONDS = 5.0
AFTER_SECONDS = 10.0


def build_plan(t0: float) -> FaultPlan:
    """The fault half of the storm, offset from ``t0``."""
    return (
        FaultPlan()
        # One NIC dies while a live migration is in flight elsewhere.
        .kill_nic(t0 + 6.0, "m2-nic")
        # Partial capacity loss on the survivor.
        .kill_island(t0 + 9.0, "m3-nic", island=0)
        .restore_island(t0 + 11.0, "m3-nic", island=0)
        .restore_nic(t0 + 12.0, "m2-nic")
        # The other NIC dies right as migrations target it.
        .kill_nic(t0 + 14.0, "m3-nic")
        .restore_nic(t0 + 17.0, "m3-nic")
        # A transient cable pull mid-migration; retries ride it out.
        .link_flap(t0 + 20.0, "m3-nic", down_for=0.5)
        # Control-plane churn: the journal substrate loses its leader.
        .crash_raft(t0 + 22.0, "leader")
        # Full λ-NIC outage: every NIC workload force-migrates to the
        # warm bare-metal standby, then restores when power returns.
        .kill_nic(t0 + 26.0, "m2-nic")
        .kill_nic(t0 + 26.0, "m3-nic")
        .restore_nic(t0 + 30.0, "m2-nic")
        .restore_nic(t0 + 30.0, "m3-nic")
    )


def migration_schedule(t0: float):
    """(fire time, workload, kwargs) for the scripted live migrations.

    Interleaved with :func:`build_plan` so some land on healthy
    substrate (must COMPLETE) and some race a fault (must roll back or
    complete off the survivor — never lose the route).
    """
    return [
        # Clean live NIC -> host migration under load.
        (t0 + 3.0, "web_server",
         dict(target_kind="bare-metal", reason="storm")),
        # Back home while m2-nic is dead: cutover lands on m3-nic.
        (t0 + 8.0, "web_server",
         dict(target_kind="lambda-nic", reason="storm")),
        # NIC -> NIC aimed at the dead m2-nic: must roll back.
        (t0 + 10.0, "kv_client",
         dict(target_kind="lambda-nic", target="m2-nic", reason="storm")),
        # NIC -> NIC onto the restored m2-nic: completes, ships state.
        (t0 + 13.0, "kv_client",
         dict(target_kind="lambda-nic", target="m2-nic", reason="storm")),
        # Host-bound migration racing the m3-nic kill.
        (t0 + 15.0, "image_transformer",
         dict(target_kind="bare-metal", reason="storm")),
        # And home again once the fleet recovers.
        (t0 + 18.5, "image_transformer",
         dict(target_kind="lambda-nic", reason="storm")),
        # A migration during the Raft leader election: the journal is
        # best-effort, the data path must not stall.
        (t0 + 23.0, "web_server",
         dict(target_kind="bare-metal", reason="storm")),
        (t0 + 24.5, "web_server",
         dict(target_kind="lambda-nic", reason="storm")),
    ]


def run_storm(seed: int = 42, rate_rps: float = 25.0,
              after_rate_rps: Optional[float] = None,
              trace: bool = False) -> dict:
    """Run the combined storm; returns raw results for reporting.

    The returned dict has ``during`` / ``after`` ({workload:
    LoadResult}), ``trace`` (fired faults), ``events`` (failover
    actions), ``migrations`` (every Migration attempted), ``mttf``,
    and the testbed itself.
    """
    tb = Testbed(
        seed=seed, n_workers=2, with_etcd=True, with_failover=True,
        with_migration=True, with_tracing=trace,
        gateway_kwargs=dict(GATEWAY_KWARGS),
        migration_kwargs=dict(MIGRATION_KWARGS),
    )
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    specs = [standard_workloads()[name] for name in WORKLOAD_NAMES]
    after_rate = after_rate_rps if after_rate_rps is not None else rate_rps

    def load_phase(phase: str, duration: float):
        procs = {}
        for spec in specs:
            procs[spec.name] = open_loop(
                tb.env, tb.gateway, spec.name,
                rate_rps=rate_rps if phase == "during" else after_rate,
                duration=duration,
                rng=tb.rng.stream(f"load:{phase}:{spec.name}"),
                payload_bytes=spec.request_bytes if spec.uses_rdma else None,
            )
        return procs

    def migration_driver(env, t0):
        for at, workload, kwargs in migration_schedule(t0):
            delay = at - env.now
            if delay > 0:
                yield env.timeout(delay)
            # Fire and keep walking the schedule: a slow migration must
            # not delay the next one (they target different workloads).
            tb.migrator.migrate(workload, **kwargs)

    def scenario(env):
        yield tb.etcd_cluster.wait_for_leader()
        for spec in specs:
            yield tb.manager.deploy(spec, "lambda-nic")
        for spec in specs:
            yield tb.manager.prepare_standby(spec.name, "bare-metal")

        t0 = env.now
        plan = build_plan(t0)
        tb.add_fault_injector(plan)
        env.process(migration_driver(env, t0))

        during_procs = load_phase(
            "during", (plan.horizon - env.now) + SETTLE_SECONDS
        )
        yield env.all_of(list(during_procs.values()))
        during = {name: proc.value for name, proc in during_procs.items()}

        after_procs = load_phase("after", AFTER_SECONDS)
        yield env.all_of(list(after_procs.values()))
        after = {name: proc.value for name, proc in after_procs.items()}
        return during, after

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    during, after = process.value
    return {
        "testbed": tb,
        "during": during,
        "after": after,
        "trace": list(tb.injector.trace),
        "events": list(tb.health.events),
        "migrations": list(tb.migrator.migrations),
        "mttf": tb.health.mean_time_to_failover(),
    }


def availability(result) -> float:
    """Fraction of issued requests that completed (1.0 == no failures)."""
    issued = result.completed + result.failures
    return result.completed / issued if issued else 1.0


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """The registered experiment entry point."""
    config = config or DEFAULT_CONFIG
    storm = run_storm(seed=config.seed, trace=config.trace)
    collection = None
    if config.trace:
        collection = TraceCollection()
        collection.add("storm", storm["testbed"].tracer)

    tb = storm["testbed"]
    cells = {}
    rows = []
    for name in WORKLOAD_NAMES:
        during, after = storm["during"][name], storm["after"][name]
        n_migrations = sum(
            1 for m in storm["migrations"] if m.workload == name)
        cells[name] = Cell(
            workload=name, backend="lambda-nic",
            mean=during.mean_latency, p50=during.percentile(50),
            p99=during.percentile(99),
            samples=sorted(during.latencies),
            extra={
                "availability": availability(during),
                "after_p99": after.percentile(99),
                "migrations": n_migrations,
                "goodput_rps": during.goodput_rps,
            },
        )
        rows.append([
            name,
            100.0 * availability(during),
            during.goodput_rps,
            during.percentile(99) * 1e3,
            after.percentile(99) * 1e3,
            n_migrations,
            during.failures,
        ])

    migrations = storm["migrations"]
    n_completed = sum(1 for m in migrations if m.outcome == "completed")
    n_rolled = sum(1 for m in migrations if m.outcome == "rolled-back")
    held = tb.gateway.held_requests_total.total
    dupes = tb.gateway.duplicate_responses_total.total
    state_bytes = tb.migrator.state_bytes_total.total
    report = ExperimentReport(
        experiment="Migration storm",
        title="live NIC↔host migration under fault injection",
        headers=["workload", "avail_pct", "goodput_rps", "p99_ms_during",
                 "p99_ms_after", "migrations", "failed"],
        rows=rows,
        notes=[
            f"{len(migrations)} migrations ({n_completed} completed, "
            f"{n_rolled} rolled back); {len(storm['trace'])} faults fired; "
            f"{len(storm['events'])} failover actions; "
            f"mean time-to-failover {storm['mttf'] * 1e3:.1f} ms",
            f"{int(held)} requests held during drains, "
            f"{int(dupes)} duplicate responses absorbed, "
            f"{int(state_bytes)} state bytes shipped",
        ],
        cells=cells,
        trace=collection,
    )
    return report
