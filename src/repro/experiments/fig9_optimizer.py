"""Figure 9: effectiveness of the target-specific optimizations (§6.4).

Compiles the paper's four-lambda set — two key-value clients, a web
server, and an image transformer — and reports the firmware
instruction count after each optimisation pass.
"""

from __future__ import annotations

from typing import Optional

from ..compiler import CompilationUnit, Firmware, compile_unit
from ..workloads import fig9_workloads
from .calibration import DEFAULT_CONFIG, ExperimentConfig, PAPER_FIG9
from .harness import ExperimentReport


def build_unit() -> CompilationUnit:
    unit = CompilationUnit()
    for index, (name, spec) in enumerate(fig9_workloads().items()):
        unit.add_lambda(spec.nic_program(), wid=index + 1,
                        route_port=f"p{index}")
    return unit


def compile_fig9() -> Firmware:
    return compile_unit(build_unit())


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Regenerate Figure 9 (measured vs paper per stage).

    The default pipeline runs the extended pass list, so the report
    has two extra stages past the paper's four; those rows show "—"
    in the paper columns.
    """
    firmware = compile_fig9()
    rows = []
    paper = list(PAPER_FIG9) + [(None, "—", None)] * (
        len(firmware.report.rows()) - len(PAPER_FIG9))
    for (stage, instructions, reduction), (_, p_count, p_red) in zip(
        firmware.report.rows(), paper,
    ):
        rows.append([
            stage,
            instructions,
            f"-{reduction:.2f}%",
            p_count,
            "—" if p_red is None else f"-{p_red:.2f}%",
        ])
    return ExperimentReport(
        experiment="Figure 9",
        title="optimizer effectiveness (firmware instruction count)",
        headers=["stage", "measured", "measured_cum", "paper", "paper_cum"],
        rows=rows,
        notes=["2 kv clients + web server + image transformer in one firmware",
               "stages past the paper's four are this repo's extended passes"],
    )
