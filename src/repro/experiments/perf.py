"""Simulator performance benchmark: wall-clock throughput, not paper data.

Unlike the other experiment drivers, this one measures the *simulator
itself*: lambda executions per wall-clock second under the reference
interpreter, the pre-decoded fast-path engine, the source-codegen JIT,
and memoized replay, plus end-to-end simulation events per second. It
backs the perf-regression harness in ``benchmarks/test_sim_perf.py``
(which asserts the fast path stays at least 3x faster than the
reference interpreter, the JIT at least 2x faster than the fast path,
and writes ``BENCH_sim_perf.json``).

All numbers here are host wall-clock rates. Simulated results are
unaffected by the engine choice — the differential suites in
``tests/isa/test_fastpath.py`` and ``tests/isa/test_jit.py`` prove
result equality — so this driver never compares against paper figures;
its "paper" column is the reference engine.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List, Optional, Tuple

from ..hw.memo import ExecutionMemoCache, make_key
from ..isa import FastInterpreter, Interpreter, JitInterpreter
from ..serverless import Testbed, closed_loop
from ..workloads import standard_workloads
from .calibration import DEFAULT_CONFIG, ExperimentConfig
from .harness import ExperimentReport

#: The regression gates enforced by benchmarks/test_sim_perf.py.
MIN_FASTPATH_SPEEDUP = 3.0
MIN_JIT_SPEEDUP = 2.0  # JIT over fastpath


def _webserver_inputs(n: int) -> List[Tuple[Dict, Dict]]:
    """Deterministic request stream for the web-server lambda."""
    return [
        (
            {"LambdaHeader": {"wid": 1, "request_id": i, "seq": 0,
                              "is_response": 0}},
            {"has_LambdaHeader": 1, "ingress_port": i % 4},
        )
        for i in range(n)
    ]


def _fresh_memory(program) -> Dict[str, bytearray]:
    return {
        obj.name: bytearray(obj.size_bytes)
        for obj in program.objects.values()
    }


def _time_executions(engine, program, inputs, memory) -> float:
    """Seconds of wall-clock to run every input through ``engine``."""
    run = engine.run
    started = time.perf_counter()
    for headers, meta in inputs:
        run(program, headers={k: dict(v) for k, v in headers.items()},
            meta=dict(meta), memory=memory)
    return time.perf_counter() - started


def measure_engine_rates(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, float]:
    """Lambda executions per second across all three engine tiers.

    Every engine runs the identical web-server request stream against
    its own persistent memory; the compiled tiers are warmed once so
    the one-time compile is not billed to the steady-state rate.
    """
    config = config or DEFAULT_CONFIG
    program = standard_workloads()["web_server"].nic_factory()
    inputs = _webserver_inputs(config.perf_requests)

    reference = Interpreter()
    fast = FastInterpreter()
    jit = JitInterpreter()
    warm_headers, warm_meta = _webserver_inputs(1)[0]
    for engine in (fast, jit):
        engine.run(program, headers={k: dict(v)
                                     for k, v in warm_headers.items()},
                   meta=dict(warm_meta), memory=_fresh_memory(program))

    runs = max(1, config.bench_runs)

    def median_seconds(engine) -> float:
        return statistics.median(
            _time_executions(engine, program, inputs,
                             _fresh_memory(program))
            for _ in range(runs)
        )

    reference_s = median_seconds(reference)
    fast_s = median_seconds(fast)
    jit_s = median_seconds(jit)
    n = float(len(inputs))
    return {
        "reference_exec_per_s": n / reference_s,
        "fastpath_exec_per_s": n / fast_s,
        "fastpath_speedup": reference_s / fast_s,
        "jit_exec_per_s": n / jit_s,
        "jit_speedup": fast_s / jit_s,
        "jit_fallbacks": float(jit.stats.fallbacks),
    }


def measure_memo_rates(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, float]:
    """Replay rate of the execution memo cache on a pure lambda.

    The KV-client lambda's lookup path never writes persistent memory,
    so a repeated identical request is the memo cache's best case: one
    real execution, then pure replays.
    """
    config = config or DEFAULT_CONFIG
    program = standard_workloads()["kv_client"].nic_factory()
    fast = FastInterpreter()
    memo = ExecutionMemoCache(max_entries=64)
    memory = _fresh_memory(program)
    headers = {"LambdaHeader": {"wid": 2, "request_id": 7, "seq": 0,
                                "is_response": 0}}
    meta = {"has_LambdaHeader": 1, "ingress_port": 0}
    n = config.perf_requests

    def serve_once() -> None:
        h = {k: dict(v) for k, v in headers.items()}
        m = dict(meta)
        key = make_key(program, program.entry, h, m, payload_digest=b"")
        if memo.get(key) is not None:
            return
        result, wrote = fast.execute(program, headers=h, meta=m,
                                     memory=memory)
        if wrote:
            memo.invalidate()
        else:
            memo.put(key, result)

    serve_once()  # populate (also warms the compile cache)

    def one_round() -> float:
        started = time.perf_counter()
        for _ in range(n):
            serve_once()
        return time.perf_counter() - started

    elapsed = statistics.median(one_round()
                                for _ in range(max(1, config.bench_runs)))
    return {
        "memo_replay_per_s": n / elapsed,
        "memo_hit_rate": memo.stats.hit_rate(),
    }


def measure_sim_event_rate(
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, float]:
    """End-to-end simulator throughput on the web-server workload.

    Runs a closed loop through the full stack (gateway, network,
    SmartNIC, NPU cores) and reports scheduler events and completed
    requests per wall-clock second — as a **median of warm rounds**.
    The one-time deployment (compile, verifier dead-store analysis,
    firmware swap) used to sit inside the timed window and roughly
    halved the reported rate (the ~47k vs ~94k events/s drift between
    BENCH_sim_perf.json and the ROADMAP): deployment is now completed
    before timing starts, an untimed warm-up round absorbs remaining
    one-time costs, and ``config.bench_runs`` measured rounds are
    reduced to their median.
    """
    config = config or DEFAULT_CONFIG
    spec = standard_workloads()["web_server"]
    tb = Testbed(seed=config.seed, n_workers=1)
    tb.add_backend("lambda-nic")

    def deploy(env):
        yield tb.manager.deploy(spec, "lambda-nic")

    deploy_process = tb.env.process(deploy(tb.env))
    tb.run(until=deploy_process)

    def one_round() -> Tuple[float, float]:
        def body(env):
            result = yield closed_loop(
                env, tb.gateway, spec.name,
                n_requests=config.perf_sim_requests, concurrency=4,
            )
            return result

        events_before = tb.env._eid
        started = time.perf_counter()
        process = tb.env.process(body(tb.env))
        tb.run(until=process)
        elapsed = time.perf_counter() - started
        load = process.value
        return ((tb.env._eid - events_before) / elapsed,
                len(load.latencies) / elapsed)

    one_round()  # warm-up: engine caches, allocator — not billed
    rounds = [one_round() for _ in range(max(1, config.bench_runs))]
    return {
        "sim_events_per_s": statistics.median(r[0] for r in rounds),
        "sim_requests_per_s": statistics.median(r[1] for r in rounds),
        "sim_events_total": float(tb.env._eid),
    }


def collect(config: Optional[ExperimentConfig] = None) -> Dict[str, Any]:
    """Every perf metric in one flat dict (the BENCH JSON payload)."""
    config = config or DEFAULT_CONFIG
    metrics: Dict[str, Any] = {}
    metrics.update(measure_engine_rates(config))
    metrics.update(measure_memo_rates(config))
    metrics.update(measure_sim_event_rate(config))
    metrics["perf_requests"] = config.perf_requests
    metrics["perf_sim_requests"] = config.perf_sim_requests
    metrics["min_required_speedup"] = MIN_FASTPATH_SPEEDUP
    metrics["min_required_jit_speedup"] = MIN_JIT_SPEEDUP
    # Methodology stamp: every rate above is the median of this many
    # warm rounds, with one-time deploy/compile cost excluded.
    metrics["bench_runs"] = config.bench_runs
    metrics["bench_stat"] = "median"
    return metrics


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Perf benchmark as a standard experiment report."""
    config = config or DEFAULT_CONFIG
    metrics = collect(config)
    rows = [
        ["reference interpreter (exec/s)",
         metrics["reference_exec_per_s"], "baseline"],
        ["fast-path engine (exec/s)",
         metrics["fastpath_exec_per_s"],
         f">= {MIN_FASTPATH_SPEEDUP:.0f}x baseline"],
        ["fast-path speedup (x)", metrics["fastpath_speedup"],
         f">= {MIN_FASTPATH_SPEEDUP:.0f}"],
        ["jit engine (exec/s)", metrics["jit_exec_per_s"],
         f">= {MIN_JIT_SPEEDUP:.0f}x fast path"],
        ["jit speedup over fast path (x)", metrics["jit_speedup"],
         f">= {MIN_JIT_SPEEDUP:.0f}"],
        ["memo replay (exec/s)", metrics["memo_replay_per_s"], "-"],
        ["memo hit rate", f"{metrics['memo_hit_rate'] * 100:.1f}%",
         "~100%"],
        ["simulation events/s", metrics["sim_events_per_s"], "-"],
        ["simulated requests/s", metrics["sim_requests_per_s"], "-"],
    ]
    return ExperimentReport(
        experiment="Perf",
        title="simulator throughput (wall-clock; engine vs reference)",
        headers=["metric", "measured", "target"],
        rows=rows,
        notes=[
            "wall-clock rates, machine-dependent; the regression gate "
            "is the speedup ratio, enforced by benchmarks/test_sim_perf.py",
        ],
    )
