"""Table 4: workload size and startup time (§6.4).

Deploys the image transformer on each backend through the full
pipeline (package, upload, download, boot/flash) and reports the
deployable-artifact size and the measured startup time.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..serverless import Testbed
from ..workloads import image_transformer_spec
from .calibration import BACKENDS, DEFAULT_CONFIG, ExperimentConfig, PAPER_TABLE4
from .harness import Cell, ExperimentReport, mib


def run_cell(backend: str, config: ExperimentConfig) -> Cell:
    tb = Testbed(seed=config.seed, n_workers=1)
    tb.add_backend(backend)
    spec = image_transformer_spec()

    def scenario(env):
        record = yield tb.manager.deploy(spec, backend)
        return record

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    record = process.value
    return Cell(
        workload="image_transformer",
        backend=backend,
        extra={
            "size_mib": mib(record.result.package_bytes),
            "startup_s": record.startup_seconds,
            "total_s": record.total_seconds,
        },
    )


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Regenerate Table 4."""
    config = config or DEFAULT_CONFIG
    cells: Dict[str, Cell] = {
        backend: run_cell(backend, config) for backend in BACKENDS
    }
    rows = []
    for metric, key in [("Workload size (MiB)", "size_mib"),
                        ("Startup time (s)", "startup_s")]:
        row = [metric]
        for backend in BACKENDS:
            measured = cells[backend].extra[key]
            paper = PAPER_TABLE4[backend][key]
            row.append(f"{measured:.1f} (paper {paper})")
        rows.append(row)
    return ExperimentReport(
        experiment="Table 4",
        title="factors affecting startup times (image transformer)",
        headers=["metric"] + BACKENDS,
        rows=rows,
        cells=cells,
    )
