"""Fault storm: availability and recovery under injected failures.

Not a paper table — a robustness experiment over the paper's testbed.
All three workloads are deployed on λ-NIC (warm bare-metal standbys
ready), then a scripted :class:`~repro.faults.FaultPlan` kills one NIC,
takes an NPU island offline, kills the *other* NIC (forcing graceful
degradation to bare-metal), restores the fleet (reversing the
degradation), flaps a link, and crashes the Raft leader — all while
open-loop load runs against the gateway.

Reported per workload: availability during the storm, p99 during vs
after, plus the health monitor's mean time-to-failover and the
injector's event trace (identical across same-seed runs).
"""

from __future__ import annotations

from typing import Optional

from ..faults import FaultPlan
from ..obs import TraceCollection
from ..serverless import Testbed, open_loop
from ..workloads import standard_workloads
from .calibration import DEFAULT_CONFIG, WORKLOAD_NAMES, ExperimentConfig
from .harness import Cell, ExperimentReport

#: Gateway tuned for fast failure detection (short timeout, aggressive
#: retries with jittered backoff, quick breaker reset probes).
GATEWAY_KWARGS = dict(
    request_timeout=0.25,
    max_retries=8,
    backoff_base=0.05,
    backoff_max=0.5,
    breaker_threshold=3,
    breaker_reset_timeout=0.5,
)

#: How long load keeps running after the last fault, and the length of
#: the clean "after" measurement phase.
SETTLE_SECONDS = 5.0
AFTER_SECONDS = 10.0


def build_plan(t0: float) -> FaultPlan:
    """The scripted storm, offset from ``t0`` (end of deployment)."""
    return (
        FaultPlan()
        # One NIC dies: the monitor shrinks routes to the survivor.
        .kill_nic(t0 + 5.0, "m2-nic")
        # Partial capacity loss on the survivor: island 0 goes dark.
        .kill_island(t0 + 8.0, "m3-nic", island=0)
        .restore_island(t0 + 12.0, "m3-nic", island=0)
        # The last NIC dies too: degrade to the warm bare-metal standby.
        .kill_nic(t0 + 15.0, "m3-nic")
        # Power returns: the monitor restores the λ-NIC home routes.
        .restore_nic(t0 + 22.0, "m2-nic")
        .restore_nic(t0 + 22.0, "m3-nic")
        # A transient cable pull; retries + breakers ride it out.
        .link_flap(t0 + 26.0, "m3-nic", down_for=0.5)
        # Control-plane churn: the Raft leader crashes mid-run.
        .crash_raft(t0 + 30.0, "leader")
    )


def run_storm(seed: int = 42, rate_rps: float = 25.0,
              after_rate_rps: Optional[float] = None,
              trace: bool = False) -> dict:
    """Run the full storm scenario; returns raw results for reporting.

    The returned dict has ``during`` / ``after`` ({workload: LoadResult}),
    ``trace`` (the injector's fired events), ``events`` (failover
    actions), ``mttf`` (mean time-to-failover) and the testbed itself.
    """
    tb = Testbed(
        seed=seed, n_workers=2, with_etcd=True, with_failover=True,
        with_tracing=trace,
        gateway_kwargs=dict(GATEWAY_KWARGS),
    )
    tb.add_lambda_nic_backend()
    tb.add_bare_metal_backend()
    specs = [standard_workloads()[name] for name in WORKLOAD_NAMES]
    after_rate = after_rate_rps if after_rate_rps is not None else rate_rps

    def load_phase(phase: str, duration: float):
        procs = {}
        for spec in specs:
            procs[spec.name] = open_loop(
                tb.env, tb.gateway, spec.name,
                rate_rps=rate_rps if phase == "during" else after_rate,
                duration=duration,
                rng=tb.rng.stream(f"load:{phase}:{spec.name}"),
                payload_bytes=spec.request_bytes if spec.uses_rdma else None,
            )
        return procs

    def scenario(env):
        yield tb.etcd_cluster.wait_for_leader()
        for spec in specs:
            yield tb.manager.deploy(spec, "lambda-nic")
        # Warm standbys make degradation a pure re-route.
        for spec in specs:
            yield tb.manager.prepare_standby(spec.name, "bare-metal")

        t0 = env.now
        plan = build_plan(t0)
        tb.add_fault_injector(plan)

        during_procs = load_phase(
            "during", (plan.horizon - env.now) + SETTLE_SECONDS
        )
        yield env.all_of(list(during_procs.values()))
        during = {name: proc.value for name, proc in during_procs.items()}

        after_procs = load_phase("after", AFTER_SECONDS)
        yield env.all_of(list(after_procs.values()))
        after = {name: proc.value for name, proc in after_procs.items()}
        return during, after

    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    during, after = process.value
    return {
        "testbed": tb,
        "during": during,
        "after": after,
        "trace": list(tb.injector.trace),
        "events": list(tb.health.events),
        "mttf": tb.health.mean_time_to_failover(),
    }


def availability(result) -> float:
    """Fraction of issued requests that completed (1.0 == no failures)."""
    issued = result.completed + result.failures
    return result.completed / issued if issued else 1.0


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """The registered experiment entry point."""
    config = config or DEFAULT_CONFIG
    storm = run_storm(seed=config.seed, trace=config.trace)
    collection = None
    if config.trace:
        collection = TraceCollection()
        collection.add("storm", storm["testbed"].tracer)

    cells = {}
    rows = []
    for name in WORKLOAD_NAMES:
        during, after = storm["during"][name], storm["after"][name]
        cells[name] = Cell(
            workload=name, backend="lambda-nic",
            mean=during.mean_latency, p50=during.percentile(50),
            p99=during.percentile(99),
            samples=sorted(during.latencies),
            extra={
                "availability": availability(during),
                "after_p99": after.percentile(99),
                "goodput_rps": during.goodput_rps,
            },
        )
        rows.append([
            name,
            100.0 * availability(during),
            during.goodput_rps,
            during.percentile(99) * 1e3,
            after.percentile(99) * 1e3,
            during.failures,
        ])

    n_shrinks = sum(1 for e in storm["events"] if e.kind == "shrink")
    n_degrades = sum(1 for e in storm["events"] if e.kind == "degrade")
    n_restores = sum(1 for e in storm["events"] if e.kind == "restore")
    report = ExperimentReport(
        experiment="Fault storm",
        title="availability and recovery under injected failures",
        headers=["workload", "avail_pct", "goodput_rps", "p99_ms_during",
                 "p99_ms_after", "failed"],
        rows=rows,
        notes=[
            f"{len(storm['trace'])} faults fired; "
            f"{len(storm['events'])} failover actions "
            f"({n_shrinks} shrink, {n_degrades} degrade, "
            f"{n_restores} restore); "
            f"mean time-to-failover {storm['mttf'] * 1e3:.1f} ms",
        ],
        cells=cells,
        trace=collection,
    )
    return report
