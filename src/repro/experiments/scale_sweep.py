"""Sharded scale sweep: 10⁷-request experiments across processes.

The ROADMAP's "millions of users" target needs more simulated requests
than one discrete-event kernel can turn over in tolerable wall-clock.
This driver partitions one open-loop cluster experiment into
independent :class:`~repro.sim.ShardSpec` shards — each shard is a
full Testbed (its own kernel, NICs, gateway) serving only the arrivals
it owns out of a single deterministic plan — runs them across
``multiprocessing`` workers, and folds the per-shard metrics
registries back together with ``MetricsRegistry.merge_all``.

The partition is sound because shards share *nothing* at simulation
time: the arrival plan is a pure function of ``(rate, duration,
arrival_seed)`` that every worker regenerates locally (nothing large
is pickled in), ownership is ``request_id % n_shards``, and no packet
ever crosses between shards — each request's whole lifetime (gateway
hop, NIC execution, response) happens inside its owner's testbed.
Request-conserving counters therefore *sum exactly* to the monolithic
run's totals; latency percentiles agree in distribution (shards draw
service times from differently seeded streams), which the
differential harness checks within tolerance.

Wall-clock numbers (and anything derived from them, e.g. parallel
efficiency) live under the report's ``"timing"`` key; everything under
``"deterministic"`` is a pure function of the configuration and seed,
and :func:`canonical_report_bytes` serializes exactly that part — the
byte-stability tests compare it across runs and across inline vs
pooled execution.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Any, Dict, List, Optional

from ..obs import Histogram, MetricsRegistry
from ..serverless import Testbed, iter_arrivals, scheduled_open_loop
from ..sim import ShardSpec, default_processes, make_shard_specs, run_shards
from ..workloads import standard_workloads
from .calibration import DEFAULT_CONFIG, ExperimentConfig
from .harness import ExperimentReport

#: Counters conserved by the request partition: each increments once
#: per request *inside the owning shard*, so sharded totals must equal
#: the monolithic run's exactly. Infrastructure counters (firmware
#: swaps, compile-cache stats, busy-seconds) scale with the number of
#: testbeds instead and are excluded by design — see DESIGN.md §14.
REQUEST_CONSERVED_COUNTERS = (
    "gateway_requests_total",
    "gateway_failures_total",
    "gateway_shed_total",
    "gateway_expired_total",
    "gateway_retries_total",
    "nic_lambda_requests_total",
    "nic_requests_served_total",
    "nic_responses_sent_total",
)

#: Relative tolerance for percentile agreement between a sharded run
#: and its monolithic twin. Shards draw service times from streams
#: seeded per-shard, so individual samples differ; the distributions
#: are identical, and nearest-rank percentiles over hundreds of
#: samples agree well inside this bound.
PERCENTILE_RTOL = 0.25

#: Default efficiency floor at 4 shards (enforced core-aware by
#: benchmarks/test_scale_sweep.py — a single-core box cannot exhibit
#: parallel speedup, so the gate only binds when cores >= 2).
MIN_PARALLEL_EFFICIENCY = 0.7


def _percentile(sorted_values: List[float], q: float) -> float:
    from ..obs import percentile_of
    return percentile_of(sorted_values, q)


def _strip_histograms(registry: MetricsRegistry) -> MetricsRegistry:
    """A copy of ``registry`` without its histogram metrics.

    A 10⁷-request sweep accumulates millions of raw observations per
    shard; the scale profile ships only counters/gauges home and
    reports percentiles computed locally in the worker.
    """
    shipped = MetricsRegistry()
    for metric in registry.scrape().values():
        if not isinstance(metric, Histogram):
            shipped.register(metric.copy())
    return shipped


def shard_worker(spec: ShardSpec) -> Dict[str, Any]:
    """Run one shard (or, with ``n_shards == 1``, the monolithic twin).

    Module-level so it pickles into pool workers. Everything is
    rebuilt from the spec: the testbed from the per-shard seed, the
    arrival plan from the *experiment*-level ``arrival_seed`` in
    ``params`` (regenerated in full, then filtered down to owned
    request ids). No ambient state — inline and pooled execution must
    be indistinguishable.
    """
    params = spec.params
    spec_obj = standard_workloads()[params["workload"]]
    tb = Testbed(seed=spec.seed, n_workers=params["workers_per_shard"])
    tb.add_backend(params["backend"])

    def arrivals():
        rng = random.Random(params["arrival_seed"])
        stream = iter_arrivals(params["rate_rps"], params["duration"], rng)
        for record in stream:
            if spec.owns(record.request_id):
                yield record

    replay_wall = [0.0]

    def scenario(env):
        yield tb.manager.deploy(spec_obj, params["backend"])
        started = time.perf_counter()
        result = yield scheduled_open_loop(
            env, tb.gateway, spec_obj.name, arrivals(),
        )
        replay_wall[0] = time.perf_counter() - started
        return result

    total_started = time.perf_counter()
    process = tb.env.process(scenario(tb.env))
    tb.run(until=process)
    total_wall = time.perf_counter() - total_started
    load = process.value
    if isinstance(load, BaseException):
        raise load

    latencies = sorted(load.latencies)
    ship_histograms = params.get("ship_histograms", True)
    registry = (tb.metrics.copy() if ship_histograms
                else _strip_histograms(tb.metrics))
    return {
        "shard": spec.index,
        "n_shards": spec.n_shards,
        "completed": load.completed,
        "failures": load.failures,
        "p50": _percentile(latencies, 50.0),
        "p99": _percentile(latencies, 99.0),
        "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
        "sim_duration": load.duration,
        "events": tb.env._eid,
        "pool_reused": tb.env.pool.reused if tb.env.pool else 0,
        "registry": registry,
        "latencies": list(load.latencies) if params.get("ship_latencies")
        else None,
        "replay_wall_seconds": replay_wall[0],
        "total_wall_seconds": total_wall,
    }


def _params(config: ExperimentConfig, total_requests: int,
            rate_rps: float, workers_per_shard: int,
            ship_histograms: bool, ship_latencies: bool) -> Dict[str, Any]:
    return {
        "workload": config.scale_workload,
        "backend": "lambda-nic",
        "rate_rps": rate_rps,
        "duration": total_requests / rate_rps,
        "arrival_seed": config.seed,
        "workers_per_shard": workers_per_shard,
        "ship_histograms": ship_histograms,
        "ship_latencies": ship_latencies,
    }


def run_sweep(
    config: Optional[ExperimentConfig] = None,
    n_shards: Optional[int] = None,
    total_requests: Optional[int] = None,
    rate_rps: Optional[float] = None,
    processes: Optional[int] = None,
    inline: bool = False,
    ship_histograms: Optional[bool] = None,
    ship_latencies: bool = False,
    workers_per_shard: int = 1,
) -> Dict[str, Any]:
    """Run a sharded sweep and return the merged result dict.

    The result separates ``"deterministic"`` (counters, percentiles,
    per-shard summaries — identical across reruns and across
    inline/pooled execution on the same seed) from ``"timing"``
    (wall-clock, efficiency). ``"registry"`` carries the merged
    :class:`MetricsRegistry` for programmatic consumers.
    """
    config = config or DEFAULT_CONFIG
    n_shards = n_shards or config.scale_shards
    total_requests = total_requests or config.scale_requests
    rate_rps = rate_rps or config.scale_rate_rps
    if ship_histograms is None:
        # Histograms are cheap to ship on small runs, prohibitive at
        # scale; flip automatically past ~1M requests.
        ship_histograms = total_requests <= 1_000_000
    params = _params(config, total_requests, rate_rps, workers_per_shard,
                     ship_histograms, ship_latencies)
    specs = make_shard_specs(n_shards, config.seed, params)

    started = time.perf_counter()
    shard_results = run_shards(shard_worker, specs,
                               processes=processes, inline=inline)
    elapsed = time.perf_counter() - started

    merged = MetricsRegistry.merge_all(
        result["registry"] for result in shard_results
    )
    counters = {
        name: metric.total
        for name, metric in sorted(merged.scrape().items())
        if type(metric).__name__ == "Counter"
    }
    shard_rows = [
        {key: result[key] for key in
         ("shard", "completed", "failures", "p50", "p99", "mean",
          "events", "sim_duration")}
        for result in shard_results
    ]
    completed = sum(result["completed"] for result in shard_results)
    worker_wall = sum(result["total_wall_seconds"]
                      for result in shard_results)
    n_procs = (1 if inline or n_shards <= 1
               else (processes or default_processes(n_shards)))
    speedup = worker_wall / elapsed if elapsed > 0 else 0.0
    return {
        "deterministic": {
            "schema": "scale_sweep/v1",
            "config": {
                "n_shards": n_shards,
                "total_requests": total_requests,
                "rate_rps": rate_rps,
                "seed": config.seed,
                "workload": params["workload"],
                "backend": params["backend"],
                "workers_per_shard": workers_per_shard,
            },
            "totals": {
                "completed": completed,
                "failures": sum(r["failures"] for r in shard_results),
                "events": sum(r["events"] for r in shard_results),
            },
            "counters": counters,
            "latency": {
                "p50_max": max(r["p50"] for r in shard_results),
                "p99_max": max(r["p99"] for r in shard_results),
                "mean": (sum(r["mean"] * r["completed"]
                             for r in shard_results) / completed
                         if completed else 0.0),
            },
            "shards": shard_rows,
        },
        "timing": {
            "elapsed_seconds": elapsed,
            "worker_wall_seconds": worker_wall,
            "processes": n_procs,
            "speedup": speedup,
            "parallel_efficiency": speedup / n_procs if n_procs else 0.0,
            "requests_per_second": completed / elapsed if elapsed else 0.0,
        },
        "registry": merged,
        "shard_results": shard_results,
    }


def run_monolithic(
    config: Optional[ExperimentConfig] = None,
    total_requests: Optional[int] = None,
    rate_rps: Optional[float] = None,
    n_workers: int = 4,
    ship_latencies: bool = False,
) -> Dict[str, Any]:
    """The single-testbed twin of a sweep: one shard owning everything.

    ``n_workers`` should equal the sweep's shard count so the two
    cluster topologies match (4 shards × 1 worker ≙ 1 testbed × 4
    workers)."""
    config = config or DEFAULT_CONFIG
    total_requests = total_requests or config.scale_requests
    rate_rps = rate_rps or config.scale_rate_rps
    params = _params(config, total_requests, rate_rps, n_workers,
                     True, ship_latencies)
    spec = make_shard_specs(1, config.seed, params)[0]
    return shard_worker(spec)


def differential(
    config: Optional[ExperimentConfig] = None,
    n_shards: int = 4,
    total_requests: Optional[int] = None,
    rate_rps: Optional[float] = None,
    inline: bool = True,
) -> Dict[str, Any]:
    """Sharded-vs-monolithic equivalence check on one seed.

    Exact: request-conserving counter totals and completed/failure
    counts. Tolerance-bounded: latency percentiles (shards sample
    service times from differently seeded streams).
    """
    config = config or DEFAULT_CONFIG
    total_requests = total_requests or config.scale_differential_requests
    rate_rps = rate_rps or config.scale_rate_rps
    sweep = run_sweep(config, n_shards=n_shards,
                      total_requests=total_requests, rate_rps=rate_rps,
                      inline=inline, ship_histograms=True)
    mono = run_monolithic(config, total_requests=total_requests,
                          rate_rps=rate_rps, n_workers=n_shards)

    merged = sweep["registry"]
    mono_registry = mono["registry"]
    counter_pairs = {}
    for name in REQUEST_CONSERVED_COUNTERS:
        sharded_total = merged.counter(name).total
        mono_total = mono_registry.counter(name).total
        counter_pairs[name] = (sharded_total, mono_total)
    counters_match = all(a == b for a, b in counter_pairs.values())
    completed_match = (
        sweep["deterministic"]["totals"]["completed"] == mono["completed"]
        and sweep["deterministic"]["totals"]["failures"] == mono["failures"]
    )

    def close(a: float, b: float) -> bool:
        if a == b:
            return True
        scale = max(abs(a), abs(b))
        return scale > 0 and abs(a - b) / scale <= PERCENTILE_RTOL

    p50 = sweep["deterministic"]["latency"]["p50_max"]
    p99 = sweep["deterministic"]["latency"]["p99_max"]
    percentiles_match = close(p50, mono["p50"]) and close(p99, mono["p99"])
    return {
        "n_shards": n_shards,
        "total_requests": total_requests,
        "counters": counter_pairs,
        "counters_match": counters_match,
        "completed_match": completed_match,
        "sharded_p50": p50, "mono_p50": mono["p50"],
        "sharded_p99": p99, "mono_p99": mono["p99"],
        "percentiles_match": percentiles_match,
        "match": counters_match and completed_match and percentiles_match,
    }


def canonical_report_bytes(sweep: Dict[str, Any]) -> bytes:
    """The deterministic part of a sweep, canonically serialized.

    Same seed + same config ⇒ identical bytes, run to run and inline
    vs pooled — the byte-stability contract the harness enforces.
    """
    return json.dumps(sweep["deterministic"], sort_keys=True,
                      separators=(",", ":")).encode()


def write_report(sweep: Dict[str, Any], path: str) -> None:
    """Write the JSON artifact (deterministic + timing sections)."""
    payload = {
        "deterministic": sweep["deterministic"],
        "timing": sweep["timing"],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run(config: Optional[ExperimentConfig] = None) -> ExperimentReport:
    """Experiment-table entry: a small sweep plus the differential.

    Sized by ``config.scale_differential_requests`` so it finishes in
    seconds; the full ≥10⁷-request sweep is the CLI's job
    (``python -m repro.experiments.scale_sweep``).
    """
    config = config or DEFAULT_CONFIG
    diff = differential(config)
    sweep = run_sweep(config, n_shards=4,
                      total_requests=config.scale_differential_requests,
                      inline=True)
    rows = [
        ["shards", 4, "-"],
        ["requests completed",
         sweep["deterministic"]["totals"]["completed"],
         config.scale_differential_requests],
        ["merged gateway_requests_total",
         sweep["deterministic"]["counters"].get("gateway_requests_total",
                                                0.0),
         "== monolithic"],
        ["conserved counters match", str(diff["counters_match"]), "True"],
        ["completed/failures match", str(diff["completed_match"]), "True"],
        ["p99 sharded vs monolithic",
         f"{diff['sharded_p99']:.6f} / {diff['mono_p99']:.6f}",
         f"within {PERCENTILE_RTOL:.0%}"],
        ["differential verdict", str(diff["match"]), "True"],
    ]
    return ExperimentReport(
        experiment="ScaleSweep",
        title="sharded simulation: differential vs monolithic",
        headers=["metric", "measured", "target"],
        rows=rows,
        notes=[
            "full-scale runs: python -m repro.experiments.scale_sweep "
            "--requests 10000000 --shards 8",
        ],
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.scale_sweep",
        description="Sharded scale sweep (default: the 10^7-request "
                    "ROADMAP target; use --requests for smaller runs).",
    )
    parser.add_argument("--requests", type=int, default=10_000_000,
                        help="total simulated requests across shards")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of independent testbed shards")
    parser.add_argument("--rate", type=float, default=None,
                        help="total open-loop arrival rate (req/s of "
                             "sim time); default from config")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--processes", type=int, default=None,
                        help="pool size (default: min(shards, cores))")
    parser.add_argument("--inline", action="store_true",
                        help="run shards sequentially in-process")
    parser.add_argument("--differential", action="store_true",
                        help="also run the sharded-vs-monolithic check "
                             "(small fixed size) and fail on mismatch")
    parser.add_argument("--out", default="SCALE_sweep.json",
                        help="merged report artifact path")
    args = parser.parse_args(argv)

    config = ExperimentConfig()
    if args.seed is not None:
        config.seed = args.seed
    if args.differential:
        diff = differential(config)
        print(f"differential (4 shards, "
              f"{diff['total_requests']} requests): "
              f"match={diff['match']} counters={diff['counters_match']} "
              f"completed={diff['completed_match']} "
              f"percentiles={diff['percentiles_match']}")
        if not diff["match"]:
            return 1
    sweep = run_sweep(config, n_shards=args.shards,
                      total_requests=args.requests, rate_rps=args.rate,
                      processes=args.processes, inline=args.inline)
    write_report(sweep, args.out)
    det = sweep["deterministic"]
    timing = sweep["timing"]
    print(f"completed {det['totals']['completed']} requests "
          f"({det['totals']['events']} events) across "
          f"{det['config']['n_shards']} shards in "
          f"{timing['elapsed_seconds']:.1f}s wall "
          f"({timing['requests_per_second']:.0f} req/s, "
          f"efficiency {timing['parallel_efficiency']:.2f} "
          f"over {timing['processes']} processes)")
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
