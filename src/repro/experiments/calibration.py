"""Paper reference values and the shared experiment configuration.

Every experiment module compares what the simulator measures against
the numbers the paper reports; this module is the single source of
truth for the latter (transcribed from the paper's §6) and for the
experiment-scale knobs (request counts, concurrency, seeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Paper headline claims (§1, §6.3.1).
PAPER_MAX_LATENCY_IMPROVEMENT = 880.0   # container vs λ-NIC, web/kv
PAPER_BARE_METAL_LATENCY_IMPROVEMENT = 30.0
PAPER_MAX_THROUGHPUT_IMPROVEMENT = 736.0
PAPER_MIN_THROUGHPUT_IMPROVEMENT = 27.0
PAPER_IMAGE_LATENCY_IMPROVEMENT = (3.0, 5.0)     # bare-metal, container
PAPER_IMAGE_THROUGHPUT_IMPROVEMENT = (5.0, 15.0)
PAPER_TAIL_IMPROVEMENT_RANGE = (5.0, 24.0)       # p99 vs bare-metal

#: Table 2 — throughput with three concurrent web-server lambdas.
PAPER_TABLE2 = {
    "lambda-nic-56": 58_000.0,
    "bare-metal-56": 950.0,
    "bare-metal-1": 520.0,
}

#: Figure 8 — contention latency factors vs λ-NIC.
PAPER_FIG8_BARE_METAL_FACTOR = (178.0, 330.0)
PAPER_FIG8_SPEEDUP = (55.0, 100.0)

#: Table 3 — added resources for the image transformer @56 concurrent.
PAPER_TABLE3 = {
    "lambda-nic": {"host_cpu_pct": 0.1, "host_mem_mib": 0.0, "nic_mem_mib": 63.2},
    "bare-metal": {"host_cpu_pct": 9.2, "host_mem_mib": 62.5, "nic_mem_mib": 0.0},
    "container": {"host_cpu_pct": 13.7, "host_mem_mib": 219.5, "nic_mem_mib": 0.0},
}

#: Table 4 — workload size and startup time.
PAPER_TABLE4 = {
    "lambda-nic": {"size_mib": 11.0, "startup_s": 19.8},
    "bare-metal": {"size_mib": 17.0, "startup_s": 5.0},
    "container": {"size_mib": 153.0, "startup_s": 31.7},
}

#: Figure 9 — optimizer effectiveness (instructions; cumulative %).
PAPER_FIG9 = [
    ("Unoptimized", 8902, 0.0),
    ("Lambda Coalescing", 8447, 5.11),
    ("Match Reduction", 8132, 8.65),
    ("Memory Stratification", 8050, 9.56),
]

#: Figure 9, extended pass list (the default pipeline): the pinned
#: golden series for the measured column, (stage, instructions,
#: cumulative %). The first four stages are the paper's; constant
#: folding and dead-store elimination are this repo's additions, so
#: any compiler change that moves these counts must update this table
#: deliberately.
FIG9_EXTENDED = [
    ("Unoptimized", 8854, 0.0),
    ("Lambda Coalescing", 8401, 5.12),
    ("Match Reduction", 8102, 8.49),
    ("Memory Stratification", 8004, 9.60),
    ("Constant Folding", 8004, 9.60),
    ("Dead Store Elimination", 1320, 85.09),
]

#: Footnote 3 — reordering four 100 B packets.
PAPER_REORDER_INSTRUCTIONS = 120
PAPER_REORDER_FRACTION_PCT = 1.3

#: Table 1 — qualitative SmartNIC comparison.
PAPER_TABLE1 = [
    ("Programmability", "Hard", "Limited", "Easy"),
    ("Performance", "10+ cores, low latency", "200+ cores, low latency",
     "50+ cores, high latency"),
    ("Development cost", "High", "Medium", "Low"),
]

BACKENDS = ["lambda-nic", "bare-metal", "container"]
WORKLOAD_NAMES = ["web_server", "kv_client", "image_transformer"]


@dataclass
class ExperimentConfig:
    """Scale knobs shared by the experiment drivers.

    The defaults are sized so a full table/figure regenerates in
    seconds of wall-clock; crank them up for smoother ECDFs.
    """

    seed: int = 42
    #: Requests per (workload, backend) cell in latency runs.
    latency_requests: int = 200
    #: Requests per image-transformer latency cell (heavier each).
    image_latency_requests: int = 20
    #: Requests per throughput cell.
    throughput_requests: int = 400
    image_throughput_requests: int = 30
    #: The paper's two concurrency levels (§6.3.1).
    concurrencies: Tuple[int, int] = (1, 56)
    #: Requests in the Figure-8/Table-2 contention runs.
    contention_requests: int = 600
    contention_concurrency: int = 4
    #: Direct engine executions per measurement in the perf benchmark
    #: (reference vs fast-path interpreter comparison).
    perf_requests: int = 400
    #: End-to-end simulated requests in the perf benchmark's
    #: events-per-second measurement.
    perf_sim_requests: int = 300
    #: Sharded scale sweep (experiments/scale_sweep.py). The CLI's
    #: full run targets the ROADMAP's 10⁷-request scale; the
    #: experiment-table entry and CI use ``scale_differential_requests``
    #: so the differential check finishes in seconds.
    scale_requests: int = 10_000_000
    scale_shards: int = 4
    #: Total open-loop arrival rate (requests per second of sim time),
    #: split across shards by request-id ownership.
    scale_rate_rps: float = 2000.0
    scale_differential_requests: int = 2000
    scale_workload: str = "web_server"
    #: Perf-benchmark methodology (BENCH_sim_perf.json): report the
    #: median of this many warm runs rather than a single cold sample.
    bench_runs: int = 3
    #: Run with span tracing enabled; traced experiments attach a
    #: :class:`repro.obs.TraceCollection` to their report.
    trace: bool = False


DEFAULT_CONFIG = ExperimentConfig()

#: Smaller configuration for CI / unit tests.
FAST_CONFIG = ExperimentConfig(
    latency_requests=40,
    image_latency_requests=5,
    throughput_requests=60,
    image_throughput_requests=6,
    contention_requests=120,
    contention_concurrency=4,
    perf_requests=120,
    perf_sim_requests=80,
    scale_requests=4000,
    scale_differential_requests=800,
    bench_runs=2,
)
