"""CLI: ``python -m repro.experiments [names...] [--fast]``.

Regenerates the requested experiments (default: all) and prints the
paper-vs-measured reports.
"""

import sys

from . import ALL_EXPERIMENTS, DEFAULT_CONFIG, FAST_CONFIG


def main(argv) -> int:
    fast = "--fast" in argv
    names = [arg for arg in argv if not arg.startswith("-")]
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    config = FAST_CONFIG if fast else DEFAULT_CONFIG
    for name in names or list(ALL_EXPERIMENTS):
        report = ALL_EXPERIMENTS[name](config)
        print(report.format())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
