"""CLI: ``python -m repro.experiments [names...] [--fast] [--trace out.json]``.

Regenerates the requested experiments (default: all) and prints the
paper-vs-measured reports. With ``--trace PATH``, experiments that
support span tracing (fig6, fig7, fault_recovery, migration_storm)
also write a
Perfetto-loadable Chrome trace to PATH and the flat span records to
``PATH`` with a ``.spans.jsonl`` suffix; when several traced
experiments are selected each gets its own pair of files, suffixed
with the experiment name.
"""

import dataclasses
import sys

from . import ALL_EXPERIMENTS, DEFAULT_CONFIG, FAST_CONFIG

#: Experiments whose drivers collect spans when ``config.trace`` is set.
TRACED_EXPERIMENTS = ("fig6", "fig7", "fault_recovery", "migration_storm",
                      "overload_storm")


def _parse_args(argv):
    fast = False
    trace_path = None
    names = []
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--fast":
            fast = True
        elif arg == "--trace":
            if index + 1 >= len(argv):
                raise ValueError("--trace requires a path argument")
            index += 1
            trace_path = argv[index]
        elif arg.startswith("--trace="):
            trace_path = arg.split("=", 1)[1]
        elif arg.startswith("-"):
            raise ValueError(f"unknown option {arg!r}")
        else:
            names.append(arg)
        index += 1
    return names, fast, trace_path


def _trace_paths(base: str, name: str, multiple: bool):
    stem = base[:-5] if base.endswith(".json") else base
    if multiple:
        stem = f"{stem}.{name}"
    return f"{stem}.json", f"{stem}.spans.jsonl"


def main(argv) -> int:
    try:
        names, fast, trace_path = _parse_args(argv)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    config = FAST_CONFIG if fast else DEFAULT_CONFIG
    if trace_path:
        config = dataclasses.replace(config, trace=True)
    selected = names or list(ALL_EXPERIMENTS)
    traced = []
    for name in selected:
        report = ALL_EXPERIMENTS[name](config)
        print(report.format())
        print()
        if trace_path and report.trace is not None:
            traced.append((name, report.trace))
    if trace_path:
        if not traced:
            print(f"--trace: none of the selected experiments emit traces "
                  f"(traced: {', '.join(TRACED_EXPERIMENTS)})",
                  file=sys.stderr)
            return 2
        for name, collection in traced:
            chrome, jsonl = _trace_paths(trace_path, name, len(traced) > 1)
            collection.write_chrome(chrome)
            collection.write_jsonl(jsonl)
            print(f"wrote {collection.n_spans} spans for {name}: "
                  f"{chrome} + {jsonl}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
