"""The λ-NIC runtime: compile, deploy, and route across a NIC fleet.

This is the framework half of the paper's contribution: given a set of
:class:`~repro.core.matchlambda.MatchLambdaWorkload` objects, the
runtime assigns workload IDs, compiles them into one optimised firmware
(§5.1), flashes every SmartNIC in the fleet (with swap downtime, §7),
binds RDMA queue pairs, and answers "which NIC serves workload X".
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..compiler import CompilationUnit, Firmware, compile_unit
from ..hw import SmartNIC
from ..sim import Environment
from .matchlambda import MatchLambdaWorkload


class LambdaNicRuntime:
    """Manages the Match+Lambda lifecycle over one or more SmartNICs."""

    def __init__(self, env: Environment, nics: List[SmartNIC],
                 optimize: bool = True) -> None:
        if not nics:
            raise ValueError("runtime needs at least one SmartNIC")
        self.env = env
        self.nics = list(nics)
        self.optimize = optimize
        self.workloads: Dict[str, MatchLambdaWorkload] = {}
        self.firmware: Optional[Firmware] = None
        self._wid_counter = itertools.count(1)
        self._rr = itertools.cycle(range(len(self.nics)))

    # -- registration / compilation -------------------------------------

    def register(self, workload: MatchLambdaWorkload) -> int:
        """Add a workload; returns its assigned wid. Call
        :meth:`deploy` (or :meth:`deploy_instant`) afterwards."""
        workload.validate()
        if workload.name in self.workloads:
            raise ValueError(f"workload {workload.name!r} already registered")
        if workload.wid is None:
            workload.wid = next(self._wid_counter)
        self.workloads[workload.name] = workload
        return workload.wid

    def compile(self) -> Firmware:
        """(Re)compile all registered workloads into one firmware."""
        unit = CompilationUnit()
        for workload in self.workloads.values():
            unit.add_lambda(workload.program, wid=workload.wid,
                            route_port=workload.route_port)
        self.firmware = compile_unit(unit, optimize=self.optimize)
        return self.firmware

    # -- deployment --------------------------------------------------------

    def deploy(self, swap: bool = True):
        """Process: compile and flash all NICs (with swap downtime)."""
        firmware = self.compile()

        def deployer():
            loads = [nic.load_firmware(firmware, swap=swap)
                     for nic in self.nics]
            yield self.env.all_of(loads)
            self._bind_rdma()
            return firmware

        return self.env.process(deployer())

    def deploy_instant(self) -> Firmware:
        """Compile and install with no simulated flash time (tests)."""
        firmware = self.compile()
        for nic in self.nics:
            nic.install_firmware(firmware)
        self._bind_rdma()
        return firmware

    def _bind_rdma(self) -> None:
        for workload in self.workloads.values():
            if workload.rdma is None:
                continue
            qualified = f"{workload.name}.{workload.rdma.object_name}"
            for nic in self.nics:
                nic.bind_rdma(workload.rdma.qp, workload.name, qualified)

    def unregister(self, name: str):
        """Process: remove a workload and reflash the fleet.

        With other workloads remaining, the firmware is rebuilt without
        the removed lambda (swap downtime applies); with none left the
        NICs revert to bare (no firmware) after the swap window.
        """
        if name not in self.workloads:
            raise KeyError(f"unknown workload {name!r}")
        del self.workloads[name]

        def redeployer():
            if self.workloads:
                firmware = yield self.deploy(swap=True)
                return firmware
            for nic in self.nics:
                yield self.env.timeout(nic.firmware_swap_seconds)
                nic.firmware = None
                nic.memory.reset()
            self.firmware = None
            return None

        return self.env.process(redeployer())

    # -- routing -------------------------------------------------------------

    def wid_for(self, name: str) -> int:
        workload = self.workloads.get(name)
        if workload is None or workload.wid is None:
            raise KeyError(f"unknown workload {name!r}")
        return workload.wid

    def rdma_qp_for(self, name: str) -> Optional[int]:
        workload = self.workloads.get(name)
        if workload is None:
            raise KeyError(f"unknown workload {name!r}")
        return workload.rdma.qp if workload.rdma else None

    def target_for(self, name: str) -> SmartNIC:
        """Round-robin NIC selection for a workload's next request."""
        if name not in self.workloads:
            raise KeyError(f"unknown workload {name!r}")
        return self.nics[next(self._rr)]

    @property
    def total_requests_served(self) -> int:
        return sum(nic.stats.requests_served for nic in self.nics)
