"""λ-NIC framework core: the Match+Lambda abstraction and NIC runtime."""

from .drf import DrfAllocator, DrfUser, nic_capacities
from .matchlambda import MatchLambdaWorkload, RdmaBinding
from .runtime import LambdaNicRuntime

__all__ = [
    "DrfAllocator",
    "DrfUser",
    "LambdaNicRuntime",
    "MatchLambdaWorkload",
    "RdmaBinding",
    "nic_capacities",
]
