"""The Match+Lambda programming abstraction (paper §4.1).

A :class:`MatchLambdaWorkload` is what a developer hands to λ-NIC: the
lambda program (the compiled Micro-C function), plus declarative
dispatch information — the framework assigns the workload ID, generates
the match rule and the parser, and handles placement. Developers never
write packet-processing logic (paper contributions #1 and #3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa import LambdaProgram
from ..isa.analysis import headers_used


@dataclass
class RdmaBinding:
    """Declares that a workload's input arrives via RDMA writes."""

    object_name: str
    qp: int = 1


@dataclass
class MatchLambdaWorkload:
    """One lambda paired with its (auto-generated) match stage."""

    program: LambdaProgram
    #: Assigned by the workload manager at registration time.
    wid: Optional[int] = None
    route_port: str = "p0"
    rdma: Optional[RdmaBinding] = None
    #: Scheduling weight for the NIC's WFQ (paper §4.2.1-D1).
    weight: float = 1.0

    @property
    def name(self) -> str:
        return self.program.name

    def headers(self) -> set:
        """Headers the lambda touches — drives parser generation."""
        return headers_used(self.program)

    def validate(self) -> None:
        self.program.validate()
        if self.rdma is not None and \
                self.rdma.object_name not in self.program.objects:
            raise ValueError(
                f"rdma binding references unknown object "
                f"{self.rdma.object_name!r}"
            )
