"""Dominant Resource Fairness for NIC resources (paper §4.2.1-D1).

The paper leaves "more sophisticated resource-allocation mechanisms
(e.g., DRF [61])" as future work; this module implements the classic
progressive-filling DRF allocator (Ghodsi et al., NSDI'11) over the
SmartNIC's shared resources (threads, memory bandwidth, instruction
store, ...) and can derive per-lambda WFQ weights from the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class DrfUser:
    """One lambda competing for NIC resources."""

    name: str
    #: Per-task demand vector: resource name -> amount per task.
    demand: Dict[str, float]
    weight: float = 1.0
    tasks: int = 0

    def dominant_share(self, capacities: Dict[str, float]) -> float:
        """This user's dominant share, normalised by its weight."""
        share = max(
            (self.tasks * amount) / capacities[resource]
            for resource, amount in self.demand.items()
        )
        return share / self.weight


class DrfAllocator:
    """Progressive-filling (weighted) DRF over fixed capacities."""

    def __init__(self, capacities: Dict[str, float]) -> None:
        if not capacities or any(value <= 0 for value in capacities.values()):
            raise ValueError("capacities must be positive")
        self.capacities = dict(capacities)
        self.users: Dict[str, DrfUser] = {}

    def add_user(self, name: str, demand: Dict[str, float],
                 weight: float = 1.0) -> DrfUser:
        if name in self.users:
            raise ValueError(f"duplicate user {name!r}")
        if not demand:
            raise ValueError(f"user {name!r} has an empty demand vector")
        unknown = set(demand) - set(self.capacities)
        if unknown:
            raise ValueError(f"unknown resources {sorted(unknown)}")
        if any(value <= 0 for value in demand.values()):
            raise ValueError("demands must be positive")
        if weight <= 0:
            raise ValueError("weight must be positive")
        user = DrfUser(name, dict(demand), weight)
        self.users[name] = user
        return user

    def _fits(self, used: Dict[str, float], user: DrfUser) -> bool:
        return all(
            used[resource] + amount <= self.capacities[resource] + 1e-9
            for resource, amount in user.demand.items()
        )

    def allocate(self, max_tasks: Optional[int] = None) -> Dict[str, int]:
        """Run progressive filling; returns tasks granted per user.

        Repeatedly grants one task to the user with the smallest
        (weighted) dominant share until no user's next task fits, or
        ``max_tasks`` total tasks have been placed.
        """
        if not self.users:
            return {}
        for user in self.users.values():
            user.tasks = 0
        used = {resource: 0.0 for resource in self.capacities}
        granted = 0
        while max_tasks is None or granted < max_tasks:
            candidates = [user for user in self.users.values()
                          if self._fits(used, user)]
            if not candidates:
                break
            chosen = min(
                candidates,
                key=lambda user: (user.dominant_share(self.capacities),
                                  user.name),
            )
            chosen.tasks += 1
            granted += 1
            for resource, amount in chosen.demand.items():
                used[resource] += amount
        return {name: user.tasks for name, user in self.users.items()}

    def dominant_shares(self) -> Dict[str, float]:
        """Post-allocation dominant share per user (unweighted)."""
        return {
            name: max(
                (user.tasks * amount) / self.capacities[resource]
                for resource, amount in user.demand.items()
            )
            for name, user in self.users.items()
        }

    def utilization(self) -> Dict[str, float]:
        """Fraction of each resource consumed by the allocation."""
        used = {resource: 0.0 for resource in self.capacities}
        for user in self.users.values():
            for resource, amount in user.demand.items():
                used[resource] += user.tasks * amount
        return {resource: used[resource] / self.capacities[resource]
                for resource in self.capacities}

    def wfq_weights(self) -> Dict[str, float]:
        """Scheduler weights proportional to each user's allocation."""
        allocation = {name: user.tasks for name, user in self.users.items()}
        total = sum(allocation.values())
        if total == 0:
            return {name: 1.0 for name in self.users}
        return {name: max(tasks, 1) / total
                for name, tasks in allocation.items()}


def nic_capacities(n_cores: int = 56, threads_per_core: int = 8,
                   memory_bandwidth_gbps: float = 50.0,
                   instruction_store: int = 16 * 1024) -> Dict[str, float]:
    """The standard resource vector of the modelled Agilio CX."""
    return {
        "threads": float(n_cores * threads_per_core),
        "memory_bandwidth_gbps": memory_bandwidth_gbps,
        "instruction_store": float(instruction_store),
    }
