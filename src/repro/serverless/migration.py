"""Live lambda migration: one resource pool across NICs and hosts.

λ-NIC statically splits lambdas between NPU cores and host CPUs at
admission time; this module makes the split revisitable at runtime, as
argued by the "one resource pool" line of work (SuperNIC, "the NIC
should be part of the OS"). A :class:`MigrationController` moves a
deployed lambda between backends (NIC → host, host → NIC, NIC → NIC)
as a crash-safe state machine::

    PLANNED ──► PREPARED ──► DRAINING ──► STATE_HANDOFF ──► CUTOVER ──► COMPLETED
       │            │            │               │             │
       └────────────┴────────────┴───────────────┘             └─► (forward only)
                         │
                         ▼
                      ABORTED  (rollback: source keeps serving)

* **PREPARED** — the target deployment exists, is verified healthy,
  and is warm (a reused home copy, a pre-warmed standby, or a fresh
  deploy).
* **DRAINING** — the gateway either *queues* new requests behind a
  hold (default: loss-free, bounded latency bump) or *dual-routes*
  copies to the target (stateless lambdas: zero added latency,
  request-id dedup guarantees exactly-once observable responses),
  then waits for in-flight requests to the source to finish.
* **STATE_HANDOFF** — the lambda's persistent memory objects are
  exported at a source epoch, shipped over the RDMA substrate, and the
  epoch re-checked: any concurrent write bumps the source's
  ``state_epoch`` and forces a re-export (the epoch fence). Importing
  fences the target's memo cache.
* **CUTOVER** — a single synchronous step (no simulation yields): flip
  the gateway route, update the deployment record, release held
  requests. Either everything flips or nothing does.
* **ABORTED** — reachable from every pre-cutover state; the source
  route was never touched, so rollback is: release holds, clear
  mirrors, keep the (now warm) target copy as a standby.

The controller journals each transition to etcd, so an idempotent
:meth:`MigrationController.recover` on restart rolls an interrupted
pre-cutover migration back and completes a post-cutover one forward.

PR 1's health-monitor failover is re-expressed as *forced* migrations
(``forced=True``): the same state machine runs, but the drain wait is
skipped when the source is already dead and the legacy failover
metrics (``manager_failovers_total``, ``manager_failover_seconds``,
``manager_degraded_workloads``) are emitted exactly as the manager's
degrade/restore paths did, so the one control plane serves both load
management and fault recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim import Environment
from ..transport import segment_message
from .backends import StateSnapshot
from .gateway import Gateway
from .manager import DeploymentRecord, WorkloadManager

# State machine vertices.
PLANNED = "PLANNED"
PREPARED = "PREPARED"
DRAINING = "DRAINING"
STATE_HANDOFF = "STATE_HANDOFF"
CUTOVER = "CUTOVER"
COMPLETED = "COMPLETED"
ABORTED = "ABORTED"

#: States a rollback is legal from (everything before the route flip).
PRE_CUTOVER_STATES = (PLANNED, PREPARED, DRAINING, STATE_HANDOFF)

#: Wire rate used to time the state handoff (the testbed's 10 G links).
HANDOFF_BANDWIDTH_BPS = 10e9

#: Fixed per-segment cost of the RDMA handoff path (descriptor setup).
HANDOFF_SEGMENT_SECONDS = 1e-6


class MigrationError(Exception):
    """A migration could not reach CUTOVER and was rolled back."""


class _ControllerStopped(Exception):
    """Raised inside a migration when the controller crashed/stopped."""


@dataclass
class Migration:
    """One migration attempt: the state machine instance."""

    workload: str
    source_kind: str
    target_kind: str
    reason: str
    started_at: float
    state: str = PLANNED
    #: (sim time, state) per transition, ending in COMPLETED/ABORTED.
    history: List[Tuple[float, str]] = field(default_factory=list)
    #: The fault detail that triggered a forced migration, if any.
    fault: str = ""
    forced: bool = False
    drain_mode: str = "queue"  # "queue" | "dual"
    #: Chosen target addressing: route targets installed at cutover.
    targets: List[str] = field(default_factory=list)
    state_bytes: int = 0
    state_transferred: bool = False
    handoff_retries: int = 0
    outcome: str = ""          # "completed" | "rolled-back"
    error: str = ""
    completed_at: float = 0.0

    @property
    def duration(self) -> float:
        return max(0.0, self.completed_at - self.started_at)


class PlacementScorer:
    """Ranks candidate targets by WCET-predicted headroom.

    Headroom at a target is ``free slots − expected occupancy``, where
    expected occupancy is Little's law applied to the verifier's WCET:
    arrival rate × worst-case service time. A workload with a proven
    1 µs WCET barely dents a NIC's 448 threads; an unbounded one
    scores every target by live load alone. Ties break by name so
    rankings are deterministic.
    """

    def __init__(self, manager: WorkloadManager,
                 monitoring=None, window_seconds: float = 10.0) -> None:
        self.manager = manager
        self.monitoring = monitoring
        self.window_seconds = window_seconds

    def _request_rate(self, workload: str) -> float:
        if self.monitoring is None:
            return 0.0
        return self.monitoring.rate(
            "gateway_requests_total", labels={"workload": workload},
            window_seconds=self.window_seconds,
        )

    def _wcet_seconds(self, record: DeploymentRecord) -> float:
        if record.admission is None:
            return 0.0
        return record.admission.wcet_seconds or 0.0

    def headroom(self, workload: str, kind: str, target: str) -> float:
        """Predicted free capacity (in execution slots) at ``target``."""
        record = self.manager.record(workload)
        busy, total = self.manager.backend(kind).target_load(target)
        predicted = self._request_rate(workload) * self._wcet_seconds(record)
        return (total - busy) - predicted

    def rank(self, workload: str, kind: str,
             candidates: List[str]) -> List[str]:
        """Candidates sorted most-headroom-first (deterministic)."""
        return sorted(
            candidates,
            key=lambda t: (-self.headroom(workload, kind, t), t),
        )

    def best_kind(self, workload: str,
                  exclude: Optional[str] = None) -> Optional[str]:
        """The backend kind with the most total headroom, or None."""
        best = None
        best_score = None
        for kind in sorted(self.manager.backends):
            if kind == exclude:
                continue
            targets = self.manager.backend(kind).healthy_targets()
            if not targets:
                continue
            score = max(
                self.headroom(workload, kind, target) for target in targets
            )
            if best_score is None or score > best_score:
                best, best_score = kind, score
        return best


@dataclass
class MigrationDecision:
    """Why the policy wants a workload moved."""

    at: float
    workload: str
    reason: str            # "slo" | "queue" | "fault"
    target_kind: Optional[str]
    detail: str = ""


class MigrationPolicy:
    """Runtime-signal driver: decides *when* to migrate.

    Consumes the monitoring engine's rates, the gateway's windowed
    latency histogram (p99 vs the workload's SLO), live queue depth,
    and fault-injector events — replacing the admission-time-only
    placement the paper describes with a control loop.
    """

    def __init__(
        self,
        env: Environment,
        manager: WorkloadManager,
        gateway: Gateway,
        monitoring=None,
        slo_seconds: Optional[Dict[str, float]] = None,
        default_slo_seconds: Optional[float] = None,
        p99_window_seconds: float = 5.0,
        queue_depth_threshold: int = 64,
        min_window_requests: int = 20,
        cooldown_seconds: float = 5.0,
        scorer: Optional[PlacementScorer] = None,
    ) -> None:
        self.env = env
        self.manager = manager
        self.gateway = gateway
        self.monitoring = monitoring
        self.slo_seconds = dict(slo_seconds or {})
        self.default_slo_seconds = default_slo_seconds
        self.p99_window_seconds = p99_window_seconds
        self.queue_depth_threshold = queue_depth_threshold
        self.min_window_requests = min_window_requests
        self.cooldown_seconds = cooldown_seconds
        self.scorer = scorer or PlacementScorer(manager, monitoring)
        self.decisions: List[MigrationDecision] = []
        #: (sim time, action, target) fault events seen via subscribe().
        self.faults_seen: List[Tuple[float, str, str]] = []
        self._last_decision_at: Dict[str, float] = {}

    # -- signal intake ------------------------------------------------------

    def attach(self, injector) -> None:
        """Subscribe to a fault injector's fired events."""
        injector.subscribe(self.on_fault)

    def on_fault(self, at: float, action: str, target: str) -> None:
        self.faults_seen.append((at, action, target))

    def slo_for(self, workload: str) -> Optional[float]:
        return self.slo_seconds.get(workload, self.default_slo_seconds)

    # -- one evaluation round ----------------------------------------------

    def evaluate(self) -> List[MigrationDecision]:
        """Inspect every deployment; returns the decisions made."""
        made: List[MigrationDecision] = []
        now = self.env.now
        for workload in sorted(self.manager.deployments):
            last = self._last_decision_at.get(workload)
            if last is not None and now - last < self.cooldown_seconds:
                continue
            decision = self._evaluate_workload(workload, now)
            if decision is not None:
                self._last_decision_at[workload] = now
                self.decisions.append(decision)
                made.append(decision)
        return made

    def _evaluate_workload(self, workload: str,
                           now: float) -> Optional[MigrationDecision]:
        record = self.manager.record(workload)
        # Queue depth: the gateway is sitting on a backlog for this
        # workload — the current substrate cannot keep up.
        depth = self.gateway.inflight(workload)
        if depth >= self.queue_depth_threshold:
            target = self.scorer.best_kind(workload,
                                           exclude=record.backend_kind)
            if target is not None:
                return MigrationDecision(
                    now, workload, "queue", target,
                    detail=f"inflight={depth}",
                )
        # p99 vs SLO over the trailing window.
        slo = self.slo_for(workload)
        if slo is not None:
            labels = {"workload": workload}
            since = now - self.p99_window_seconds
            window_count = self.gateway.latency_histogram.count(
                labels=labels, since=since)
            if window_count >= self.min_window_requests:
                p99 = self.gateway.latency_histogram.percentile(
                    99, labels=labels, since=since)
                if p99 > slo:
                    target = self.scorer.best_kind(
                        workload, exclude=record.backend_kind)
                    if target is not None:
                        return MigrationDecision(
                            now, workload, "slo", target,
                            detail=f"p99={p99:.6f}>{slo:.6f}",
                        )
        return None

    def run(self, migrator: "MigrationController",
            check_interval: float = 1.0):
        """Process: evaluate on an interval and act on decisions."""
        def loop():
            while True:
                yield self.env.timeout(check_interval)
                for decision in self.evaluate():
                    migrator.migrate(
                        decision.workload,
                        target_kind=decision.target_kind,
                        reason=decision.reason,
                        fault=decision.detail,
                    )
        return self.env.process(loop())


class MigrationController:
    """Executes migrations as the crash-safe state machine above."""

    def __init__(
        self,
        env: Environment,
        manager: WorkloadManager,
        gateway: Gateway,
        scorer: Optional[PlacementScorer] = None,
        etcd=None,
        metrics=None,
        drain_timeout: float = 1.0,
        drain_poll_seconds: float = 0.002,
        handoff_max_retries: int = 3,
    ) -> None:
        self.env = env
        self.manager = manager
        self.gateway = gateway
        self.scorer = scorer or PlacementScorer(manager)
        self.etcd = etcd
        self.metrics = metrics if metrics is not None else manager.metrics
        self.drain_timeout = drain_timeout
        self.drain_poll_seconds = drain_poll_seconds
        self.handoff_max_retries = handoff_max_retries
        #: Every migration ever attempted, in start order.
        self.migrations: List[Migration] = []
        #: Workload -> in-flight migration (at most one per workload).
        self.active: Dict[str, Migration] = {}
        self._stopped = False
        self.migrations_total = self.metrics.counter(
            "manager_migrations_total",
            "migrations by reason and outcome (completed/rolled-back)",
        )
        self.migration_seconds = self.metrics.histogram(
            "manager_migration_seconds",
            "wall-clock from PLANNED to COMPLETED/ABORTED",
        )
        self.phase_seconds = self.metrics.histogram(
            "migration_phase_seconds", "time spent per state-machine phase",
        )
        self.state_bytes_total = self.metrics.counter(
            "migration_state_bytes_total",
            "persistent lambda state shipped during handoffs",
        )
        self.handoff_retries_total = self.metrics.counter(
            "migration_handoff_retries_total",
            "state re-exports forced by the epoch fence",
        )

    # -- crash simulation ---------------------------------------------------

    def stop(self) -> None:
        """Simulate a controller crash: in-flight migrations freeze
        where they are (holds stay held, journals stay stale) until a
        new controller calls :meth:`recover`."""
        self._stopped = True

    def _checkpoint(self) -> None:
        if self._stopped:
            raise _ControllerStopped()

    # -- public API ---------------------------------------------------------

    def migrate(self, workload: str, target_kind: Optional[str] = None,
                target: Optional[str] = None, reason: str = "manual",
                fault: str = "", forced: bool = False,
                drain_mode: str = "queue"):
        """Process: migrate ``workload``; returns the Migration on
        success (CUTOVER reached), None when it rolled back or another
        migration for the workload is already running."""
        return self.env.process(self._migrate(
            workload, target_kind, target, reason, fault, forced, drain_mode,
        ))

    def migration_for(self, workload: str) -> Optional[Migration]:
        """The most recent migration attempted for ``workload``."""
        for migration in reversed(self.migrations):
            if migration.workload == workload:
                return migration
        return None

    # -- the state machine --------------------------------------------------

    def _set_state(self, migration: Migration, state: str) -> None:
        now = self.env.now
        if migration.history:
            last_at, last_state = migration.history[-1]
            self.phase_seconds.observe(now - last_at,
                                       labels={"phase": last_state})
        migration.state = state
        migration.history.append((now, state))
        if self.env.tracer is not None:
            self.env.tracer.instant(
                "migration.phase", "migration",
                tags={"workload": migration.workload, "state": state,
                      "reason": migration.reason},
            )

    def _migrate(self, workload, target_kind, target, reason, fault,
                 forced, drain_mode):
        if workload in self.active:
            return None
        try:
            record = self.manager.record(workload)
        except KeyError:
            return None
        source_kind = record.backend_kind
        if target_kind is None:
            target_kind = (self.manager.pick_fallback(record) if forced
                           else self.scorer.best_kind(workload,
                                                      exclude=source_kind))
        if target_kind is None:
            return None
        same_kind = target_kind == source_kind
        if same_kind and target is None:
            return None  # NIC->NIC needs an explicit destination
        migration = Migration(
            workload=workload, source_kind=source_kind,
            target_kind=target_kind, reason=reason,
            started_at=self.env.now, fault=fault, forced=forced,
            drain_mode=drain_mode,
        )
        self.migrations.append(migration)
        self.active[workload] = migration
        self._set_state(migration, PLANNED)
        if fault:
            record.last_fault = fault
        record.last_migration_reason = reason
        try:
            yield from self._journal(migration)

            # PLANNED -> PREPARED: target exists, verified, warm.
            target_result = yield from self._prepare(migration, record,
                                                     target)
            if target_result is None:
                return self._rollback(migration, "no healthy target")
            self._set_state(migration, PREPARED)

            # PREPARED -> DRAINING: quiesce the source.
            self._set_state(migration, DRAINING)
            yield from self._drain(migration, record)

            # DRAINING -> STATE_HANDOFF: ship persistent state.
            self._set_state(migration, STATE_HANDOFF)
            handed_off = yield from self._handoff(migration, record, target)
            if not handed_off:
                return self._rollback(migration, "epoch fence never settled")

            # STATE_HANDOFF -> CUTOVER -> COMPLETED. The journal write
            # is fire-and-forget so the flip itself has no yield: a
            # crash lands either wholly before or wholly after it.
            self._journal_sync(migration, CUTOVER)
            self._set_state(migration, CUTOVER)
            self._cutover(migration, record, target_result)
            self._set_state(migration, COMPLETED)
            self._finish(migration, "completed")
            self._journal_sync(migration, COMPLETED)
            return migration
        except _ControllerStopped:
            # Crashed mid-flight: leave everything (holds, journal) as
            # is; recover() on the next controller reconciles.
            return None
        except Exception as exc:
            return self._rollback(migration, f"{type(exc).__name__}: {exc}")
        finally:
            self.active.pop(workload, None)

    # -- phases -------------------------------------------------------------

    def _prepare(self, migration: Migration, record: DeploymentRecord,
                 target: Optional[str]):
        """Deploy/verify/warm the target; returns its DeployResult."""
        manager = self.manager
        workload = migration.workload
        kind = migration.target_kind
        backend = manager.backend(kind)
        if migration.source_kind == kind:
            # NIC->NIC (or host->host): same deployment, new target.
            self._checkpoint()
            healthy = set(backend.healthy_targets())
            if target not in healthy:
                return None
            migration.targets = [target]
            return record.result
        if kind == record.home_backend and record.home_result is not None:
            result = record.home_result
        elif record.standby_kind == kind and record.standby_result is not None:
            result = record.standby_result
        else:
            result = yield manager.prepare_standby(workload, kind)
            self._checkpoint()
        healthy = set(backend.healthy_targets())
        targets = [t for t in result.targets if t in healthy]
        if not targets:
            return None
        migration.targets = targets
        return result

    def _drain(self, migration: Migration, record: DeploymentRecord):
        """Quiesce the source: queue (hold) or dual-route (mirror)."""
        workload = migration.workload
        gateway = self.gateway
        if migration.drain_mode == "dual":
            result = (record.result if migration.source_kind ==
                      migration.target_kind else
                      self._target_result(record, migration))
            gateway.mirror_route(workload, result.wid, migration.targets,
                                 rdma_qp=result.rdma_qp)
        else:
            gateway.hold_route(workload)
        source_alive = bool(
            set(self.manager.healthy_targets(migration.source_kind))
            & set(record.result.targets)
        )
        if not source_alive:
            # Forced migration off a dead source: there is nothing to
            # quiesce — in-flight requests are already retrying through
            # the gateway and will land on the post-cutover route.
            return
        deadline = self.env.now + self.drain_timeout
        while gateway.inflight(workload) > 0 and self.env.now < deadline:
            yield self.env.timeout(self.drain_poll_seconds)
            self._checkpoint()
        # A drain timeout is safe: the source stays deployed after
        # cutover, so stragglers still complete (or retry and land on
        # the new route). The timeout only bounds held-request latency.

    def _target_result(self, record: DeploymentRecord,
                       migration: Migration):
        if migration.target_kind == record.home_backend and \
                record.home_result is not None:
            return record.home_result
        if record.standby_result is not None and \
                record.standby_kind == migration.target_kind:
            return record.standby_result
        return record.result

    def _handoff(self, migration: Migration, record: DeploymentRecord,
                 target: Optional[str]):
        """Export state at an epoch, ship it, verify, import. Returns
        False when the epoch fence never settled (abort)."""
        source = self.manager.backend(migration.source_kind)
        dest = self.manager.backend(migration.target_kind)
        source_target = (record.result.targets[0]
                         if migration.source_kind == migration.target_kind
                         else None)
        for attempt in range(self.handoff_max_retries + 1):
            snapshot = source.export_state(migration.workload,
                                           target=source_target)
            if snapshot is None:
                # Stateless substrate or dead source: nothing to ship.
                migration.state_transferred = False
                return True
            yield from self._transfer_time(snapshot)
            self._checkpoint()
            epoch_now = source.state_epoch(migration.workload,
                                           target=snapshot.source)
            if epoch_now == snapshot.epoch:
                dest.import_state(migration.workload, snapshot,
                                  target=target)
                migration.state_bytes = snapshot.size_bytes
                migration.state_transferred = True
                self.state_bytes_total.inc(snapshot.size_bytes)
                return True
            migration.handoff_retries += 1
            self.handoff_retries_total.inc()
        return False

    def _transfer_time(self, snapshot: StateSnapshot):
        """Time to ship the snapshot over the RDMA substrate."""
        size = snapshot.size_bytes
        if size <= 0:
            return
        n_segments = len(segment_message(size))
        seconds = (size * 8 / HANDOFF_BANDWIDTH_BPS +
                   n_segments * HANDOFF_SEGMENT_SECONDS)
        yield self.env.timeout(seconds)

    def _cutover(self, migration: Migration, record: DeploymentRecord,
                 result) -> None:
        """The atomic flip: route, record, holds — no yields allowed."""
        manager = self.manager
        workload = migration.workload
        self.gateway.set_route(workload, result.wid, list(migration.targets),
                               rdma_qp=result.rdma_qp)
        was_degraded = record.degraded
        record.backend_kind = migration.target_kind
        record.result = result
        record.last_target_kind = migration.target_kind
        record.last_targets = list(migration.targets)
        now_degraded = record.degraded
        if now_degraded and not was_degraded:
            manager.degraded_workloads.add(1)
        elif was_degraded and not now_degraded:
            manager.degraded_workloads.add(-1)
        if migration.forced:
            # Legacy failover accounting: a forced migration IS the
            # old degrade/restore, expressed through the state machine.
            legacy = "restore" if (was_degraded and not now_degraded) \
                else "degrade"
            manager.failovers_total.inc(
                labels={"workload": workload, "kind": legacy})
            manager.failover_seconds.observe(
                self.env.now - migration.started_at,
                labels={"kind": legacy})
        self.gateway.clear_mirror(workload)
        self.gateway.release_route(workload)
        # Placement record: fire-and-forget (etcd may be mid-election;
        # routing must not wait for it).
        if manager.etcd is not None:
            self.env.process(manager._record_placement(
                workload, result.wid, migration.target_kind,
                migration.targets))

    def _rollback(self, migration: Migration, error: str):
        """ABORTED from any pre-cutover state: source keeps serving."""
        workload = migration.workload
        self.gateway.release_route(workload)
        self.gateway.clear_mirror(workload)
        migration.error = error
        self._set_state(migration, ABORTED)
        self._finish(migration, "rolled-back")
        self._journal_sync(migration, ABORTED)
        return None

    def _finish(self, migration: Migration, outcome: str) -> None:
        migration.outcome = outcome
        migration.completed_at = self.env.now
        self.migrations_total.inc(
            labels={"reason": migration.reason, "outcome": outcome})
        self.migration_seconds.observe(
            migration.duration, labels={"reason": migration.reason})
        if self.env.tracer is not None:
            self.env.tracer.instant(
                "migration.done", "migration",
                tags={"workload": migration.workload,
                      "reason": migration.reason, "outcome": outcome},
            )

    # -- journal + recovery -------------------------------------------------

    def _journal_key(self, workload: str) -> str:
        return f"/migration/{workload}"

    def _journal_value(self, migration: Migration, state: str) -> dict:
        return {
            "state": state,
            "source_kind": migration.source_kind,
            "target_kind": migration.target_kind,
            "targets": list(migration.targets),
            "reason": migration.reason,
            "forced": migration.forced,
        }

    def _journal(self, migration: Migration):
        """Durable PLANNED record; best-effort (etcd may be electing).

        Forced migrations never wait on the journal — failover latency
        must not depend on Raft liveness — so they fall through to the
        fire-and-forget path.
        """
        if self.etcd is None:
            return
        if migration.forced:
            self._journal_sync(migration, migration.state)
            return
        try:
            yield self.etcd.set(self._journal_key(migration.workload),
                                self._journal_value(migration,
                                                    migration.state))
        except TimeoutError:
            pass
        self._checkpoint()

    def _journal_sync(self, migration: Migration, state: str) -> None:
        """Fire-and-forget journal write (no yield at the call site)."""
        if self.etcd is None:
            return

        def writer():
            try:
                yield self.etcd.set(
                    self._journal_key(migration.workload),
                    self._journal_value(migration, state))
            except TimeoutError:
                pass

        self.env.process(writer())

    def recover(self, workload: str):
        """Process: reconcile an interrupted migration after a
        controller restart. Idempotent: pre-cutover journals roll
        back (source serving, holds released), a CUTOVER journal is
        completed forward, terminal journals are no-ops. Returns the
        action taken: "none" | "rolled-back" | "completed"."""
        return self.env.process(self._recover(workload))

    def _recover(self, workload: str):
        if self.etcd is None:
            return "none"
        try:
            entry = yield self.etcd.get(self._journal_key(workload))
        except TimeoutError:
            return "none"
        if entry is None:
            return "none"
        state = entry.get("state")
        if state in (COMPLETED, ABORTED) or state is None:
            return "none"
        try:
            record = self.manager.record(workload)
        except KeyError:
            return "none"
        migration = Migration(
            workload=workload,
            source_kind=entry.get("source_kind", record.backend_kind),
            target_kind=entry.get("target_kind", record.backend_kind),
            reason=entry.get("reason", "recovered"),
            started_at=self.env.now,
            forced=bool(entry.get("forced")),
            targets=list(entry.get("targets") or []),
        )
        migration.history.append((self.env.now, state))
        migration.state = state
        self.migrations.append(migration)
        if state == CUTOVER:
            # The flip was journalled: finish forward. Re-running the
            # cutover is idempotent (same route, same record fields).
            result = self._target_result(record, migration)
            if not migration.targets:
                healthy = self.manager.backend(
                    migration.target_kind).healthy_targets()
                migration.targets = [t for t in result.targets
                                     if t in healthy] or list(result.targets)
            self._set_state(migration, CUTOVER)
            self._cutover(migration, record, result)
            self._set_state(migration, COMPLETED)
            self._finish(migration, "completed")
            self._journal_sync(migration, COMPLETED)
            return "completed"
        # Pre-cutover: the source route was never touched — rollback
        # is releasing gateway drain state and closing the journal.
        self._rollback(migration, f"recovered from {state}")
        return "rolled-back"
