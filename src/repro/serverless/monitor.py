"""Monitoring engine and watch service (Figure 5's M1 components).

The OpenFaaS baseline runs a Prometheus-based monitoring engine and a
watch service on the master node. Here:

* :class:`MonitoringEngine` scrapes the metrics registry on an
  interval, keeps bounded time series, and answers rate/percentile
  queries over recent windows.
* :class:`WatchService` watches per-workload health (gateway failures
  vs successes) and raises/clears alerts — the signal an operator (or
  the autoscaler) would act on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..sim import Environment
from .gateway import Gateway
from .metrics import Counter, MetricsRegistry


@dataclass
class Sample:
    at: float
    value: float


class TimeSeries:
    """A bounded series of (time, value) samples."""

    def __init__(self, max_samples: int = 1024) -> None:
        self.samples: Deque[Sample] = deque(maxlen=max_samples)

    def append(self, at: float, value: float) -> None:
        self.samples.append(Sample(at, value))

    def latest(self) -> Optional[Sample]:
        return self.samples[-1] if self.samples else None

    def window(self, since: float) -> List[Sample]:
        return [sample for sample in self.samples if sample.at >= since]

    def rate(self, window_seconds: float, now: float) -> float:
        """Per-second increase of a counter over the trailing window."""
        window = self.window(now - window_seconds)
        if len(window) < 2:
            return 0.0
        first, last = window[0], window[-1]
        elapsed = last.at - first.at
        if elapsed <= 0:
            return 0.0
        return max(0.0, (last.value - first.value) / elapsed)


class MonitoringEngine:
    """Periodically scrapes counters into time series."""

    def __init__(self, env: Environment, registry: MetricsRegistry,
                 scrape_interval: float = 1.0,
                 max_samples: int = 1024) -> None:
        if scrape_interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.env = env
        self.registry = registry
        self.scrape_interval = scrape_interval
        self.max_samples = max_samples
        self.series: Dict[Tuple[str, Tuple], TimeSeries] = {}
        self.scrapes = 0
        self._running = False

    def start(self):
        """Process: scrape until stopped."""
        self._running = True

        def loop():
            while self._running:
                yield self.env.timeout(self.scrape_interval)
                self.scrape()

        return self.env.process(loop())

    def stop(self) -> None:
        self._running = False

    def scrape(self) -> None:
        """Snapshot every counter in the registry right now."""
        self.scrapes += 1
        now = self.env.now
        for name, metric in self.registry.scrape().items():
            if not isinstance(metric, Counter):
                continue
            for labelset, value in metric._values.items():
                key = (name, labelset)
                series = self.series.get(key)
                if series is None:
                    series = TimeSeries(self.max_samples)
                    self.series[key] = series
                series.append(now, value)

    def counter_series(self, name: str,
                       labels: Optional[Dict[str, str]] = None) -> TimeSeries:
        key = (name, tuple(sorted((labels or {}).items())))
        return self.series.get(key, TimeSeries(0))

    def rate(self, name: str, labels: Optional[Dict[str, str]] = None,
             window_seconds: float = 10.0) -> float:
        return self.counter_series(name, labels).rate(
            window_seconds, self.env.now
        )


@dataclass
class Alert:
    at: float
    workload: str
    reason: str
    cleared_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None


class WatchService:
    """Flags workloads whose requests are failing.

    A workload is unhealthy when its failure count grows while its
    success count does not (over one check interval).
    """

    def __init__(self, env: Environment, gateway: Gateway,
                 check_interval: float = 1.0) -> None:
        self.env = env
        self.gateway = gateway
        self.check_interval = check_interval
        self.alerts: List[Alert] = []
        self._last: Dict[str, Tuple[float, float]] = {}
        self._active: Dict[str, Alert] = {}
        self._running = False

    def start(self):
        self._running = True

        def loop():
            while self._running:
                yield self.env.timeout(self.check_interval)
                self.check()

        return self.env.process(loop())

    def stop(self) -> None:
        self._running = False

    def check(self) -> List[Alert]:
        """One health evaluation; returns alerts raised this round."""
        raised = []
        for workload in self.gateway.workloads:
            labels = {"workload": workload}
            ok = self.gateway.requests_total.value(labels=labels)
            failed = self.gateway.failures_total.value(labels=labels)
            last_ok, last_failed = self._last.get(workload, (0.0, 0.0))
            self._last[workload] = (ok, failed)
            failing = failed > last_failed and ok == last_ok
            if failing and workload not in self._active:
                alert = Alert(self.env.now, workload,
                              reason="requests failing with no successes")
                self._active[workload] = alert
                self.alerts.append(alert)
                raised.append(alert)
            elif not failing and workload in self._active and ok > last_ok:
                self._active.pop(workload).cleared_at = self.env.now
        return raised

    def unhealthy(self) -> List[str]:
        return sorted(self._active)
