"""Monitoring engine and watch service (Figure 5's M1 components).

The OpenFaaS baseline runs a Prometheus-based monitoring engine and a
watch service on the master node. Here:

* :class:`MonitoringEngine` scrapes the metrics registry on an
  interval, keeps bounded time series, and answers rate/percentile
  queries over recent windows.
* :class:`WatchService` watches per-workload health (gateway failures
  vs successes) and raises/clears alerts — the signal an operator (or
  the autoscaler) would act on.
* :class:`HealthMonitor` is the failover driver: a probe loop that
  compares each route against the substrate's live targets, shrinks or
  expands routes, degrades workloads to a fallback backend when their
  home substrate is dead, reverses the degradation on recovery, and
  probes breaker-ejected targets back into rotation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..sim import Environment
from .gateway import Gateway
from .manager import WorkloadManager
from .metrics import Counter, MetricsRegistry


@dataclass
class Sample:
    at: float
    value: float


class TimeSeries:
    """A bounded series of (time, value) samples."""

    def __init__(self, max_samples: int = 1024) -> None:
        self.samples: Deque[Sample] = deque(maxlen=max_samples)

    def append(self, at: float, value: float) -> None:
        self.samples.append(Sample(at, value))

    def latest(self) -> Optional[Sample]:
        return self.samples[-1] if self.samples else None

    def window(self, since: float) -> List[Sample]:
        return [sample for sample in self.samples if sample.at >= since]

    def rate(self, window_seconds: float, now: float) -> float:
        """Per-second increase of a counter over the trailing window."""
        window = self.window(now - window_seconds)
        if len(window) < 2:
            return 0.0
        first, last = window[0], window[-1]
        elapsed = last.at - first.at
        if elapsed <= 0:
            return 0.0
        return max(0.0, (last.value - first.value) / elapsed)


class MonitoringEngine:
    """Periodically scrapes counters into time series."""

    def __init__(self, env: Environment, registry: MetricsRegistry,
                 scrape_interval: float = 1.0,
                 max_samples: int = 1024) -> None:
        if scrape_interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.env = env
        self.registry = registry
        self.scrape_interval = scrape_interval
        self.max_samples = max_samples
        self.series: Dict[Tuple[str, Tuple], TimeSeries] = {}
        self.scrapes = 0
        self._running = False

    def start(self):
        """Process: scrape until stopped."""
        self._running = True

        def loop():
            while self._running:
                yield self.env.timeout(self.scrape_interval)
                self.scrape()

        return self.env.process(loop())

    def stop(self) -> None:
        self._running = False

    def scrape(self) -> None:
        """Snapshot every counter in the registry right now."""
        self.scrapes += 1
        now = self.env.now
        for name, metric in self.registry.scrape().items():
            if not isinstance(metric, Counter):
                continue
            for labelset, value in metric._values.items():
                key = (name, labelset)
                series = self.series.get(key)
                if series is None:
                    series = TimeSeries(self.max_samples)
                    self.series[key] = series
                series.append(now, value)

    def counter_series(self, name: str,
                       labels: Optional[Dict[str, str]] = None) -> TimeSeries:
        key = (name, tuple(sorted((labels or {}).items())))
        return self.series.get(key, TimeSeries(0))

    def rate(self, name: str, labels: Optional[Dict[str, str]] = None,
             window_seconds: float = 10.0) -> float:
        return self.counter_series(name, labels).rate(
            window_seconds, self.env.now
        )


@dataclass
class Alert:
    at: float
    workload: str
    reason: str
    cleared_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None


class WatchService:
    """Flags workloads whose requests are failing.

    A workload is unhealthy when its failure count grows while its
    success count does not (over one check interval).
    """

    def __init__(self, env: Environment, gateway: Gateway,
                 check_interval: float = 1.0) -> None:
        self.env = env
        self.gateway = gateway
        self.check_interval = check_interval
        self.alerts: List[Alert] = []
        self._last: Dict[str, Tuple[float, float]] = {}
        self._active: Dict[str, Alert] = {}
        self._running = False

    def start(self):
        self._running = True

        def loop():
            while self._running:
                yield self.env.timeout(self.check_interval)
                self.check()

        return self.env.process(loop())

    def stop(self) -> None:
        self._running = False

    def check(self) -> List[Alert]:
        """One health evaluation; returns alerts raised this round."""
        raised = []
        for workload in self.gateway.workloads:
            labels = {"workload": workload}
            ok = self.gateway.requests_total.value(labels=labels)
            # Failures carry a ``reason`` label; aggregate across it.
            failed = self.gateway.failures_total.sum_matching(labels=labels)
            last_ok, last_failed = self._last.get(workload, (0.0, 0.0))
            self._last[workload] = (ok, failed)
            failing = failed > last_failed and ok == last_ok
            if failing and workload not in self._active:
                alert = Alert(self.env.now, workload,
                              reason="requests failing with no successes")
                self._active[workload] = alert
                self.alerts.append(alert)
                raised.append(alert)
            elif not failing and workload in self._active and ok > last_ok:
                self._active.pop(workload).cleared_at = self.env.now
        return raised

    def unhealthy(self) -> List[str]:
        return sorted(self._active)


@dataclass
class FailoverEvent:
    """One recovery action taken by the health monitor."""

    at: float          # detection time
    workload: str
    kind: str          # "shrink" | "expand" | "degrade" | "restore"
    detail: str = ""
    completed_at: float = 0.0
    #: The triggering fault (same string written to the deployment
    #: record's ``last_fault``) and the backend kind chosen.
    fault: str = ""
    target_kind: str = ""

    @property
    def duration(self) -> float:
        """Detection-to-route-installed latency (time to failover)."""
        return max(0.0, self.completed_at - self.at)


class HealthMonitor:
    """Detects dead deployments and drives the manager to fail over.

    Each check interval, for every deployment:

    1. degraded + home substrate healthy again  -> ``restore`` home;
    2. no live target on the active backend     -> ``degrade`` to the
       first fallback backend with capacity;
    3. route disagrees with the live-target set -> ``shrink``/``expand``
       the route in place (same deployment, fewer/more targets);
    4. targets ejected by a gateway breaker are probed so a recovered
       target closes its breaker and rejoins rotation.

    Every action is recorded as a :class:`FailoverEvent`, which is what
    the fault-recovery experiment reads time-to-failover from.
    """

    def __init__(
        self,
        env: Environment,
        gateway: Gateway,
        manager: WorkloadManager,
        check_interval: float = 0.25,
        probe_timeout: float = 0.1,
        probe_ejected: bool = True,
        migrator=None,
    ) -> None:
        if check_interval <= 0:
            raise ValueError("check interval must be positive")
        self.env = env
        self.gateway = gateway
        self.manager = manager
        #: When a MigrationController is attached, degrade/restore run
        #: as forced migrations through its state machine (one control
        #: plane); legacy metrics and events are preserved.
        self.migrator = migrator
        self.check_interval = check_interval
        self.probe_timeout = probe_timeout
        self.probe_ejected = probe_ejected
        self.events: List[FailoverEvent] = []
        self.errors = 0
        self._transitioning: Set[str] = set()
        self._running = False

    def start(self):
        self._running = True

        def loop():
            while self._running:
                yield self.env.timeout(self.check_interval)
                self.check()

        return self.env.process(loop())

    def stop(self) -> None:
        self._running = False

    # -- one evaluation round ---------------------------------------------

    def check(self) -> List[FailoverEvent]:
        """Evaluate every deployment once; returns events started."""
        started: List[FailoverEvent] = []
        for workload in sorted(self.manager.deployments):
            if workload in self._transitioning:
                continue
            event = self._check_workload(workload)
            if event is not None:
                started.append(event)
        return started

    def _check_workload(self, workload: str) -> Optional[FailoverEvent]:
        manager = self.manager
        record = manager.deployments[workload]
        try:
            route = self.gateway.route_for(workload)
        except KeyError:
            return None  # racing an undeploy

        if record.degraded and self._home_alive(record):
            detail = f"home {record.home_backend} back"
            if self.migrator is not None:
                factory = lambda: self.migrator.migrate(  # noqa: E731
                    workload, target_kind=record.home_backend,
                    reason="restore", fault=detail, forced=True)
            else:
                factory = lambda: manager.restore_home(workload)  # noqa: E731
            return self._transition(workload, "restore", detail=detail,
                                    proc_factory=factory)

        live = manager.live_targets(workload)
        if not live:
            if manager.pick_fallback(record) is None:
                return None  # nowhere to go; keep probing
            detail = f"no live {record.backend_kind} target"
            if self.migrator is not None:
                factory = lambda: self.migrator.migrate(  # noqa: E731
                    workload, reason="fault", fault=detail, forced=True)
            else:
                factory = lambda: manager.degrade(workload)  # noqa: E731
            return self._transition(workload, "degrade", detail=detail,
                                    proc_factory=factory)

        if set(route.targets) != set(live):
            kind = "shrink" if len(live) < len(route.targets) else "expand"
            event = FailoverEvent(self.env.now, workload, kind,
                                  detail=",".join(live),
                                  fault=f"route/live mismatch on "
                                        f"{record.backend_kind}",
                                  target_kind=record.backend_kind)
            manager.reroute(workload, live)
            event.completed_at = self.env.now
            self.events.append(event)
            if self.env.tracer is not None:
                self.env.tracer.instant(
                    "monitor.failover", "failover",
                    tags={"workload": workload, "kind": kind},
                )
            return event

        if self.probe_ejected:
            self._probe_ejected_targets(workload, route.targets)
        return None

    def _home_alive(self, record) -> bool:
        if record.home_result is None:
            return False
        healthy = set(self.manager.healthy_targets(record.home_backend))
        return any(t in healthy for t in record.home_result.targets)

    def _probe_ejected_targets(self, workload: str,
                               targets: List[str]) -> None:
        for target in targets:
            breaker = self.gateway._breakers.get(target)
            if breaker is not None and breaker.ejected:
                self.gateway.probe_target(workload, target,
                                          timeout=self.probe_timeout)

    # -- slow transitions (degrade / restore) ------------------------------

    def _transition(self, workload: str, kind: str, detail: str,
                    proc_factory) -> FailoverEvent:
        event = FailoverEvent(self.env.now, workload, kind, detail=detail,
                              fault=detail)
        self._transitioning.add(workload)

        def runner():
            ok = False
            try:
                result = yield proc_factory()
                ok = result is not None and result is not False
            except Exception:
                # A failover that dies (e.g. fallback deploy racing
                # another fault) must not kill the monitor loop; the
                # next check retries.
                self.errors += 1
            finally:
                self._transitioning.discard(workload)
            if ok:
                event.completed_at = self.env.now
                try:
                    event.target_kind = \
                        self.manager.record(workload).backend_kind
                except KeyError:
                    pass  # undeployed while transitioning
                self.events.append(event)
                if self.env.tracer is not None:
                    self.env.tracer.instant(
                        "monitor.failover", "failover",
                        tags={"workload": workload, "kind": kind},
                    )

        self.env.process(runner())
        return event

    # -- reporting ---------------------------------------------------------

    def events_for(self, workload: str) -> List[FailoverEvent]:
        return [e for e in self.events if e.workload == workload]

    def mean_time_to_failover(self) -> float:
        if not self.events:
            return 0.0
        return sum(e.duration for e in self.events) / len(self.events)
