"""The workload manager (Figure 2): compile, store, deploy, route.

Drives the full deployment pipeline: package the workload, upload it to
object storage, have the backend download and start it, install the
gateway route, and (when an etcd client is present) record placement in
the replicated store the way the paper's bare-metal backend does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..raft import EtcdClient
from ..sim import Environment
from ..workloads import WorkloadSpec
from .backends import Backend, DeployResult
from .gateway import Gateway
from .storage import ObjectStorage


@dataclass
class DeploymentRecord:
    """Bookkeeping for one workload deployment."""

    spec: WorkloadSpec
    backend_kind: str
    result: DeployResult
    #: Wall-clock from deploy() start to route installed.
    total_seconds: float = 0.0
    #: The Table-4 startup metric: download + boot (excludes upload).
    startup_seconds: float = 0.0


class WorkloadManager:
    """Coordinates backends, storage, the gateway, and etcd."""

    def __init__(
        self,
        env: Environment,
        gateway: Gateway,
        storage: ObjectStorage,
        etcd: Optional[EtcdClient] = None,
    ) -> None:
        self.env = env
        self.gateway = gateway
        self.storage = storage
        self.etcd = etcd
        self.backends: Dict[str, Backend] = {}
        self.deployments: Dict[str, DeploymentRecord] = {}
        self._wids = itertools.count(1)

    def add_backend(self, backend: Backend) -> None:
        if backend.kind in self.backends:
            raise ValueError(f"backend {backend.kind!r} already added")
        self.backends[backend.kind] = backend

    def backend(self, kind: str) -> Backend:
        try:
            return self.backends[kind]
        except KeyError:
            raise KeyError(f"no backend {kind!r} (have {sorted(self.backends)})") \
                from None

    def deploy(self, spec: WorkloadSpec, backend_kind: str):
        """Process: run the full deployment pipeline for one workload."""
        return self.env.process(self._deploy(spec, backend_kind))

    def _deploy(self, spec: WorkloadSpec, backend_kind: str):
        if spec.name in self.deployments:
            raise ValueError(f"workload {spec.name!r} already deployed")
        backend = self.backend(backend_kind)
        started = self.env.now
        wid = next(self._wids)

        # 1. Package + upload to global storage.
        package_bytes = backend.package_bytes(spec)
        yield self.storage.put(f"{spec.name}.{backend_kind}", package_bytes)

        # 2. Workers download the artifact.
        download_started = self.env.now
        yield self.storage.download(f"{spec.name}.{backend_kind}")

        # 3. Backend-specific start (boot containers / flash firmware).
        result = yield backend.deploy(spec, wid=wid)

        # 4. Route installation at the gateway.
        self.gateway.set_route(spec.name, wid, result.targets,
                               rdma_qp=result.rdma_qp)

        # 5. Placement state into etcd (bare-metal backend state sync).
        if self.etcd is not None:
            yield self.etcd.set(
                f"/placement/{spec.name}",
                {"wid": wid, "backend": backend_kind,
                 "targets": list(result.targets)},
            )

        record = DeploymentRecord(
            spec=spec,
            backend_kind=backend_kind,
            result=result,
            total_seconds=self.env.now - started,
            startup_seconds=self.env.now - download_started,
        )
        self.deployments[spec.name] = record
        return record

    def undeploy(self, workload: str):
        """Process: tear a workload down everywhere."""
        return self.env.process(self._undeploy(workload))

    def _undeploy(self, workload: str):
        record = self.deployments.get(workload)
        if record is None:
            raise KeyError(f"workload {workload!r} is not deployed")
        backend = self.backend(record.backend_kind)
        self.gateway.remove_route(workload)
        yield backend.undeploy(workload)
        if self.etcd is not None:
            yield self.etcd.delete(f"/placement/{workload}")
        del self.deployments[workload]
        return record

    def placement(self, workload: str):
        """Process: read a workload's placement back from etcd."""
        if self.etcd is None:
            raise RuntimeError("no etcd client configured")
        return self.etcd.get(f"/placement/{workload}")
