"""The workload manager (Figure 2): compile, store, deploy, route.

Drives the full deployment pipeline: package the workload, upload it to
object storage, have the backend download and start it, install the
gateway route, and (when an etcd client is present) record placement in
the replicated store the way the paper's bare-metal backend does.

The manager is also the failover actuator: when the health monitor
reports a deployment's targets dead it can shrink the route to the
survivors, degrade the workload onto a fallback backend (container /
bare-metal) when its home substrate has no capacity left, and reverse
the degradation once the home substrate returns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..raft import EtcdClient
from ..sim import Environment
from ..workloads import WorkloadSpec
from .admission import AdmissionDecision, AdmissionError, AdmissionPolicy
from .backends import Backend, DeployResult
from .gateway import Gateway
from .metrics import MetricsRegistry
from .storage import ObjectStorage

#: Order in which fallback substrates are tried during degradation;
#: bare-metal first because its cold start is the shortest (Table 4).
DEFAULT_FALLBACK_ORDER = ("bare-metal", "container", "lambda-nic")


@dataclass
class DeploymentRecord:
    """Bookkeeping for one workload deployment."""

    spec: WorkloadSpec
    backend_kind: str
    result: DeployResult
    #: Wall-clock from deploy() start to route installed.
    total_seconds: float = 0.0
    #: The Table-4 startup metric: download + boot (excludes upload).
    startup_seconds: float = 0.0
    #: Where the workload was originally deployed (failover reverses
    #: back to this backend when it becomes healthy again).
    home_backend: str = ""
    home_result: Optional[DeployResult] = None
    #: A warm copy on a fallback backend, kept ready for degradation.
    standby_kind: Optional[str] = None
    standby_result: Optional[DeployResult] = None
    #: Static-verification outcome (None when no admission policy ran).
    admission: Optional[AdmissionDecision] = None
    #: Fault attribution: the fault detail that last moved this
    #: deployment and where it went, written at migration cutover so
    #: the record never goes stale after a reroute.
    last_fault: str = ""
    last_migration_reason: str = ""
    last_target_kind: str = ""
    last_targets: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True while served by a backend other than its home."""
        return bool(self.home_backend) and \
            self.backend_kind != self.home_backend


class WorkloadManager:
    """Coordinates backends, storage, the gateway, and etcd."""

    def __init__(
        self,
        env: Environment,
        gateway: Gateway,
        storage: ObjectStorage,
        etcd: Optional[EtcdClient] = None,
        metrics: Optional[MetricsRegistry] = None,
        fallback_order: Sequence[str] = DEFAULT_FALLBACK_ORDER,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.env = env
        self.gateway = gateway
        self.storage = storage
        self.etcd = etcd
        self.metrics = metrics or gateway.metrics
        self.fallback_order = tuple(fallback_order)
        #: Optional verifier-backed admission control for NIC deploys.
        self.admission = admission
        self.backends: Dict[str, Backend] = {}
        self.deployments: Dict[str, DeploymentRecord] = {}
        self._wids = itertools.count(1)
        self.failovers_total = self.metrics.counter(
            "manager_failovers_total",
            "route changes by kind (shrink/expand/degrade/restore)",
        )
        self.failover_seconds = self.metrics.histogram(
            "manager_failover_seconds",
            "time from failover start to route re-installed",
        )
        self.degraded_workloads = self.metrics.gauge(
            "manager_degraded_workloads",
            "workloads currently served off their home backend",
        )
        self.admission_total = self.metrics.counter(
            "manager_admission_total",
            "admission decisions by outcome "
            "(admitted/not-nic/rerouted-wcet/rerouted-unbounded/rejected)",
        )

    def add_backend(self, backend: Backend) -> None:
        if backend.kind in self.backends:
            raise ValueError(f"backend {backend.kind!r} already added")
        self.backends[backend.kind] = backend

    def backend(self, kind: str) -> Backend:
        try:
            return self.backends[kind]
        except KeyError:
            raise KeyError(f"no backend {kind!r} (have {sorted(self.backends)})") \
                from None

    def deploy(self, spec: WorkloadSpec, backend_kind: str):
        """Process: run the full deployment pipeline for one workload."""
        return self.env.process(self._deploy(spec, backend_kind))

    def _deploy(self, spec: WorkloadSpec, backend_kind: str):
        if spec.name in self.deployments:
            raise ValueError(f"workload {spec.name!r} already deployed")
        decision = self._admit(spec, backend_kind)
        if decision is not None:
            backend_kind = decision.admitted_kind
        backend = self.backend(backend_kind)
        started = self.env.now
        wid = next(self._wids)

        # 1. Package + upload to global storage.
        package_bytes = backend.package_bytes(spec)
        yield self.storage.put(f"{spec.name}.{backend_kind}", package_bytes)

        # 2. Workers download the artifact.
        download_started = self.env.now
        yield self.storage.download(f"{spec.name}.{backend_kind}")

        # 3. Backend-specific start (boot containers / flash firmware).
        result = yield backend.deploy(spec, wid=wid)

        # 4. Route installation at the gateway.
        self.gateway.set_route(spec.name, wid, result.targets,
                               rdma_qp=result.rdma_qp)

        # 5. Placement state into etcd (bare-metal backend state sync).
        yield from self._record_placement(spec.name, wid, backend_kind,
                                          result.targets)

        record = DeploymentRecord(
            spec=spec,
            backend_kind=backend_kind,
            result=result,
            total_seconds=self.env.now - started,
            startup_seconds=self.env.now - download_started,
            home_backend=backend_kind,
            home_result=result,
            admission=decision,
        )
        self.deployments[spec.name] = record
        return record

    def _admit(self, spec: WorkloadSpec,
               backend_kind: str) -> Optional[AdmissionDecision]:
        """Run the admission policy (when configured) for one deploy.

        Raises :class:`AdmissionError` — and counts the rejection —
        when the lambda fails static verification outright.
        """
        if self.admission is None:
            return None
        try:
            decision = self.admission.evaluate(
                spec, backend_kind, available_kinds=self.backends
            )
        except AdmissionError:
            self.admission_total.inc(
                labels={"workload": spec.name, "outcome": "rejected"}
            )
            raise
        self.admission_total.inc(
            labels={"workload": spec.name, "outcome": decision.reason}
        )
        return decision

    def undeploy(self, workload: str):
        """Process: tear a workload down everywhere."""
        return self.env.process(self._undeploy(workload))

    def _undeploy(self, workload: str):
        record = self.deployments.get(workload)
        if record is None:
            raise KeyError(f"workload {workload!r} is not deployed")
        self.gateway.remove_route(workload)
        # Tear down every copy: active, home, and warm standby.
        kinds = {record.backend_kind, record.home_backend}
        if record.standby_kind is not None:
            kinds.add(record.standby_kind)
        for kind in sorted(k for k in kinds if k):
            yield self.backend(kind).undeploy(workload)
        if self.etcd is not None:
            yield self.etcd.delete(f"/placement/{workload}")
        if record.degraded:
            self.degraded_workloads.add(-1)
        del self.deployments[workload]
        return record

    def placement(self, workload: str):
        """Process: read a workload's placement back from etcd."""
        if self.etcd is None:
            raise RuntimeError("no etcd client configured")
        return self.etcd.get(f"/placement/{workload}")

    def _record_placement(self, workload: str, wid: int, kind: str,
                          targets: Sequence[str]):
        """Best-effort placement write; etcd may itself be failing over."""
        if self.etcd is None:
            return
        try:
            yield self.etcd.set(
                f"/placement/{workload}",
                {"wid": wid, "backend": kind, "targets": list(targets)},
            )
        except TimeoutError:
            # The store is (temporarily) unavailable — e.g. mid leader
            # election. Routing must not wait for it; the next placement
            # write will reconcile.
            pass

    # -- health / failover -------------------------------------------------

    def record(self, workload: str) -> DeploymentRecord:
        try:
            return self.deployments[workload]
        except KeyError:
            raise KeyError(f"workload {workload!r} is not deployed") from None

    def healthy_targets(self, kind: str) -> List[str]:
        return self.backend(kind).healthy_targets()

    def live_targets(self, workload: str) -> List[str]:
        """The active deployment's targets the substrate reports alive."""
        record = self.record(workload)
        healthy = set(self.healthy_targets(record.backend_kind))
        return [t for t in record.result.targets if t in healthy]

    def reroute(self, workload: str, targets: List[str]) -> None:
        """Re-point the gateway at ``targets`` (same deployment).

        Used for the fast failover paths: shrink away from dead targets,
        expand back when they return. Synchronous — the new route is
        live immediately.
        """
        if not targets:
            raise ValueError("reroute needs at least one target")
        record = self.record(workload)
        kind = "shrink" if len(targets) < len(record.result.targets) else \
            "expand"
        self.gateway.set_route(workload, record.result.wid, list(targets),
                               rdma_qp=record.result.rdma_qp)
        record.last_target_kind = record.backend_kind
        record.last_targets = list(targets)
        self.failovers_total.inc(labels={"workload": workload, "kind": kind})

    def prepare_standby(self, workload: str, kind: str):
        """Process: warm a copy of ``workload`` on backend ``kind``.

        The standby is deployed and booted but receives no traffic; a
        later :meth:`degrade` to the same kind becomes a pure re-route.
        """
        return self.env.process(self._prepare_standby(workload, kind))

    def _prepare_standby(self, workload: str, kind: str):
        record = self.record(workload)
        if kind == record.home_backend:
            raise ValueError(f"{kind!r} is {workload!r}'s home backend")
        if record.standby_kind == kind and record.standby_result is not None:
            return record.standby_result
        backend = self.backend(kind)
        spec = record.spec
        yield self.storage.put(f"{spec.name}.{kind}",
                               backend.package_bytes(spec))
        yield self.storage.download(f"{spec.name}.{kind}")
        result = yield backend.deploy(spec, wid=next(self._wids))
        record.standby_kind = kind
        record.standby_result = result
        return result

    def pick_fallback(self, record: DeploymentRecord) -> Optional[str]:
        """First configured fallback kind with live capacity, or None."""
        for kind in self.fallback_order:
            if kind == record.backend_kind or kind not in self.backends:
                continue
            if self.backend(kind).healthy_targets():
                return kind
        return None

    def degrade(self, workload: str):
        """Process: fail the workload over to a fallback backend.

        Prefers a pre-warmed standby (pure re-route); otherwise runs a
        cold deploy on the fallback. Returns the fallback DeployResult,
        or None when no fallback has capacity.
        """
        return self.env.process(self._degrade(workload))

    def _degrade(self, workload: str):
        record = self.record(workload)
        started = self.env.now
        kind = self.pick_fallback(record)
        if kind is None:
            return None
        if record.standby_kind == kind and record.standby_result is not None:
            result = record.standby_result
        else:
            result = yield from self._prepare_standby(workload, kind)
        healthy = set(self.backend(kind).healthy_targets())
        targets = [t for t in result.targets if t in healthy] or \
            list(result.targets)
        self.gateway.set_route(workload, result.wid, targets,
                               rdma_qp=result.rdma_qp)
        was_degraded = record.degraded
        record.backend_kind = kind
        record.result = result
        if not was_degraded:
            self.degraded_workloads.add(1)
        self.failovers_total.inc(
            labels={"workload": workload, "kind": "degrade"}
        )
        self.failover_seconds.observe(self.env.now - started,
                                      labels={"kind": "degrade"})
        yield from self._record_placement(workload, result.wid, kind, targets)
        return result

    def restore_home(self, workload: str):
        """Process: reverse a degradation once the home backend is back.

        Re-points the route at the healthy home targets and returns
        True; returns False when the home substrate still has no live
        targets. The fallback copy stays warm for the next incident.
        """
        return self.env.process(self._restore_home(workload))

    def _restore_home(self, workload: str):
        record = self.record(workload)
        if not record.degraded or record.home_result is None:
            return False
        home = record.home_result
        healthy = set(self.healthy_targets(record.home_backend))
        targets = [t for t in home.targets if t in healthy]
        if not targets:
            return False
        started = self.env.now
        self.gateway.set_route(workload, home.wid, targets,
                               rdma_qp=home.rdma_qp)
        record.backend_kind = record.home_backend
        record.result = home
        self.degraded_workloads.add(-1)
        self.failovers_total.inc(
            labels={"workload": workload, "kind": "restore"}
        )
        self.failover_seconds.observe(self.env.now - started,
                                      labels={"kind": "restore"})
        yield from self._record_placement(workload, home.wid,
                                          record.home_backend, targets)
        return True
