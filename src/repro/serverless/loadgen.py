"""Load generators: closed-loop and open-loop clients.

The paper's two throughput modes (§6.3.1): closed-loop testing (each
request sent after the previous completes) and parallel testing with N
outstanding requests. Both return a :class:`LoadResult` with latencies
and throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..sim import Environment, exponential
from .gateway import Gateway, GatewayTimeout
from .metrics import percentile_of


@dataclass
class LoadResult:
    """Outcome of one load-generation run."""

    workload: str
    latencies: List[float] = field(default_factory=list)
    failures: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def duration(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else float("nan"))

    def percentile(self, q: float) -> float:
        return percentile_of(sorted(self.latencies), q)


def closed_loop(
    env: Environment,
    gateway: Gateway,
    workload: str,
    n_requests: int,
    concurrency: int = 1,
    payload: Any = None,
    payload_bytes: Optional[int] = None,
    think_time: float = 0.0,
):
    """Process: ``concurrency`` workers issuing ``n_requests`` total."""

    def run():
        result = LoadResult(workload=workload, started_at=env.now)
        remaining = [n_requests]

        def worker():
            while remaining[0] > 0:
                remaining[0] -= 1
                try:
                    outcome = yield gateway.request(
                        workload, payload=payload, payload_bytes=payload_bytes
                    )
                    result.latencies.append(outcome.latency)
                except GatewayTimeout:
                    result.failures += 1
                if think_time > 0:
                    yield env.timeout(think_time)

        workers = [env.process(worker())
                   for _ in range(max(1, concurrency))]
        yield env.all_of(workers)
        result.finished_at = env.now
        return result

    return env.process(run())


def open_loop(
    env: Environment,
    gateway: Gateway,
    workload: str,
    rate_rps: float,
    duration: float,
    rng,
    payload: Any = None,
    payload_bytes: Optional[int] = None,
):
    """Process: Poisson arrivals at ``rate_rps`` for ``duration``."""
    if rate_rps <= 0:
        raise ValueError("rate must be positive")

    def run():
        result = LoadResult(workload=workload, started_at=env.now)
        outstanding = []
        deadline = env.now + duration

        def one_request():
            try:
                outcome = yield gateway.request(
                    workload, payload=payload, payload_bytes=payload_bytes
                )
                result.latencies.append(outcome.latency)
            except GatewayTimeout:
                result.failures += 1

        while env.now < deadline:
            yield env.timeout(exponential(rng, 1.0 / rate_rps))
            if env.now >= deadline:
                break
            outstanding.append(env.process(one_request()))
        if outstanding:
            yield env.all_of(outstanding)
        result.finished_at = env.now
        return result

    return env.process(run())


def round_robin_closed_loop(
    env: Environment,
    gateway: Gateway,
    workloads: List[str],
    n_requests: int,
    concurrency: int = 1,
):
    """Process: closed loop cycling requests across ``workloads``.

    This is the paper's Figure-8 contention driver: requests for
    multiple distinct lambdas issued round-robin, forcing backends to
    switch between them. Returns one LoadResult per workload, plus a
    combined result under key ``"__all__"``.
    """

    def run():
        results = {name: LoadResult(workload=name, started_at=env.now)
                   for name in workloads}
        combined = LoadResult(workload="__all__", started_at=env.now)
        counter = [0]
        remaining = [n_requests]

        def worker():
            while remaining[0] > 0:
                remaining[0] -= 1
                name = workloads[counter[0] % len(workloads)]
                counter[0] += 1
                try:
                    outcome = yield gateway.request(name)
                    results[name].latencies.append(outcome.latency)
                    combined.latencies.append(outcome.latency)
                except GatewayTimeout:
                    results[name].failures += 1
                    combined.failures += 1

        workers = [env.process(worker()) for _ in range(max(1, concurrency))]
        yield env.all_of(workers)
        for result in list(results.values()) + [combined]:
            result.finished_at = env.now
        results["__all__"] = combined
        return results

    return env.process(run())
