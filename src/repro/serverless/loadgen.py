"""Load generators: closed-loop and open-loop clients.

The paper's two throughput modes (§6.3.1): closed-loop testing (each
request sent after the previous completes) and parallel testing with N
outstanding requests. Both return a :class:`LoadResult` with latencies
and throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..sim import Environment, exponential
from .gateway import (
    Gateway,
    GatewayTimeout,
    RequestExpired,
    RequestShed,
    RetryBudgetExhausted,
)
from .metrics import percentile_of

#: Arrival processes :func:`open_loop` understands.
ARRIVAL_PROCESSES = ("poisson", "pareto", "mmpp")


@dataclass
class LoadResult:
    """Outcome of one load-generation run."""

    workload: str
    latencies: List[float] = field(default_factory=list)
    failures: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Overload-control outcome splits (each also counted in
    #: ``failures`` — availability math is unchanged).
    shed: int = 0
    expired: int = 0
    budget_exhausted: int = 0
    #: The per-request deadline this run was generated with (relative
    #: seconds); bounds what :attr:`goodput_rps` counts as useful.
    deadline_seconds: Optional[float] = None

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def duration(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Requests completed *within their deadline* per second.

        Throughput counts every completion; goodput only the useful
        ones. Without a deadline the two coincide — completing at all
        is the only definition of useful available.
        """
        if self.duration <= 0:
            return 0.0
        if self.deadline_seconds is None:
            good = self.completed
        else:
            limit = self.deadline_seconds
            good = sum(1 for latency in self.latencies if latency <= limit)
        return good / self.duration

    @property
    def mean_latency(self) -> float:
        return (sum(self.latencies) / len(self.latencies)
                if self.latencies else float("nan"))

    def percentile(self, q: float) -> float:
        return percentile_of(sorted(self.latencies), q)

    def record_failure(self, error: GatewayTimeout) -> None:
        """Count one failed request, splitting typed overload outcomes."""
        self.failures += 1
        if isinstance(error, RequestShed):
            self.shed += 1
        elif isinstance(error, RequestExpired):
            self.expired += 1
        elif isinstance(error, RetryBudgetExhausted):
            self.budget_exhausted += 1


def closed_loop(
    env: Environment,
    gateway: Gateway,
    workload: str,
    n_requests: int,
    concurrency: int = 1,
    payload: Any = None,
    payload_bytes: Optional[int] = None,
    think_time: float = 0.0,
):
    """Process: ``concurrency`` workers issuing ``n_requests`` total."""

    def run():
        result = LoadResult(workload=workload, started_at=env.now)
        remaining = [n_requests]

        def worker():
            while remaining[0] > 0:
                remaining[0] -= 1
                try:
                    outcome = yield gateway.request(
                        workload, payload=payload, payload_bytes=payload_bytes
                    )
                    result.latencies.append(outcome.latency)
                except GatewayTimeout as error:
                    result.record_failure(error)
                if think_time > 0:
                    yield env.timeout(think_time)

        workers = [env.process(worker())
                   for _ in range(max(1, concurrency))]
        yield env.all_of(workers)
        result.finished_at = env.now
        return result

    return env.process(run())


def _arrival_gaps(arrival: str, rate_rps: float, rng,
                  pareto_alpha: float, burstiness: float):
    """Generator of inter-arrival gaps with mean ``1 / rate_rps``.

    ``poisson``
        Memoryless exponential gaps — the open-loop classic.
    ``pareto``
        Heavy-tailed gaps (shape ``pareto_alpha``, scaled so the mean
        matches): long silences punctuated by dense bursts.
    ``mmpp``
        Two-state Markov-modulated Poisson process: a *hot* state at
        ``burstiness``:1 intensity versus the *cold* state, with
        exponential dwell times, same long-run mean rate.
    """
    mean_gap = 1.0 / rate_rps
    if arrival == "poisson":
        while True:
            yield exponential(rng, mean_gap)
    elif arrival == "pareto":
        if pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must exceed 1 (finite mean)")
        xm = mean_gap * (pareto_alpha - 1.0) / pareto_alpha
        while True:
            u = rng.random()
            yield xm / (1.0 - u) ** (1.0 / pareto_alpha)
    elif arrival == "mmpp":
        if burstiness <= 1.0:
            raise ValueError("burstiness must exceed 1")
        # Rates chosen so equal expected dwell in each state averages
        # back to rate_rps: hot:cold intensity ratio is burstiness:1.
        hot = rate_rps * 2.0 * burstiness / (1.0 + burstiness)
        cold = rate_rps * 2.0 / (1.0 + burstiness)
        mean_dwell = 1.0
        in_hot = True
        dwell = exponential(rng, mean_dwell)
        while True:
            gap = exponential(rng, 1.0 / (hot if in_hot else cold))
            yield gap
            dwell -= gap
            if dwell <= 0.0:
                in_hot = not in_hot
                dwell = exponential(rng, mean_dwell)
    else:
        raise ValueError(
            f"unknown arrival process {arrival!r}; "
            f"expected one of {ARRIVAL_PROCESSES}"
        )


def open_loop(
    env: Environment,
    gateway: Gateway,
    workload: str,
    rate_rps: float,
    duration: float,
    rng,
    payload: Any = None,
    payload_bytes: Optional[int] = None,
    arrival: str = "poisson",
    pareto_alpha: float = 1.5,
    burstiness: float = 4.0,
    deadline_seconds: Optional[float] = None,
):
    """Process: open-loop arrivals at mean ``rate_rps`` for ``duration``.

    ``arrival`` selects the inter-arrival process (see
    :func:`_arrival_gaps`); all three draw only from ``rng``, so runs
    are deterministic per seed. ``deadline_seconds`` stamps each
    request with an absolute deadline that far in the future, engaging
    end-to-end deadline propagation.
    """
    if rate_rps <= 0:
        raise ValueError("rate must be positive")
    gaps = _arrival_gaps(arrival, rate_rps, rng, pareto_alpha, burstiness)

    def run():
        result = LoadResult(workload=workload, started_at=env.now,
                            deadline_seconds=deadline_seconds)
        outstanding = []
        horizon = env.now + duration

        def one_request():
            deadline = (env.now + deadline_seconds
                        if deadline_seconds is not None else None)
            try:
                outcome = yield gateway.request(
                    workload, payload=payload, payload_bytes=payload_bytes,
                    deadline=deadline,
                )
                result.latencies.append(outcome.latency)
            except GatewayTimeout as error:
                result.record_failure(error)

        while env.now < horizon:
            yield env.timeout(next(gaps))
            if env.now >= horizon:
                break
            outstanding.append(env.process(one_request()))
        if outstanding:
            yield env.all_of(outstanding)
        result.finished_at = env.now
        return result

    return env.process(run())


@dataclass(frozen=True)
class Arrival:
    """One planned open-loop request: an id and an absolute send time.

    The id doubles as the shard-ownership key (see
    :mod:`repro.sim.shard`): ids are assigned in arrival order from 0,
    so ``request_id % n_shards`` deals consecutive arrivals round-robin
    across shards and every shard sees a thinned copy of the same
    process.
    """

    request_id: int
    at: float


def iter_arrivals(
    rate_rps: float,
    duration: float,
    rng: random.Random,
    arrival: str = "poisson",
    pareto_alpha: float = 1.5,
    burstiness: float = 4.0,
    start: float = 0.0,
) -> Iterator[Arrival]:
    """Generate the deterministic arrival stream one record at a time.

    A pure function of its arguments: the same seed always yields the
    same ``(request_id, at)`` sequence, which is what lets shard
    workers in different processes regenerate the *full* stream
    locally and keep only their own slice — no multi-gigabyte arrival
    list ever crosses a process boundary. The gap sequence is exactly
    :func:`open_loop`'s for the same ``rng`` state.
    """
    if rate_rps <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    gaps = _arrival_gaps(arrival, rate_rps, rng, pareto_alpha, burstiness)
    horizon = start + duration
    now = start
    request_id = 0
    while True:
        now += next(gaps)
        if now >= horizon:
            return
        yield Arrival(request_id=request_id, at=now)
        request_id += 1


def plan_arrivals(
    rate_rps: float,
    duration: float,
    rng: random.Random,
    arrival: str = "poisson",
    pareto_alpha: float = 1.5,
    burstiness: float = 4.0,
    start: float = 0.0,
) -> List[Arrival]:
    """The fully materialised arrival plan (small experiments/tests)."""
    return list(iter_arrivals(rate_rps, duration, rng, arrival=arrival,
                              pareto_alpha=pareto_alpha,
                              burstiness=burstiness, start=start))


def scheduled_open_loop(
    env: Environment,
    gateway: Gateway,
    workload: str,
    arrivals: Iterable[Arrival],
    payload: Any = None,
    payload_bytes: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
):
    """Process: replay a planned (sub-)stream of arrivals.

    The sharded analogue of :func:`open_loop`: instead of drawing
    inter-arrival gaps live, it walks a pre-planned stream (or any
    deterministic slice of one) and fires each request at time
    ``epoch + record.at``, where the epoch is the simulated instant
    the replay starts (deployment etc. consumes sim time first, and
    may consume *different* amounts on differently sized testbeds).
    A monolithic run replays the whole plan; shard ``i`` replays only
    the arrivals it owns — at the same epoch-relative instants, which
    is what makes merged shard results comparable to the
    single-testbed run.

    Arrival times must be non-decreasing.
    """

    def run():
        epoch = env.now
        result = LoadResult(workload=workload, started_at=env.now,
                            deadline_seconds=deadline_seconds)
        outstanding = []

        def one_request():
            deadline = (env.now + deadline_seconds
                        if deadline_seconds is not None else None)
            try:
                outcome = yield gateway.request(
                    workload, payload=payload, payload_bytes=payload_bytes,
                    deadline=deadline,
                )
                result.latencies.append(outcome.latency)
            except GatewayTimeout as error:
                result.record_failure(error)

        for record in arrivals:
            due = epoch + record.at
            if due < env.now:
                raise ValueError(
                    f"arrival {record.request_id} at {record.at} is "
                    f"out of order (now {env.now - epoch} past the "
                    f"epoch); plans must be non-decreasing in time"
                )
            if due > env.now:
                yield env.timeout(due - env.now)
            outstanding.append(env.process(one_request()))
            # Cap the completion-wait bookkeeping: instead of holding
            # every request process until the end (10^7 entries for a
            # scale run), reap the finished prefix as we go.
            if len(outstanding) >= 512:
                outstanding[:] = [proc for proc in outstanding
                                  if proc.is_alive]
        if outstanding:
            yield env.all_of(outstanding)
        result.finished_at = env.now
        return result

    return env.process(run())


def round_robin_closed_loop(
    env: Environment,
    gateway: Gateway,
    workloads: List[str],
    n_requests: int,
    concurrency: int = 1,
):
    """Process: closed loop cycling requests across ``workloads``.

    This is the paper's Figure-8 contention driver: requests for
    multiple distinct lambdas issued round-robin, forcing backends to
    switch between them. Returns one LoadResult per workload, plus a
    combined result under key ``"__all__"``.
    """

    def run():
        results = {name: LoadResult(workload=name, started_at=env.now)
                   for name in workloads}
        combined = LoadResult(workload="__all__", started_at=env.now)
        counter = [0]
        remaining = [n_requests]

        def worker():
            while remaining[0] > 0:
                remaining[0] -= 1
                name = workloads[counter[0] % len(workloads)]
                counter[0] += 1
                try:
                    outcome = yield gateway.request(name)
                    results[name].latencies.append(outcome.latency)
                    combined.latencies.append(outcome.latency)
                except GatewayTimeout:
                    results[name].failures += 1
                    combined.failures += 1

        workers = [env.process(worker()) for _ in range(max(1, concurrency))]
        yield env.all_of(workers)
        for result in list(results.values()) + [combined]:
            result.finished_at = env.now
        results["__all__"] = combined
        return results

    return env.process(run())
