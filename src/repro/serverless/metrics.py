"""A Prometheus-style metrics registry (the paper's monitoring engine).

Counters, gauges, and histograms with label support and percentile
queries. The gateway and experiment harness record every request here,
and the ECDF/percentile data for the figures comes straight out of the
histograms.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Dict[str, str]]) -> LabelSet:
    return tuple(sorted((labels or {}).items()))


class Counter:
    """Monotonically increasing count, optionally labelled."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0,
            labels: Optional[Dict[str, str]] = None) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_labelset(labels), 0.0)

    @property
    def total(self) -> float:
        return sum(self._values.values())


class Gauge:
    """A value that can go up and down."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._values: Dict[LabelSet, float] = {}

    def set(self, value: float, labels: Optional[Dict[str, str]] = None) -> None:
        self._values[_labelset(labels)] = value

    def add(self, amount: float, labels: Optional[Dict[str, str]] = None) -> None:
        key = _labelset(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_labelset(labels), 0.0)


class Histogram:
    """Stores raw observations; supports percentiles and ECDF export."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._observations: Dict[LabelSet, List[float]] = {}

    def observe(self, value: float,
                labels: Optional[Dict[str, str]] = None) -> None:
        self._observations.setdefault(_labelset(labels), []).append(value)

    def observations(self, labels: Optional[Dict[str, str]] = None) -> List[float]:
        return list(self._observations.get(_labelset(labels), []))

    def count(self, labels: Optional[Dict[str, str]] = None) -> int:
        return len(self._observations.get(_labelset(labels), []))

    def mean(self, labels: Optional[Dict[str, str]] = None) -> float:
        data = self._observations.get(_labelset(labels), [])
        return sum(data) / len(data) if data else math.nan

    def percentile(self, q: float,
                   labels: Optional[Dict[str, str]] = None) -> float:
        """q in [0, 100], nearest-rank."""
        data = sorted(self._observations.get(_labelset(labels), []))
        if not data:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        rank = max(0, min(len(data) - 1, math.ceil(q / 100 * len(data)) - 1))
        return data[rank]

    def ecdf(self, labels: Optional[Dict[str, str]] = None
             ) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs sorted by value."""
        data = sorted(self._observations.get(_labelset(labels), []))
        n = len(data)
        return [(value, (index + 1) / n) for index, value in enumerate(data)]

    def fraction_below(self, threshold: float,
                       labels: Optional[Dict[str, str]] = None) -> float:
        data = sorted(self._observations.get(_labelset(labels), []))
        if not data:
            return math.nan
        return bisect.bisect_right(data, threshold) / len(data)


class MetricsRegistry:
    """Named registry of metrics, as scraped by the monitoring engine."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help_text)

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, help_text)

    def _get_or_create(self, name: str, cls, help_text: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        metric = cls(name, help_text)
        self._metrics[name] = metric
        return metric

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def scrape(self) -> Dict[str, object]:
        """A snapshot view used by the monitoring engine / tests."""
        return dict(self._metrics)
