"""A Prometheus-style metrics registry (the paper's monitoring engine).

The canonical implementation lives in :mod:`repro.obs.metrics`; this
module re-exports it so serverless-layer consumers (gateway, manager,
monitoring engine) keep their import surface. Compared to the old
in-module copy, histograms maintain a sorted cache instead of
re-sorting the raw observation list on every percentile call, support
sim-time-windowed queries, and merge commutatively — and the
nearest-rank percentile logic exists exactly once
(:func:`repro.obs.metrics.percentile_of`).
"""

from __future__ import annotations

from ..obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelSet,
    MetricsRegistry,
    percentile_of,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelSet",
    "MetricsRegistry",
    "percentile_of",
]
