"""Serverless backends: container, bare-metal, and λ-NIC.

A backend owns the worker-side resources for one execution substrate
and knows how to deploy a :class:`~repro.workloads.registry.WorkloadSpec`
onto them. The workload manager drives deployments; the gateway routes
to whatever targets the backend reports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import LambdaNicRuntime, MatchLambdaWorkload, RdmaBinding
from ..host import BareMetalRuntime, ContainerRuntime, HostServer, Runtime
from ..isa import Region
from ..sim import Environment
from ..workloads import WorkloadSpec

#: Staging buffers reserved per RDMA-bound workload (≈ one per
#: concurrently served multi-packet request; the testbed CPU serves 56).
RDMA_BUFFER_POOL = 56


@dataclass
class DeployResult:
    """What the manager needs to finish wiring a deployment."""

    workload: str
    wid: int
    targets: List[str]
    rdma_qp: Optional[int] = None
    package_bytes: int = 0
    startup_seconds: float = 0.0


@dataclass
class StateSnapshot:
    """A lambda's exported persistent state, pinned to an epoch.

    ``epoch`` is the source's state version at export time; the
    migration controller re-reads the source epoch after shipping the
    bytes and re-exports if they diverged (the epoch fence).
    """

    workload: str
    source: str
    epoch: int
    objects: Dict[str, bytes] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return sum(len(blob) for blob in self.objects.values())


class Backend:
    """Interface all backends implement."""

    kind = "abstract"

    def deploy(self, spec: WorkloadSpec, wid: int):
        """Process: deploy and start ``spec``; returns DeployResult."""
        raise NotImplementedError

    def undeploy(self, name: str):
        """Process: remove a deployed workload."""
        raise NotImplementedError

    def package_bytes(self, spec: WorkloadSpec) -> int:
        """Size of the deployable artifact for this backend."""
        raise NotImplementedError

    @property
    def targets(self) -> List[str]:
        raise NotImplementedError

    def healthy_targets(self) -> List[str]:
        """Targets currently able to serve (control-plane liveness).

        This is the kubelet-heartbeat view: which workers/NICs does the
        substrate believe are up right now. The gateway's circuit
        breakers provide the complementary data-plane view.
        """
        return self.targets

    # -- live migration hooks ----------------------------------------------

    def export_state(self, workload: str,
                     target: Optional[str] = None) -> Optional[StateSnapshot]:
        """Snapshot ``workload``'s persistent state, or ``None``.

        ``None`` means "nothing to ship": either this substrate keeps
        no migratable persistent state (host runtimes rebuild theirs on
        start) or the source is dark and unreadable. The controller
        treats both as a state-less cutover.
        """
        return None

    def import_state(self, workload: str, snapshot: StateSnapshot,
                     target: Optional[str] = None) -> int:
        """Install an exported snapshot; returns bytes written."""
        return 0

    def state_epoch(self, workload: str,
                    target: Optional[str] = None) -> Optional[int]:
        """Current state version at the source, for the epoch fence."""
        return None

    def target_load(self, target: str) -> Tuple[int, int]:
        """(busy execution slots, total slots) at ``target``.

        Placement scoring turns this into headroom; the abstract
        fallback reports an idle single slot so substrates without a
        load signal still sort deterministically.
        """
        return (0, 1)


class HostBackend(Backend):
    """Shared logic for the container and bare-metal backends."""

    def __init__(self, env: Environment, servers: List[HostServer],
                 runtime_factory, rng=None,
                 memcached_server: str = "memcached") -> None:
        if not servers:
            raise ValueError("backend needs at least one worker server")
        self.env = env
        self.servers = list(servers)
        self.runtime_factory = runtime_factory
        self.rng = rng
        self.memcached_server = memcached_server

    @property
    def targets(self) -> List[str]:
        return [server.name for server in self.servers]

    def healthy_targets(self) -> List[str]:
        return [server.name for server in self.servers if server.online]

    def target_load(self, target: str) -> Tuple[int, int]:
        for server in self.servers:
            if server.name == target:
                cpu = server.cpu
                return (cpu.busy_threads + cpu.run_queue_length,
                        cpu.n_threads)
        raise KeyError(f"{self.kind} backend has no target {target!r}")

    def runtime(self) -> Runtime:
        return self.runtime_factory()

    def package_bytes(self, spec: WorkloadSpec) -> int:
        return self.runtime().package_bytes(spec.code_bytes)

    def deploy(self, spec: WorkloadSpec, wid: int,
               max_workers: Optional[int] = None):
        def deployer():
            runtime = self.runtime()
            workers = max_workers if max_workers is not None \
                else spec.max_workers_for(self.kind)
            package = runtime.package_bytes(spec.code_bytes)
            startup = runtime.startup_seconds(package)
            for server in self.servers:
                kwargs = dict(spec.host_kwargs)
                if self.rng is not None:
                    kwargs.setdefault("rng", self.rng)
                if spec.kind == "kv":
                    kwargs.setdefault("server", self.memcached_server)
                handler = spec.host_factory(**kwargs)
                server.deploy(
                    spec.name, wid=wid, handler=handler,
                    runtime=self.runtime(), code_bytes=spec.code_bytes,
                    max_workers=workers, warm=False,
                )
            starts = [server.start(spec.name) for server in self.servers]
            yield self.env.all_of(starts)
            return DeployResult(
                workload=spec.name, wid=wid, targets=self.targets,
                package_bytes=package, startup_seconds=startup,
            )

        return self.env.process(deployer())

    def undeploy(self, name: str):
        def undeployer():
            for server in self.servers:
                server.undeploy(name)
            yield self.env.timeout(0.5)  # container/process teardown
            return None

        return self.env.process(undeployer())


class ContainerBackend(HostBackend):
    """Docker/Kubernetes workers (the OpenFaaS default)."""

    kind = "container"

    def __init__(self, env: Environment, servers: List[HostServer],
                 rng=None, memcached_server: str = "memcached") -> None:
        super().__init__(env, servers, ContainerRuntime, rng, memcached_server)


class BareMetalBackend(HostBackend):
    """Isolate-style bare-metal Python service workers."""

    kind = "bare-metal"

    def __init__(self, env: Environment, servers: List[HostServer],
                 rng=None, memcached_server: str = "memcached") -> None:
        super().__init__(env, servers, BareMetalRuntime, rng, memcached_server)


class LambdaNicBackend(Backend):
    """λ-NIC: workloads run on the workers' SmartNICs."""

    kind = "lambda-nic"

    #: Firmware build time for the NIC toolchain; dominates λ-NIC's
    #: startup (Table 4: 19.8 s total with download + flash).
    compile_seconds = 17.7

    def __init__(self, env: Environment, runtime: LambdaNicRuntime) -> None:
        self.env = env
        self.runtime = runtime
        self._qps = itertools.count(1)

    @property
    def targets(self) -> List[str]:
        return [nic.name for nic in self.runtime.nics]

    def healthy_targets(self) -> List[str]:
        return [nic.name for nic in self.runtime.nics if nic.serving]

    def _nic(self, target: str):
        for nic in self.runtime.nics:
            if nic.name == target:
                return nic
        raise KeyError(f"lambda-nic backend has no NIC {target!r}")

    def _source_nics(self, target: Optional[str]) -> List:
        if target is not None:
            return [self._nic(target)]
        return [nic for nic in self.runtime.nics if nic.serving]

    def export_state(self, workload: str,
                     target: Optional[str] = None) -> Optional[StateSnapshot]:
        for nic in self._source_nics(target):
            exported = nic.export_lambda_state(workload)
            if exported is not None:
                epoch, objects = exported
                return StateSnapshot(workload, nic.name, epoch, objects)
        return None

    def import_state(self, workload: str, snapshot: StateSnapshot,
                     target: Optional[str] = None) -> int:
        written = 0
        for nic in self._source_nics(target):
            written += nic.import_lambda_state(workload, snapshot.objects)
        return written

    def state_epoch(self, workload: str,
                    target: Optional[str] = None) -> Optional[int]:
        for nic in self._source_nics(target):
            if nic.export_lambda_state(workload) is not None:
                return nic.state_epoch
        return None

    def target_load(self, target: str) -> Tuple[int, int]:
        nic = self._nic(target)
        return (nic.busy_threads, nic.total_threads)

    def package_bytes(self, spec: WorkloadSpec) -> int:
        if self.runtime.firmware is not None:
            return self.runtime.firmware.binary_size_bytes
        return spec.code_bytes

    def deploy(self, spec: WorkloadSpec, wid: int):
        def deployer():
            program = spec.nic_program()
            rdma = None
            if spec.uses_rdma:
                rdma = RdmaBinding(object_name="image", qp=next(self._qps))
            workload = MatchLambdaWorkload(program=program, wid=wid, rdma=rdma)
            self.runtime.register(workload)
            # Firmware (re)build: the slow NIC toolchain.
            yield self.env.timeout(self.compile_seconds)
            firmware = yield self.runtime.deploy(swap=True)
            if rdma is not None:
                qualified = f"{workload.name}.{rdma.object_name}"
                for nic in self.runtime.nics:
                    # Extra staging buffers beyond the one deploy() bound.
                    size = len(nic.lambda_memory(qualified))
                    nic.memory.allocate(
                        Region.EMEM, (RDMA_BUFFER_POOL - 1) * size
                    )
            startup = self.compile_seconds + sum(
                nic.firmware_swap_seconds for nic in self.runtime.nics[:1]
            )
            return DeployResult(
                workload=spec.name, wid=wid, targets=self.targets,
                rdma_qp=rdma.qp if rdma else None,
                package_bytes=firmware.binary_size_bytes,
                startup_seconds=startup,
            )

        return self.env.process(deployer())

    def undeploy(self, name: str):
        """Process: drop the lambda and reflash the fleet without it."""
        return self.runtime.unregister(name)
