"""Per-target circuit breakers for the gateway datapath.

A breaker tracks consecutive request failures against one target and
ejects it from rotation once a threshold is crossed (OPEN). After a
cool-down the breaker lets a single trial request through (HALF_OPEN);
success closes the breaker, failure re-opens it with an exponentially
growing cool-down. This is the standard Hystrix/Envoy outlier-ejection
pattern, driven entirely by simulated time so runs stay deterministic.
"""

from __future__ import annotations

from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding used for the breaker-state gauge.
STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 0.5, OPEN: 1.0}


class CircuitBreaker:
    """Failure-counting breaker for one (gateway, target) pair."""

    def __init__(
        self,
        target: str,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        backoff_factor: float = 2.0,
        max_reset_timeout: float = 30.0,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset timeout must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        self.target = target
        self.failure_threshold = failure_threshold
        self.base_reset_timeout = reset_timeout
        self.backoff_factor = backoff_factor
        self.max_reset_timeout = max_reset_timeout
        self.on_transition = on_transition

        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.current_reset_timeout = reset_timeout
        #: Lifetime counters (exported via the gateway's metrics).
        self.opens = 0
        self.closes = 0

    # -- queries ----------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a request be sent to this target right now?

        In OPEN state the call transitions to HALF_OPEN once the
        cool-down has elapsed and admits exactly one trial request;
        while a trial is outstanding further calls are refused.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.current_reset_timeout:
                self._transition(HALF_OPEN)
                return True
            return False
        # HALF_OPEN: one trial is already in flight.
        return False

    @property
    def ejected(self) -> bool:
        return self.state != CLOSED

    # -- outcomes ---------------------------------------------------------

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self.closes += 1
            self.current_reset_timeout = self.base_reset_timeout
            self._transition(CLOSED)

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            # The trial failed: back off harder before the next one.
            self.current_reset_timeout = min(
                self.max_reset_timeout,
                self.current_reset_timeout * self.backoff_factor,
            )
            self._open(now)
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and \
                self.consecutive_failures >= self.failure_threshold:
            self._open(now)

    # -- internals --------------------------------------------------------

    def _open(self, now: float) -> None:
        self.opened_at = now
        self.opens += 1
        self._transition(OPEN)

    def _transition(self, new_state: str) -> None:
        old, self.state = self.state, new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(self.target, old, new_state)

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.target!r} {self.state} "
            f"failures={self.consecutive_failures}>"
        )
