"""The gateway: proxies user requests to workloads (Figure 2).

For every request the gateway inserts the :class:`LambdaHeader` with
the workload's assigned ID (paper §4.1), forwards to a worker (host
backend or SmartNIC), and matches the response back to the caller. For
RDMA workloads it segments the payload into multi-packet RDMA writes.

The gateway is itself software on the master node: each request pays a
serialised proxy cost, which is what caps λ-NIC's end-to-end throughput
in Table 2 (the NIC itself is far from saturated).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Packet,
    RdmaHeader,
    UDPHeader,
)
from ..net.network import Node
from ..obs import Tracer
from ..sim import Environment, Resource
from .breaker import STATE_VALUES, CircuitBreaker
from .metrics import MetricsRegistry
from .overload import CoDelShedder, DEADLINE_META, OverloadConfig, RetryBudget


@dataclass
class Route:
    """Where requests for one workload go."""

    workload: str
    wid: int
    targets: List[str]
    #: RDMA queue pair if the workload takes multi-packet input.
    rdma_qp: Optional[int] = None
    _rr: Any = field(default=None, repr=False)

    def next_target(self) -> str:
        if self._rr is None:
            self._rr = itertools.cycle(self.targets)
        return next(self._rr)


@dataclass
class RequestOutcome:
    """What the gateway observed for one request."""

    workload: str
    latency: float
    response: Optional[Packet]
    ok: bool
    retries: int = 0


class GatewayTimeout(Exception):
    """A request exhausted its retries."""

    #: Failure cause, mirrored into ``gateway_failures_total``'s
    #: ``reason`` label. Subclasses refine it so load generators and
    #: dashboards can tell degradation modes apart.
    reason = "timeout"


class RequestExpired(GatewayTimeout):
    """The request's deadline passed before it could complete."""

    reason = "expired"


class RequestShed(GatewayTimeout):
    """The gateway's load shedder rejected the request at arrival."""

    reason = "shed"


class RetryBudgetExhausted(GatewayTimeout):
    """A retry was needed but the workload's retry budget was empty."""

    reason = "retry_budget_exhausted"


#: Upper bound on remembered dual-routed request ids (dedup window).
MIRROR_DEDUP_WINDOW = 4096


class Gateway:
    """Request proxy + response matcher on the master node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        metrics: Optional[MetricsRegistry] = None,
        proxy_seconds: float = 17.2e-6,
        proxy_concurrency: int = 1,
        rdma_segment_bytes: int = 4096,
        request_timeout: float = 5.0,
        max_retries: int = 1,
        rng=None,
        backoff_base: float = 0.02,
        backoff_factor: float = 2.0,
        backoff_max: float = 1.0,
        breaker_threshold: int = 3,
        breaker_reset_timeout: float = 1.0,
        overload: Optional[OverloadConfig] = None,
        overload_rng=None,
    ) -> None:
        self.env = env
        self.node = node
        self.name = node.name
        self.metrics = metrics or MetricsRegistry()
        self.proxy_seconds = proxy_seconds
        self.rdma_segment_bytes = rdma_segment_bytes
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        #: RNG for retry-backoff jitter; None means deterministic
        #: full-length backoff (still reproducible either way).
        self.rng = rng
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_timeout = breaker_reset_timeout
        #: Overload-control knobs (deadlines, retry budgets, shedding,
        #: hedging). None keeps the request path byte-identical to a
        #: gateway without the layer.
        self.overload = overload
        self._retry_budgets: Dict[str, RetryBudget] = {}
        self._shedder: Optional[CoDelShedder] = None
        if overload is not None and overload.shed_target_seconds is not None:
            self._shedder = CoDelShedder(
                overload.shed_target_seconds,
                interval_seconds=overload.shed_interval_seconds,
                rng=overload_rng if overload_rng is not None else rng,
                max_probability=overload.shed_max_probability,
            )
        self._proxy = Resource(env, capacity=proxy_concurrency)
        self._routes: Dict[str, Route] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._ids = itertools.count(1)
        self._pending: Dict[int, Any] = {}
        #: Migration draining state: workloads whose new requests are
        #: queued behind an event (released at cutover or rollback).
        self._holds: Dict[str, Any] = {}
        #: Dual-route overlays: workload -> shadow Route on the
        #: migration target (same request ids, deduped on response).
        self._mirrors: Dict[str, Route] = {}
        #: request_id -> outstanding copies for dual-routed requests;
        #: bounded LRU so a dead mirror target cannot grow it.
        self._mirrored: "OrderedDict[int, int]" = OrderedDict()
        #: Per-workload requests sent and awaiting a response (held
        #: requests are *not* counted — draining waits on this).
        self._outstanding: Dict[str, int] = {}
        self.latency_histogram = self.metrics.histogram(
            "gateway_request_seconds", "end-to-end request latency"
        )
        self.requests_total = self.metrics.counter(
            "gateway_requests_total", "requests proxied"
        )
        self.failures_total = self.metrics.counter(
            "gateway_failures_total", "requests that exhausted retries"
        )
        self.retries_total = self.metrics.counter(
            "gateway_retries_total", "individual retry attempts"
        )
        self.late_responses_total = self.metrics.counter(
            "gateway_late_responses_total",
            "responses that arrived after their waiter timed out",
        )
        self.held_requests_total = self.metrics.counter(
            "gateway_held_requests_total",
            "requests queued behind a migration drain hold",
        )
        self.duplicate_responses_total = self.metrics.counter(
            "gateway_duplicate_responses_total",
            "dual-routed responses deduplicated by request id",
        )
        self.mirrored_requests_total = self.metrics.counter(
            "gateway_mirrored_requests_total",
            "request copies sent to a migration mirror target",
        )
        self.shed_total = self.metrics.counter(
            "gateway_shed_total",
            "requests rejected at arrival by the load shedder",
        )
        self.expired_total = self.metrics.counter(
            "gateway_expired_total",
            "requests dropped because their deadline passed",
        )
        self.hedged_requests_total = self.metrics.counter(
            "gateway_hedged_requests_total",
            "hedge copies sent after the latency-percentile trigger",
        )
        self.retry_budget_exhausted_total = self.metrics.counter(
            "gateway_retry_budget_exhausted_total",
            "requests failed fast on an empty retry budget",
        )
        self.probes_total = self.metrics.counter(
            "gateway_probes_total", "health-probe requests sent"
        )
        self.probe_failures_total = self.metrics.counter(
            "gateway_probe_failures_total", "health probes that timed out"
        )
        self.breaker_state = self.metrics.gauge(
            "gateway_breaker_state",
            "per-target breaker state (0 closed, 0.5 half-open, 1 open)",
        )
        self.breaker_transitions_total = self.metrics.counter(
            "gateway_breaker_transitions_total", "breaker state changes"
        )
        node.attach(self._receive)

    # -- routing table ---------------------------------------------------

    def set_route(self, workload: str, wid: int, targets: List[str],
                  rdma_qp: Optional[int] = None) -> None:
        if not targets:
            raise ValueError(f"route for {workload!r} needs targets")
        self._routes[workload] = Route(workload, wid, list(targets), rdma_qp)

    def remove_route(self, workload: str) -> None:
        """Stop routing for a workload (requests will raise KeyError)."""
        if workload not in self._routes:
            raise KeyError(f"no route for workload {workload!r}")
        del self._routes[workload]

    def route_for(self, workload: str) -> Route:
        route = self._routes.get(workload)
        if route is None:
            raise KeyError(f"no route for workload {workload!r}")
        return route

    @property
    def workloads(self) -> List[str]:
        return sorted(self._routes)

    # -- migration draining (holds, mirrors, dedup) ------------------------

    def hold_route(self, workload: str) -> None:
        """Queue new requests for ``workload`` until :meth:`release_route`.

        Loss-free draining: held requests are parked *before* any send,
        so none of them can be answered by a quiescing source; at
        release they re-read the (possibly re-pointed) route and
        proceed. Idempotent.
        """
        if workload not in self._holds:
            self._holds[workload] = self.env.event()

    def release_route(self, workload: str) -> None:
        """Release any held requests for ``workload``. Idempotent."""
        hold = self._holds.pop(workload, None)
        if hold is not None and not hold.triggered:
            hold.succeed()

    def held(self, workload: str) -> bool:
        return workload in self._holds

    def mirror_route(self, workload: str, wid: int, targets: List[str],
                     rdma_qp: Optional[int] = None) -> None:
        """Dual-route: copy each request to the migration target too.

        Copies share the original request id; the first response wins
        and later ones are absorbed by the request-id dedup (counted in
        ``gateway_duplicate_responses_total``), so clients observe
        exactly one response per request.
        """
        if not targets:
            raise ValueError(f"mirror for {workload!r} needs targets")
        self._mirrors[workload] = Route(workload, wid, list(targets), rdma_qp)

    def clear_mirror(self, workload: str) -> None:
        """Stop dual-routing ``workload``. Idempotent."""
        self._mirrors.pop(workload, None)

    def inflight(self, workload: str) -> int:
        """Requests sent for ``workload`` still awaiting a response.

        Held (queued) requests are excluded: this is the quantity a
        drain waits to reach zero.
        """
        return self._outstanding.get(workload, 0)

    def _drop_outstanding(self, workload: str) -> None:
        left = self._outstanding.get(workload, 1) - 1
        if left > 0:
            self._outstanding[workload] = left
        else:
            self._outstanding.pop(workload, None)

    def _register_mirrored(self, request_id: int, copies: int) -> None:
        self._mirrored[request_id] = copies
        self._mirrored.move_to_end(request_id)
        while len(self._mirrored) > MIRROR_DEDUP_WINDOW:
            self._mirrored.popitem(last=False)

    # -- health / circuit breaking ----------------------------------------

    def breaker_for(self, target: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding ``target``."""
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(
                target,
                failure_threshold=self.breaker_threshold,
                reset_timeout=self.breaker_reset_timeout,
                on_transition=self._on_breaker_transition,
            )
            self._breakers[target] = breaker
        return breaker

    def _on_breaker_transition(self, target: str, old: str, new: str) -> None:
        self.breaker_state.set(STATE_VALUES[new], labels={"target": target})
        self.breaker_transitions_total.inc(
            labels={"target": target, "to": new}
        )

    def ejected_targets(self) -> List[str]:
        """Targets currently held out of rotation by their breaker."""
        return sorted(
            target for target, breaker in self._breakers.items()
            if breaker.ejected
        )

    def _pick_target(self, route: Route) -> str:
        """Round-robin over the route, skipping breaker-ejected targets.

        When every target is ejected the gateway fails open and uses
        the next one anyway: refusing to send at all would turn a full
        outage into a livelock, and the attempt doubles as a probe.
        """
        now = self.env.now
        first = None
        for _ in range(len(route.targets)):
            target = route.next_target()
            if first is None:
                first = target
            breaker = self._breakers.get(target)
            if breaker is None or breaker.allow(now):
                return target
        return first

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff (with jitter when an RNG is present)."""
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.rng is not None:
            # Decorrelate retries: uniform over [delay/2, delay].
            delay *= 0.5 + 0.5 * self.rng.random()
        return delay

    # -- overload control ---------------------------------------------------

    def _fail(self, workload: str, reason: str) -> None:
        """Count one terminal failure, split by cause.

        The ``reason`` label distinguishes degradation modes; the
        counter's unlabeled ``total`` still sums every failure, and
        per-workload aggregates use ``sum_matching``.
        """
        self.failures_total.inc(labels={"workload": workload,
                                        "reason": reason})

    def retry_budget(self, workload: str) -> Optional[RetryBudget]:
        """The (lazily created) per-workload retry budget, if enabled."""
        ov = self.overload
        if ov is None or ov.retry_budget_ratio is None:
            return None
        budget = self._retry_budgets.get(workload)
        if budget is None:
            budget = RetryBudget(ov.retry_budget_ratio,
                                 floor=ov.retry_budget_floor,
                                 cap=ov.retry_budget_cap)
            self._retry_budgets[workload] = budget
        return budget

    @property
    def shedder(self) -> Optional[CoDelShedder]:
        return self._shedder

    def _hedge_delay(self, workload: str) -> Optional[float]:
        """How long to wait before hedging, or None to not hedge.

        The trigger is the configured latency percentile of this
        workload's own completed requests; until enough samples exist
        there is no trustworthy estimate and no hedging.
        """
        ov = self.overload
        if ov is None or ov.hedge_quantile is None:
            return None
        labels = {"workload": workload}
        if self.latency_histogram.count(labels=labels) < ov.hedge_min_samples:
            return None
        delay = self.latency_histogram.percentile(
            ov.hedge_quantile, labels=labels
        )
        return delay if delay > 0.0 else None

    def probe_target(self, workload: str, target: str,
                     timeout: Optional[float] = None):
        """Process: one health-check request straight at ``target``.

        Bypasses the breaker (probes are how OPEN targets get back in)
        and the proxy queue; records the outcome against the target's
        breaker and returns True on response.
        """
        return self.env.process(
            self._probe(workload, target, timeout or self.request_timeout)
        )

    def _probe(self, workload: str, target: str, timeout: float):
        route = self.route_for(workload)
        request_id = next(self._ids)
        waiter = self.env.event()
        self._pending[request_id] = waiter
        self.probes_total.inc(labels={"target": target})
        tracer = self.env.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "gateway.probe", "gateway", trace_id=tracer.new_trace(),
                node=self.name,
                tags={"workload": workload, "target": target},
            )
        self._send_request(route, target, request_id, None, 64, span=span)
        outcome = yield self.env.any_of(
            [waiter, self.env.timeout(timeout, value=None)]
        )
        response = waiter.value if waiter in outcome else None
        self._pending.pop(request_id, None)
        if response is not None:
            self.breaker_for(target).record_success(self.env.now)
            if tracer is not None:
                tracer.end(span, tags={"ok": 1})
            return True
        self.probe_failures_total.inc(labels={"target": target})
        self.breaker_for(target).record_failure(self.env.now)
        if tracer is not None:
            tracer.end(span, tags={"ok": 0})
        return False

    # -- datapath -----------------------------------------------------------

    def _receive(self, packet: Packet) -> None:
        header = packet.headers.get("LambdaHeader")
        if header is None or not header.is_response:
            return
        request_id = header.request_id
        copies = self._mirrored.get(request_id)
        if copies is not None:
            if copies <= 1:
                self._mirrored.pop(request_id, None)
            else:
                self._mirrored[request_id] = copies - 1
        waiter = self._pending.pop(request_id, None)
        if waiter is None or waiter.triggered:
            if copies is not None:
                # A dual-routed copy already answered this request:
                # absorb the duplicate so the caller observes exactly
                # one response.
                self.duplicate_responses_total.inc()
                return
            # The waiter was already popped on timeout (or resolved):
            # this response raced its retry and must not vanish
            # silently — it is the signal that the backend is alive
            # but slow, which the monitor wants to see.
            self.late_responses_total.inc()
            return
        waiter.succeed(packet)

    def request(self, workload: str, payload: Any = None,
                payload_bytes: Optional[int] = None,
                deadline: Optional[float] = None):
        """Process: one user request through the gateway.

        ``deadline`` is an absolute sim time; it is stamped into every
        packet sent for the request so downstream queues can drop
        already-dead work, and the gateway itself gives up (with
        :class:`RequestExpired`) once it passes. With no explicit
        deadline the configured ``OverloadConfig.deadline_seconds``
        (if any) applies.

        Returns a :class:`RequestOutcome`; raises
        :class:`GatewayTimeout` after ``max_retries`` unanswered sends
        (or one of its typed subclasses for shed / expired /
        budget-exhausted outcomes).
        """
        return self.env.process(
            self._request(workload, payload, payload_bytes, deadline)
        )

    def _request(self, workload: str, payload: Any,
                 payload_bytes: Optional[int],
                 deadline: Optional[float] = None):
        size = payload_bytes if payload_bytes is not None else (
            len(payload) if isinstance(payload, (bytes, bytearray)) else 64
        )
        ov = self.overload
        if deadline is None and ov is not None and \
                ov.deadline_seconds is not None:
            deadline = self.env.now + ov.deadline_seconds
        if self._shedder is not None and self._shedder.should_shed():
            # Admission control happens before any queueing or sends:
            # a shed request costs the system nothing downstream.
            self.shed_total.inc(labels={"workload": workload})
            self._fail(workload, "shed")
            tracer = self.env.tracer
            if tracer is not None:
                tracer.instant("gateway.shed", "gateway",
                               trace_id=tracer.new_trace(), node=self.name,
                               tags={"workload": workload})
            raise RequestShed(f"request to {workload!r} shed under overload")
        budget = self.retry_budget(workload)
        if budget is not None:
            budget.note_request()
        retries = 0
        start = None
        hold = self._holds.get(workload)
        if hold is not None and not hold.triggered:
            # A migration drain is in progress: queue behind it. The
            # wait counts toward measured latency (the client is
            # waiting), so draining shows up as a bounded p99 bump.
            self.held_requests_total.inc(labels={"workload": workload})
            start = self.env.now
            yield hold
            try:
                route = self.route_for(workload)
            except KeyError:
                self._fail(workload, "timeout")
                raise GatewayTimeout(
                    f"workload {workload!r} was undeployed mid-request"
                ) from None
        else:
            route = self.route_for(workload)
        tracer = self.env.tracer
        root = None
        if tracer is not None:
            root = tracer.begin(
                "gateway.request", "gateway", trace_id=tracer.new_trace(),
                node=self.name, tags={"workload": workload},
            )
        while True:
            request_id = next(self._ids)
            waiter = self.env.event()
            self._pending[request_id] = waiter
            self._outstanding[workload] = \
                self._outstanding.get(workload, 0) + 1
            proxy_span = None
            if tracer is not None:
                proxy_span = tracer.begin(
                    "gateway.proxy", "gateway", trace_id=root.trace_id,
                    parent=root, node=self.name,
                    tags={"request_id": request_id},
                )
            # Proxy (NAT / route lookup / header insertion) — serialised.
            queued_at = self.env.now
            with self._proxy.request() as slot:
                yield slot
                if self._shedder is not None:
                    # The proxy queue is the gateway's sojourn signal.
                    self._shedder.observe(self.env.now - queued_at,
                                          self.env.now)
                if deadline is not None and self.env.now > deadline:
                    # Dequeue check: the deadline passed while queued
                    # behind the proxy — drop instead of sending dead
                    # work downstream.
                    self._pending.pop(request_id, None)
                    self._drop_outstanding(workload)
                    self.expired_total.inc(labels={"workload": workload})
                    self._fail(workload, "expired")
                    if tracer is not None:
                        tracer.end(proxy_span, tags={"expired": 1})
                        tracer.end(root, tags={"ok": 0, "expired": 1,
                                               "retries": retries})
                    raise RequestExpired(
                        f"request to {workload!r} expired in the proxy queue"
                    )
                yield self.env.timeout(self.proxy_seconds)
                target = self._pick_target(route)
                if start is None:
                    # Latency is measured from the moment the gateway
                    # sends the request (paper §6.3.1), not including
                    # its own queued proxy time.
                    start = self.env.now
                if tracer is not None:
                    tracer.end(proxy_span, tags={"target": target})
                self._send_request(route, target, request_id, payload, size,
                                   span=root, deadline=deadline)
                mirror = self._mirrors.get(workload)
                if mirror is not None:
                    # Dual-route the same request id to the migration
                    # target; _receive dedups whichever answers second.
                    self._register_mirrored(request_id, 2)
                    self.mirrored_requests_total.inc(
                        labels={"workload": workload}
                    )
                    self._send_request(mirror, mirror.next_target(),
                                       request_id, payload, size, span=root,
                                       deadline=deadline)
            wait_timeout = self.request_timeout
            if deadline is not None:
                # Waiting past the deadline is pointless: the caller
                # has already given up on this request.
                wait_timeout = min(wait_timeout,
                                   max(0.0, deadline - self.env.now))
            hedge_delay = None
            if mirror is None and retries == 0 and len(route.targets) > 1:
                hedge_delay = self._hedge_delay(workload)
            if hedge_delay is not None and hedge_delay < wait_timeout:
                # Tail-at-scale hedging: wait out the configured
                # percentile first, then race a second copy (same
                # request id; _receive absorbs whichever loses).
                outcome = yield self.env.any_of(
                    [waiter, self.env.timeout(hedge_delay, value=None)]
                )
                if not waiter.triggered:
                    if budget is None or budget.withdraw():
                        hedge_target = self._pick_target(route)
                        self._register_mirrored(request_id, 2)
                        self.hedged_requests_total.inc(
                            labels={"workload": workload}
                        )
                        if tracer is not None:
                            tracer.instant(
                                "gateway.hedge", "gateway",
                                trace_id=root.trace_id, parent=root,
                                node=self.name,
                                tags={"target": hedge_target},
                            )
                        self._send_request(route, hedge_target, request_id,
                                           payload, size, span=root,
                                           deadline=deadline)
                    outcome = yield self.env.any_of(
                        [waiter,
                         self.env.timeout(wait_timeout - hedge_delay,
                                          value=None)]
                    )
                response = waiter.value if waiter.triggered else None
            else:
                outcome = yield self.env.any_of(
                    [waiter, self.env.timeout(wait_timeout, value=None)]
                )
                response = waiter.value if waiter in outcome else None
            self._pending.pop(request_id, None)
            self._drop_outstanding(workload)
            if response is not None:
                if target in self._breakers:
                    self._breakers[target].record_success(self.env.now)
                latency = self.env.now - start
                self.latency_histogram.observe(
                    latency, labels={"workload": workload}
                )
                self.requests_total.inc(labels={"workload": workload})
                if tracer is not None:
                    tracer.end(root, tags={"ok": 1, "target": target,
                                           "retries": retries})
                return RequestOutcome(workload, latency, response, True, retries)
            # Forget any mirror copies for the timed-out id: arrivals
            # from here on are late responses, not duplicates.
            self._mirrored.pop(request_id, None)
            if deadline is not None and self.env.now >= deadline:
                # The client's deadline passed while waiting: retrying
                # could only produce work nobody wants. The breaker is
                # left alone — the target was never given a full
                # request_timeout to answer.
                self.expired_total.inc(labels={"workload": workload})
                self._fail(workload, "expired")
                if tracer is not None:
                    tracer.end(root, tags={"ok": 0, "expired": 1,
                                           "retries": retries})
                raise RequestExpired(
                    f"request to {workload!r} passed its deadline unanswered"
                )
            self.breaker_for(target).record_failure(self.env.now)
            retries += 1
            self.retries_total.inc(labels={"workload": workload})
            if tracer is not None:
                tracer.instant(
                    "gateway.timeout", "gateway", trace_id=root.trace_id,
                    parent=root, node=self.name,
                    tags={"target": target, "attempt": retries},
                )
            if retries > self.max_retries:
                self._fail(workload, "timeout")
                if tracer is not None:
                    tracer.end(root, tags={"ok": 0, "retries": retries})
                raise GatewayTimeout(
                    f"request to {workload!r} unanswered after {retries - 1} retries"
                )
            if budget is not None and not budget.withdraw():
                # Fail fast: the workload has burned its retry
                # allowance, and piling on more load is exactly how
                # retry storms turn overload into collapse.
                self.retry_budget_exhausted_total.inc(
                    labels={"workload": workload}
                )
                self._fail(workload, "retry_budget_exhausted")
                if tracer is not None:
                    tracer.end(root, tags={"ok": 0, "retries": retries,
                                           "budget_exhausted": 1})
                raise RetryBudgetExhausted(
                    f"request to {workload!r}: retry budget exhausted"
                )
            backoff_span = None
            if tracer is not None:
                backoff_span = tracer.begin(
                    "gateway.backoff", "gateway", trace_id=root.trace_id,
                    parent=root, node=self.name, tags={"attempt": retries},
                )
            yield self.env.timeout(self._backoff_delay(retries))
            if tracer is not None:
                tracer.end(backoff_span)
            # Re-read the route: a failover may have re-pointed the
            # workload (new targets, new wid) while we were backing off.
            try:
                route = self.route_for(workload)
            except KeyError:
                self._fail(workload, "timeout")
                if tracer is not None:
                    tracer.end(root, tags={"ok": 0, "retries": retries,
                                           "undeployed": 1})
                raise GatewayTimeout(
                    f"workload {workload!r} was undeployed mid-request"
                ) from None

    def _send_request(self, route: Route, target: str, request_id: int,
                      payload: Any, size: int, span=None,
                      deadline: Optional[float] = None) -> None:
        if route.rdma_qp is not None:
            self._send_rdma(route, target, request_id, payload, size,
                            span=span, deadline=deadline)
            return
        packet = Packet(
            src=self.name,
            dst=target,
            headers=HeaderStack([
                EthernetHeader(),
                IPv4Header(src_ip=self.name, dst_ip=target),
                UDPHeader(),
                LambdaHeader(wid=route.wid, request_id=request_id),
            ]),
            payload=payload,
            payload_bytes=size,
        )
        if deadline is not None:
            packet.meta[DEADLINE_META] = self._attempt_deadline(deadline)
        if span is not None:
            Tracer.stamp_packet(packet, span)
        self.node.send(packet)

    def _attempt_deadline(self, deadline: float) -> float:
        """The deadline stamped into one attempt's packets.

        A response is useless to *this* attempt once its waiter times
        out (a retry or hedge carries a fresh stamp), so the backend
        should never work past ``min(overall deadline, now + timeout)``
        — the gRPC-style per-attempt deadline.
        """
        return min(deadline, self.env.now + self.request_timeout)

    def _send_rdma(self, route: Route, target: str, request_id: int,
                   payload: Any, size: int, span=None,
                   deadline: Optional[float] = None) -> None:
        """Segment a large payload into RDMA writes (paper D3)."""
        segment = self.rdma_segment_bytes
        total = max(1, (size + segment - 1) // segment)
        blob = payload if isinstance(payload, (bytes, bytearray)) else None
        for seq in range(total):
            chunk_size = min(segment, size - seq * segment)
            chunk = (bytes(blob[seq * segment: seq * segment + chunk_size])
                     if blob is not None else None)
            packet = Packet(
                src=self.name,
                dst=target,
                headers=HeaderStack([
                    EthernetHeader(),
                    IPv4Header(src_ip=self.name, dst_ip=target),
                    UDPHeader(),
                    LambdaHeader(wid=route.wid, request_id=request_id,
                                 seq=seq, total_segments=total),
                    RdmaHeader(opcode="WRITE", qp=route.rdma_qp,
                               remote_address=seq * segment,
                               length=chunk_size),
                ]),
                payload=chunk,
                payload_bytes=chunk_size,
            )
            if deadline is not None:
                packet.meta[DEADLINE_META] = self._attempt_deadline(deadline)
            if span is not None:
                Tracer.stamp_packet(packet, span)
            self.node.send(packet)
