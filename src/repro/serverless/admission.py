"""Verifier-backed admission control for NIC deployments.

λ-NIC shares NPU cores between tenants with run-to-completion
scheduling, so a lambda that faults, loops forever, or simply runs too
long hurts *every* co-resident workload. Before the workload manager
flashes anything, the admission layer runs the static verifier
(:func:`repro.isa.verify.verify_program`) over the lambda:

* **error-grade findings** (out-of-bounds access, uninitialized reads,
  unbounded loops, instruction-store overflow) reject the deployment
  outright — :class:`AdmissionError`;
* a **WCET above the NIC SLO** (or no WCET bound at all) routes the
  workload to a host backend instead: it is correct, just not
  interactive enough for the NIC's run-to-completion cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Tuple

from ..isa.verify import VerifierReport, VerifyOptions, verify_program
from ..workloads import WorkloadSpec

#: Agilio CX NPU clock (paper §6.1.2: 1.6 ns/cycle ≈ 633 MHz).
NIC_CLOCK_HZ = 633e6


class AdmissionError(Exception):
    """The lambda failed static verification; nothing was deployed."""

    def __init__(self, message: str, report: Optional[VerifierReport] = None):
        super().__init__(message)
        self.report = report


@dataclass
class AdmissionDecision:
    """Outcome of admission control for one deployment request."""

    workload: str
    #: Backend the caller asked for.
    requested_kind: str
    #: Backend the workload was actually admitted to.
    admitted_kind: str
    #: "admitted" | "not-nic" | "rerouted-wcet" | "rerouted-unbounded"
    reason: str
    report: Optional[VerifierReport] = None
    wcet_seconds: Optional[float] = None

    @property
    def rerouted(self) -> bool:
        return self.admitted_kind != self.requested_kind


@dataclass
class AdmissionPolicy:
    """Admission rules the workload manager applies before deploying."""

    #: Response-time budget for one NIC invocation. The default is the
    #: interactive-microservice bar the paper targets (<1 ms on-NIC).
    nic_slo_seconds: float = 1e-3
    clock_hz: float = NIC_CLOCK_HZ
    #: Backend kinds whose deployments run lambda IR on the NIC (and
    #: therefore must pass the verifier).
    nic_backend_kinds: Tuple[str, ...] = ("lambda-nic",)
    #: Host substrates tried (in order) when a verified-but-slow lambda
    #: is bounced off the NIC.
    host_fallback_order: Tuple[str, ...] = ("bare-metal", "container")
    #: Verifier knobs (entry/scratch default from the program itself).
    verify_options: VerifyOptions = field(default_factory=VerifyOptions)
    #: Differential guard for verifier deepening: a sharper analysis
    #: (the interval pass) must only *tighten* WCETs and upgrade
    #: diagnostics, never flip a previously-admitted lambda to
    #: rejected. When the interval-enabled verdict would reject but the
    #: pre-interval verdict admits, the pre-interval verdict wins.
    differential_guard: bool = True

    def evaluate(
        self,
        spec: WorkloadSpec,
        backend_kind: str,
        available_kinds: Iterable[str] = (),
    ) -> AdmissionDecision:
        """Decide where (whether) ``spec`` may deploy.

        Raises :class:`AdmissionError` when the lambda has error-grade
        findings, or when its WCET misses the SLO and no host fallback
        is available.
        """
        if backend_kind not in self.nic_backend_kinds:
            return AdmissionDecision(
                workload=spec.name,
                requested_kind=backend_kind,
                admitted_kind=backend_kind,
                reason="not-nic",
            )
        report = verify_program(spec.nic_program(), self.verify_options)
        if not report.ok and self.differential_guard \
                and self.verify_options.use_intervals:
            baseline = verify_program(
                spec.nic_program(),
                replace(self.verify_options, use_intervals=False),
            )
            if baseline.ok:
                # Errors introduced only by the interval deepening
                # (e.g. a warning upgraded to a definite out-of-bounds
                # proof) must not regress admission; the sharper report
                # stays available on the decision for diagnostics.
                report = baseline
        if not report.ok:
            first = report.errors[0]
            raise AdmissionError(
                f"workload {spec.name!r} failed verification with "
                f"{len(report.errors)} error(s); first: {first}",
                report=report,
            )
        wcet_seconds = report.wcet_seconds(self.clock_hz)
        if wcet_seconds is not None and wcet_seconds <= self.nic_slo_seconds:
            return AdmissionDecision(
                workload=spec.name,
                requested_kind=backend_kind,
                admitted_kind=backend_kind,
                reason="admitted",
                report=report,
                wcet_seconds=wcet_seconds,
            )
        # Verified-correct but not provably interactive: bounce to host.
        reason = "rerouted-unbounded" if wcet_seconds is None \
            else "rerouted-wcet"
        fallback = next(
            (kind for kind in self.host_fallback_order
             if kind in set(available_kinds)),
            None,
        )
        if fallback is None:
            detail = "has no static WCET bound" if wcet_seconds is None else \
                f"WCET {wcet_seconds * 1e3:.3f} ms exceeds the " \
                f"{self.nic_slo_seconds * 1e3:.3f} ms NIC SLO"
            raise AdmissionError(
                f"workload {spec.name!r} {detail} and no host fallback "
                "backend is available",
                report=report,
            )
        return AdmissionDecision(
            workload=spec.name,
            requested_kind=backend_kind,
            admitted_kind=fallback,
            reason=reason,
            report=report,
            wcet_seconds=wcet_seconds,
        )
