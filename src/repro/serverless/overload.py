"""End-to-end overload control: graceful degradation at every hop.

Four mechanisms, each individually optional (all off by default so the
layer is zero-cost when unused):

* **Deadline propagation** — the gateway stamps an absolute sim-time
  deadline into ``packet.meta`` and every queueing point (gateway
  proxy, SmartNIC NPU dispatch, host server run queue) checks it on
  dequeue and drops already-dead work instead of executing it. The NIC
  check is additionally WCET-aware: with the static verifier's WCET
  bound available it drops on *arrival* when even an immediately
  scheduled execution could not finish in time.
* **Retry budgets** — a per-workload token bucket at the gateway
  (Finagle-style): each fresh request deposits a fraction of a token,
  each retry or hedge withdraws one. When the bucket is empty the
  request fails fast with a distinct outcome, so retry storms
  self-extinguish instead of amplifying overload.
* **Adaptive load shedding** — a CoDel-style controller watching queue
  sojourn time: when the observed wait stays above a target for a full
  interval it starts probabilistically rejecting new arrivals (drop
  probability ramping with persistence), and recovers the moment the
  wait drops back under the target.
* **Hedged requests** — configured on :class:`OverloadConfig` and
  implemented by the gateway on top of the migration-mirror dedup
  machinery (same request id to a second target, first response wins,
  the late copy is absorbed), guarded by the retry budget.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..net.packet import DEADLINE_META

__all__ = [
    "CoDelShedder",
    "DEADLINE_META",
    "OverloadConfig",
    "RetryBudget",
]


@dataclass
class OverloadConfig:
    """Knobs for the overload-control layer. Everything defaults off.

    All times are simulated seconds; ``hedge_quantile`` is a percentile
    in ``[0, 100]`` to match :meth:`Histogram.percentile`.
    """

    #: Default per-request deadline, applied by the gateway as
    #: ``now + deadline_seconds`` when the caller passes none.
    deadline_seconds: Optional[float] = None
    #: Retry-budget deposit per fresh request (e.g. 0.1 == retries may
    #: consume up to ~10% of recent request volume). None disables.
    retry_budget_ratio: Optional[float] = None
    #: Initial bucket balance: a reserve so cold workloads can still
    #: retry sporadic failures.
    retry_budget_floor: float = 10.0
    #: Bucket capacity: bounds how large a burst of retries an idle
    #: period can bank.
    retry_budget_cap: float = 100.0
    #: Gateway proxy-queue sojourn target; above it for a full interval
    #: the gateway starts shedding arrivals. None disables.
    shed_target_seconds: Optional[float] = None
    #: How long sojourn must stay above target before shedding starts.
    shed_interval_seconds: float = 0.1
    #: Ceiling on the shedder's drop probability (never sheds 100%:
    #: admitted requests are how it observes recovery).
    shed_max_probability: float = 0.95
    #: Per-backend (NIC / host server) dispatch-wait target for the
    #: backend-local shedders. None disables backend shedding.
    backend_shed_target_seconds: Optional[float] = None
    #: Latency percentile (0-100) after which the gateway sends a
    #: hedge copy to the next-ranked target. None disables hedging.
    hedge_quantile: Optional[float] = None
    #: Observations needed before the hedge trigger trusts the
    #: percentile estimate.
    hedge_min_samples: int = 32

    @property
    def enabled(self) -> bool:
        """True when any mechanism is switched on."""
        return any(value is not None for value in (
            self.deadline_seconds,
            self.retry_budget_ratio,
            self.shed_target_seconds,
            self.backend_shed_target_seconds,
            self.hedge_quantile,
        ))


class RetryBudget:
    """Token bucket bounding retries to a fraction of request volume.

    Fresh requests deposit ``ratio`` tokens (clamped to ``cap``);
    retries and hedges withdraw one each. The ``floor`` seeds the
    bucket so low-traffic workloads can still retry isolated failures.
    """

    def __init__(self, ratio: float, floor: float = 10.0,
                 cap: float = 100.0) -> None:
        if ratio < 0:
            raise ValueError("retry budget ratio must be non-negative")
        if cap < floor:
            raise ValueError("retry budget cap must be >= floor")
        self.ratio = ratio
        self.floor = floor
        self.cap = cap
        self.balance = float(floor)
        self.deposited = 0.0
        self.withdrawn = 0
        self.denied = 0

    def note_request(self) -> None:
        """One fresh (non-retry) request: deposit ``ratio`` tokens."""
        self.balance = min(self.cap, self.balance + self.ratio)
        self.deposited += self.ratio

    def withdraw(self) -> bool:
        """Take one token for a retry/hedge; False when broke."""
        if self.balance >= 1.0:
            self.balance -= 1.0
            self.withdrawn += 1
            return True
        self.denied += 1
        return False


class CoDelShedder:
    """CoDel-style admission controller keyed on queue sojourn time.

    Dequeue points feed observed waits into :meth:`observe`; arrival
    points ask :meth:`should_shed`. The controller trips once sojourn
    has exceeded ``target_seconds`` continuously for
    ``interval_seconds``, ramps its drop probability with the number of
    consecutive above-target observations (``1 - 1/sqrt(1 + n)``, the
    CoDel control law's flavor of gradual escalation), and resets the
    instant a sojourn lands back at or under the target.
    """

    def __init__(self, target_seconds: float,
                 interval_seconds: float = 0.1,
                 rng=None,
                 max_probability: float = 0.95) -> None:
        if target_seconds <= 0:
            raise ValueError("shed target must be positive")
        self.target = target_seconds
        self.interval = interval_seconds
        self.max_probability = max_probability
        self.rng = rng if rng is not None else random.Random(0xC0DE1)
        self.shedding = False
        self.shed_count = 0
        self._first_above: Optional[float] = None
        self._above_count = 0

    def observe(self, sojourn: float, now: float) -> None:
        """Feed one dequeue's measured queue wait."""
        if sojourn <= self.target:
            self._first_above = None
            self._above_count = 0
            self.shedding = False
            return
        if self._first_above is None:
            self._first_above = now
        self._above_count += 1
        if not self.shedding and now - self._first_above >= self.interval:
            self.shedding = True

    @property
    def drop_probability(self) -> float:
        if not self.shedding:
            return 0.0
        return min(self.max_probability,
                   1.0 - 1.0 / math.sqrt(1.0 + self._above_count))

    def should_shed(self) -> bool:
        """Arrival-time admission decision (consumes randomness only
        while actively shedding, keeping disabled/idle runs
        draw-for-draw identical)."""
        probability = self.drop_probability
        if probability <= 0.0:
            return False
        if self.rng.random() < probability:
            self.shed_count += 1
            return True
        return False
