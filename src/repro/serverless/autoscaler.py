"""The autoscaler: replica scaling from observed request rates.

OpenFaaS scales lambda replicas as demand changes (§6.1.1). Here the
autoscaler watches the gateway's request counters and adjusts the set
of worker targets serving each workload between ``min_replicas`` and
the number of available workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..sim import Environment
from .gateway import Gateway


@dataclass
class ScalingDecision:
    at: float
    workload: str
    rate_rps: float
    replicas: int


class AutoScaler:
    """Periodic rate-based scaling of gateway routes."""

    def __init__(
        self,
        env: Environment,
        gateway: Gateway,
        worker_pool: List[str],
        check_interval: float = 1.0,
        target_rps_per_replica: float = 100.0,
        min_replicas: int = 1,
        scorer=None,
    ) -> None:
        if not worker_pool:
            raise ValueError("autoscaler needs a worker pool")
        if target_rps_per_replica <= 0:
            raise ValueError("target rate must be positive")
        self.env = env
        self.gateway = gateway
        self.worker_pool = list(worker_pool)
        #: Optional PlacementScorer: replicas are then placed on the
        #: workers with the most WCET-predicted headroom instead of
        #: pool order (Issue 6 satellite — ROADMAP PR 5 follow-up).
        self.scorer = scorer
        self.check_interval = check_interval
        self.target_rps_per_replica = target_rps_per_replica
        self.min_replicas = min_replicas
        self.decisions: List[ScalingDecision] = []
        self._last_counts: Dict[str, float] = {}
        self._running = False

    @property
    def max_replicas(self) -> int:
        return len(self.worker_pool)

    def replicas_for(self, workload: str) -> int:
        return len(self.gateway.route_for(workload).targets)

    def desired_replicas(self, rate_rps: float) -> int:
        import math

        wanted = math.ceil(rate_rps / self.target_rps_per_replica)
        return max(self.min_replicas, min(self.max_replicas, wanted))

    def _pick_workers(self, workload: str, desired: int) -> List[str]:
        """The ``desired`` best workers for ``workload``.

        Pool order (the legacy round-robin placement) unless a scorer
        is attached, in which case workers are ranked by predicted
        headroom: verifier WCET × observed rate against live load.
        """
        if self.scorer is None:
            return self.worker_pool[:desired]
        try:
            kind = self.scorer.manager.record(workload).backend_kind
            ranked = self.scorer.rank(workload, kind, self.worker_pool)
        except KeyError:
            # Workload or targets unknown to the scorer's backend view
            # (e.g. a bare route with no deployment record).
            return self.worker_pool[:desired]
        return ranked[:desired]

    def start(self):
        """Process: run the control loop until the simulation ends."""
        self._running = True
        return self.env.process(self._loop())

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.env.timeout(self.check_interval)
            self.evaluate()

    def evaluate(self) -> List[ScalingDecision]:
        """One control iteration; returns decisions made this round."""
        made = []
        for workload in self.gateway.workloads:
            total = self.gateway.requests_total.value(
                labels={"workload": workload}
            )
            last = self._last_counts.get(workload, 0.0)
            self._last_counts[workload] = total
            rate = (total - last) / self.check_interval
            desired = self.desired_replicas(rate)
            route = self.gateway.route_for(workload)
            if desired != len(route.targets):
                route.targets = self._pick_workers(workload, desired)
                route._rr = None  # reset round robin over the new set
                decision = ScalingDecision(self.env.now, workload, rate, desired)
                self.decisions.append(decision)
                made.append(decision)
        return made
