"""Global object storage (the S3/GCS/Azure blob role in Figure 2).

Workload binaries and their dependencies are stored here by the
workload manager; worker backends download them at deploy time. The
model charges transfer time from a configurable storage bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import Environment


class StorageError(KeyError):
    """Raised for missing objects."""


@dataclass
class StoredObject:
    name: str
    size_bytes: int
    content_hash: int
    version: int


class ObjectStorage:
    """A bandwidth-limited blob store."""

    def __init__(self, env: Environment,
                 bandwidth_bytes_per_second: float = 200 * 1024 * 1024,
                 base_latency_seconds: float = 2e-3) -> None:
        self.env = env
        self.bandwidth = bandwidth_bytes_per_second
        self.base_latency = base_latency_seconds
        self._objects: Dict[str, StoredObject] = {}
        self.uploads = 0
        self.downloads = 0
        self.bytes_transferred = 0

    def _transfer_seconds(self, size_bytes: int) -> float:
        return self.base_latency + size_bytes / self.bandwidth

    def put(self, name: str, size_bytes: int, content_hash: int = 0):
        """Process: upload a blob; returns the stored object record."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")

        def uploader():
            yield self.env.timeout(self._transfer_seconds(size_bytes))
            previous = self._objects.get(name)
            record = StoredObject(
                name=name,
                size_bytes=size_bytes,
                content_hash=content_hash,
                version=(previous.version + 1) if previous else 1,
            )
            self._objects[name] = record
            self.uploads += 1
            self.bytes_transferred += size_bytes
            return record

        return self.env.process(uploader())

    def download(self, name: str):
        """Process: download a blob; returns its record."""

        def downloader():
            record = self._objects.get(name)
            if record is None:
                raise StorageError(f"no object {name!r} in storage")
            yield self.env.timeout(self._transfer_seconds(record.size_bytes))
            self.downloads += 1
            self.bytes_transferred += record.size_bytes
            return record

        return self.env.process(downloader())

    def stat(self, name: str) -> Optional[StoredObject]:
        """Metadata lookup without transfer time."""
        return self._objects.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._objects
