"""OpenFaaS-like serverless framework with a λ-NIC backend."""

from .admission import (
    AdmissionDecision,
    AdmissionError,
    AdmissionPolicy,
    NIC_CLOCK_HZ,
)
from .autoscaler import AutoScaler, ScalingDecision
from .breaker import CLOSED, CircuitBreaker, HALF_OPEN, OPEN
from .backends import (
    Backend,
    BareMetalBackend,
    ContainerBackend,
    DeployResult,
    HostBackend,
    LambdaNicBackend,
    RDMA_BUFFER_POOL,
)
from .framework import MASTER, Testbed, WORKERS
from .gateway import Gateway, GatewayTimeout, RequestOutcome, Route
from .loadgen import LoadResult, closed_loop, open_loop, round_robin_closed_loop
from .manager import (
    DEFAULT_FALLBACK_ORDER,
    DeploymentRecord,
    WorkloadManager,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile_of
from .monitor import (
    Alert,
    FailoverEvent,
    HealthMonitor,
    MonitoringEngine,
    TimeSeries,
    WatchService,
)
from .storage import ObjectStorage, StorageError, StoredObject

__all__ = [
    "AdmissionDecision",
    "AdmissionError",
    "AdmissionPolicy",
    "Alert",
    "AutoScaler",
    "Backend",
    "BareMetalBackend",
    "CLOSED",
    "CircuitBreaker",
    "ContainerBackend",
    "Counter",
    "DEFAULT_FALLBACK_ORDER",
    "DeployResult",
    "DeploymentRecord",
    "FailoverEvent",
    "Gauge",
    "Gateway",
    "GatewayTimeout",
    "HALF_OPEN",
    "HealthMonitor",
    "Histogram",
    "HostBackend",
    "LambdaNicBackend",
    "LoadResult",
    "MASTER",
    "MetricsRegistry",
    "MonitoringEngine",
    "NIC_CLOCK_HZ",
    "OPEN",
    "ObjectStorage",
    "RDMA_BUFFER_POOL",
    "RequestOutcome",
    "Route",
    "ScalingDecision",
    "StorageError",
    "StoredObject",
    "Testbed",
    "TimeSeries",
    "WORKERS",
    "WatchService",
    "WorkloadManager",
    "closed_loop",
    "open_loop",
    "percentile_of",
    "round_robin_closed_loop",
]
