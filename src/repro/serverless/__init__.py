"""OpenFaaS-like serverless framework with a λ-NIC backend."""

from .autoscaler import AutoScaler, ScalingDecision
from .backends import (
    Backend,
    BareMetalBackend,
    ContainerBackend,
    DeployResult,
    HostBackend,
    LambdaNicBackend,
    RDMA_BUFFER_POOL,
)
from .framework import MASTER, Testbed, WORKERS
from .gateway import Gateway, GatewayTimeout, RequestOutcome, Route
from .loadgen import LoadResult, closed_loop, open_loop, round_robin_closed_loop
from .manager import DeploymentRecord, WorkloadManager
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .monitor import Alert, MonitoringEngine, TimeSeries, WatchService
from .storage import ObjectStorage, StorageError, StoredObject

__all__ = [
    "Alert",
    "AutoScaler",
    "Backend",
    "BareMetalBackend",
    "ContainerBackend",
    "Counter",
    "DeployResult",
    "DeploymentRecord",
    "Gauge",
    "Gateway",
    "GatewayTimeout",
    "Histogram",
    "HostBackend",
    "LambdaNicBackend",
    "LoadResult",
    "MASTER",
    "MetricsRegistry",
    "MonitoringEngine",
    "ObjectStorage",
    "RDMA_BUFFER_POOL",
    "RequestOutcome",
    "Route",
    "ScalingDecision",
    "StorageError",
    "StoredObject",
    "Testbed",
    "TimeSeries",
    "WORKERS",
    "WatchService",
    "WorkloadManager",
    "closed_loop",
    "open_loop",
    "round_robin_closed_loop",
]
