"""The testbed (Figure 5): a master and four workers on a 10 G switch.

:class:`Testbed` assembles the full system — network, master node with
gateway/storage/memcached (and optionally an etcd cluster), plus worker
machines that can host any of the three backends — and exposes the
workload manager as the entry point, mirroring the paper's evaluation
setup.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import LambdaNicRuntime
from ..faults import FaultInjector, FaultPlan
from ..host import HostServer
from ..hw import SmartNIC, UniformRandomScheduler
from ..kvcache import MemcachedServer
from ..net import Network
from ..obs import Tracer
from ..raft import EtcdClient, EtcdCluster
from ..sim import Environment, RngRegistry
from .backends import BareMetalBackend, ContainerBackend, LambdaNicBackend
from .gateway import Gateway
from .manager import WorkloadManager
from .metrics import MetricsRegistry
from .migration import MigrationController, MigrationPolicy, PlacementScorer
from .monitor import HealthMonitor, MonitoringEngine, WatchService
from .overload import CoDelShedder, OverloadConfig
from .storage import ObjectStorage

#: Names mirroring the paper's testbed machines.
MASTER = "m1"
WORKERS = ["m2", "m3", "m4", "m5"]


class Testbed:
    """A fully wired evaluation cluster."""

    __test__ = False  # Not a pytest test class despite the T-name.

    def __init__(
        self,
        seed: int = 0,
        n_workers: int = 4,
        with_etcd: bool = False,
        with_monitoring: bool = False,
        with_failover: bool = False,
        with_tracing: bool = False,
        with_migration: bool = False,
        gateway_kwargs: Optional[dict] = None,
        nic_kwargs: Optional[dict] = None,
        manager_kwargs: Optional[dict] = None,
        failover_kwargs: Optional[dict] = None,
        migration_kwargs: Optional[dict] = None,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        if not 1 <= n_workers <= len(WORKERS):
            raise ValueError(f"n_workers must be in [1, {len(WORKERS)}]")
        self.env = Environment()
        self.rng = RngRegistry(seed=seed)
        self.network = Network(self.env)
        self.metrics = MetricsRegistry(clock=lambda: self.env.now)
        #: Span tracer (None unless ``with_tracing``). Tracing never
        #: schedules events or consumes randomness, so a traced run is
        #: behaviourally identical to an untraced one.
        self.tracer: Optional[Tracer] = None
        if with_tracing:
            self.tracer = Tracer(self.env)
            self.env.set_tracer(self.tracer)
        self.worker_names = WORKERS[:n_workers]
        self.nic_kwargs = dict(nic_kwargs or {})
        #: End-to-end overload control (Issue 8). When None, no
        #: shedders exist, no extra rng streams are created, and every
        #: request path is byte-identical to an overload-less build.
        self.overload = overload

        # Master node: gateway + storage + memcached (+ etcd, monitoring).
        gw_kwargs = dict(gateway_kwargs or {})
        gw_kwargs.setdefault("rng", self.rng.stream("gateway"))
        if overload is not None:
            gw_kwargs.setdefault("overload", overload)
            gw_kwargs.setdefault("overload_rng",
                                 self.rng.stream("overload:gateway"))
        self.gateway = Gateway(
            self.env,
            self.network.add_node(MASTER),
            metrics=self.metrics,
            **gw_kwargs,
        )
        self.storage = ObjectStorage(self.env)
        self.memcached = MemcachedServer(
            self.env, self.network.add_node("memcached")
        )
        self.etcd_cluster: Optional[EtcdCluster] = None
        etcd_client = None
        if with_etcd:
            self.etcd_cluster = EtcdCluster(
                self.env, self.network, n_nodes=3, rng=self.rng
            )
            etcd_client = EtcdClient(
                self.env,
                self.network.add_node("etcd-client"),
                self.etcd_cluster.names,
            )
        self.manager = WorkloadManager(
            self.env, self.gateway, self.storage, etcd=etcd_client,
            metrics=self.metrics, **(manager_kwargs or {}),
        )
        # Figure 5's monitoring engine and watch service (optional).
        self.monitoring: Optional[MonitoringEngine] = None
        self.watch: Optional[WatchService] = None
        if with_monitoring:
            self.monitoring = MonitoringEngine(self.env, self.metrics)
            self.watch = WatchService(self.env, self.gateway)
            self.monitoring.start()
            self.watch.start()
        # Live migration control plane (Issue 6): the scorer ranks
        # targets by WCET headroom; the controller runs the PLANNED →
        # ... → CUTOVER state machine; the policy (optional, needs
        # monitoring) drives it from runtime signals.
        self.scorer: Optional[PlacementScorer] = None
        self.migrator: Optional[MigrationController] = None
        self.migration_policy: Optional[MigrationPolicy] = None
        if with_migration:
            self.scorer = PlacementScorer(self.manager,
                                          monitoring=self.monitoring)
            self.migrator = MigrationController(
                self.env, self.manager, self.gateway, scorer=self.scorer,
                etcd=etcd_client, metrics=self.metrics,
                **(migration_kwargs or {}),
            )
            self.migration_policy = MigrationPolicy(
                self.env, self.manager, self.gateway,
                monitoring=self.monitoring, scorer=self.scorer,
            )
        # Failover driver (health-checked routes + degradation). With
        # migration enabled, degrade/restore run as forced migrations.
        self.health: Optional[HealthMonitor] = None
        if with_failover:
            self.health = HealthMonitor(
                self.env, self.gateway, self.manager,
                migrator=self.migrator,
                **(failover_kwargs or {}),
            )
            self.health.start()
        self.injector: Optional[FaultInjector] = None

        # Worker substrates are created lazily per backend kind.
        self._host_servers: Dict[str, List[HostServer]] = {}
        self._nics: List[SmartNIC] = []
        self.nic_runtime: Optional[LambdaNicRuntime] = None

    # -- backend construction -------------------------------------------------

    def _backend_shedder(self, name: str) -> Optional[CoDelShedder]:
        """A per-backend-instance shedder, or None when disabled."""
        ov = self.overload
        if ov is None or ov.backend_shed_target_seconds is None:
            return None
        return CoDelShedder(
            ov.backend_shed_target_seconds,
            interval_seconds=ov.shed_interval_seconds,
            rng=self.rng.stream(f"overload:{name}"),
            max_probability=ov.shed_max_probability,
        )

    def _make_host_servers(self, suffix: str) -> List[HostServer]:
        servers = []
        for name in self.worker_names:
            node = self.network.add_node(f"{name}-{suffix}")
            servers.append(HostServer(
                self.env, node, metrics=self.metrics,
                shedder=self._backend_shedder(f"{name}-{suffix}"),
            ))
        return servers

    def add_container_backend(self) -> ContainerBackend:
        servers = self._make_host_servers("ctr")
        self._host_servers["container"] = servers
        backend = ContainerBackend(
            self.env, servers, rng=self.rng.stream("container"),
        )
        self.manager.add_backend(backend)
        return backend

    def add_bare_metal_backend(self) -> BareMetalBackend:
        servers = self._make_host_servers("bm")
        self._host_servers["bare-metal"] = servers
        backend = BareMetalBackend(
            self.env, servers, rng=self.rng.stream("bare-metal"),
        )
        self.manager.add_backend(backend)
        return backend

    def add_lambda_nic_backend(self, optimize: bool = True) -> LambdaNicBackend:
        for name in self.worker_names:
            node = self.network.add_node(f"{name}-nic")
            self._nics.append(SmartNIC(
                self.env, node,
                rng=self.rng.stream(f"nic:{name}"),
                metrics=self.metrics,
                shedder=self._backend_shedder(f"{name}-nic"),
                **self.nic_kwargs,
            ))
        self.nic_runtime = LambdaNicRuntime(self.env, self._nics,
                                            optimize=optimize)
        backend = LambdaNicBackend(self.env, self.nic_runtime)
        self.manager.add_backend(backend)
        return backend

    def add_backend(self, kind: str):
        """Create a backend by kind name."""
        if kind == "container":
            return self.add_container_backend()
        if kind == "bare-metal":
            return self.add_bare_metal_backend()
        if kind == "lambda-nic":
            return self.add_lambda_nic_backend()
        raise ValueError(f"unknown backend kind {kind!r}")

    # -- fault injection ---------------------------------------------------------

    def add_fault_injector(self, plan: FaultPlan,
                           start: bool = True) -> FaultInjector:
        """Attach (and by default start) a fault injector for ``plan``."""
        self.injector = FaultInjector(self.env, self, plan,
                                      metrics=self.metrics)
        if self.migration_policy is not None:
            self.migration_policy.attach(self.injector)
        if start:
            self.injector.start()
        return self.injector

    # -- accessors ---------------------------------------------------------------

    def host_servers(self, kind: str) -> List[HostServer]:
        return self._host_servers[kind]

    def host_server(self, name: str) -> HostServer:
        """Find one host worker by node name, across all backends."""
        for servers in self._host_servers.values():
            for server in servers:
                if server.name == name:
                    return server
        raise KeyError(f"no host server {name!r}")

    def nic(self, name: str) -> SmartNIC:
        for nic in self._nics:
            if nic.name == name:
                return nic
        raise KeyError(f"no SmartNIC {name!r}")

    @property
    def nics(self) -> List[SmartNIC]:
        return list(self._nics)

    def run(self, until=None):
        return self.env.run(until=until)
