"""Compiler diagnostics for the Micro-C front-end."""

from __future__ import annotations


class MicroCError(Exception):
    """Base class for all Micro-C front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        location = f" (line {line}:{column})" if line else ""
        super().__init__(f"{message}{location}")


class LexError(MicroCError):
    """Invalid character or malformed token."""


class ParseError(MicroCError):
    """Syntactically invalid program."""


class CodegenError(MicroCError):
    """Valid syntax that the restricted target cannot express.

    NPUs lack floating point, recursion, and dynamic allocation (paper
    §3.1b); the code generator rejects programs that need them.
    """
