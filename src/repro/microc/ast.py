"""Abstract syntax tree for Micro-C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Element widths of the supported integer types.
TYPE_BYTES = {
    "uint8_t": 1,
    "uint16_t": 2,
    "uint32_t": 4,
    "uint64_t": 8,
    "int": 8,
    "void": 0,
}


class Node:
    """Base class for AST nodes."""


# -- expressions -------------------------------------------------------------


@dataclass
class Number(Node):
    value: int


@dataclass
class Var(Node):
    name: str


@dataclass
class HeaderField(Node):
    """``hdr.LambdaHeader.request_id``"""

    header: str
    field_name: str


@dataclass
class MetaField(Node):
    """``meta.response_bytes``"""

    key: str


@dataclass
class Index(Node):
    """``array[index]`` over a global object."""

    array: str
    index: Node


@dataclass
class BinOp(Node):
    op: str
    left: Node
    right: Node


@dataclass
class Call(Node):
    """A call to another function or a builtin."""

    name: str
    args: List[Node] = field(default_factory=list)


# -- statements -------------------------------------------------------------


@dataclass
class VarDecl(Node):
    type_name: str
    name: str
    value: Optional[Node] = None


@dataclass
class Assign(Node):
    target: Node  # Var | HeaderField | MetaField | Index
    value: Node


@dataclass
class If(Node):
    op: str            # relational operator
    left: Node
    right: Node
    then: List[Node] = field(default_factory=list)
    orelse: List[Node] = field(default_factory=list)


@dataclass
class While(Node):
    op: str
    left: Node
    right: Node
    body: List[Node] = field(default_factory=list)


@dataclass
class Return(Node):
    value: Optional[Node] = None


@dataclass
class ExprStatement(Node):
    expr: Node


# -- declarations ------------------------------------------------------------


@dataclass
class GlobalArray(Node):
    """``uint8_t memory[4096];`` — a persistent flat-memory object."""

    type_name: str
    name: str
    length: int
    hot: bool = False
    read_only: bool = False

    @property
    def size_bytes(self) -> int:
        return TYPE_BYTES[self.type_name] * self.length


@dataclass
class FuncDef(Node):
    return_type: str
    name: str
    body: List[Node] = field(default_factory=list)


@dataclass
class Program(Node):
    globals: List[GlobalArray] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
