"""Recursive-descent parser for Micro-C.

Grammar (restricted C subset — see the package docstring):

    program    := (pragma | global | funcdef)*
    pragma     := '#pragma' ('hot' | 'readonly') ident
    global     := type ident '[' number ']' ';'
    funcdef    := type ident '(' ')' block
    block      := '{' statement* '}'
    statement  := vardecl | if | while | return ';'
                | assignment ';' | call ';'
    vardecl    := type ident ('=' expr)? ';'
    if         := 'if' '(' cond ')' block ('else' (block | if))?
    while      := 'while' '(' cond ')' block
    cond       := expr relop expr
    expr       := binary expression over | ^ & << >> + - * / %
    primary    := number | lvalue | call | '(' expr ')'
    lvalue     := ident | ident '[' expr ']'
                | 'hdr' '.' ident '.' ident | 'meta' '.' ident

Conditions are single relational comparisons — the restriction that
keeps codegen a direct mapping onto NPU branch instructions.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    Assign,
    BinOp,
    Call,
    ExprStatement,
    FuncDef,
    GlobalArray,
    HeaderField,
    If,
    Index,
    MetaField,
    Node,
    Number,
    Program,
    Return,
    TYPE_BYTES,
    Var,
    VarDecl,
    While,
)
from .errors import ParseError
from .lexer import Token, tokenize

RELOPS = {"==", "!=", "<", "<=", ">", ">="}

#: Binary operator precedence (higher binds tighter).
PRECEDENCE = {
    "|": 1, "^": 2, "&": 3,
    "<<": 4, ">>": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}

TYPES = set(TYPE_BYTES)


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(message, token.line, token.column)

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            want = value or kind
            raise self.error(f"expected {want!r}, got {self.current.value!r}")
        return self.advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        pending_hot: set = set()
        pending_readonly: set = set()
        while not self.check("eof"):
            if self.check("pragma"):
                text = self.advance().value.split()
                if len(text) == 2 and text[0] == "hot":
                    pending_hot.add(text[1])
                elif len(text) == 2 and text[0] == "readonly":
                    pending_readonly.add(text[1])
                else:
                    raise self.error(f"unknown pragma {' '.join(text)!r}")
                continue
            if not self.check("keyword") or self.current.value not in TYPES:
                raise self.error("expected a type at top level")
            type_name = self.advance().value
            name = self.expect("ident").value
            if self.accept("op", "["):
                length_token = self.expect("number")
                self.expect("op", "]")
                self.expect("op", ";")
                program.globals.append(GlobalArray(
                    type_name=type_name,
                    name=name,
                    length=int(length_token.value, 0),
                    hot=name in pending_hot,
                    read_only=name in pending_readonly,
                ))
            elif self.check("op", "("):
                program.functions.append(self.parse_funcdef(type_name, name))
            else:
                raise self.error(
                    "top-level declarations must be arrays or functions"
                )
        return program

    def parse_funcdef(self, return_type: str, name: str) -> FuncDef:
        self.expect("op", "(")
        if not self.check("op", ")"):
            raise self.error(
                "Micro-C lambdas take no parameters: state arrives via "
                "headers, metadata, and global objects (Listing 1)"
            )
        self.expect("op", ")")
        return FuncDef(return_type, name, self.parse_block())

    # -- statements -------------------------------------------------------------

    def parse_block(self) -> List[Node]:
        self.expect("op", "{")
        statements: List[Node] = []
        while not self.check("op", "}"):
            if self.check("eof"):
                raise self.error("unterminated block")
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return statements

    def parse_statement(self) -> Node:
        if self.check("keyword") and self.current.value in TYPES:
            return self.parse_vardecl()
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            return self.parse_while()
        if self.accept("keyword", "return"):
            value = None if self.check("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return Return(value)
        # assignment or expression (call) statement
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (Var, Index, HeaderField, MetaField)):
                raise self.error("invalid assignment target")
            value = self.parse_expr()
            self.expect("op", ";")
            return Assign(expr, value)
        self.expect("op", ";")
        return ExprStatement(expr)

    def parse_vardecl(self) -> VarDecl:
        type_name = self.advance().value
        if type_name == "void":
            raise self.error("cannot declare a void variable")
        name = self.expect("ident").value
        if self.check("op", "["):
            raise self.error(
                "local arrays are not supported; declare a global object"
            )
        value = None
        if self.accept("op", "="):
            value = self.parse_expr()
        self.expect("op", ";")
        return VarDecl(type_name, name, value)

    def parse_condition(self):
        left = self.parse_expr()
        token = self.current
        if token.kind != "op" or token.value not in RELOPS:
            raise self.error(
                "conditions must be a single comparison (a RELOP b)"
            )
        op = self.advance().value
        right = self.parse_expr()
        return op, left, right

    def parse_if(self) -> If:
        self.expect("keyword", "if")
        self.expect("op", "(")
        op, left, right = self.parse_condition()
        self.expect("op", ")")
        then = self.parse_block()
        orelse: List[Node] = []
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                orelse = [self.parse_if()]
            else:
                orelse = self.parse_block()
        return If(op, left, right, then, orelse)

    def parse_while(self) -> While:
        self.expect("keyword", "while")
        self.expect("op", "(")
        op, left, right = self.parse_condition()
        self.expect("op", ")")
        return While(op, left, right, self.parse_block())

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self, min_precedence: int = 1) -> Node:
        left = self.parse_primary()
        while (
            self.current.kind == "op"
            and self.current.value in PRECEDENCE
            and PRECEDENCE[self.current.value] >= min_precedence
        ):
            op = self.advance().value
            right = self.parse_expr(PRECEDENCE[op] + 1)
            left = BinOp(op, left, right)
        return left

    def parse_primary(self) -> Node:
        if self.check("number"):
            return Number(int(self.advance().value, 0))
        if self.accept("op", "("):
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if self.check("ident"):
            name = self.advance().value
            if name == "hdr" and self.accept("op", "."):
                header = self.expect("ident").value
                self.expect("op", ".")
                field_name = self.expect("ident").value
                return HeaderField(header, field_name)
            if name == "meta" and self.accept("op", "."):
                key = self.expect("ident").value
                return MetaField(key)
            if self.accept("op", "("):
                args: List[Node] = []
                while not self.check("op", ")"):
                    args.append(self.parse_expr())
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
                return Call(name, args)
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                return Index(name, index)
            return Var(name)
        raise self.error(f"unexpected token {self.current.value!r}")


def parse(source: str) -> Program:
    """Parse Micro-C source into an AST."""
    return Parser(tokenize(source)).parse_program()
