"""Tokenizer for the restricted Micro-C language.

The language is the C-like surface syntax of the paper's Listings 1-2:
integer types, global arrays, functions, if/else, while, and calls to
NIC builtins. Comments are ``//`` and ``/* */``; ``#pragma`` lines
carry placement hints to the compiler (paper D2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .errors import LexError

KEYWORDS = {
    "int", "void", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "if", "else", "while", "return", "break", "continue",
}

#: Multi-character operators, longest first.
OPERATORS = [
    "<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "=", "<", ">", "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str       # "ident" | "number" | "keyword" | "op" | "pragma" | "eof"
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r} @{self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Turn Micro-C source into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, column)

    while index < length:
        char = source[index]
        # Whitespace / newlines.
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        # Comments.
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[index:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        # Pragmas: one line, recorded whole.
        if char == "#" and source.startswith("#pragma", index):
            end = source.find("\n", index)
            if end < 0:
                end = length
            text = source[index + len("#pragma"):end].strip()
            tokens.append(Token("pragma", text, line, column))
            index = end
            continue
        # Numbers (decimal or hex).
        if char.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            if index < length and (source[index].isalpha() or source[index] == "."):
                if source[index] == "." or source[index] in "eE":
                    raise error("floating-point literals are not supported "
                                "on NPU targets")
                raise error(f"malformed number near {source[start:index + 1]!r}")
            text = source[start:index]
            tokens.append(Token("number", text, line, column))
            column += index - start
            continue
        # Identifiers / keywords.
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        # Operators / punctuation.
        for operator in OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token("op", operator, line, column))
                index += len(operator)
                column += len(operator)
                break
        else:
            raise error(f"unexpected character {char!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens
