"""Code generation: Micro-C AST -> lambda IR.

The mapping is deliberately direct (one AST node -> a few NPU
instructions) because that is what the restricted language is *for*:

* locals live in registers (r8-r13 — at most six, a documented
  restriction of the target);
* expression temporaries use r1-r7;
* globals are flat-memory objects; indexed access requires word
  (``uint64_t``/``int``) arrays — byte buffers move via ``memcpy`` and
  intrinsics, as on the real NPU;
* there is no division, recursion, or floating point (paper §3.1b).

Builtins: ``forward() drop() to_host() emit() reply(n) hash(x)
memcpy(dst, src, n) memcpy(dst, doff, src, soff, n)`` plus any
registered interpreter intrinsic called as ``name(object, arg...)``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Union

from ..isa import (
    AccessMode,
    LambdaProgram,
    Op,
    ProgramBuilder,
    intrinsic_registered,
)
from ..isa.builder import FunctionBuilder
from .ast import (
    Assign,
    BinOp,
    Call,
    ExprStatement,
    FuncDef,
    GlobalArray,
    HeaderField,
    If,
    Index,
    MetaField,
    Node,
    Number,
    Program,
    Return,
    TYPE_BYTES,
    Var,
    VarDecl,
    While,
)
from .errors import CodegenError
from .parser import parse

Operand = Union[str, int]

_BINOPS = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR,
    "<<": Op.SHL, ">>": Op.SHR,
}

#: Branch emitted for the *false* path of each relational operator.
#: ``beq/bne/blt/bge`` compare (a, b); for > and <= we swap operands.
_FALSE_BRANCH = {
    "==": ("bne", False),
    "!=": ("beq", False),
    "<": ("bge", False),
    ">=": ("blt", False),
    ">": ("bge", True),   # a > b  false when b >= a
    "<=": ("blt", True),  # a <= b false when b < a
}

LOCAL_REGISTERS = ["r8", "r9", "r10", "r11", "r12", "r13"]
TEMP_REGISTERS = ["r1", "r2", "r3", "r4", "r5", "r6", "r7"]


class _FunctionCodegen:
    """Generates IR for one function body."""

    def __init__(self, compiler: "Compiler", fn: FunctionBuilder) -> None:
        self.compiler = compiler
        self.fn = fn
        self.locals: Dict[str, str] = {}
        self.free_temps: List[str] = list(reversed(TEMP_REGISTERS))
        self.labels = itertools.count(1)

    # -- register management -------------------------------------------

    def acquire_temp(self) -> str:
        if not self.free_temps:
            raise CodegenError(
                "expression too deep: out of temporary registers"
            )
        return self.free_temps.pop()

    def release(self, operand: Operand) -> None:
        if isinstance(operand, str) and operand in TEMP_REGISTERS and \
                operand not in self.free_temps:
            self.free_temps.append(operand)

    def fresh_label(self, hint: str) -> str:
        return f"{self.fn.name}_{hint}{next(self.labels)}"

    # -- statements --------------------------------------------------------

    def gen_body(self, statements: List[Node]) -> None:
        for statement in statements:
            self.gen_statement(statement)

    def gen_statement(self, statement: Node) -> None:
        if isinstance(statement, VarDecl):
            if statement.name in self.locals:
                raise CodegenError(f"duplicate local {statement.name!r}")
            if len(self.locals) >= len(LOCAL_REGISTERS):
                raise CodegenError(
                    f"too many locals (max {len(LOCAL_REGISTERS)}): "
                    "NPU threads have a fixed register file"
                )
            register = LOCAL_REGISTERS[len(self.locals)]
            self.locals[statement.name] = register
            if statement.value is not None:
                value = self.gen_expr(statement.value)
                self.fn.mov(register, value)
                self.release(value)
        elif isinstance(statement, Assign):
            self.gen_assign(statement)
        elif isinstance(statement, If):
            self.gen_if(statement)
        elif isinstance(statement, While):
            self.gen_while(statement)
        elif isinstance(statement, Return):
            if statement.value is None:
                self.fn.ret()
            else:
                value = self.gen_expr(statement.value)
                self.fn.ret(value)
                self.release(value)
        elif isinstance(statement, ExprStatement):
            value = self.gen_expr(statement.expr, allow_void=True)
            self.release(value)
        else:  # pragma: no cover - parser produces no other nodes
            raise CodegenError(f"cannot generate {statement!r}")

    def gen_assign(self, statement: Assign) -> None:
        target = statement.target
        if isinstance(target, Var):
            register = self.locals.get(target.name)
            if register is None:
                raise CodegenError(
                    f"assignment to undeclared variable {target.name!r}"
                )
            value = self.gen_expr(statement.value)
            self.fn.mov(register, value)
            self.release(value)
        elif isinstance(target, HeaderField):
            value = self.gen_expr(statement.value)
            self.fn.hstore(target.header, target.field_name, value)
            self.release(value)
        elif isinstance(target, MetaField):
            value = self.gen_expr(statement.value)
            self.fn.mstore(target.key, value)
            self.release(value)
        elif isinstance(target, Index):
            offset = self.gen_word_offset(target)
            value = self.gen_expr(statement.value)
            self.fn.store(target.array, offset, value)
            self.release(offset)
            self.release(value)
        else:  # pragma: no cover
            raise CodegenError(f"invalid assignment target {target!r}")

    def gen_condition_false_branch(self, op: str, left: Node, right: Node,
                                   label: str) -> None:
        a = self.gen_expr(left)
        b = self.gen_expr(right)
        mnemonic, swap = _FALSE_BRANCH[op]
        first, second = (b, a) if swap else (a, b)
        getattr(self.fn, mnemonic)(first, second, label)
        self.release(a)
        self.release(b)

    def gen_if(self, statement: If) -> None:
        orelse = self.fresh_label("else")
        end = self.fresh_label("endif")
        self.gen_condition_false_branch(
            statement.op, statement.left, statement.right, orelse
        )
        self.gen_body(statement.then)
        self.fn.jmp(end)
        self.fn.label(orelse)
        self.gen_body(statement.orelse)
        self.fn.label(end)

    def gen_while(self, statement: While) -> None:
        top = self.fresh_label("loop")
        end = self.fresh_label("endloop")
        self.fn.label(top)
        self.gen_condition_false_branch(
            statement.op, statement.left, statement.right, end
        )
        self.gen_body(statement.body)
        self.fn.jmp(top)
        self.fn.label(end)

    # -- expressions --------------------------------------------------------------

    def gen_expr(self, node: Node, allow_void: bool = False) -> Operand:
        if isinstance(node, Number):
            return node.value
        if isinstance(node, Var):
            register = self.locals.get(node.name)
            if register is None:
                raise CodegenError(f"undeclared variable {node.name!r}")
            return register
        if isinstance(node, HeaderField):
            temp = self.acquire_temp()
            self.fn.hload(temp, node.header, node.field_name)
            return temp
        if isinstance(node, MetaField):
            temp = self.acquire_temp()
            self.fn.mload(temp, node.key)
            return temp
        if isinstance(node, Index):
            offset = self.gen_word_offset(node)
            temp = self.acquire_temp()
            self.fn.load(temp, node.array, offset)
            self.release(offset)
            return temp
        if isinstance(node, BinOp):
            return self.gen_binop(node)
        if isinstance(node, Call):
            return self.compiler.gen_call(self, node, allow_void)
        raise CodegenError(f"cannot evaluate {node!r}")  # pragma: no cover

    def gen_binop(self, node: BinOp) -> Operand:
        if node.op in ("/", "%"):
            raise CodegenError(
                "NPU cores have no divide unit; rewrite with shifts/masks "
                "(paper §3.1b)"
            )
        op = _BINOPS[node.op]
        left = self.gen_expr(node.left)
        right = self.gen_expr(node.right)
        # Constant folding for the trivial case.
        if isinstance(left, int) and isinstance(right, int):
            import operator as _operator

            fold = {
                Op.ADD: _operator.add, Op.SUB: _operator.sub,
                Op.MUL: _operator.mul, Op.AND: _operator.and_,
                Op.OR: _operator.or_, Op.XOR: _operator.xor,
                Op.SHL: _operator.lshift, Op.SHR: _operator.rshift,
            }
            return fold[op](left, right)
        destination = left if isinstance(left, str) and \
            left in TEMP_REGISTERS else self.acquire_temp()
        self.fn.emit(op, destination, left, right)
        if destination is not left:
            self.release(left)
        self.release(right)
        return destination

    def gen_word_offset(self, node: Index) -> Operand:
        """Byte offset of a word-array element (index * 8)."""
        array = self.compiler.globals.get(node.array)
        if array is None:
            raise CodegenError(f"unknown global object {node.array!r}")
        if TYPE_BYTES[array.type_name] != 8:
            raise CodegenError(
                f"indexed access to {node.array!r} requires a word array "
                "(uint64_t/int); move byte buffers with memcpy/intrinsics"
            )
        index = self.gen_expr(node.index)
        if isinstance(index, int):
            return index * 8
        destination = index if index in TEMP_REGISTERS else self.acquire_temp()
        self.fn.shl(destination, index, 3)
        return destination


class Compiler:
    """Compiles a Micro-C program into a :class:`LambdaProgram`."""

    BUILTINS = {"forward", "drop", "to_host", "emit", "reply", "hash",
                "memcpy"}

    def __init__(self, program: Program, name: Optional[str] = None) -> None:
        if not program.functions:
            raise CodegenError("program defines no functions")
        self.ast = program
        self.name = name or program.functions[0].name
        self.globals: Dict[str, GlobalArray] = {
            declaration.name: declaration for declaration in program.globals
        }
        self.function_names: Set[str] = {
            function.name for function in program.functions
        }

    def compile(self) -> LambdaProgram:
        self._reject_recursion()
        builder = ProgramBuilder(self.name, entry=self.name)
        for declaration in self.ast.globals:
            builder.object(
                declaration.name,
                declaration.size_bytes,
                AccessMode.READ if declaration.read_only
                else AccessMode.READ_WRITE,
                hot=declaration.hot,
            )
        for function in self.ast.functions:
            fn = builder.function(function.name)
            codegen = _FunctionCodegen(self, fn)
            codegen.gen_body(function.body)
            fn.ret()  # implicit return for fall-through paths
            builder.close(fn)
        return builder.build()

    def _reject_recursion(self) -> None:
        graph: Dict[str, Set[str]] = {}
        for function in self.ast.functions:
            callees: Set[str] = set()
            _collect_calls(function.body, callees)
            graph[function.name] = callees & self.function_names

        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(node: str) -> None:
            if node in done:
                return
            if node in visiting:
                raise CodegenError(
                    f"recursion through {node!r} is not supported on NPU "
                    "targets (paper §3.1b)"
                )
            visiting.add(node)
            for callee in graph.get(node, ()):
                visit(callee)
            visiting.discard(node)
            done.add(node)

        for name in graph:
            visit(name)

    # -- calls ------------------------------------------------------------------

    def gen_call(self, codegen: _FunctionCodegen, node: Call,
                 allow_void: bool) -> Operand:
        name = node.name
        fn = codegen.fn
        if name in self.function_names:
            if node.args:
                raise CodegenError(
                    "user functions take no arguments; pass state via "
                    "globals/headers/meta"
                )
            fn.call(name)
            temp = codegen.acquire_temp()
            fn.mov(temp, "r0")
            return temp
        if name == "forward":
            fn.forward()
            return 0
        if name == "drop":
            fn.drop()
            return 0
        if name == "to_host":
            fn.to_host()
            return 0
        if name == "emit":
            fn.emit_packet()
            return 0
        if name == "reply":
            if len(node.args) != 1:
                raise CodegenError("reply(n) takes the response size")
            size = codegen.gen_expr(node.args[0])
            fn.hstore("LambdaHeader", "is_response", 1)
            fn.mstore("response_bytes", size)
            codegen.release(size)
            fn.forward()
            return 0
        if name == "hash":
            if len(node.args) != 1:
                raise CodegenError("hash(x) takes one argument")
            value = codegen.gen_expr(node.args[0])
            temp = codegen.acquire_temp()
            fn.hash(temp, value)
            codegen.release(value)
            return temp
        if name == "memcpy":
            return self._gen_memcpy(codegen, node)
        if intrinsic_registered(name):
            return self._gen_intrinsic(codegen, node)
        raise CodegenError(f"unknown function or builtin {name!r}")

    def _object_arg(self, node: Node, what: str) -> str:
        if not isinstance(node, Var) or node.name not in self.globals:
            raise CodegenError(f"{what} must name a global object")
        return node.name

    def _gen_memcpy(self, codegen: _FunctionCodegen, node: Call) -> Operand:
        fn = codegen.fn
        if len(node.args) == 3:
            dst = self._object_arg(node.args[0], "memcpy destination")
            src = self._object_arg(node.args[1], "memcpy source")
            length = codegen.gen_expr(node.args[2])
            fn.memcpy(dst, 0, src, 0, length)
            codegen.release(length)
            return 0
        if len(node.args) == 5:
            dst = self._object_arg(node.args[0], "memcpy destination")
            dst_off = codegen.gen_expr(node.args[1])
            src = self._object_arg(node.args[2], "memcpy source")
            src_off = codegen.gen_expr(node.args[3])
            length = codegen.gen_expr(node.args[4])
            fn.memcpy(dst, dst_off, src, src_off, length)
            for operand in (dst_off, src_off, length):
                codegen.release(operand)
            return 0
        raise CodegenError(
            "memcpy takes (dst, src, n) or (dst, doff, src, soff, n)"
        )

    def _gen_intrinsic(self, codegen: _FunctionCodegen, node: Call) -> Operand:
        fn = codegen.fn
        args: List[object] = [node.name]
        for argument in node.args:
            if isinstance(argument, Var) and argument.name in self.globals:
                args.append(("mem", argument.name, 0))
            else:
                args.append(codegen.gen_expr(argument))
        fn.emit(Op.INTRINSIC, *args)
        for operand in args[1:]:
            if isinstance(operand, str):
                codegen.release(operand)
        return 0


def _collect_calls(statements: List[Node], into: Set[str]) -> None:
    for statement in statements:
        for child in _walk(statement):
            if isinstance(child, Call):
                into.add(child.name)


def _walk(node: Node):
    yield node
    for value in vars(node).values():
        if isinstance(value, Node):
            yield from _walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from _walk(item)


def compile_microc(source: str, name: Optional[str] = None) -> LambdaProgram:
    """Compile Micro-C source text into a deployable lambda program."""
    return Compiler(parse(source), name=name).compile()
