"""Micro-C: the restricted C-like language for authoring lambdas.

This is the front-end the paper's users write against (§4.1, Listings
1-2): a C subset with integer arithmetic, global arrays in the flat
virtual address space, header/metadata accessors, and NIC builtins —
compiled straight to the lambda IR::

    from repro.microc import compile_microc

    program = compile_microc('''
        #pragma hot counts
        uint64_t counts[16];

        int counter() {
            int idx = hdr.LambdaHeader.request_id & 15;
            counts[idx] = counts[idx] + 1;
            meta.count = counts[idx];
            reply(64);
            return 0;
        }
    ''')

The resulting :class:`~repro.isa.program.LambdaProgram` deploys like
any other workload (see ``examples/microc_lambda.py``).
"""

from .ast import (
    Assign,
    BinOp,
    Call,
    FuncDef,
    GlobalArray,
    HeaderField,
    If,
    Index,
    MetaField,
    Number,
    Program,
    Return,
    Var,
    VarDecl,
    While,
)
from .codegen import Compiler, compile_microc
from .errors import CodegenError, LexError, MicroCError, ParseError
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "Assign",
    "BinOp",
    "Call",
    "CodegenError",
    "Compiler",
    "FuncDef",
    "GlobalArray",
    "HeaderField",
    "If",
    "Index",
    "LexError",
    "MetaField",
    "MicroCError",
    "Number",
    "ParseError",
    "Program",
    "Return",
    "Token",
    "Var",
    "VarDecl",
    "While",
    "compile_microc",
    "parse",
    "tokenize",
]
