"""Decomposed container network path (the overlay the paper blames).

The container backend's per-request overhead is not one number in
reality: a packet traverses the veth pair, the bridge, iptables/NAT
conntrack, the calico/VXLAN overlay, the docker userspace proxy, and —
in OpenFaaS classic — a watchdog fork per request (§2.1, §6.1.2 [17]).
This module models those components individually so ablations can
remove them (e.g. host networking mode) and so the single
``ContainerParams.dispatch_seconds`` constant is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class OverlayComponent:
    """One hop of the container network path."""

    name: str
    latency_seconds: float
    #: CPU consumed on the host per request by this hop.
    cpu_seconds: float = 0.0
    #: Can this hop be removed by a deployment choice?
    removable: bool = True


#: The default decomposition. The latencies sum to the container
#: runtime's default dispatch cost (3.8 ms pre-multiplier).
DEFAULT_COMPONENTS: Tuple[OverlayComponent, ...] = (
    OverlayComponent("veth_pair", 40e-6, cpu_seconds=5e-6),
    OverlayComponent("bridge", 30e-6, cpu_seconds=5e-6),
    OverlayComponent("iptables_nat", 180e-6, cpu_seconds=40e-6),
    OverlayComponent("overlay_encap", 250e-6, cpu_seconds=50e-6),
    OverlayComponent("docker_proxy", 800e-6, cpu_seconds=80e-6),
    OverlayComponent("watchdog_fork", 2500e-6, cpu_seconds=70e-6),
)


class OverlayPath:
    """An ordered set of network-path components with removal support."""

    def __init__(self, components: Tuple[OverlayComponent, ...]
                 = DEFAULT_COMPONENTS) -> None:
        names = [component.name for component in components]
        if len(set(names)) != len(names):
            raise ValueError("duplicate component names")
        self.components: List[OverlayComponent] = list(components)

    @property
    def dispatch_seconds(self) -> float:
        """Total added latency per request."""
        return sum(component.latency_seconds for component in self.components)

    @property
    def cpu_seconds(self) -> float:
        """Total added host CPU per request."""
        return sum(component.cpu_seconds for component in self.components)

    def without(self, *names: str) -> "OverlayPath":
        """A new path with the named (removable) components removed."""
        known = {component.name for component in self.components}
        unknown = set(names) - known
        if unknown:
            raise KeyError(f"unknown components {sorted(unknown)}")
        for component in self.components:
            if component.name in names and not component.removable:
                raise ValueError(f"{component.name!r} cannot be removed")
        return OverlayPath(tuple(
            component for component in self.components
            if component.name not in names
        ))

    def breakdown(self) -> Dict[str, float]:
        """Per-component latency, for reports."""
        return {component.name: component.latency_seconds
                for component in self.components}

    def __repr__(self) -> str:
        return (f"<OverlayPath {len(self.components)} hops, "
                f"{self.dispatch_seconds * 1e6:.0f} us>")


def host_networking_path() -> OverlayPath:
    """``--net=host``-style deployment: no veth/bridge/overlay/NAT."""
    return OverlayPath(DEFAULT_COMPONENTS).without(
        "veth_pair", "bridge", "iptables_nat", "overlay_encap",
    )
