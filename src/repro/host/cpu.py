"""Host CPU model: hardware threads, affinity, context switches.

The pool hands out hardware threads LIFO (most-recently-freed first),
which models the scheduler's cache-affinity preference: a single lambda
in a closed loop keeps hitting the same warm thread and pays no context
switches, while several lambdas interleaving on the same threads switch
constantly — exactly the contrast the paper's Figure 8 measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs import CounterAttribute, MetricsRegistry
from ..sim import Environment, Event
from .params import CpuParams


class CpuStats:
    """CPU accounting, backed by a typed metrics registry.

    Attribute-compatible with the dataclass it replaces — see
    :class:`repro.hw.nic.NicStats` for the pattern. ``per_task_busy``
    is a dict view over a labelled counter; writers use
    :meth:`add_task_busy`.
    """

    context_switches = CounterAttribute(
        "cpu_context_switches_total", "task switches on hardware threads")
    busy_seconds = CounterAttribute(
        "cpu_busy_seconds_total", "CPU time charged", cast=float)
    requests = CounterAttribute(
        "cpu_requests_total", "execute() grants")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 node: str = "") -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = {"node": node} if node else None
        self._per_task = self.registry.counter(
            "cpu_task_busy_seconds_total", "CPU time charged per task")

    def add_task_busy(self, task: str, cpu_seconds: float) -> None:
        labels = dict(self.labels or {})
        labels["task"] = task
        self._per_task.inc(cpu_seconds, labels=labels)

    @property
    def per_task_busy(self) -> Dict[str, float]:
        node = (self.labels or {}).get("node")
        out: Dict[str, float] = {}
        for labels, value in self._per_task.items():
            if node is not None and labels.get("node") != node:
                continue
            out[labels["task"]] = value
        return out

    def utilization(self, elapsed: float, n_threads: int) -> float:
        """Machine-wide CPU utilisation over ``elapsed`` (0..1)."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * n_threads))

    def task_utilization(self, task: str, elapsed: float, n_threads: int) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.per_task_busy.get(task, 0.0) / (elapsed * n_threads))


class _LifoThreadPool:
    """LIFO pool of hardware-thread ids with blocking acquire."""

    def __init__(self, env: Environment, n: int) -> None:
        self.env = env
        self._free: List[int] = list(range(n))[::-1]
        self._waiters: List[Event] = []

    def acquire(self) -> Event:
        event = self.env.event()
        if self._free:
            event.succeed(self._free.pop())
        else:
            self._waiters.append(event)
        return event

    def release(self, thread_id: int) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed(thread_id)
        else:
            self._free.append(thread_id)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class HostCPU:
    """A multi-threaded server CPU."""

    def __init__(self, env: Environment, params: Optional[CpuParams] = None,
                 n_threads: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 node: str = "") -> None:
        self.env = env
        self.params = params or CpuParams()
        self.n_threads = n_threads if n_threads is not None else self.params.n_threads
        if self.n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self._pool = _LifoThreadPool(env, self.n_threads)
        self._last_task: List[Optional[str]] = [None] * self.n_threads
        self.stats = CpuStats(registry=metrics, node=node)

    @property
    def busy_threads(self) -> int:
        return self.n_threads - self._pool.free_count

    @property
    def run_queue_length(self) -> int:
        return self._pool.waiting

    def execute(self, task_id: str, cpu_seconds: float, trace=None):
        """Process: occupy one hardware thread for ``cpu_seconds``.

        Charges a context switch if the thread last ran a different
        task. Returns the total time occupied (including the switch).
        ``trace`` is an optional ``(trace_id, parent_span_id)`` pair;
        the span then covers run-queue wait plus occupancy.
        """
        queued_at = self.env.now
        thread_id = yield self._pool.acquire()
        cost = cpu_seconds
        if self._last_task[thread_id] != task_id:
            cost += self.params.context_switch_seconds
            self.stats.context_switches += 1
            self._last_task[thread_id] = task_id
        yield self.env.timeout(cost)
        self.stats.requests += 1
        self.stats.busy_seconds += cost
        self.stats.add_task_busy(task_id, cost)
        tracer = self.env.tracer
        if tracer is not None and trace is not None:
            trace_id, parent_id = trace
            tracer.end(tracer.begin(
                "host.cpu", "host", trace_id=trace_id, parent=parent_id,
                node=f"thread{thread_id}", start=queued_at,
                tags={"task": task_id},
            ))
        self._pool.release(thread_id)
        return cost

    def account(self, task_id: str, cpu_seconds: float) -> None:
        """Attribute CPU time without occupying a thread (kernel work)."""
        self.stats.busy_seconds += cpu_seconds
        self.stats.add_task_busy(task_id, cpu_seconds)
