"""Host worker node: the container and bare-metal serverless backends.

A :class:`HostServer` attaches to a network node and serves lambda
requests the way the paper's baselines do: kernel network stack in and
out, runtime dispatch overhead (container overlay / bare-metal thread
handoff), then the workload's handler on a CPU hardware thread — paying
context switches whenever distinct lambdas share threads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Packet,
    RpcHeader,
    UDPHeader,
)
from ..net.network import Node
from ..sim import Environment, Resource
from .cpu import HostCPU
from .params import HostParams
from .runtime import HostMemory, Runtime

#: Handler protocol: a generator function taking a RequestContext and
#: yielding simulation events (typically via ctx.compute / ctx.call).
Handler = Callable[["RequestContext"], Generator]


@dataclass
class Deployment:
    """One workload deployed on this server."""

    name: str
    wid: int
    handler: Handler
    runtime: Runtime
    code_bytes: int = 1024 * 1024
    max_workers: Optional[int] = None
    warm: bool = False
    semaphore: Optional[Resource] = None
    #: Interpreter lock (GIL) shared by all requests of this deployment.
    compute_lock: Optional[Resource] = None

    @property
    def package_bytes(self) -> int:
        return self.runtime.package_bytes(self.code_bytes)


@dataclass
class ServerStats:
    requests_served: int = 0
    responses_sent: int = 0
    dropped_unknown: int = 0
    dropped_cold: int = 0
    dropped_down: int = 0
    handler_errors: int = 0
    crashes: int = 0
    latencies: List[float] = field(default_factory=list)
    per_lambda_requests: Dict[str, int] = field(default_factory=dict)


class RequestContext:
    """What a workload handler gets to interact with the world."""

    def __init__(self, server: "HostServer", deployment: Deployment,
                 request: Packet) -> None:
        self.server = server
        self.env = server.env
        self.deployment = deployment
        self.request = request
        self.response_bytes = 64
        self.response_meta: Dict[str, Any] = {}

    @property
    def request_id(self) -> int:
        header = self.request.headers.get("LambdaHeader")
        return header.request_id if header else 0

    def compute(self, cpu_seconds: float, gil: bool = True):
        """Occupy a CPU hardware thread for ``cpu_seconds`` of work.

        The runtime's compute multiplier is applied, and if the runtime
        serialises compute (Python GIL), the deployment-wide interpreter
        lock is held for the duration. Pass ``gil=False`` for work done
        inside vectorised libraries that release the GIL (e.g. numpy
        pixel kernels) — such work runs in parallel across threads.
        """
        runtime = self.deployment.runtime
        scaled = cpu_seconds * runtime.compute_multiplier

        def run():
            if gil and self.deployment.compute_lock is not None:
                with self.deployment.compute_lock.request() as lock:
                    yield lock
                    result = yield self.env.process(
                        self.server.cpu.execute(self.deployment.name, scaled)
                    )
            else:
                result = yield self.env.process(
                    self.server.cpu.execute(self.deployment.name, scaled)
                )
            return result

        return self.env.process(run())

    def call(self, dst: str, method: str = "GET", key: str = "",
             request_bytes: int = 64, timeout: float = 0.05, retries: int = 3):
        """RPC to an external service; returns the response packet."""
        return self.env.process(
            self.server.call_service(
                dst, method=method, key=key, request_bytes=request_bytes,
                timeout=timeout, retries=retries,
            )
        )

    def sleep(self, seconds: float):
        return self.env.timeout(seconds)


class ServiceTimeout(Exception):
    """An external service call exhausted its retries."""


class HostServer:
    """A worker node running container or bare-metal backends."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        params: Optional[HostParams] = None,
        cpu: Optional[HostCPU] = None,
    ) -> None:
        self.env = env
        self.node = node
        self.name = node.name
        self.params = params or HostParams()
        self.cpu = cpu or HostCPU(env, self.params.cpu)
        self.memory = HostMemory()
        self.stats = ServerStats()
        #: False after :meth:`crash`: inbound packets are dropped and
        #: in-flight handlers die silently until :meth:`restart`.
        self.online = True
        self._epoch = 0
        self._deployments: Dict[str, Deployment] = {}
        self._by_wid: Dict[int, Deployment] = {}
        self._shared_locks: Dict[str, Resource] = {}
        self._pending: Dict[int, Any] = {}
        self._call_ids = itertools.count(1_000_000)
        node.attach(self.receive)

    # -- deployment -----------------------------------------------------------

    def deploy(
        self,
        name: str,
        wid: int,
        handler: Handler,
        runtime: Runtime,
        code_bytes: int = 1024 * 1024,
        max_workers: Optional[int] = None,
        warm: bool = True,
    ) -> Deployment:
        """Install a workload; with ``warm=False`` it must be started."""
        if name in self._deployments:
            raise ValueError(f"workload {name!r} already deployed")
        if wid in self._by_wid:
            raise ValueError(f"wid {wid} already in use")
        deployment = Deployment(
            name=name, wid=wid, handler=handler, runtime=runtime,
            code_bytes=code_bytes, max_workers=max_workers, warm=warm,
        )
        if max_workers is not None:
            deployment.semaphore = Resource(self.env, capacity=max_workers)
        if runtime.serialize_compute:
            if runtime.shared_interpreter:
                # One interpreter process hosts every workload of this
                # runtime on this server: one GIL for all of them.
                lock = self._shared_locks.get(runtime.name)
                if lock is None:
                    lock = Resource(self.env, capacity=1)
                    self._shared_locks[runtime.name] = lock
                deployment.compute_lock = lock
            else:
                deployment.compute_lock = Resource(self.env, capacity=1)
        self.memory.allocate(runtime.memory_overhead_bytes)
        self._deployments[name] = deployment
        self._by_wid[wid] = deployment
        return deployment

    def start(self, name: str):
        """Process: cold-start a deployment (download + boot)."""
        deployment = self._deployments[name]

        def starter():
            yield self.env.timeout(
                deployment.runtime.startup_seconds(deployment.package_bytes)
            )
            deployment.warm = True
            return deployment

        return self.env.process(starter())

    def undeploy(self, name: str) -> None:
        deployment = self._deployments.pop(name)
        del self._by_wid[deployment.wid]
        self.memory.free(deployment.runtime.memory_overhead_bytes)

    # -- failure injection -----------------------------------------------------

    def crash(self) -> None:
        """Kill the worker: drop inbound traffic, kill in-flight work.

        Deployments stay installed but go cold (their processes died
        with the machine); :meth:`restart` must re-boot them before the
        server serves again.
        """
        self.online = False
        self._epoch += 1
        self.stats.crashes += 1
        for deployment in self._deployments.values():
            deployment.warm = False
        # Outstanding service-call waiters died with their handlers.
        self._pending.clear()

    def restart(self, reboot_seconds: float = 1.0):
        """Process: power the machine back on and re-warm deployments."""

        def rebooter():
            yield self.env.timeout(reboot_seconds)
            self.online = True
            starts = [self.start(name) for name in sorted(self._deployments)]
            if starts:
                yield self.env.all_of(starts)
            return self

        return self.env.process(rebooter())

    # -- datapath --------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        if not self.online:
            self.stats.dropped_down += 1
            return
        header = packet.headers.get("LambdaHeader")
        if header is not None and header.is_response and \
                header.request_id in self._pending:
            self._pending.pop(header.request_id).succeed(packet)
            return
        self.env.process(self._handle(packet))

    def _handle(self, packet: Packet):
        arrival = self.env.now
        epoch = self._epoch
        kernel = self.params.kernel
        yield self.env.timeout(kernel.rx_seconds)
        self.cpu.account("kernel", kernel.cpu_per_packet_seconds)

        header = packet.headers.get("LambdaHeader")
        deployment = self._by_wid.get(header.wid) if header is not None else None
        if deployment is None:
            self.stats.dropped_unknown += 1
            return
        if not deployment.warm:
            self.stats.dropped_cold += 1
            return

        # Runtime plumbing: overlay network / dispatch to the lambda.
        # For Python-based runtimes the dispatch path itself runs under
        # the interpreter (request parse, demux), so it is CPU work
        # under the GIL; for a raw runtime it is pure latency.
        ctx = RequestContext(self, deployment, packet)
        if deployment.runtime.serialize_compute:
            yield ctx.compute(deployment.runtime.dispatch_seconds)
        else:
            yield self.env.timeout(deployment.runtime.dispatch_seconds)
        if deployment.runtime.cpu_overhead_seconds:
            self.cpu.account(
                deployment.name, deployment.runtime.cpu_overhead_seconds
            )

        try:
            if deployment.semaphore is not None:
                with deployment.semaphore.request() as slot:
                    yield slot
                    yield from deployment.handler(ctx)
            else:
                yield from deployment.handler(ctx)
        except Exception:
            # A crashing lambda must not take the worker down: the
            # request is dropped (the client's retry/timeout handles
            # it) and the failure is counted. Exceptions provoked by a
            # machine crash mid-request are the machine's fault, not
            # the handler's, and are not counted against it.
            if epoch == self._epoch:
                self.stats.handler_errors += 1
            return

        if epoch != self._epoch:
            # The machine crashed while this request was in flight:
            # the response died with it.
            return
        yield self.env.timeout(kernel.tx_seconds)
        self.cpu.account("kernel", kernel.cpu_per_packet_seconds)

        self.stats.requests_served += 1
        self.stats.per_lambda_requests[deployment.name] = (
            self.stats.per_lambda_requests.get(deployment.name, 0) + 1
        )
        self.stats.latencies.append(self.env.now - arrival)
        self._respond(packet, ctx)

    def _respond(self, request: Packet, ctx: RequestContext) -> None:
        headers = request.headers.copy()
        header = headers.get("LambdaHeader")
        if header is not None:
            header.is_response = True
        response = Packet(
            src=self.name,
            dst=request.src,
            headers=headers,
            payload_bytes=ctx.response_bytes,
            meta={"lambda_meta": dict(ctx.response_meta)},
        )
        self.stats.responses_sent += 1
        self.node.send(response)

    # -- outbound service calls --------------------------------------------------

    def call_service(self, dst: str, method: str = "GET", key: str = "",
                     request_bytes: int = 64, timeout: float = 0.05,
                     retries: int = 3):
        """Process: RPC with sender-side tracking and retransmission.

        The weakly-consistent delivery semantic of the paper (§4.2.1-D3):
        the sender tracks outstanding RPCs and retransmits on timeout.
        """
        kernel = self.params.kernel
        call_id = next(self._call_ids)
        attempt = 0
        while True:
            attempt += 1
            waiter = self.env.event()
            self._pending[call_id] = waiter
            yield self.env.timeout(kernel.tx_seconds)
            self.node.send(Packet(
                src=self.name,
                dst=dst,
                headers=HeaderStack([
                    EthernetHeader(),
                    IPv4Header(src_ip=self.name, dst_ip=dst),
                    UDPHeader(),
                    LambdaHeader(request_id=call_id),
                    RpcHeader(method=method, key=key),
                ]),
                payload_bytes=request_bytes,
            ))
            result = yield self.env.any_of(
                [waiter, self.env.timeout(timeout, value="timeout")]
            )
            response = None
            for event in result.events:
                if event is waiter:
                    response = waiter.value
            if response is not None:
                yield self.env.timeout(kernel.rx_seconds)
                return response
            self._pending.pop(call_id, None)
            if attempt > retries:
                raise ServiceTimeout(
                    f"{dst!r} did not answer after {retries} retries"
                )
