"""Host worker node: the container and bare-metal serverless backends.

A :class:`HostServer` attaches to a network node and serves lambda
requests the way the paper's baselines do: kernel network stack in and
out, runtime dispatch overhead (container overlay / bare-metal thread
handoff), then the workload's handler on a CPU hardware thread — paying
context switches whenever distinct lambdas share threads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..net import (
    EthernetHeader,
    HeaderStack,
    IPv4Header,
    LambdaHeader,
    Packet,
    RpcHeader,
    UDPHeader,
)
from ..net.network import Node
from ..net.packet import DEADLINE_META
from ..obs import CounterAttribute, MetricsRegistry, Tracer
from ..sim import Environment, Resource
from .cpu import HostCPU
from .params import HostParams
from .runtime import HostMemory, Runtime

#: Handler protocol: a generator function taking a RequestContext and
#: yielding simulation events (typically via ctx.compute / ctx.call).
Handler = Callable[["RequestContext"], Generator]


@dataclass
class Deployment:
    """One workload deployed on this server."""

    name: str
    wid: int
    handler: Handler
    runtime: Runtime
    code_bytes: int = 1024 * 1024
    max_workers: Optional[int] = None
    warm: bool = False
    semaphore: Optional[Resource] = None
    #: Interpreter lock (GIL) shared by all requests of this deployment.
    compute_lock: Optional[Resource] = None

    @property
    def package_bytes(self) -> int:
        return self.runtime.package_bytes(self.code_bytes)


class ServerStats:
    """Per-server accounting, backed by a typed metrics registry.

    Attribute-compatible with the dataclass it replaces — see
    :class:`repro.hw.nic.NicStats` for the pattern.
    """

    requests_served = CounterAttribute(
        "host_requests_served_total", "requests completed by handlers")
    responses_sent = CounterAttribute(
        "host_responses_sent_total", "response packets emitted")
    dropped_unknown = CounterAttribute(
        "host_dropped_unknown_total", "packets for unknown workloads")
    dropped_cold = CounterAttribute(
        "host_dropped_cold_total", "packets hitting cold deployments")
    dropped_down = CounterAttribute(
        "host_dropped_down_total", "packets dropped while crashed")
    handler_errors = CounterAttribute(
        "host_handler_errors_total", "handlers that raised")
    crashes = CounterAttribute(
        "host_crashes_total", "machine crashes")
    expired = CounterAttribute(
        "host_expired_total",
        "requests dropped: deadline passed before the handler ran")
    expired_completions = CounterAttribute(
        "host_expired_completions_total",
        "handlers that finished past their deadline (in-flight race)")
    shed = CounterAttribute(
        "host_shed_total", "requests rejected by the host load shedder")

    def __init__(self, registry: Optional["MetricsRegistry"] = None,
                 node: str = "") -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = {"node": node} if node else None
        self._latency_histogram = self.registry.histogram(
            "host_latency_seconds", "arrival-to-response latency")
        self._per_lambda = self.registry.counter(
            "host_lambda_requests_total", "requests served per lambda")

    @property
    def latencies(self) -> List[float]:
        """Live latency list (a histogram view; appends flow through)."""
        return self._latency_histogram.raw(self.labels)

    def count_lambda(self, name: str) -> None:
        labels = dict(self.labels or {})
        labels["lambda"] = name
        self._per_lambda.inc(labels=labels)

    @property
    def per_lambda_requests(self) -> Dict[str, int]:
        node = (self.labels or {}).get("node")
        out: Dict[str, int] = {}
        for labels, value in self._per_lambda.items():
            if node is not None and labels.get("node") != node:
                continue
            out[labels["lambda"]] = int(value)
        return out


class RequestContext:
    """What a workload handler gets to interact with the world."""

    def __init__(self, server: "HostServer", deployment: Deployment,
                 request: Packet) -> None:
        self.server = server
        self.env = server.env
        self.deployment = deployment
        self.request = request
        self.response_bytes = 64
        self.response_meta: Dict[str, Any] = {}
        #: (trace_id, parent_span_id) of the server's handle span, set
        #: by the server when tracing is on.
        self.trace = None

    @property
    def request_id(self) -> int:
        header = self.request.headers.get("LambdaHeader")
        return header.request_id if header else 0

    def compute(self, cpu_seconds: float, gil: bool = True):
        """Occupy a CPU hardware thread for ``cpu_seconds`` of work.

        The runtime's compute multiplier is applied, and if the runtime
        serialises compute (Python GIL), the deployment-wide interpreter
        lock is held for the duration. Pass ``gil=False`` for work done
        inside vectorised libraries that release the GIL (e.g. numpy
        pixel kernels) — such work runs in parallel across threads.
        """
        runtime = self.deployment.runtime
        scaled = cpu_seconds * runtime.compute_multiplier

        def run():
            if gil and self.deployment.compute_lock is not None:
                with self.deployment.compute_lock.request() as lock:
                    yield lock
                    result = yield self.env.process(
                        self.server.cpu.execute(self.deployment.name, scaled,
                                                trace=self.trace)
                    )
            else:
                result = yield self.env.process(
                    self.server.cpu.execute(self.deployment.name, scaled,
                                            trace=self.trace)
                )
            return result

        return self.env.process(run())

    def call(self, dst: str, method: str = "GET", key: str = "",
             request_bytes: int = 64, timeout: float = 0.05, retries: int = 3):
        """RPC to an external service; returns the response packet."""
        return self.env.process(
            self.server.call_service(
                dst, method=method, key=key, request_bytes=request_bytes,
                timeout=timeout, retries=retries, trace=self.trace,
            )
        )

    def sleep(self, seconds: float):
        return self.env.timeout(seconds)


class ServiceTimeout(Exception):
    """An external service call exhausted its retries."""


class HostServer:
    """A worker node running container or bare-metal backends."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        params: Optional[HostParams] = None,
        cpu: Optional[HostCPU] = None,
        metrics: Optional[MetricsRegistry] = None,
        shedder=None,
    ) -> None:
        self.env = env
        self.node = node
        self.name = node.name
        self.params = params or HostParams()
        self.cpu = cpu or HostCPU(env, self.params.cpu, metrics=metrics,
                                  node=self.name)
        self.memory = HostMemory()
        self.stats = ServerStats(registry=metrics, node=self.name)
        #: Optional per-server load shedder (CoDel-style): fed the
        #: runtime-dispatch wait on every request, consulted at arrival.
        self.shedder = shedder
        #: False after :meth:`crash`: inbound packets are dropped and
        #: in-flight handlers die silently until :meth:`restart`.
        self.online = True
        self._epoch = 0
        self._deployments: Dict[str, Deployment] = {}
        self._by_wid: Dict[int, Deployment] = {}
        self._shared_locks: Dict[str, Resource] = {}
        self._pending: Dict[int, Any] = {}
        self._call_ids = itertools.count(1_000_000)
        node.attach(self.receive)

    # -- deployment -----------------------------------------------------------

    def deploy(
        self,
        name: str,
        wid: int,
        handler: Handler,
        runtime: Runtime,
        code_bytes: int = 1024 * 1024,
        max_workers: Optional[int] = None,
        warm: bool = True,
    ) -> Deployment:
        """Install a workload; with ``warm=False`` it must be started."""
        if name in self._deployments:
            raise ValueError(f"workload {name!r} already deployed")
        if wid in self._by_wid:
            raise ValueError(f"wid {wid} already in use")
        deployment = Deployment(
            name=name, wid=wid, handler=handler, runtime=runtime,
            code_bytes=code_bytes, max_workers=max_workers, warm=warm,
        )
        if max_workers is not None:
            deployment.semaphore = Resource(self.env, capacity=max_workers)
        if runtime.serialize_compute:
            if runtime.shared_interpreter:
                # One interpreter process hosts every workload of this
                # runtime on this server: one GIL for all of them.
                lock = self._shared_locks.get(runtime.name)
                if lock is None:
                    lock = Resource(self.env, capacity=1)
                    self._shared_locks[runtime.name] = lock
                deployment.compute_lock = lock
            else:
                deployment.compute_lock = Resource(self.env, capacity=1)
        self.memory.allocate(runtime.memory_overhead_bytes)
        self._deployments[name] = deployment
        self._by_wid[wid] = deployment
        return deployment

    def start(self, name: str):
        """Process: cold-start a deployment (download + boot)."""
        deployment = self._deployments[name]

        def starter():
            yield self.env.timeout(
                deployment.runtime.startup_seconds(deployment.package_bytes)
            )
            deployment.warm = True
            return deployment

        return self.env.process(starter())

    def undeploy(self, name: str) -> None:
        deployment = self._deployments.pop(name)
        del self._by_wid[deployment.wid]
        self.memory.free(deployment.runtime.memory_overhead_bytes)

    # -- failure injection -----------------------------------------------------

    def crash(self) -> None:
        """Kill the worker: drop inbound traffic, kill in-flight work.

        Deployments stay installed but go cold (their processes died
        with the machine); :meth:`restart` must re-boot them before the
        server serves again.
        """
        self.online = False
        self._epoch += 1
        self.stats.crashes += 1
        for deployment in self._deployments.values():
            deployment.warm = False
        # Outstanding service-call waiters died with their handlers.
        self._pending.clear()
        if self.env.tracer is not None:
            self.env.tracer.instant("host.crash", "fault", node=self.name)

    def restart(self, reboot_seconds: float = 1.0):
        """Process: power the machine back on and re-warm deployments."""

        def rebooter():
            yield self.env.timeout(reboot_seconds)
            self.online = True
            if self.env.tracer is not None:
                self.env.tracer.instant("host.restart", "fault",
                                        node=self.name)
            starts = [self.start(name) for name in sorted(self._deployments)]
            if starts:
                yield self.env.all_of(starts)
            return self

        return self.env.process(rebooter())

    # -- datapath --------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        if not self.online:
            self.stats.dropped_down += 1
            tracer = self.env.tracer
            if tracer is not None:
                trace_id, parent = Tracer.context(packet)
                if trace_id:
                    tracer.instant("host.drop", "host", trace_id=trace_id,
                                   parent=parent, node=self.name,
                                   tags={"reason": "host_down"})
            return
        header = packet.headers.get("LambdaHeader")
        if header is not None and header.is_response and \
                header.request_id in self._pending:
            self._pending.pop(header.request_id).succeed(packet)
            return
        self.env.process(self._handle(packet))

    def _handle(self, packet: Packet):
        arrival = self.env.now
        epoch = self._epoch
        tracer = self.env.tracer
        span = None
        if tracer is not None:
            trace_id, parent = Tracer.context(packet)
            if trace_id:
                span = tracer.begin("host.handle", "host",
                                    trace_id=trace_id, parent=parent,
                                    node=self.name)
        kernel = self.params.kernel
        yield self.env.timeout(kernel.rx_seconds)
        self.cpu.account("kernel", kernel.cpu_per_packet_seconds)
        if span is not None:
            tracer.end(tracer.begin(
                "host.kernel_rx", "host", trace_id=span.trace_id,
                parent=span, node=self.name, start=arrival,
            ))

        header = packet.headers.get("LambdaHeader")
        deployment = self._by_wid.get(header.wid) if header is not None else None
        if deployment is None:
            self.stats.dropped_unknown += 1
            if span is not None:
                tracer.end(span, tags={"verdict": "dropped_unknown"})
            return
        if not deployment.warm:
            self.stats.dropped_cold += 1
            if span is not None:
                tracer.end(span, tags={"verdict": "dropped_cold"})
            return
        deadline = packet.meta.get(DEADLINE_META)
        if deadline is not None and self.env.now > deadline:
            # Kernel-rx dequeue check: the deadline passed before the
            # runtime ever saw the request.
            self.stats.expired += 1
            if span is not None:
                tracer.end(span, tags={"verdict": "expired"})
            return
        if self.shedder is not None and self.shedder.should_shed():
            self.stats.shed += 1
            if span is not None:
                tracer.end(span, tags={"verdict": "shed"})
            return

        # Runtime plumbing: overlay network / dispatch to the lambda.
        # For Python-based runtimes the dispatch path itself runs under
        # the interpreter (request parse, demux), so it is CPU work
        # under the GIL; for a raw runtime it is pure latency.
        ctx = RequestContext(self, deployment, packet)
        if span is not None:
            ctx.trace = (span.trace_id, span.span_id)
        dispatch_start = self.env.now
        if deployment.runtime.serialize_compute:
            yield ctx.compute(deployment.runtime.dispatch_seconds)
        else:
            yield self.env.timeout(deployment.runtime.dispatch_seconds)
        if deployment.runtime.cpu_overhead_seconds:
            self.cpu.account(
                deployment.name, deployment.runtime.cpu_overhead_seconds
            )
        if span is not None:
            tracer.end(tracer.begin(
                "host.dispatch", "host", trace_id=span.trace_id,
                parent=span, node=self.name, start=dispatch_start,
                tags={"runtime": deployment.runtime.name},
            ))
        if self.shedder is not None:
            # The dispatch wait (runtime demux, GIL queueing) is the
            # host's run-queue sojourn signal.
            self.shedder.observe(self.env.now - dispatch_start, self.env.now)
        if deadline is not None and self.env.now > deadline:
            # Run-queue dequeue check: the request aged out while
            # queued for dispatch — drop before running the handler.
            self.stats.expired += 1
            if span is not None:
                tracer.end(span, tags={"verdict": "expired_dispatch"})
            return

        handler_span = None
        if span is not None:
            handler_span = tracer.begin(
                "host.handler", "host", trace_id=span.trace_id,
                parent=span, node=self.name,
                tags={"lambda": deployment.name},
            )
        try:
            if deployment.semaphore is not None:
                with deployment.semaphore.request() as slot:
                    yield slot
                    yield from deployment.handler(ctx)
            else:
                yield from deployment.handler(ctx)
        except Exception:
            # A crashing lambda must not take the worker down: the
            # request is dropped (the client's retry/timeout handles
            # it) and the failure is counted. Exceptions provoked by a
            # machine crash mid-request are the machine's fault, not
            # the handler's, and are not counted against it.
            if epoch == self._epoch:
                self.stats.handler_errors += 1
            if span is not None:
                tracer.end(handler_span, tags={"error": 1})
                tracer.end(span, tags={"verdict": "handler_error"})
            return
        if span is not None:
            tracer.end(handler_span)

        if epoch != self._epoch:
            # The machine crashed while this request was in flight:
            # the response died with it.
            if span is not None:
                tracer.end(span, tags={"verdict": "crashed"})
            return
        if deadline is not None and self.env.now > deadline:
            # In-flight race: the handler had started before the
            # deadline passed. Allowed but counted; the response still
            # goes out (the gateway absorbs it as late).
            self.stats.expired_completions += 1
        tx_start = self.env.now
        yield self.env.timeout(kernel.tx_seconds)
        self.cpu.account("kernel", kernel.cpu_per_packet_seconds)

        self.stats.requests_served += 1
        self.stats.count_lambda(deployment.name)
        self.stats.latencies.append(self.env.now - arrival)
        if span is not None:
            tracer.end(tracer.begin(
                "host.kernel_tx", "host", trace_id=span.trace_id,
                parent=span, node=self.name, start=tx_start,
            ))
            tracer.end(span, tags={"verdict": "ok"})
        self._respond(packet, ctx)

    def _respond(self, request: Packet, ctx: RequestContext) -> None:
        headers = request.headers.copy()
        header = headers.get("LambdaHeader")
        if header is not None:
            header.is_response = True
        response = Packet(
            src=self.name,
            dst=request.src,
            headers=headers,
            payload_bytes=ctx.response_bytes,
            meta={"lambda_meta": dict(ctx.response_meta)},
        )
        Tracer.propagate(request, response)
        self.stats.responses_sent += 1
        self.node.send(response)

    # -- outbound service calls --------------------------------------------------

    def call_service(self, dst: str, method: str = "GET", key: str = "",
                     request_bytes: int = 64, timeout: float = 0.05,
                     retries: int = 3, trace=None):
        """Process: RPC with sender-side tracking and retransmission.

        The weakly-consistent delivery semantic of the paper (§4.2.1-D3):
        the sender tracks outstanding RPCs and retransmits on timeout.
        """
        kernel = self.params.kernel
        call_id = next(self._call_ids)
        attempt = 0
        tracer = self.env.tracer
        call_span = None
        if tracer is not None and trace is not None:
            trace_id, parent_id = trace
            call_span = tracer.begin(
                "host.call", "host", trace_id=trace_id, parent=parent_id,
                node=self.name, tags={"dst": dst, "method": method},
            )
        while True:
            attempt += 1
            waiter = self.env.event()
            self._pending[call_id] = waiter
            yield self.env.timeout(kernel.tx_seconds)
            call = Packet(
                src=self.name,
                dst=dst,
                headers=HeaderStack([
                    EthernetHeader(),
                    IPv4Header(src_ip=self.name, dst_ip=dst),
                    UDPHeader(),
                    LambdaHeader(request_id=call_id),
                    RpcHeader(method=method, key=key),
                ]),
                payload_bytes=request_bytes,
            )
            if call_span is not None:
                Tracer.stamp_packet(call, call_span)
            self.node.send(call)
            result = yield self.env.any_of(
                [waiter, self.env.timeout(timeout, value="timeout")]
            )
            response = None
            for event in result.events:
                if event is waiter:
                    response = waiter.value
            if response is not None:
                yield self.env.timeout(kernel.rx_seconds)
                if call_span is not None:
                    tracer.end(call_span, tags={"ok": 1, "attempts": attempt})
                return response
            self._pending.pop(call_id, None)
            if attempt > retries:
                if call_span is not None:
                    tracer.end(call_span, tags={"ok": 0, "attempts": attempt})
                raise ServiceTimeout(
                    f"{dst!r} did not answer after {retries} retries"
                )
