"""Serverless runtimes on the host: container and bare-metal.

A :class:`Runtime` contributes the per-request software overhead, the
resident-memory overhead, and the startup behaviour of one backend type
(paper Figure 1's layers). The numbers live in :mod:`repro.host.params`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .params import BareMetalParams, ContainerParams

MIB = 1024 * 1024


class Runtime:
    """Base runtime: zero overhead (used for raw-process ablations)."""

    name = "raw"

    @property
    def dispatch_seconds(self) -> float:
        """Per-request latency added before the workload runs."""
        return 0.0

    @property
    def cpu_overhead_seconds(self) -> float:
        """Extra CPU consumed per request by this runtime's plumbing."""
        return 0.0

    @property
    def memory_overhead_bytes(self) -> int:
        """Resident memory added per deployed workload."""
        return 0

    @property
    def serialize_compute(self) -> bool:
        """True if the runtime's interpreter serialises compute (GIL)."""
        return False

    @property
    def shared_interpreter(self) -> bool:
        """True if all workloads share one interpreter process.

        The paper's bare-metal backend is a single Python service that
        launches lambdas as threads (§6.1.1) — one GIL for everything.
        Containers get an interpreter per container.
        """
        return False

    @property
    def compute_multiplier(self) -> float:
        """Slowdown factor on workload compute (cgroup quotas, copies)."""
        return 1.0

    def package_bytes(self, code_bytes: int) -> int:
        """Size of the deployable artifact for a workload of ``code_bytes``."""
        return code_bytes

    def startup_seconds(self, package_bytes: int) -> float:
        """Time from deploy to serving the first request."""
        return 0.0


class BareMetalRuntime(Runtime):
    """Isolate-style: workloads run as threads of a standalone service."""

    name = "bare-metal"

    def __init__(self, params: Optional[BareMetalParams] = None) -> None:
        self.params = params or BareMetalParams()

    @property
    def dispatch_seconds(self) -> float:
        return self.params.dispatch_seconds

    @property
    def memory_overhead_bytes(self) -> int:
        return self.params.memory_overhead_bytes

    @property
    def serialize_compute(self) -> bool:
        # The paper's bare-metal backend is a Python service: one
        # interpreter lock serialises workload compute across threads.
        return True

    @property
    def shared_interpreter(self) -> bool:
        return True  # All lambdas are threads of the one service.

    def package_bytes(self, code_bytes: int) -> int:
        # setuptools + Wheel package: code plus Python deps (Table 4:
        # 17 MiB for the image transformer).
        return code_bytes + 16 * MIB

    def startup_seconds(self, package_bytes: int) -> float:
        return (
            self.params.startup_base_seconds
            + self.params.startup_per_mib_seconds * package_bytes / MIB
        )


class ContainerRuntime(Runtime):
    """Docker containers behind an overlay network.

    The per-request dispatch cost defaults to the flat
    :class:`~repro.host.params.ContainerParams` number; pass an
    :class:`~repro.host.overlay.OverlayPath` to derive it from the
    decomposed network path instead (e.g. host-networking ablations).
    """

    name = "container"

    def __init__(self, params: Optional[ContainerParams] = None,
                 overlay=None) -> None:
        self.params = params or ContainerParams()
        self.overlay = overlay

    @property
    def dispatch_seconds(self) -> float:
        if self.overlay is not None:
            return self.overlay.dispatch_seconds
        return self.params.dispatch_seconds

    @property
    def cpu_overhead_seconds(self) -> float:
        if self.overlay is not None:
            return self.overlay.cpu_seconds
        return self.params.cpu_overhead_seconds

    @property
    def memory_overhead_bytes(self) -> int:
        return self.params.memory_overhead_bytes

    @property
    def serialize_compute(self) -> bool:
        return True  # Same language runtime inside the container.

    @property
    def compute_multiplier(self) -> float:
        return self.params.compute_multiplier

    def package_bytes(self, code_bytes: int) -> int:
        # Docker image: base OS layers + language runtime + code
        # (Table 4: 153 MiB for the image transformer).
        return code_bytes + 152 * MIB

    def startup_seconds(self, package_bytes: int) -> float:
        return (
            self.params.startup_base_seconds
            + self.params.startup_per_mib_seconds * package_bytes / MIB
        )


@dataclass
class HostMemory:
    """Simple resident-memory accounting for one worker node."""

    capacity_bytes: int = 32 * 1024 ** 3  # 32 GiB of DDR4, as in the testbed
    used_bytes: int = 0

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation must be non-negative")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise MemoryError(
                f"host memory overflow: {self.used_bytes + nbytes} > "
                f"{self.capacity_bytes}"
            )
        self.used_bytes += nbytes

    def free(self, nbytes: int) -> None:
        self.used_bytes = max(0, self.used_bytes - nbytes)
