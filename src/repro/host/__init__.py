"""Host server model: CPU, kernel costs, runtimes, worker node."""

from .cpu import CpuStats, HostCPU
from .params import (
    BareMetalParams,
    ContainerParams,
    CpuParams,
    HostParams,
    KernelParams,
)
from .overlay import (
    DEFAULT_COMPONENTS,
    OverlayComponent,
    OverlayPath,
    host_networking_path,
)
from .runtime import BareMetalRuntime, ContainerRuntime, HostMemory, MIB, Runtime
from .server import (
    Deployment,
    Handler,
    HostServer,
    RequestContext,
    ServerStats,
    ServiceTimeout,
)

__all__ = [
    "BareMetalParams",
    "BareMetalRuntime",
    "ContainerParams",
    "ContainerRuntime",
    "CpuParams",
    "CpuStats",
    "DEFAULT_COMPONENTS",
    "Deployment",
    "Handler",
    "HostCPU",
    "HostMemory",
    "HostParams",
    "HostServer",
    "KernelParams",
    "MIB",
    "OverlayComponent",
    "OverlayPath",
    "RequestContext",
    "Runtime",
    "ServerStats",
    "ServiceTimeout",
    "host_networking_path",
]
