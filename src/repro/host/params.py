"""Host-side cost parameters.

Defaults model the paper's worker nodes — two Xeon Gold 5117 (14 cores,
2.0 GHz, 56 hardware threads total) — with software overheads set to the
magnitudes reported in the serverless literature the paper cites:
context switches waste "tens of milliseconds worth of CPU cycles"
amortised (§1), kernel network stacks add tens of microseconds, and
container overlay networking adds milliseconds (§6.3, [91]).

Everything here is a dataclass so experiments can ablate each term.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CpuParams:
    """Physical CPU configuration."""

    n_threads: int = 56          # 2 sockets x 14 cores x 2 SMT
    clock_hz: float = 2.0e9
    #: Direct + indirect (cache/TLB pollution) cost of switching a
    #: hardware thread to a different lambda.
    context_switch_seconds: float = 400e-6


@dataclass
class KernelParams:
    """OS kernel network-stack costs per packet."""

    rx_seconds: float = 15e-6    # interrupt, softirq, socket wakeup
    tx_seconds: float = 10e-6    # syscall, qdisc, driver
    #: CPU time consumed per packet by the kernel (accounted, not added
    #: to latency twice).
    cpu_per_packet_seconds: float = 5e-6


@dataclass
class BareMetalParams:
    """Isolate-style bare-metal runtime (paper's Python service)."""

    #: Per-request dispatch overhead (accept, demux, thread handoff).
    dispatch_seconds: float = 60e-6
    #: Resident memory of the runtime process + deps per workload.
    memory_overhead_bytes: int = int(62.5 * 1024 * 1024)
    #: Time to start the service process and import dependencies.
    startup_base_seconds: float = 3.5
    #: Additional start time per MiB of workload binary (unpack/import).
    startup_per_mib_seconds: float = 0.088


@dataclass
class ContainerParams:
    """Docker/Kubernetes container runtime costs."""

    #: Per-request overhead: NAT/iptables, veth pair, overlay (calico),
    #: userspace proxying — the dominant term for interactive lambdas.
    dispatch_seconds: float = 3.8e-3
    #: Extra CPU consumed per request by the container network path.
    cpu_overhead_seconds: float = 250e-6
    #: Resident memory: container image layers + engine accounting.
    memory_overhead_bytes: int = int(219.5 * 1024 * 1024)
    #: Compute slowdown inside the container (cgroup CPU quota and
    #: overlay data copies on data-heavy workloads).
    compute_multiplier: float = 1.65
    #: Engine overhead to create/start a container.
    startup_base_seconds: float = 12.0
    #: Image pull/unpack time per MiB.
    startup_per_mib_seconds: float = 0.129


@dataclass
class HostParams:
    """Bundle of all host-side parameters."""

    cpu: CpuParams = None
    kernel: KernelParams = None
    bare_metal: BareMetalParams = None
    container: ContainerParams = None

    def __post_init__(self) -> None:
        self.cpu = self.cpu or CpuParams()
        self.kernel = self.kernel or KernelParams()
        self.bare_metal = self.bare_metal or BareMetalParams()
        self.container = self.container or ContainerParams()
