"""NIC-side packet reordering for multi-packet RPCs (paper fn. 3).

λ-NIC performs packet reordering at the SmartNIC for multi-packet
messages; the paper measured 120 instructions to reorder four 100 B
packets (~1.3 % of a benchmark lambda). :class:`ReorderBuffer` provides
the mechanism plus that cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Instructions per segment, from the paper's measurement (120 / 4).
REORDER_INSTRUCTIONS_PER_SEGMENT = 30


class ReorderError(ValueError):
    """Raised on inconsistent segment metadata."""


@dataclass
class _Message:
    total: int
    segments: Dict[int, Any] = field(default_factory=dict)
    out_of_order: int = 0
    highest_seen: int = -1


class ReorderBuffer:
    """Collects out-of-order segments into complete, ordered messages.

    Keyed by an arbitrary message id (e.g. ``(src, request_id)``).
    ``add`` returns the ordered list of items once the message is
    complete, else None.
    """

    def __init__(self) -> None:
        self._messages: Dict[Any, _Message] = {}
        self.completed_messages = 0
        self.total_segments = 0
        self.duplicate_segments = 0

    def add(self, message_id: Any, seq: int, total: int,
            item: Any) -> Optional[List[Any]]:
        if total <= 0:
            raise ReorderError("total must be positive")
        if not 0 <= seq < total:
            raise ReorderError(f"seq {seq} outside [0, {total})")
        message = self._messages.get(message_id)
        if message is None:
            message = _Message(total=total)
            self._messages[message_id] = message
        elif message.total != total:
            raise ReorderError(
                f"message {message_id!r}: total changed "
                f"{message.total} -> {total}"
            )
        if seq in message.segments:
            self.duplicate_segments += 1
            return None
        self.total_segments += 1
        if seq < message.highest_seen:
            message.out_of_order += 1
        message.highest_seen = max(message.highest_seen, seq)
        message.segments[seq] = item
        if len(message.segments) < total:
            return None
        del self._messages[message_id]
        self.completed_messages += 1
        return [message.segments[index] for index in range(total)]

    def pending(self, message_id: Any) -> int:
        """Segments still missing for an in-flight message (0 if unknown)."""
        message = self._messages.get(message_id)
        if message is None:
            return 0
        return message.total - len(message.segments)

    @property
    def in_flight(self) -> int:
        return len(self._messages)

    def instructions_for(self, total_segments: int) -> int:
        """The paper's reordering cost for one message."""
        return REORDER_INSTRUCTIONS_PER_SEGMENT * total_segments

    def evict(self, message_id: Any) -> int:
        """Drop an in-flight message (sender gave up); returns segments lost."""
        message = self._messages.pop(message_id, None)
        return len(message.segments) if message else 0
