"""Transport: weakly-consistent RPC, segmentation, NIC-side reordering."""

from .reorder import (
    REORDER_INSTRUCTIONS_PER_SEGMENT,
    ReorderBuffer,
    ReorderError,
)
from .rpc import RpcEndpoint, RpcTimeout
from .segmentation import (
    DEFAULT_SEGMENT_BYTES,
    Segment,
    reassemble,
    segment_message,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "REORDER_INSTRUCTIONS_PER_SEGMENT",
    "ReorderBuffer",
    "ReorderError",
    "RpcEndpoint",
    "RpcTimeout",
    "Segment",
    "reassemble",
    "segment_message",
]
